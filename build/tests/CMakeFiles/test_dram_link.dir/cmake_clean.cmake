file(REMOVE_RECURSE
  "CMakeFiles/test_dram_link.dir/test_dram_link.cc.o"
  "CMakeFiles/test_dram_link.dir/test_dram_link.cc.o.d"
  "test_dram_link"
  "test_dram_link.pdb"
  "test_dram_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
