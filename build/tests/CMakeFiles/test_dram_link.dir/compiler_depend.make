# Empty compiler generated dependencies file for test_dram_link.
# This may be replaced when dependencies are built.
