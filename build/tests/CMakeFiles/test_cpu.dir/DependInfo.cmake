
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/test_cpu.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/test_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spa/CMakeFiles/cxlsim_spa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/melody_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cxlsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cxlsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlsim_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cxlsim_link.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cxlsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
