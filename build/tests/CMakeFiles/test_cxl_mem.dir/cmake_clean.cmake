file(REMOVE_RECURSE
  "CMakeFiles/test_cxl_mem.dir/test_cxl_mem.cc.o"
  "CMakeFiles/test_cxl_mem.dir/test_cxl_mem.cc.o.d"
  "test_cxl_mem"
  "test_cxl_mem.pdb"
  "test_cxl_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cxl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
