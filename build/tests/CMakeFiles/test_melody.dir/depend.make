# Empty dependencies file for test_melody.
# This may be replaced when dependencies are built.
