file(REMOVE_RECURSE
  "CMakeFiles/test_melody.dir/test_melody.cc.o"
  "CMakeFiles/test_melody.dir/test_melody.cc.o.d"
  "test_melody"
  "test_melody.pdb"
  "test_melody[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_melody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
