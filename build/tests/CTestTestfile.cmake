# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_dram_link[1]_include.cmake")
include("/root/repo/build/tests/test_cxl_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_melody[1]_include.cmake")
include("/root/repo/build/tests/test_spa[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
