# Empty dependencies file for prediction_accuracy.
# This may be replaced when dependencies are built.
