file(REMOVE_RECURSE
  "CMakeFiles/ablation_tails.dir/ablation_tails.cc.o"
  "CMakeFiles/ablation_tails.dir/ablation_tails.cc.o.d"
  "ablation_tails"
  "ablation_tails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
