# Empty compiler generated dependencies file for ablation_tails.
# This may be replaced when dependencies are built.
