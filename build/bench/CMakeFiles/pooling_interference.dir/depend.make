# Empty dependencies file for pooling_interference.
# This may be replaced when dependencies are built.
