file(REMOVE_RECURSE
  "CMakeFiles/pooling_interference.dir/pooling_interference.cc.o"
  "CMakeFiles/pooling_interference.dir/pooling_interference.cc.o.d"
  "pooling_interference"
  "pooling_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pooling_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
