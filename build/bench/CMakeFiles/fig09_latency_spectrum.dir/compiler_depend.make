# Empty compiler generated dependencies file for fig09_latency_spectrum.
# This may be replaced when dependencies are built.
