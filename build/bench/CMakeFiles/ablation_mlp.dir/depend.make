# Empty dependencies file for ablation_mlp.
# This may be replaced when dependencies are built.
