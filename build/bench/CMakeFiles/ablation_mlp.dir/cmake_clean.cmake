file(REMOVE_RECURSE
  "CMakeFiles/ablation_mlp.dir/ablation_mlp.cc.o"
  "CMakeFiles/ablation_mlp.dir/ablation_mlp.cc.o.d"
  "ablation_mlp"
  "ablation_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
