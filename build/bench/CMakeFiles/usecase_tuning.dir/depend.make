# Empty dependencies file for usecase_tuning.
# This may be replaced when dependencies are built.
