file(REMOVE_RECURSE
  "CMakeFiles/usecase_tuning.dir/usecase_tuning.cc.o"
  "CMakeFiles/usecase_tuning.dir/usecase_tuning.cc.o.d"
  "usecase_tuning"
  "usecase_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
