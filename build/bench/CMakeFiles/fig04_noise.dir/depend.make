# Empty dependencies file for fig04_noise.
# This may be replaced when dependencies are built.
