file(REMOVE_RECURSE
  "CMakeFiles/fig04_noise.dir/fig04_noise.cc.o"
  "CMakeFiles/fig04_noise.dir/fig04_noise.cc.o.d"
  "fig04_noise"
  "fig04_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
