# Empty dependencies file for fig05_rw_ratios.
# This may be replaced when dependencies are built.
