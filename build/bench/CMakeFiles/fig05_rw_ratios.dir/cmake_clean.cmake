file(REMOVE_RECURSE
  "CMakeFiles/fig05_rw_ratios.dir/fig05_rw_ratios.cc.o"
  "CMakeFiles/fig05_rw_ratios.dir/fig05_rw_ratios.cc.o.d"
  "fig05_rw_ratios"
  "fig05_rw_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_rw_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
