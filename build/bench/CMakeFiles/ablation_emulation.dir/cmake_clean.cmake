file(REMOVE_RECURSE
  "CMakeFiles/ablation_emulation.dir/ablation_emulation.cc.o"
  "CMakeFiles/ablation_emulation.dir/ablation_emulation.cc.o.d"
  "ablation_emulation"
  "ablation_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
