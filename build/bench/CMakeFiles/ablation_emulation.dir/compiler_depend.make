# Empty compiler generated dependencies file for ablation_emulation.
# This may be replaced when dependencies are built.
