file(REMOVE_RECURSE
  "CMakeFiles/fig15_breakdown_cdf.dir/fig15_breakdown_cdf.cc.o"
  "CMakeFiles/fig15_breakdown_cdf.dir/fig15_breakdown_cdf.cc.o.d"
  "fig15_breakdown_cdf"
  "fig15_breakdown_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_breakdown_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
