# Empty compiler generated dependencies file for fig15_breakdown_cdf.
# This may be replaced when dependencies are built.
