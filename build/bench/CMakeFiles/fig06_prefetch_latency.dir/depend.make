# Empty dependencies file for fig06_prefetch_latency.
# This may be replaced when dependencies are built.
