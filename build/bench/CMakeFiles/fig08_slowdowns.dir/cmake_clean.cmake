file(REMOVE_RECURSE
  "CMakeFiles/fig08_slowdowns.dir/fig08_slowdowns.cc.o"
  "CMakeFiles/fig08_slowdowns.dir/fig08_slowdowns.cc.o.d"
  "fig08_slowdowns"
  "fig08_slowdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_slowdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
