# Empty compiler generated dependencies file for fig08_slowdowns.
# This may be replaced when dependencies are built.
