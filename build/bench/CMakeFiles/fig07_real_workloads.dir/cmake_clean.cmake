file(REMOVE_RECURSE
  "CMakeFiles/fig07_real_workloads.dir/fig07_real_workloads.cc.o"
  "CMakeFiles/fig07_real_workloads.dir/fig07_real_workloads.cc.o.d"
  "fig07_real_workloads"
  "fig07_real_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_real_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
