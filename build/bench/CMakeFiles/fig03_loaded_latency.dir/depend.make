# Empty dependencies file for fig03_loaded_latency.
# This may be replaced when dependencies are built.
