# Empty compiler generated dependencies file for table1_testbed.
# This may be replaced when dependencies are built.
