file(REMOVE_RECURSE
  "CMakeFiles/fig16_period_analysis.dir/fig16_period_analysis.cc.o"
  "CMakeFiles/fig16_period_analysis.dir/fig16_period_analysis.cc.o.d"
  "fig16_period_analysis"
  "fig16_period_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_period_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
