# Empty compiler generated dependencies file for fig16_period_analysis.
# This may be replaced when dependencies are built.
