file(REMOVE_RECURSE
  "CMakeFiles/tiering_policies.dir/tiering_policies.cc.o"
  "CMakeFiles/tiering_policies.dir/tiering_policies.cc.o.d"
  "tiering_policies"
  "tiering_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiering_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
