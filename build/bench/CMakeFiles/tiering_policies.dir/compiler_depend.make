# Empty compiler generated dependencies file for tiering_policies.
# This may be replaced when dependencies are built.
