# Empty compiler generated dependencies file for fig12_prefetch_coverage.
# This may be replaced when dependencies are built.
