file(REMOVE_RECURSE
  "CMakeFiles/fig12_prefetch_coverage.dir/fig12_prefetch_coverage.cc.o"
  "CMakeFiles/fig12_prefetch_coverage.dir/fig12_prefetch_coverage.cc.o.d"
  "fig12_prefetch_coverage"
  "fig12_prefetch_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_prefetch_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
