# Empty dependencies file for fig11_spa_accuracy.
# This may be replaced when dependencies are built.
