file(REMOVE_RECURSE
  "libcxlsim_cpu.a"
)
