
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/cache.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/cache.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/counters.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/counters.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/counters.cc.o.d"
  "/root/repo/src/cpu/hierarchy.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/hierarchy.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/hierarchy.cc.o.d"
  "/root/repo/src/cpu/multicore.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/multicore.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/multicore.cc.o.d"
  "/root/repo/src/cpu/prefetcher.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/prefetcher.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/prefetcher.cc.o.d"
  "/root/repo/src/cpu/profile.cc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/profile.cc.o" "gcc" "src/cpu/CMakeFiles/cxlsim_cpu.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxlsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlsim_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cxlsim_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
