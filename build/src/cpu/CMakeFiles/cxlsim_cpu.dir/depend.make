# Empty dependencies file for cxlsim_cpu.
# This may be replaced when dependencies are built.
