file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_cpu.dir/cache.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/cache.cc.o.d"
  "CMakeFiles/cxlsim_cpu.dir/core.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/core.cc.o.d"
  "CMakeFiles/cxlsim_cpu.dir/counters.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/counters.cc.o.d"
  "CMakeFiles/cxlsim_cpu.dir/hierarchy.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/hierarchy.cc.o.d"
  "CMakeFiles/cxlsim_cpu.dir/multicore.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/multicore.cc.o.d"
  "CMakeFiles/cxlsim_cpu.dir/prefetcher.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/prefetcher.cc.o.d"
  "CMakeFiles/cxlsim_cpu.dir/profile.cc.o"
  "CMakeFiles/cxlsim_cpu.dir/profile.cc.o.d"
  "libcxlsim_cpu.a"
  "libcxlsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
