file(REMOVE_RECURSE
  "libcxlsim_workloads.a"
)
