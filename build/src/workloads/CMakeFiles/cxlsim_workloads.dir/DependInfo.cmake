
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/cxlsim_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/cxlsim_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/synthetic_kernel.cc" "src/workloads/CMakeFiles/cxlsim_workloads.dir/synthetic_kernel.cc.o" "gcc" "src/workloads/CMakeFiles/cxlsim_workloads.dir/synthetic_kernel.cc.o.d"
  "/root/repo/src/workloads/trace_kernel.cc" "src/workloads/CMakeFiles/cxlsim_workloads.dir/trace_kernel.cc.o" "gcc" "src/workloads/CMakeFiles/cxlsim_workloads.dir/trace_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/cxlsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlsim_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cxlsim_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
