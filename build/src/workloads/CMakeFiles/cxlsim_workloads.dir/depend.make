# Empty dependencies file for cxlsim_workloads.
# This may be replaced when dependencies are built.
