file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_workloads.dir/suite.cc.o"
  "CMakeFiles/cxlsim_workloads.dir/suite.cc.o.d"
  "CMakeFiles/cxlsim_workloads.dir/synthetic_kernel.cc.o"
  "CMakeFiles/cxlsim_workloads.dir/synthetic_kernel.cc.o.d"
  "CMakeFiles/cxlsim_workloads.dir/trace_kernel.cc.o"
  "CMakeFiles/cxlsim_workloads.dir/trace_kernel.cc.o.d"
  "libcxlsim_workloads.a"
  "libcxlsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
