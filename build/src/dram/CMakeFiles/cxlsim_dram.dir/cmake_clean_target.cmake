file(REMOVE_RECURSE
  "libcxlsim_dram.a"
)
