file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_dram.dir/bank.cc.o"
  "CMakeFiles/cxlsim_dram.dir/bank.cc.o.d"
  "CMakeFiles/cxlsim_dram.dir/channel.cc.o"
  "CMakeFiles/cxlsim_dram.dir/channel.cc.o.d"
  "CMakeFiles/cxlsim_dram.dir/timing.cc.o"
  "CMakeFiles/cxlsim_dram.dir/timing.cc.o.d"
  "libcxlsim_dram.a"
  "libcxlsim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
