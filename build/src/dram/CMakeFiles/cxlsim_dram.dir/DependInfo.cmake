
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank.cc" "src/dram/CMakeFiles/cxlsim_dram.dir/bank.cc.o" "gcc" "src/dram/CMakeFiles/cxlsim_dram.dir/bank.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/dram/CMakeFiles/cxlsim_dram.dir/channel.cc.o" "gcc" "src/dram/CMakeFiles/cxlsim_dram.dir/channel.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/cxlsim_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/cxlsim_dram.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxlsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
