# Empty dependencies file for cxlsim_dram.
# This may be replaced when dependencies are built.
