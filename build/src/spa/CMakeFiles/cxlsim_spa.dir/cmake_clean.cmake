file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_spa.dir/advisor.cc.o"
  "CMakeFiles/cxlsim_spa.dir/advisor.cc.o.d"
  "CMakeFiles/cxlsim_spa.dir/breakdown.cc.o"
  "CMakeFiles/cxlsim_spa.dir/breakdown.cc.o.d"
  "CMakeFiles/cxlsim_spa.dir/period.cc.o"
  "CMakeFiles/cxlsim_spa.dir/period.cc.o.d"
  "CMakeFiles/cxlsim_spa.dir/predictor.cc.o"
  "CMakeFiles/cxlsim_spa.dir/predictor.cc.o.d"
  "CMakeFiles/cxlsim_spa.dir/prefetch_analysis.cc.o"
  "CMakeFiles/cxlsim_spa.dir/prefetch_analysis.cc.o.d"
  "libcxlsim_spa.a"
  "libcxlsim_spa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_spa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
