# Empty compiler generated dependencies file for cxlsim_spa.
# This may be replaced when dependencies are built.
