file(REMOVE_RECURSE
  "libcxlsim_spa.a"
)
