file(REMOVE_RECURSE
  "libmelody_core.a"
)
