file(REMOVE_RECURSE
  "CMakeFiles/melody_core.dir/mio.cc.o"
  "CMakeFiles/melody_core.dir/mio.cc.o.d"
  "CMakeFiles/melody_core.dir/mlc.cc.o"
  "CMakeFiles/melody_core.dir/mlc.cc.o.d"
  "CMakeFiles/melody_core.dir/platform.cc.o"
  "CMakeFiles/melody_core.dir/platform.cc.o.d"
  "CMakeFiles/melody_core.dir/slowdown.cc.o"
  "CMakeFiles/melody_core.dir/slowdown.cc.o.d"
  "libmelody_core.a"
  "libmelody_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melody_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
