# Empty compiler generated dependencies file for melody_core.
# This may be replaced when dependencies are built.
