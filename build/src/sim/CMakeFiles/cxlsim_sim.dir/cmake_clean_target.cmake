file(REMOVE_RECURSE
  "libcxlsim_sim.a"
)
