file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/cxlsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cxlsim_sim.dir/logging.cc.o"
  "CMakeFiles/cxlsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/cxlsim_sim.dir/rng.cc.o"
  "CMakeFiles/cxlsim_sim.dir/rng.cc.o.d"
  "libcxlsim_sim.a"
  "libcxlsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
