# Empty dependencies file for cxlsim_sim.
# This may be replaced when dependencies are built.
