file(REMOVE_RECURSE
  "libcxlsim_cxl.a"
)
