
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cxl/controller.cc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/controller.cc.o" "gcc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/controller.cc.o.d"
  "/root/repo/src/cxl/device.cc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/device.cc.o" "gcc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/device.cc.o.d"
  "/root/repo/src/cxl/device_profile.cc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/device_profile.cc.o" "gcc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/device_profile.cc.o.d"
  "/root/repo/src/cxl/pool.cc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/pool.cc.o" "gcc" "src/cxl/CMakeFiles/cxlsim_cxl.dir/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxlsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cxlsim_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
