# Empty compiler generated dependencies file for cxlsim_cxl.
# This may be replaced when dependencies are built.
