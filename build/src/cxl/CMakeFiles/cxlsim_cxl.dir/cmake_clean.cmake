file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_cxl.dir/controller.cc.o"
  "CMakeFiles/cxlsim_cxl.dir/controller.cc.o.d"
  "CMakeFiles/cxlsim_cxl.dir/device.cc.o"
  "CMakeFiles/cxlsim_cxl.dir/device.cc.o.d"
  "CMakeFiles/cxlsim_cxl.dir/device_profile.cc.o"
  "CMakeFiles/cxlsim_cxl.dir/device_profile.cc.o.d"
  "CMakeFiles/cxlsim_cxl.dir/pool.cc.o"
  "CMakeFiles/cxlsim_cxl.dir/pool.cc.o.d"
  "libcxlsim_cxl.a"
  "libcxlsim_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
