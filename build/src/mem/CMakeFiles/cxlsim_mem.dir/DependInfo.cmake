
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cxl_backend.cc" "src/mem/CMakeFiles/cxlsim_mem.dir/cxl_backend.cc.o" "gcc" "src/mem/CMakeFiles/cxlsim_mem.dir/cxl_backend.cc.o.d"
  "/root/repo/src/mem/interleaved_backend.cc" "src/mem/CMakeFiles/cxlsim_mem.dir/interleaved_backend.cc.o" "gcc" "src/mem/CMakeFiles/cxlsim_mem.dir/interleaved_backend.cc.o.d"
  "/root/repo/src/mem/local_backend.cc" "src/mem/CMakeFiles/cxlsim_mem.dir/local_backend.cc.o" "gcc" "src/mem/CMakeFiles/cxlsim_mem.dir/local_backend.cc.o.d"
  "/root/repo/src/mem/numa_backend.cc" "src/mem/CMakeFiles/cxlsim_mem.dir/numa_backend.cc.o" "gcc" "src/mem/CMakeFiles/cxlsim_mem.dir/numa_backend.cc.o.d"
  "/root/repo/src/mem/region_router.cc" "src/mem/CMakeFiles/cxlsim_mem.dir/region_router.cc.o" "gcc" "src/mem/CMakeFiles/cxlsim_mem.dir/region_router.cc.o.d"
  "/root/repo/src/mem/tiering_backend.cc" "src/mem/CMakeFiles/cxlsim_mem.dir/tiering_backend.cc.o" "gcc" "src/mem/CMakeFiles/cxlsim_mem.dir/tiering_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxlsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cxlsim_link.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlsim_cxl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
