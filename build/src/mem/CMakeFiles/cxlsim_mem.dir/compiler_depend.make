# Empty compiler generated dependencies file for cxlsim_mem.
# This may be replaced when dependencies are built.
