file(REMOVE_RECURSE
  "libcxlsim_mem.a"
)
