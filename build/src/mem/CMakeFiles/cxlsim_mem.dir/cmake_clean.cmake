file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_mem.dir/cxl_backend.cc.o"
  "CMakeFiles/cxlsim_mem.dir/cxl_backend.cc.o.d"
  "CMakeFiles/cxlsim_mem.dir/interleaved_backend.cc.o"
  "CMakeFiles/cxlsim_mem.dir/interleaved_backend.cc.o.d"
  "CMakeFiles/cxlsim_mem.dir/local_backend.cc.o"
  "CMakeFiles/cxlsim_mem.dir/local_backend.cc.o.d"
  "CMakeFiles/cxlsim_mem.dir/numa_backend.cc.o"
  "CMakeFiles/cxlsim_mem.dir/numa_backend.cc.o.d"
  "CMakeFiles/cxlsim_mem.dir/region_router.cc.o"
  "CMakeFiles/cxlsim_mem.dir/region_router.cc.o.d"
  "CMakeFiles/cxlsim_mem.dir/tiering_backend.cc.o"
  "CMakeFiles/cxlsim_mem.dir/tiering_backend.cc.o.d"
  "libcxlsim_mem.a"
  "libcxlsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
