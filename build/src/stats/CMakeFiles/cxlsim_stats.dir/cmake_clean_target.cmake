file(REMOVE_RECURSE
  "libcxlsim_stats.a"
)
