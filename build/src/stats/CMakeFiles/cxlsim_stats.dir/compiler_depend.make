# Empty compiler generated dependencies file for cxlsim_stats.
# This may be replaced when dependencies are built.
