file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_stats.dir/histogram.cc.o"
  "CMakeFiles/cxlsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/cxlsim_stats.dir/streaming.cc.o"
  "CMakeFiles/cxlsim_stats.dir/streaming.cc.o.d"
  "CMakeFiles/cxlsim_stats.dir/summary.cc.o"
  "CMakeFiles/cxlsim_stats.dir/summary.cc.o.d"
  "CMakeFiles/cxlsim_stats.dir/table.cc.o"
  "CMakeFiles/cxlsim_stats.dir/table.cc.o.d"
  "CMakeFiles/cxlsim_stats.dir/timeseries.cc.o"
  "CMakeFiles/cxlsim_stats.dir/timeseries.cc.o.d"
  "libcxlsim_stats.a"
  "libcxlsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
