# Empty compiler generated dependencies file for cxlsim_link.
# This may be replaced when dependencies are built.
