file(REMOVE_RECURSE
  "libcxlsim_link.a"
)
