file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_link.dir/link.cc.o"
  "CMakeFiles/cxlsim_link.dir/link.cc.o.d"
  "libcxlsim_link.a"
  "libcxlsim_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
