file(REMOVE_RECURSE
  "CMakeFiles/tiering_advisor.dir/tiering_advisor.cpp.o"
  "CMakeFiles/tiering_advisor.dir/tiering_advisor.cpp.o.d"
  "tiering_advisor"
  "tiering_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiering_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
