file(REMOVE_RECURSE
  "CMakeFiles/melody.dir/melody_cli.cc.o"
  "CMakeFiles/melody.dir/melody_cli.cc.o.d"
  "melody"
  "melody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
