/**
 * @file
 * Figure 15: CDFs of the per-component slowdown contributions
 * (Store, L1, L2, L3, DRAM) across the workload suite on CXL-A.
 */

#include <algorithm>

#include "bench/common.hh"
#include "sim/parallel.hh"
#include "spa/breakdown.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Figure 15",
                  "Slowdown-component CDFs across the suite (CXL-A)");
    melody::SlowdownStudy study(808);
    const auto &all = workloads::suite();

    std::vector<workloads::WorkloadProfile> sub;
    for (std::size_t i = 0; i < all.size(); i += 2)
        sub.push_back(bench::scaled(all[i], 30000));
    std::vector<double> store(sub.size()), l1(sub.size()),
        l2(sub.size()), l3(sub.size()), dram(sub.size());
    parallelFor(sub.size(), [&](std::size_t i) {
        cpu::RunResult test;
        study.slowdownWithRun(sub[i], "EMR2S", "CXL-A", &test);
        const auto b = spa::computeBreakdown(
            study.baseline(sub[i], "EMR2S"), test);
        store[i] = std::max(0.0, b.store);
        l1[i] = std::max(0.0, b.l1);
        l2[i] = std::max(0.0, b.l2);
        l3[i] = std::max(0.0, b.l3);
        dram[i] = std::max(0.0, b.dram);
    });

    auto line = [&](const char *tag, std::vector<double> v) {
        std::printf("%-6s  >1%%: %5.1f%%   >5%%: %5.1f%%   "
                    ">10%%: %5.1f%%   p90=%6.1f   max=%7.1f\n",
                    tag,
                    100 * (1 - stats::fractionBelow(v, 1.0)),
                    100 * (1 - stats::fractionBelow(v, 5.0)),
                    100 * (1 - stats::fractionBelow(v, 10.0)),
                    stats::quantile(v, 0.9), stats::quantile(v, 1.0));
    };
    line("Store", store);
    line("L1", l1);
    line("L2", l2);
    line("L3", l3);
    line("DRAM", dram);

    std::printf("\nPaper: at least 15%% of workloads see >=5%% cache "
                "slowdown (reduced prefetcher efficiency); at least "
                "40%% see >=5%% demand-read (DRAM) slowdown.\n");
    return 0;
}
