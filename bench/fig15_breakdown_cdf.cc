/**
 * @file
 * Figure 15: CDFs of the per-component slowdown contributions
 * (Store, L1, L2, L3, DRAM) across the workload suite on CXL-A.
 */

#include <algorithm>
#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/breakdown.hh"

using namespace cxlsim;

namespace figs {

void
buildFig15(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Figure 15",
        "Slowdown-component CDFs across the suite (CXL-A)"));
    auto study = std::make_shared<melody::SlowdownStudy>(808);
    const auto &all = workloads::suite();

    std::vector<workloads::WorkloadProfile> sub;
    for (std::size_t i = 0; i < all.size(); i += 2)
        sub.push_back(bench::scaled(all[i], 30000));
    // One hidden point per workload carrying the five component
    // contributions; the gather prints the suite-wide CDF lines.
    std::vector<sweep::Sweep::SlotRef> comps;
    for (const auto &w : sub) {
        const std::size_t id = S.point(
            std::string("comp|") + w.name + "|blocks=" +
                std::to_string(w.blocksPerCore) + "|seed=808",
            1, [study, w](sweep::Emit *slots) {
                cpu::RunResult test;
                study->slowdownWithRun(w, "EMR2S", "CXL-A", &test);
                const auto b = spa::computeBreakdown(
                    study->baseline(w, "EMR2S"), test);
                slots[0].hexDoubles({std::max(0.0, b.store),
                                     std::max(0.0, b.l1),
                                     std::max(0.0, b.l2),
                                     std::max(0.0, b.l3),
                                     std::max(0.0, b.dram)});
            });
        comps.push_back({id, 0});
    }

    S.gather(comps, [](const std::vector<std::string> &in,
                       sweep::Emit &out) {
        std::vector<double> store, l1, l2, l3, dram;
        for (const auto &slot : in) {
            const auto v = sweep::parseHexDoubles(slot);
            store.push_back(v.at(0));
            l1.push_back(v.at(1));
            l2.push_back(v.at(2));
            l3.push_back(v.at(3));
            dram.push_back(v.at(4));
        }
        auto line = [&](const char *tag, std::vector<double> v) {
            out.printf(
                "%-6s  >1%%: %5.1f%%   >5%%: %5.1f%%   "
                ">10%%: %5.1f%%   p90=%6.1f   max=%7.1f\n",
                tag, 100 * (1 - stats::fractionBelow(v, 1.0)),
                100 * (1 - stats::fractionBelow(v, 5.0)),
                100 * (1 - stats::fractionBelow(v, 10.0)),
                stats::quantile(v, 0.9), stats::quantile(v, 1.0));
        };
        line("Store", store);
        line("L1", l1);
        line("L2", l2);
        line("L3", l3);
        line("DRAM", dram);
    });

    S.text("\nPaper: at least 15% of workloads see >=5% cache "
           "slowdown (reduced prefetcher efficiency); at least "
           "40% see >=5% demand-read (DRAM) slowdown.\n");
}

}  // namespace figs
