/**
 * @file
 * Figure 11: Spa accuracy — CDFs of the absolute difference
 * between the actual measured slowdown and the differential-stall
 * estimators (Δs, Δs_Backend, Δs_Memory) across the suite on
 * NUMA, CXL-A and CXL-B.
 */

#include <cmath>

#include "bench/common.hh"
#include "sim/parallel.hh"
#include "spa/breakdown.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Figure 11", "Spa estimator accuracy CDFs");
    melody::SlowdownStudy study(777);
    const auto &all = workloads::suite();

    std::vector<workloads::WorkloadProfile> sub;
    for (std::size_t i = 0; i < all.size(); i += 2)
        sub.push_back(bench::scaled(all[i], 30000));
    for (const char *mem : {"NUMA", "CXL-A", "CXL-B"}) {
        std::vector<double> dTotal(sub.size()),
            dBackend(sub.size()), dMemory(sub.size());
        parallelFor(sub.size(), [&](std::size_t i) {
            cpu::RunResult test;
            study.slowdownWithRun(sub[i], "EMR2S", mem, &test);
            const auto &base = study.baseline(sub[i], "EMR2S");
            const auto b = spa::computeBreakdown(base, test);
            dTotal[i] = std::abs(b.estTotalStalls - b.actual);
            dBackend[i] = std::abs(b.estBackend - b.actual);
            dMemory[i] = std::abs(b.estMemory - b.actual);
        });
        auto line = [&](const char *tag,
                        const std::vector<double> &d) {
            std::printf("%-6s %-10s  <1%%:%5.1f%%  <2%%:%5.1f%%  "
                        "<5%%:%5.1f%%  <10%%:%5.1f%%  p95=%5.2f\n",
                        mem, tag,
                        100 * stats::fractionBelow(d, 1.0),
                        100 * stats::fractionBelow(d, 2.0),
                        100 * stats::fractionBelow(d, 5.0),
                        100 * stats::fractionBelow(d, 10.0),
                        stats::quantile(d, 0.95));
        };
        line("ds", dTotal);
        line("dsBackend", dBackend);
        line("dsMemory", dMemory);
    }
    std::printf("\nPaper: ds within 5%% for 100%% of workloads (98%% "
                "within 2%%); dsBackend within 5%% for 96%%; "
                "dsMemory within 5%% for >95%%.\n");
    return 0;
}
