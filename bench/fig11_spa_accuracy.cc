/**
 * @file
 * Figure 11: Spa accuracy — CDFs of the absolute difference
 * between the actual measured slowdown and the differential-stall
 * estimators (Δs, Δs_Backend, Δs_Memory) across the suite on
 * NUMA, CXL-A and CXL-B.
 */

#include <cmath>
#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/breakdown.hh"

using namespace cxlsim;

namespace figs {

void
buildFig11(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 11",
                             "Spa estimator accuracy CDFs"));
    auto study = std::make_shared<melody::SlowdownStudy>(777);
    const auto &all = workloads::suite();

    std::vector<workloads::WorkloadProfile> sub;
    for (std::size_t i = 0; i < all.size(); i += 2)
        sub.push_back(bench::scaled(all[i], 30000));
    for (const char *mem : {"NUMA", "CXL-A", "CXL-B"}) {
        // One hidden point per workload carrying the three
        // estimator deltas; the per-setup gather prints the CDFs.
        std::vector<sweep::Sweep::SlotRef> deltas;
        for (const auto &w : sub) {
            const std::size_t id = S.point(
                std::string("delta|") + mem + "|" + w.name +
                    "|blocks=" + std::to_string(w.blocksPerCore) +
                    "|seed=777",
                1, [study, w, mem](sweep::Emit *slots) {
                    cpu::RunResult test;
                    study->slowdownWithRun(w, "EMR2S", mem, &test);
                    const auto &base = study->baseline(w, "EMR2S");
                    const auto b = spa::computeBreakdown(base, test);
                    slots[0].hexDoubles(
                        {std::abs(b.estTotalStalls - b.actual),
                         std::abs(b.estBackend - b.actual),
                         std::abs(b.estMemory - b.actual)});
                });
            deltas.push_back({id, 0});
        }
        S.gather(deltas, [mem](const std::vector<std::string> &in,
                               sweep::Emit &out) {
            std::vector<double> dTotal, dBackend, dMemory;
            for (const auto &slot : in) {
                const auto v = sweep::parseHexDoubles(slot);
                dTotal.push_back(v.at(0));
                dBackend.push_back(v.at(1));
                dMemory.push_back(v.at(2));
            }
            auto line = [&](const char *tag,
                            const std::vector<double> &d) {
                out.printf(
                    "%-6s %-10s  <1%%:%5.1f%%  <2%%:%5.1f%%  "
                    "<5%%:%5.1f%%  <10%%:%5.1f%%  p95=%5.2f\n",
                    mem, tag, 100 * stats::fractionBelow(d, 1.0),
                    100 * stats::fractionBelow(d, 2.0),
                    100 * stats::fractionBelow(d, 5.0),
                    100 * stats::fractionBelow(d, 10.0),
                    stats::quantile(d, 0.95));
            };
            line("ds", dTotal);
            line("dsBackend", dBackend);
            line("dsMemory", dMemory);
        });
    }
    S.text("\nPaper: ds within 5% for 100% of workloads (98% "
           "within 2%); dsBackend within 5% for 96%; "
           "dsMemory within 5% for >95%.\n");
}

}  // namespace figs
