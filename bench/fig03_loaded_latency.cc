/**
 * @file
 * Figure 3: CXL (tail) latencies and bandwidth.
 *  (a) loaded-latency curves (avg latency vs achieved bandwidth)
 *      across the MLC delay ladder;
 *  (b) pointer-chase latency CDFs with 1-32 co-located threads,
 *      prefetchers off (device-level latencies);
 *  (c) (p99.9 - p50) tail gap vs bandwidth utilization under
 *      background read pressure.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "core/mio.hh"
#include "core/mlc.hh"

using namespace cxlsim;

namespace {

const char *kSetups[] = {"Local", "NUMA",  "CXL-A",
                         "CXL-B", "CXL-C", "CXL-D"};

const char *
serverFor(const std::string &mem)
{
    return mem == "CXL-D" ? "EMR2S'" : "EMR2S";
}

}  // namespace

namespace figs {

void
buildFig03(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 3",
                             "CXL (tail) latencies and bandwidth"));

    S.text(bench::sectionText("(a) loaded latency vs bandwidth "
                              "(MLC delay ladder)"));
    S.textf("%-7s %10s %10s %10s %10s\n", "Setup", "delay(cyc)",
            "BW(GB/s)", "avg(ns)", "p99.9(ns)");
    for (const char *mem : kSetups) {
        S.point(std::string("a|") + mem + "|seed=11",
                [mem](sweep::Emit &out) {
                    melody::Platform plat(serverFor(mem), mem);
                    melody::MlcConfig cfg;
                    cfg.readFrac = 1.0;
                    cfg.windowUs = 200;
                    cfg.warmupUs = 50;
                    const auto pts = melody::mlcSweep(
                        [&] { return plat.makeBackend(11); }, cfg,
                        {20000, 5000, 1200, 500, 200, 80, 0});
                    for (const auto &p : pts)
                        out.printf(
                            "%-7s %10.0f %10.2f %10.0f %10.0f\n",
                            mem, p.delayCycles, p.gbps, p.avgNs,
                            p.p999Ns);
                });
    }

    S.text(bench::sectionText(
        "(b) pointer-chase latency CDFs, 1-32 threads "
        "(prefetchers off)"));
    S.textf("%-7s %4s %8s %8s %8s %9s %9s\n", "Setup", "thr", "p50",
            "p99", "p99.9", "p99.99", "max(ns)");
    for (const char *mem : kSetups) {
        for (unsigned thr : {1u, 4u, 16u, 32u}) {
            S.point(std::string("b|") + mem + "|thr=" +
                        std::to_string(thr) + "|seed=13",
                    [mem, thr](sweep::Emit &out) {
                        melody::Platform plat(serverFor(mem), mem);
                        auto be = plat.makeBackend(13);
                        const auto r = melody::mioChaseDirect(
                            be.get(), thr, 60000 / thr + 4000);
                        out.printf(
                            "%-7s %4u %8.0f %8.0f %8.0f %9.0f "
                            "%9.0f\n",
                            mem, thr, r.latencyNs.percentile(0.5),
                            r.latencyNs.percentile(0.99),
                            r.latencyNs.percentile(0.999),
                            r.latencyNs.percentile(0.9999),
                            r.latencyNs.max());
                    });
        }
    }

    S.text(bench::sectionText(
        "(c) p99.9-p50 tail gap vs bandwidth utilization "
        "(background readers)"));
    S.textf("%-7s %8s %10s %12s\n", "Setup", "util(%)", "BW(GB/s)",
            "p99.9-p50(ns)");
    for (const char *mem : kSetups) {
        for (double pace : {3000.0, 500.0, 120.0, 30.0, 0.0}) {
            S.point(std::string("c|") + mem + "|pace=" +
                        stats::Table::num(pace, 0) + "|seed=17",
                    [mem, pace](sweep::Emit &out) {
                        melody::Platform plat(serverFor(mem), mem);
                        auto be = plat.makeBackend(17);
                        melody::MioNoise noise;
                        noise.threads = 24;
                        noise.slotsPerThread = 8;
                        noise.readFrac = 1.0;
                        noise.paceNs = pace;
                        const auto r = melody::mioChaseDirect(
                            be.get(), 1, 25000, noise,
                            melody::paperPeakGBps(serverFor(mem),
                                                  mem));
                        out.printf(
                            "%-7s %8.0f %10.2f %12.0f\n", mem,
                            100.0 * r.utilization, r.gbps,
                            r.latencyNs.percentile(0.999) -
                                r.latencyNs.percentile(0.5));
                    });
        }
    }
    S.text("\nPaper shape: local/NUMA stay stable to ~90% "
           "utilization; CXL-A/D tails grow from ~30%/70%; "
           "CXL-B/C show us-level tails even at low load.\n");
}

}  // namespace figs
