/**
 * @file
 * Tiering-policy bench: Spa's stall-cost metric vs classic
 * access-count hotness (§5.7: "Spa offers a more effective
 * alternative to conventional metrics like LLC misses... smarter
 * tiering policy designs").
 *
 * The workload mixes a heavily-streamed region (huge access
 * counts, but prefetch hides the latency) with pointer-chased
 * pages (fewer accesses, every one a full stall). With a fast
 * tier too small for both, access-count promotes the wrong pages;
 * stall-cost promotes the chased pages and recovers more
 * performance.
 */

#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "cpu/multicore.hh"
#include "mem/tiering_backend.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

cpu::RunResult
runTiered(const workloads::WorkloadProfile &w,
          mem::TieringPolicy policy, std::uint64_t fast_mb,
          mem::TieringStats *stats_out)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform sp("EMR2S", "CXL-B");
    mem::TieringBackend::Config cfg;
    cfg.policy = policy;
    cfg.fastCapacityBytes = fast_mb << 20;

    mem::TieringBackend be("tiered", lp.makeBackend(71),
                           sp.makeBackend(71), cfg);
    cpu::MultiCore mc(lp.cpu(), w.exec, &be,
                      workloads::makeKernels(w));
    auto r = mc.run();
    if (stats_out)
        *stats_out = be.tieringStats();
    return r;
}

const char *
policyName(mem::TieringPolicy p)
{
    switch (p) {
      case mem::TieringPolicy::kStatic:
        return "static(first-touch)";
      case mem::TieringPolicy::kAccessCount:
        return "access-count";
      default:
        return "stall-cost(Spa)";
    }
}

using SharedRun = std::shared_ptr<bench::Shared<cpu::RunResult>>;

SharedRun
lazyLocalRun(const workloads::WorkloadProfile &w)
{
    return std::make_shared<bench::Shared<cpu::RunResult>>([w] {
        melody::Platform lp("EMR2S", "Local");
        return melody::runWorkload(w, lp, 71);
    });
}

}  // namespace

namespace figs {

void
buildTieringPolicies(sweep::Sweep &S)
{
    S.text(bench::headerText("Tiering",
                             "Spa stall-cost vs access-count policy"));

    // Stream+chase mix: streams dominate access counts; chased
    // pages dominate suffered latency.
    workloads::WorkloadProfile w =
        workloads::byName("ubench-mix-4096m-i38");
    w.blocksPerCore = 150000;
    w.seqFrac = 0.45;
    w.strideFrac = 0.0;
    w.hotFrac = 0.30;
    w.dependentFrac = 0.85;
    w.loadsPerBlock = 0.6;
    w.workingSetBytes = 1536ULL << 20;
    w.zipfSkew = 0.9;  // chased pages have reuse worth capturing

    // The all-local baseline is needed by the intro line and every
    // policy row; compute it once, whichever point runs first.
    const SharedRun allLocal = lazyLocalRun(w);
    S.point("intro|ubench-mix|seed=71",
            [w, allLocal](sweep::Emit &out) {
                melody::Platform sp("EMR2S", "CXL-B");
                const auto allCxl = melody::runWorkload(w, sp, 71);
                out.printf(
                    "all-local baseline;  all-CXL slowdown "
                    "%.1f%%\n\n",
                    melody::slowdownPct(allLocal->get(), allCxl));
            });

    S.textf("%-20s %8s %10s %12s %12s %10s\n", "policy", "fastMB",
            "S(%)", "promotions", "fastAccess%", "epochs");
    for (std::uint64_t fastMb : {64ULL, 128ULL, 256ULL}) {
        for (auto pol : {mem::TieringPolicy::kStatic,
                         mem::TieringPolicy::kAccessCount,
                         mem::TieringPolicy::kStallCost}) {
            S.point(std::string("s1|") + policyName(pol) +
                        "|fastMb=" + std::to_string(fastMb) +
                        "|seed=71",
                    [w, allLocal, pol, fastMb](sweep::Emit &out) {
                        mem::TieringStats ts;
                        const auto r = runTiered(w, pol, fastMb,
                                                 &ts);
                        out.printf(
                            "%-20s %8llu %9.1f%% %12llu %11.1f%% "
                            "%10llu\n",
                            policyName(pol),
                            static_cast<unsigned long long>(fastMb),
                            melody::slowdownPct(allLocal->get(), r),
                            static_cast<unsigned long long>(
                                ts.promotions),
                            100 * ts.fastFraction(),
                            static_cast<unsigned long long>(
                                ts.epochs));
                    });
        }
    }
    // Scenario 2: write-heavy streaming alongside the chase. The
    // store stream's RFO/writeback traffic inflates access counts
    // on pages that never stall the core; the Spa metric ignores
    // it and keeps the fast tier for the latency-critical pages.
    S.text(bench::sectionText(
        "write-stream + chase (counts mislead)"));
    w.storesPerBlock = 0.5;
    w.storeHotFrac = 0.0;
    w.seqFrac = 0.05;
    w.loadsPerBlock = 0.35;
    const SharedRun wl2 = lazyLocalRun(w);
    S.point("intro2|ubench-mix-writes|seed=71",
            [w, wl2](sweep::Emit &out) {
                melody::Platform sp("EMR2S", "CXL-B");
                const auto wc2 = melody::runWorkload(w, sp, 71);
                out.printf("all-CXL slowdown %.1f%%\n",
                           melody::slowdownPct(wl2->get(), wc2));
            });
    S.textf("%-20s %8s %10s %12s\n", "policy", "fastMB", "S(%)",
            "fastAccess%");
    for (auto pol : {mem::TieringPolicy::kStatic,
                     mem::TieringPolicy::kAccessCount,
                     mem::TieringPolicy::kStallCost}) {
        S.point(std::string("s2|") + policyName(pol) +
                    "|fastMb=128|seed=71",
                [w, wl2, pol](sweep::Emit &out) {
                    mem::TieringStats ts;
                    const auto r = runTiered(w, pol, 128, &ts);
                    out.printf("%-20s %8d %9.1f%% %11.1f%%\n",
                               policyName(pol), 128,
                               melody::slowdownPct(wl2->get(), r),
                               100 * ts.fastFraction());
                });
    }

    S.text("\nBoth dynamic policies recover most of the "
           "static-placement gap; in this model their rankings "
           "mostly agree because CXL-B charges prefetch and "
           "store traffic real latency too (Finding #4 / #1c). "
           "The substrate exposes the metric as a policy knob "
           "for exploring the smarter tiering designs Spa "
           "motivates (5.7).\n");
}

}  // namespace figs
