/**
 * @file
 * Registry of all figure/table benches, each expressed as a build
 * function that declares its output onto a sweep::Sweep. The same
 * build functions back the standalone bench binaries (via
 * figureMain + bench/fig_main.cc) and the `melody sweep` suite
 * runner, so both share cache entries and emit identical bytes.
 */

#ifndef MELODY_BENCH_FIGURES_HH
#define MELODY_BENCH_FIGURES_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace figs {

/** One registered figure/table bench. */
struct Figure
{
    /** Short CLI alias (e.g. "fig03"). */
    const char *name;
    /** Standalone binary name (e.g. "fig03_loaded_latency"). */
    const char *binary;
    /** One-line description for `melody sweep --list`. */
    const char *title;
    /** Declares the figure's items onto @p sweep. */
    void (*build)(cxlsim::sweep::Sweep &sweep);
};

/** All figures in suite (declaration/paper) order. */
const std::vector<Figure> &all();

/** Find by alias or binary name; nullptr if unknown. */
const Figure *find(const std::string &nameOrBinary);

/**
 * main() body of a standalone figure binary: builds the figure's
 * sweep with environment options (MELODY_SWEEP_JOBS etc.), scoped
 * to @p binary, and streams it to stdout.
 */
int figureMain(const char *binary);

// Build functions, defined in the per-figure bench sources.
void buildFig01(cxlsim::sweep::Sweep &);
void buildTable1(cxlsim::sweep::Sweep &);
void buildFig03(cxlsim::sweep::Sweep &);
void buildFig04(cxlsim::sweep::Sweep &);
void buildFig05(cxlsim::sweep::Sweep &);
void buildFig06(cxlsim::sweep::Sweep &);
void buildFig07(cxlsim::sweep::Sweep &);
void buildFig08(cxlsim::sweep::Sweep &);
void buildFig09(cxlsim::sweep::Sweep &);
void buildFig11(cxlsim::sweep::Sweep &);
void buildFig12(cxlsim::sweep::Sweep &);
void buildFig14(cxlsim::sweep::Sweep &);
void buildFig15(cxlsim::sweep::Sweep &);
void buildFig16(cxlsim::sweep::Sweep &);
void buildUsecaseTuning(cxlsim::sweep::Sweep &);
void buildAblationPrefetch(cxlsim::sweep::Sweep &);
void buildAblationTails(cxlsim::sweep::Sweep &);
void buildAblationMlp(cxlsim::sweep::Sweep &);
void buildAblationEmulation(cxlsim::sweep::Sweep &);
void buildPoolingInterference(cxlsim::sweep::Sweep &);
void buildPredictionAccuracy(cxlsim::sweep::Sweep &);
void buildTieringPolicies(cxlsim::sweep::Sweep &);

/**
 * Test-only figure exercising the supervised sweep runner: its
 * "victim" point misbehaves per MELODY_CRASHTEST_MODE
 * (segv | abort | hang | exception | exit | ok). Registered so
 * find() resolves it (CI crash-recovery job, test_supervisor) but
 * hidden from all() so it never runs as part of `sweep all`.
 */
void buildCrashTest(cxlsim::sweep::Sweep &);

}  // namespace figs

#endif  // MELODY_BENCH_FIGURES_HH
