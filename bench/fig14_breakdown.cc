/**
 * @file
 * Figure 14: Spa slowdown breakdown per workload for NUMA, CXL-A
 * and CXL-B (EMR), attributing slowdown to DRAM / L3 / L2 / L1 /
 * Store / Core / Other.
 */

#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/breakdown.hh"

using namespace cxlsim;

namespace figs {

void
buildFig14(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 14",
                             "Spa slowdown breakdown per workload"));
    auto study = std::make_shared<melody::SlowdownStudy>(31337);

    const char *cast[] = {
        // SPEC CPU 2017
        "603.bwaves_s", "619.lbm_s", "649.fotonik3d_s", "605.mcf_s",
        "602.gcc_s", "520.omnetpp_r", "631.deepsjeng_s",
        // GAPBS
        "bfs-twitter", "pr-web", "cc-web", "tc-kron",
        // PARSEC / PBBS
        "parsec-canneal", "parsec-streamcluster", "pbbs-sort",
        // ML
        "gpt2-small", "llama-7b-decode", "dlrm-inference",
        // Cloud
        "redis/ycsb-a", "redis/ycsb-c", "voltdb/ycsb-a",
    };

    for (const char *mem : {"NUMA", "CXL-A", "CXL-B"}) {
        S.text(bench::sectionText(std::string("Breakdown on ") +
                                  mem));
        S.textf("%-20s %7s | %6s %5s %5s %5s %6s %5s %6s\n",
                "Workload", "S(%)", "DRAM", "L3", "L2", "L1",
                "Store", "Core", "Other");
        for (const char *n : cast) {
            S.point(std::string(mem) + "|" + n + "|seed=31337",
                    [study, mem, n](sweep::Emit &out) {
                        const auto w = bench::scaled(
                            workloads::byName(n), 40000);
                        cpu::RunResult test;
                        study->slowdownWithRun(w, "EMR2S", mem,
                                               &test);
                        const auto b = spa::computeBreakdown(
                            study->baseline(w, "EMR2S"), test);
                        out.printf(
                            "%-20s %7.1f | %6.1f %5.1f %5.1f "
                            "%5.1f %6.1f %5.1f %6.1f\n",
                            n, b.actual, b.dram, b.l3, b.l2, b.l1,
                            b.store, b.core, b.other);
                    });
        }
    }
    S.text("\nPaper shape: lbm dominated by store-buffer "
           "stalls; GAPBS and cloud workloads by DRAM demand "
           "reads; streaming workloads (bwaves, ML) show cache "
           "components from prefetch-timeliness loss.\n");
}

}  // namespace figs
