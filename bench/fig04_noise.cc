/**
 * @file
 * Figure 4: pointer-chase latency CDFs under 0-7 background
 * read/write noise threads (AVX-style traffic, device not
 * saturated). Local/NUMA stay stable; three of four CXL devices
 * show unstable, high tails.
 */

#include "bench/common.hh"
#include "core/mio.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Figure 4",
                  "Latency CDFs under read/write noise threads");

    std::printf("%-7s %8s %8s %8s %8s %9s\n", "Setup", "#noise",
                "p50(ns)", "p99", "p99.9", "p99.99");
    for (const char *mem :
         {"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        melody::Platform plat(
            std::string(mem) == "CXL-D" ? "EMR2S'" : "EMR2S", mem);
        for (unsigned threads : {0u, 1u, 3u, 5u, 7u}) {
            auto be = plat.makeBackend(23);
            melody::MioNoise noise;
            noise.threads = threads;
            noise.readFrac = 0.5;
            noise.paceNs = 400.0;  // below device saturation
            noise.slotsPerThread = 2;
            const auto r =
                melody::mioChaseDirect(be.get(), 1, 30000, noise);
            std::printf("%-7s %8u %8.0f %8.0f %8.0f %9.0f\n", mem,
                        threads, r.latencyNs.percentile(0.5),
                        r.latencyNs.percentile(0.99),
                        r.latencyNs.percentile(0.999),
                        r.latencyNs.percentile(0.9999));
        }
    }
    std::printf("\nPaper shape: local and NUMA CDFs barely move with "
                "noise threads; CXL-A/B/C tails worsen as noise "
                "rises (Finding #1c).\n");
    return 0;
}
