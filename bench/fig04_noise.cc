/**
 * @file
 * Figure 4: pointer-chase latency CDFs under 0-7 background
 * read/write noise threads (AVX-style traffic, device not
 * saturated). Local/NUMA stay stable; three of four CXL devices
 * show unstable, high tails.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "core/mio.hh"

using namespace cxlsim;

namespace figs {

void
buildFig04(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Figure 4", "Latency CDFs under read/write noise threads"));

    S.textf("%-7s %8s %8s %8s %8s %9s\n", "Setup", "#noise",
            "p50(ns)", "p99", "p99.9", "p99.99");
    for (const char *mem :
         {"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        for (unsigned threads : {0u, 1u, 3u, 5u, 7u}) {
            S.point(std::string(mem) + "|noise=" +
                        std::to_string(threads) + "|seed=23",
                    [mem, threads](sweep::Emit &out) {
                        melody::Platform plat(
                            std::string(mem) == "CXL-D" ? "EMR2S'"
                                                        : "EMR2S",
                            mem);
                        auto be = plat.makeBackend(23);
                        melody::MioNoise noise;
                        noise.threads = threads;
                        noise.readFrac = 0.5;
                        noise.paceNs = 400.0;  // below saturation
                        noise.slotsPerThread = 2;
                        const auto r = melody::mioChaseDirect(
                            be.get(), 1, 30000, noise);
                        out.printf(
                            "%-7s %8u %8.0f %8.0f %8.0f %9.0f\n",
                            mem, threads,
                            r.latencyNs.percentile(0.5),
                            r.latencyNs.percentile(0.99),
                            r.latencyNs.percentile(0.999),
                            r.latencyNs.percentile(0.9999));
                    });
        }
    }
    S.text("\nPaper shape: local and NUMA CDFs barely move with "
           "noise threads; CXL-A/B/C tails worsen as noise "
           "rises (Finding #1c).\n");
}

}  // namespace figs
