/**
 * @file
 * Figure 8: CXL workload slowdowns across the full suite.
 *  (a) slowdown CDFs for 265 workloads on NUMA and CXL-A/B/D
 *      (+ CXL-C over its 60-workload capacity subset);
 *  (b) the tail: worst slowdowns per setup (bandwidth-bound);
 *  (c) CXL+NUMA vs 2-hop NUMA (SKX8S-410ns) on 121 workloads;
 *  (d) 520.omnetpp latency CDF and slowdown vs workload intensity
 *      under CXL+NUMA (tail-latency causality);
 *  (e) SPR vs EMR slowdown CDFs under CXL-A/B;
 *  (f) NUMA vs one and two interleaved CXL-D on SPEC (EMR2S').
 */

#include <algorithm>
#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"

using namespace cxlsim;

namespace {
constexpr std::uint64_t kMaxBlocks = 40000;
}

namespace figs {

void
buildFig08(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 8",
                             "Workload slowdowns at scale"));
    // Shared across points: the study memoizes local baselines
    // under a mutex, so concurrent points reuse (deterministic)
    // baseline runs instead of recomputing all of them.
    auto study = std::make_shared<melody::SlowdownStudy>(4242);
    const auto &all = workloads::suite();

    S.text(bench::sectionText(
        "(a) slowdown CDFs, 265 workloads (EMR)"));
    std::vector<workloads::WorkloadProfile> scaledAll;
    for (const auto &w : all)
        scaledAll.push_back(bench::scaled(w, kMaxBlocks));
    // Slot 0: the (a) CDF line; slot 1: the (b) tail line — one
    // batch feeds both sections.
    std::vector<std::size_t> tailIds;
    for (const char *mem : {"NUMA", "CXL-D", "CXL-A", "CXL-B"}) {
        const std::size_t id = S.point(
            std::string("a|") + mem + "|n=" +
                std::to_string(scaledAll.size()) + "|seed=4242",
            2, [study, scaledAll, mem](sweep::Emit *slots) {
                std::vector<double> s = study->slowdownBatch(
                    scaledAll, "EMR2S", mem);
                slots[0].text(bench::cdfSummaryLine(mem, s));
                std::sort(s.begin(), s.end());
                slots[1].printf(
                    "%-7s p90=%7.1f%%  p95=%7.1f%%  p99=%7.1f%%  "
                    "max=%7.1f%%\n",
                    mem, stats::quantile(s, 0.90),
                    stats::quantile(s, 0.95),
                    stats::quantile(s, 0.99),
                    stats::quantile(s, 1.0));
            });
        S.place(id, 0);
        tailIds.push_back(id);
    }
    {
        std::vector<workloads::WorkloadProfile> sub;
        for (const auto &w : workloads::cxlCSubset())
            sub.push_back(bench::scaled(w, kMaxBlocks));
        S.point(std::string("a|CXL-C|n=") +
                    std::to_string(sub.size()) + "|seed=4242",
                [study, sub](sweep::Emit &out) {
                    out.text(bench::cdfSummaryLine(
                        "CXL-C (60 wl)",
                        study->slowdownBatch(sub, "EMR2S",
                                             "CXL-C")));
                });
    }
    S.text("Paper: NUMA 98%<50%; <10%: D 60%, A 54%, "
           "B 32%; <5%: 43/35/22%.\n");

    S.text(bench::sectionText("(b) the slowdown tail "
                              "(p90 and above)"));
    for (const std::size_t id : tailIds)
        S.place(id, 1);
    S.text("Paper: 7% of workloads at 1.5-5.8x on CXL-A/B "
           "(bandwidth-bound); no such tail on NUMA/CXL-D.\n");

    S.text(bench::sectionText(
        "(c) CXL+NUMA vs 2-hop NUMA (121 workloads)"));
    {
        std::vector<workloads::WorkloadProfile> sub;
        for (std::size_t i = 0; i < all.size() && sub.size() < 121;
             i += 2)
            sub.push_back(bench::scaled(all[i], kMaxBlocks));
        struct Setup
        {
            const char *label;
            const char *server;
            const char *memory;
        };
        const Setup setups[] = {
            {"CXL-A", "EMR2S", "CXL-A"},
            {"SKX8S-410ns", "SKX8S", "NUMA-410ns"},
            {"CXL-A+NUMA", "EMR2S", "CXL-A+NUMA"},
        };
        for (const auto &c : setups) {
            S.point(std::string("c|") + c.label + "|n=" +
                        std::to_string(sub.size()) + "|seed=4242",
                    [study, sub, c](sweep::Emit &out) {
                        out.text(bench::cdfSummaryLine(
                            c.label,
                            study->slowdownBatch(sub, c.server,
                                                 c.memory)));
                    });
        }
        S.text("Paper: CXL+NUMA is WORSE than 2-hop NUMA "
               "despite better average latency/bandwidth "
               "(tail-latency interference).\n");
    }

    S.text(bench::sectionText(
        "(d) 520.omnetpp under CXL+NUMA vs intensity"));
    {
        for (double scale : {1.0, 0.5, 0.25}) {
            S.point("d|520.omnetpp_r|scale=" +
                        stats::Table::num(scale, 2) + "|seed=4242",
                    [study, scale](sweep::Emit &out) {
                        auto v = workloads::byName("520.omnetpp_r");
                        for (auto &ph : v.phases)
                            ph.intensity *= scale;
                        if (v.phases.empty())
                            v.phases.push_back(
                                {1.0, scale, 1.0, 1.0});
                        const double sCxl = study->slowdown(
                            v, "EMR2S", "CXL-A");
                        const double sCn = study->slowdown(
                            v, "EMR2S", "CXL-A+NUMA");
                        out.printf(
                            "intensity %4.2fx: CXL-A %6.1f%%   "
                            "CXL-A+NUMA %6.1f%%\n",
                            scale, sCxl, sCn);
                    });
        }
        S.text("Paper: full intensity ~290% under CXL+NUMA "
               "vs <5% under CXL; halving intensity drops it "
               "to ~65%, quartering to ~58% — tails, not "
               "bandwidth, cause the slowdown.\n");
    }

    S.text(bench::sectionText(
        "(e) SPR vs EMR under CXL-A / CXL-B"));
    {
        std::vector<workloads::WorkloadProfile> sub;
        for (std::size_t i = 0; i < all.size(); i += 2)
            sub.push_back(bench::scaled(all[i], kMaxBlocks));
        for (const char *srv : {"SPR2S", "EMR2S"})
            for (const char *mem : {"CXL-A", "CXL-B"}) {
                S.point(std::string("e|") + srv + "|" + mem +
                            "|n=" + std::to_string(sub.size()) +
                            "|seed=4242",
                        [study, sub, srv, mem](sweep::Emit &out) {
                            out.text(bench::cdfSummaryLine(
                                std::string(srv) + ":" + mem,
                                study->slowdownBatch(sub, srv,
                                                     mem)));
                        });
            }
    }
    S.text("Paper: EMR's larger LLC yields similar CDFs — "
           "cache size alone cannot absorb CXL latency.\n");

    S.text(bench::sectionText(
        "(f) NUMA vs CXL-D x1 vs x2 (SPEC on EMR2S')"));
    {
        std::vector<workloads::WorkloadProfile> spec;
        for (const auto &w : workloads::familyWorkloads("SPEC"))
            spec.push_back(bench::scaled(w, kMaxBlocks));
        for (const char *mem : {"NUMA", "CXL-D", "CXL-Dx2"}) {
            S.point(std::string("f|") + mem + "|n=" +
                        std::to_string(spec.size()) + "|seed=4242",
                    [study, spec, mem](sweep::Emit &out) {
                        out.text(bench::cdfSummaryLine(
                            mem, study->slowdownBatch(spec, "EMR2S'",
                                                      mem)));
                    });
        }
        S.text("Paper: interleaving two CXL-D (104GB/s) closes "
               "most of the gap to NUMA for bandwidth-bound "
               "workloads.\n");
    }
}

}  // namespace figs
