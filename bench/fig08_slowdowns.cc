/**
 * @file
 * Figure 8: CXL workload slowdowns across the full suite.
 *  (a) slowdown CDFs for 265 workloads on NUMA and CXL-A/B/D
 *      (+ CXL-C over its 60-workload capacity subset);
 *  (b) the tail: worst slowdowns per setup (bandwidth-bound);
 *  (c) CXL+NUMA vs 2-hop NUMA (SKX8S-410ns) on 121 workloads;
 *  (d) 520.omnetpp latency CDF and slowdown vs workload intensity
 *      under CXL+NUMA (tail-latency causality);
 *  (e) SPR vs EMR slowdown CDFs under CXL-A/B;
 *  (f) NUMA vs one and two interleaved CXL-D on SPEC (EMR2S').
 */

#include <algorithm>

#include "bench/common.hh"

using namespace cxlsim;

namespace {
constexpr std::uint64_t kMaxBlocks = 40000;
}

int
main()
{
    bench::header("Figure 8", "Workload slowdowns at scale");
    melody::SlowdownStudy study(4242);
    const auto &all = workloads::suite();

    bench::section("(a) slowdown CDFs, 265 workloads (EMR)");
    std::vector<workloads::WorkloadProfile> scaledAll;
    for (const auto &w : all)
        scaledAll.push_back(bench::scaled(w, kMaxBlocks));
    std::vector<std::pair<std::string, std::vector<double>>> tails;
    for (const char *mem : {"NUMA", "CXL-D", "CXL-A", "CXL-B"}) {
        std::vector<double> s =
            study.slowdownBatch(scaledAll, "EMR2S", mem);
        bench::printCdfSummary(mem, s);
        tails.emplace_back(mem, std::move(s));
    }
    {
        std::vector<workloads::WorkloadProfile> sub;
        for (const auto &w : workloads::cxlCSubset())
            sub.push_back(bench::scaled(w, kMaxBlocks));
        bench::printCdfSummary(
            "CXL-C (60 wl)",
            study.slowdownBatch(sub, "EMR2S", "CXL-C"));
    }
    std::printf("Paper: NUMA 98%%<50%%; <10%%: D 60%%, A 54%%, "
                "B 32%%; <5%%: 43/35/22%%.\n");

    bench::section("(b) the slowdown tail (p90 and above)");
    for (auto &[mem, s] : tails) {
        std::sort(s.begin(), s.end());
        std::printf("%-7s p90=%7.1f%%  p95=%7.1f%%  p99=%7.1f%%  "
                    "max=%7.1f%%\n",
                    mem.c_str(), stats::quantile(s, 0.90),
                    stats::quantile(s, 0.95),
                    stats::quantile(s, 0.99),
                    stats::quantile(s, 1.0));
    }
    std::printf("Paper: 7%% of workloads at 1.5-5.8x on CXL-A/B "
                "(bandwidth-bound); no such tail on NUMA/CXL-D.\n");

    bench::section("(c) CXL+NUMA vs 2-hop NUMA (121 workloads)");
    {
        std::vector<workloads::WorkloadProfile> sub;
        for (std::size_t i = 0; i < all.size() && sub.size() < 121;
             i += 2)
            sub.push_back(bench::scaled(all[i], kMaxBlocks));
        bench::printCdfSummary(
            "CXL-A", study.slowdownBatch(sub, "EMR2S", "CXL-A"));
        bench::printCdfSummary(
            "SKX8S-410ns",
            study.slowdownBatch(sub, "SKX8S", "NUMA-410ns"));
        bench::printCdfSummary(
            "CXL-A+NUMA",
            study.slowdownBatch(sub, "EMR2S", "CXL-A+NUMA"));
        std::printf("Paper: CXL+NUMA is WORSE than 2-hop NUMA "
                    "despite better average latency/bandwidth "
                    "(tail-latency interference).\n");
    }

    bench::section("(d) 520.omnetpp under CXL+NUMA vs intensity");
    {
        auto w = workloads::byName("520.omnetpp_r");
        for (double scale : {1.0, 0.5, 0.25}) {
            auto v = w;
            for (auto &ph : v.phases)
                ph.intensity *= scale;
            if (v.phases.empty())
                v.phases.push_back({1.0, scale, 1.0, 1.0});
            const double sCxl =
                study.slowdown(v, "EMR2S", "CXL-A");
            const double sCn =
                study.slowdown(v, "EMR2S", "CXL-A+NUMA");
            std::printf("intensity %4.2fx: CXL-A %6.1f%%   "
                        "CXL-A+NUMA %6.1f%%\n",
                        scale, sCxl, sCn);
        }
        std::printf("Paper: full intensity ~290%% under CXL+NUMA "
                    "vs <5%% under CXL; halving intensity drops it "
                    "to ~65%%, quartering to ~58%% — tails, not "
                    "bandwidth, cause the slowdown.\n");
    }

    bench::section("(e) SPR vs EMR under CXL-A / CXL-B");
    {
        std::vector<workloads::WorkloadProfile> sub;
        for (std::size_t i = 0; i < all.size(); i += 2)
            sub.push_back(bench::scaled(all[i], kMaxBlocks));
        for (const char *srv : {"SPR2S", "EMR2S"})
            for (const char *mem : {"CXL-A", "CXL-B"})
                bench::printCdfSummary(
                    std::string(srv) + ":" + mem,
                    study.slowdownBatch(sub, srv, mem));
    }
    std::printf("Paper: EMR's larger LLC yields similar CDFs — "
                "cache size alone cannot absorb CXL latency.\n");

    bench::section("(f) NUMA vs CXL-D x1 vs x2 (SPEC on EMR2S')");
    {
        std::vector<workloads::WorkloadProfile> spec;
        for (const auto &w : workloads::familyWorkloads("SPEC"))
            spec.push_back(bench::scaled(w, kMaxBlocks));
        for (const char *mem : {"NUMA", "CXL-D", "CXL-Dx2"})
            bench::printCdfSummary(
                mem, study.slowdownBatch(spec, "EMR2S'", mem));
        std::printf("Paper: interleaving two CXL-D (104GB/s) closes "
                    "most of the gap to NUMA for bandwidth-bound "
                    "workloads.\n");
    }
    return 0;
}
