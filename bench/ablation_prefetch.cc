/**
 * @file
 * Ablation: the prefetcher mechanisms behind Finding #4.
 *
 *  (1) Prefetchers on vs off per backend — the paper's control
 *      experiment (off: cache-slowdown components vanish and the
 *      slowdown migrates into DRAM demand stalls; performance
 *      drops on local too, e.g. -50% for 603.bwaves).
 *  (2) Latency-feedback streamer throttling on vs off (emulated by
 *      comparing devices across the latency spectrum) — the
 *      coverage-transfer dynamic range.
 *  (3) Streamer depth sensitivity: how the L2PF in-flight budget
 *      moves the cache/DRAM slowdown split.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "cpu/multicore.hh"
#include "spa/breakdown.hh"
#include "spa/prefetch_analysis.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

cpu::RunResult
run(const workloads::WorkloadProfile &w, const char *mem,
    bool pf_on, unsigned l2pf_budget, std::uint64_t seed)
{
    melody::Platform plat("EMR2S", mem);
    cpu::CpuProfile prof = plat.cpu();
    if (l2pf_budget)
        prof.l2pf.budget = l2pf_budget;
    auto be = plat.makeBackend(seed);
    cpu::MultiCore mc(prof, w.exec, be.get(),
                      workloads::makeKernels(w), pf_on);
    return mc.run();
}

}  // namespace

namespace figs {

void
buildAblationPrefetch(sweep::Sweep &S)
{
    S.text(bench::headerText("Ablation",
                             "Prefetcher mechanisms (Finding #4)"));

    S.text(bench::sectionText("(1) prefetchers ON vs OFF"));
    S.textf("%-16s %-7s %10s %10s %12s\n", "Workload", "Setup",
            "S_on(%)", "S_off(%)", "localPFgain");
    for (const char *n :
         {"603.bwaves_s", "gpt2-small", "605.mcf_s"}) {
        // One point per workload (slot per CXL device): the local
        // on/off baselines are shared by both device blocks.
        const std::size_t id = S.point(
            std::string("onoff|") + n + "|seed=7", 2,
            [n](sweep::Emit *slots) {
                const auto w =
                    bench::scaled(workloads::byName(n), 25000);
                const auto lOn = run(w, "Local", true, 0, 7);
                const auto lOff = run(w, "Local", false, 0, 7);
                const char *mems[] = {"CXL-A", "CXL-B"};
                for (std::size_t m = 0; m < 2; ++m) {
                    const char *mem = mems[m];
                    const auto tOn = run(w, mem, true, 0, 7);
                    const auto tOff = run(w, mem, false, 0, 7);
                    const double sOn =
                        melody::slowdownPct(lOn, tOn);
                    const double sOff =
                        melody::slowdownPct(lOff, tOff);
                    const double gain =
                        (static_cast<double>(lOff.wallTicks) /
                             lOn.wallTicks -
                         1.0) * 100.0;
                    slots[m].printf(
                        "%-16s %-7s %10.1f %10.1f %11.1f%%\n", n,
                        mem, sOn, sOff, gain);

                    const auto bOn =
                        spa::computeBreakdown(lOn, tOn);
                    const auto bOff =
                        spa::computeBreakdown(lOff, tOff);
                    slots[m].printf(
                        "    cache component: on %.1f%% -> off "
                        "%.1f%%   DRAM: on %.1f%% -> off %.1f%%\n",
                        bOn.l1 + bOn.l2 + bOn.l3,
                        bOff.l1 + bOff.l2 + bOff.l3, bOn.dram,
                        bOff.dram);
                }
            });
        S.place(id, 0);
        S.place(id, 1);
    }
    S.text("Paper: with prefetchers off, sL1=sL2=sL3=0 and the "
           "slowdown transfers to DRAM; local performance "
           "drops (e.g. -50% on 603.bwaves).\n");

    S.text(bench::sectionText(
        "(3) L2 streamer in-flight budget sweep "
        "(gpt2-small on CXL-B)"));
    S.textf("%8s %10s %12s %14s %14s\n", "budget", "S(%)",
            "cacheS(%)", "L2PF-L3-miss", "L1PF-L3-miss");
    for (unsigned budget : {6u, 12u, 20u, 28u, 48u}) {
        S.point("budget|gpt2-small|" + std::to_string(budget) +
                    "|seed=9",
                [budget](sweep::Emit &out) {
                    const auto w = bench::scaled(
                        workloads::byName("gpt2-small"), 25000);
                    const auto base =
                        run(w, "Local", true, budget, 9);
                    const auto test =
                        run(w, "CXL-B", true, budget, 9);
                    const auto b =
                        spa::computeBreakdown(base, test);
                    out.printf(
                        "%8u %10.1f %12.1f %14llu %14llu\n",
                        budget, b.actual, b.l1 + b.l2 + b.l3,
                        static_cast<unsigned long long>(
                            test.counters.l2pfL3Miss),
                        static_cast<unsigned long long>(
                            test.counters.l1pfL3Miss));
                });
    }
    S.text("Deeper streamers keep coverage under CXL latency "
           "(more L2PF fetches, fewer L1PF takeovers) at the "
           "cost of more speculative traffic.\n");
}

}  // namespace figs
