/**
 * @file
 * Ablation: how much of the CXL workload slowdown is caused by the
 * devices' tail-latency behaviour rather than their average
 * latency/bandwidth?
 *
 * We re-run workloads against CXL-B with its hiccup process
 * disabled ("a CXL-B with an ideal, deterministic controller") and
 * against the stock device; the gap is the price of instability —
 * the quantity the paper argues vendors should optimize
 * (Implication/Recommendation #1).
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "cpu/multicore.hh"
#include "cxl/device_profile.hh"
#include "mem/cxl_backend.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

cpu::RunResult
runOn(const workloads::WorkloadProfile &w, mem::MemoryBackend *be)
{
    melody::Platform plat("EMR2S", "Local");  // CPU profile source
    cpu::MultiCore mc(plat.cpu(), w.exec, be,
                      workloads::makeKernels(w));
    return mc.run();
}

}  // namespace

namespace figs {

void
buildAblationTails(sweep::Sweep &S)
{
    S.text(bench::headerText("Ablation",
                             "Tail latencies vs averages: the cost "
                             "of instability"));

    S.textf("%-18s %12s %14s %12s\n", "Workload", "S stock(%)",
            "S no-tails(%)", "tail cost(pp)");
    for (const char *n :
         {"redis/ycsb-c", "520.omnetpp_r", "605.mcf_s",
          "voltdb/ycsb-a", "bfs-web", "dlrm-inference"}) {
        S.point(std::string("wl|") + n + "|seed=3",
                [n](sweep::Emit &out) {
                    const auto w =
                        bench::scaled(workloads::byName(n), 40000);

                    melody::Platform lp("EMR2S", "Local");
                    auto localBe = lp.makeBackend(3);
                    const auto base = runOn(w, localBe.get());

                    mem::CxlBackendConfig stockCfg;
                    stockCfg.profile = cxl::cxlB();
                    stockCfg.seed = 3;
                    mem::CxlBackend stock(stockCfg);
                    const auto sStock = melody::slowdownPct(
                        base, runOn(w, &stock));

                    mem::CxlBackendConfig idealCfg = stockCfg;
                    idealCfg.profile.hiccups = cxl::HiccupParams{};
                    idealCfg.profile.thermal = cxl::ThermalParams{};
                    idealCfg.profile.refreshHiding = 0.995;
                    mem::CxlBackend ideal(idealCfg);
                    const auto sIdeal = melody::slowdownPct(
                        base, runOn(w, &ideal));

                    out.printf("%-18s %12.1f %14.1f %12.1f\n", n,
                               sStock, sIdeal, sStock - sIdeal);
                });
    }
    S.text("\nSame average latency and bandwidth; the delta is "
           "purely the controller's latency (in)stability — "
           "the dimension the paper urges as a first-class "
           "evaluation metric.\n");
}

}  // namespace figs
