/**
 * @file
 * Figure 12: prefetcher inefficiency under CXL.
 *  (a) L1PF-L3-miss increase vs L2PF-L3-miss decrease across
 *      workloads (the paper reports nearly y = x, Pearson 0.99);
 *  (b) per-workload L2/cache slowdown vs L2 prefetcher coverage
 *      drop for the SPEC + GAPBS cast of the paper's figure.
 */

#include "bench/common.hh"
#include "spa/breakdown.hh"
#include "spa/prefetch_analysis.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Figure 12", "Prefetcher inefficiency under CXL");
    melody::SlowdownStudy study(555);

    const char *cast[] = {"503.bwaves_r",  "549.fotonik3d_r",
                          "554.roms_r",    "602.gcc_s",
                          "603.bwaves_s",  "607.cactuBSSN_s",
                          "619.lbm_s",     "649.fotonik3d_s",
                          "654.roms_s",    "bc-web",
                          "bfs-twitter",   "bfs-urand",
                          "bfs-web",       "cc-twitter",
                          "cc-web",        "pr-web",
                          "sssp-web",      "tc-kron",
                          "tc-twitter",    "gpt2-small",
                          "llama-7b-prefill", "spark-terasort"};

    bench::section("(a) L1PF-L3-miss increase vs L2PF-L3-miss "
                   "decrease (CXL-B vs local)");
    std::vector<double> xs, ys;
    std::printf("%-18s %14s %14s\n", "Workload", "L2PF-miss drop",
                "L1PF-miss rise");
    for (const char *n : cast) {
        const auto w = bench::scaled(workloads::byName(n), 40000);
        cpu::RunResult test;
        study.slowdownWithRun(w, "EMR2S", "CXL-B", &test);
        const auto d =
            spa::prefetchDelta(study.baseline(w, "EMR2S"), test);
        if (d.l2pfL3MissDecrease > 0) {
            xs.push_back(d.l2pfL3MissDecrease);
            ys.push_back(d.l1pfL3MissIncrease);
        }
        std::printf("%-18s %14.0f %14.0f\n", n,
                    d.l2pfL3MissDecrease, d.l1pfL3MissIncrease);
    }
    std::printf("Pearson(decrease, increase) = %.3f   slope = %.2f "
                "(paper: ~0.99, y = x)\n",
                stats::pearson(xs, ys),
                stats::regressionSlope(xs, ys));

    bench::section("(b) cache slowdown vs L2PF coverage drop "
                   "(CXL-B vs local)");
    std::printf("%-18s %14s %16s\n", "Workload", "cacheSlow(%)",
                "covDrop(pp)");
    for (const char *n : cast) {
        const auto w = bench::scaled(workloads::byName(n), 40000);
        cpu::RunResult test;
        study.slowdownWithRun(w, "EMR2S", "CXL-B", &test);
        const auto &base = study.baseline(w, "EMR2S");
        const auto b = spa::computeBreakdown(base, test);
        const auto d = spa::prefetchDelta(base, test);
        std::printf("%-18s %14.1f %16.1f\n", n,
                    b.l1 + b.l2 + b.l3, d.coverageDropPct());
    }
    std::printf("Paper: coverage drops 2-38%%, correlated with the "
                "cache-slowdown component (Finding #4).\n");
    return 0;
}
