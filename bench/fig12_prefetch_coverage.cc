/**
 * @file
 * Figure 12: prefetcher inefficiency under CXL.
 *  (a) L1PF-L3-miss increase vs L2PF-L3-miss decrease across
 *      workloads (the paper reports nearly y = x, Pearson 0.99);
 *  (b) per-workload L2/cache slowdown vs L2 prefetcher coverage
 *      drop for the SPEC + GAPBS cast of the paper's figure.
 */

#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/breakdown.hh"
#include "spa/prefetch_analysis.hh"

using namespace cxlsim;

namespace figs {

void
buildFig12(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 12",
                             "Prefetcher inefficiency under CXL"));
    auto study = std::make_shared<melody::SlowdownStudy>(555);

    const char *cast[] = {"503.bwaves_r",  "549.fotonik3d_r",
                          "554.roms_r",    "602.gcc_s",
                          "603.bwaves_s",  "607.cactuBSSN_s",
                          "619.lbm_s",     "649.fotonik3d_s",
                          "654.roms_s",    "bc-web",
                          "bfs-twitter",   "bfs-urand",
                          "bfs-web",       "cc-twitter",
                          "cc-web",        "pr-web",
                          "sssp-web",      "tc-kron",
                          "tc-twitter",    "gpt2-small",
                          "llama-7b-prefill", "spark-terasort"};

    // One point per workload: slot 0 = the (a) row, slot 1 =
    // hidden {decrease, increase} for the Pearson gather, slot 2 =
    // the (b) row. The run itself is shared by both sections (the
    // serial bench recomputed it; results are identical).
    std::vector<std::size_t> ids;
    std::vector<sweep::Sweep::SlotRef> pairs;
    for (const char *n : cast) {
        const std::size_t id = S.point(
            std::string("wl|") + n + "|seed=555", 3,
            [study, n](sweep::Emit *slots) {
                const auto w =
                    bench::scaled(workloads::byName(n), 40000);
                cpu::RunResult test;
                study->slowdownWithRun(w, "EMR2S", "CXL-B", &test);
                const auto &base = study->baseline(w, "EMR2S");
                const auto d = spa::prefetchDelta(base, test);
                const auto b = spa::computeBreakdown(base, test);
                slots[0].printf("%-18s %14.0f %14.0f\n", n,
                                d.l2pfL3MissDecrease,
                                d.l1pfL3MissIncrease);
                slots[1].hexDoubles(
                    {d.l2pfL3MissDecrease, d.l1pfL3MissIncrease});
                slots[2].printf("%-18s %14.1f %16.1f\n", n,
                                b.l1 + b.l2 + b.l3,
                                d.coverageDropPct());
            });
        ids.push_back(id);
        pairs.push_back({id, 1});
    }

    S.text(bench::sectionText(
        "(a) L1PF-L3-miss increase vs L2PF-L3-miss "
        "decrease (CXL-B vs local)"));
    S.textf("%-18s %14s %14s\n", "Workload", "L2PF-miss drop",
            "L1PF-miss rise");
    for (const std::size_t id : ids)
        S.place(id, 0);
    S.gather(pairs, [](const std::vector<std::string> &in,
                       sweep::Emit &out) {
        std::vector<double> xs, ys;
        for (const auto &slot : in) {
            const auto v = sweep::parseHexDoubles(slot);
            if (v.at(0) > 0) {
                xs.push_back(v.at(0));
                ys.push_back(v.at(1));
            }
        }
        out.printf("Pearson(decrease, increase) = %.3f   "
                   "slope = %.2f (paper: ~0.99, y = x)\n",
                   stats::pearson(xs, ys),
                   stats::regressionSlope(xs, ys));
    });

    S.text(bench::sectionText(
        "(b) cache slowdown vs L2PF coverage drop "
        "(CXL-B vs local)"));
    S.textf("%-18s %14s %16s\n", "Workload", "cacheSlow(%)",
            "covDrop(pp)");
    for (const std::size_t id : ids)
        S.place(id, 2);
    S.text("Paper: coverage drops 2-38%, correlated with the "
           "cache-slowdown component (Finding #4).\n");
}

}  // namespace figs
