/**
 * @file
 * Figure 16: period-based slowdown breakdown over time for
 * 602.gcc_s, 605.mcf_s and 631.deepsjeng_s on CXL-B: time-sampled
 * counters from the local and CXL runs are re-aligned on
 * instruction boundaries (§5.6) and differenced per period.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/period.hh"

using namespace cxlsim;

namespace figs {

void
buildFig16(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Figure 16", "Period-based slowdown breakdown (CXL-B)"));

    for (const char *name :
         {"602.gcc_s", "605.mcf_s", "631.deepsjeng_s"}) {
        S.text(bench::sectionText(name));
        S.point(std::string("periods|") + name +
                    "|blocks=150000|seed=616",
                [name](sweep::Emit &out) {
                    auto w = workloads::byName(name);
                    w.blocksPerCore = 150000;
                    melody::Platform lp("EMR2S", "Local");
                    melody::Platform tp("EMR2S", "CXL-B");
                    const auto base = melody::runWorkload(
                        w, lp, 616, true, usToTicks(15));
                    const auto test = melody::runWorkload(
                        w, tp, 616, true, usToTicks(15));

                    const double total =
                        base.counters.instructions;
                    const auto periods = spa::periodAnalysis(
                        base.samples, test.samples, total / 24.0);

                    out.printf(
                        "%-4s %8s | %6s %5s %5s %5s %6s %6s\n",
                        "per", "S(%)", "DRAM", "L3", "L2", "L1",
                        "Store", "Other");
                    double sum = 0;
                    for (const auto &p : periods) {
                        const auto &b = p.breakdown;
                        out.printf(
                            "%-4llu %8.1f | %6.1f %5.1f %5.1f "
                            "%5.1f %6.1f %6.1f\n",
                            static_cast<unsigned long long>(
                                p.periodIndex),
                            b.actual, b.dram, b.l3, b.l2, b.l1,
                            b.store, b.other + b.core);
                        sum += b.actual;
                    }
                    if (!periods.empty())
                        out.printf(
                            "mean period slowdown: %.1f%%  "
                            "(overall workload slowdown: "
                            "%.1f%%)\n",
                            sum / periods.size(),
                            (static_cast<double>(test.wallTicks) /
                                 base.wallTicks -
                             1.0) * 100.0);
                });
    }
    S.text("\nPaper shape: 602.gcc heavy during the first "
           "two-thirds then light; 605.mcf bursty throughout; "
           "631.deepsjeng moderate fluctuations (Finding #5).\n");
}

}  // namespace figs
