/**
 * @file
 * Table 1: testbed characterization — idle latency and peak
 * bandwidth for every server (local and remote/NUMA) and every
 * CXL device (locally attached and via a NUMA hop), printed next
 * to the paper's measured values.
 */

#include "bench/common.hh"
#include "core/mio.hh"
#include "core/mlc.hh"

using namespace cxlsim;

namespace {

double
idleLat(melody::Platform &p, std::uint64_t seed)
{
    auto be = p.makeBackend(seed);
    return melody::mioChaseDirect(be.get(), 1, 12000).latencyNs.mean();
}

double
peakBw(melody::Platform &p, std::uint64_t seed, double read_frac)
{
    melody::MlcConfig cfg;
    cfg.readFrac = read_frac;
    cfg.delayCycles = 0;
    cfg.windowUs = 250;
    cfg.warmupUs = 60;
    auto be = p.makeBackend(seed);
    return melody::mlcMeasure(be.get(), cfg).gbps;
}

}  // namespace

int
main()
{
    bench::header("Table 1", "Testbed latency/bandwidth calibration");

    bench::section("Servers (Local / Remote-NUMA)");
    struct SrvRow
    {
        const char *server;
        double lLat, lBw, rLat, rBw;  // paper values
    };
    const SrvRow servers[] = {
        {"SPR2S", 114, 218, 191, 97},  {"EMR2S", 111, 246, 193, 120},
        {"EMR2S'", 117, 236, 212, 119}, {"SKX2S", 90, 52, 140, 32},
        {"SKX8S", 81, 109, 410, 7},
    };
    stats::Table st({"Server", "LocalLat(ns)", "paper", "LocalBW",
                     "paper", "RemoteLat", "paper", "RemoteBW",
                     "paper"});
    for (const auto &s : servers) {
        melody::Platform lp(s.server, "Local");
        melody::Platform rp(s.server,
                            std::string(s.server) == "SKX8S"
                                ? "NUMA-410ns"
                                : "NUMA");
        st.addRow({s.server, stats::Table::num(idleLat(lp, 1), 0),
                   stats::Table::num(s.lLat, 0),
                   stats::Table::num(peakBw(lp, 2, 1.0), 0),
                   stats::Table::num(s.lBw, 0),
                   stats::Table::num(idleLat(rp, 3), 0),
                   stats::Table::num(s.rLat, 0),
                   stats::Table::num(peakBw(rp, 4, 1.0), 0),
                   stats::Table::num(s.rBw, 0)});
    }
    st.print();

    bench::section("CXL devices (Local / Remote via NUMA hop)");
    struct DevRow
    {
        const char *dev;
        const char *server;
        double lLat, lBw, rLat;  // paper values (MLC read BW)
        double peak;             // paper mixed peak
    };
    const DevRow devs[] = {
        {"CXL-A", "EMR2S", 214, 24, 375, 32},
        {"CXL-B", "EMR2S", 271, 22, 473, 26},
        {"CXL-C", "EMR2S", 394, 18, 621, 21},
        {"CXL-D", "EMR2S'", 239, 52, 333, 59},
    };
    stats::Table dt({"Device", "Lat(ns)", "paper", "ReadBW", "paper",
                     "MixedPeak", "paper", "RemoteLat", "paper"});
    for (const auto &d : devs) {
        melody::Platform lp(d.server, d.dev);
        melody::Platform rp(d.server, std::string(d.dev) + "+NUMA");
        const bool fpga = std::string(d.dev) == "CXL-C";
        dt.addRow({d.dev, stats::Table::num(idleLat(lp, 5), 0),
                   stats::Table::num(d.lLat, 0),
                   stats::Table::num(peakBw(lp, 6, 1.0), 1),
                   stats::Table::num(d.lBw, 0),
                   stats::Table::num(peakBw(lp, 7, fpga ? 1.0 : 0.67),
                                     1),
                   stats::Table::num(d.peak, 0),
                   stats::Table::num(idleLat(rp, 8), 0),
                   stats::Table::num(d.rLat, 0)});
    }
    dt.print();
    return 0;
}
