/**
 * @file
 * Table 1: testbed characterization — idle latency and peak
 * bandwidth for every server (local and remote/NUMA) and every
 * CXL device (locally attached and via a NUMA hop), printed next
 * to the paper's measured values (melody::paperPeakGBps).
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "core/mio.hh"
#include "core/mlc.hh"

using namespace cxlsim;

namespace {

double
idleLat(melody::Platform &p, std::uint64_t seed)
{
    auto be = p.makeBackend(seed);
    return melody::mioChaseDirect(be.get(), 1, 12000).latencyNs.mean();
}

double
peakBw(melody::Platform &p, std::uint64_t seed, double read_frac)
{
    melody::MlcConfig cfg;
    cfg.readFrac = read_frac;
    cfg.delayCycles = 0;
    cfg.windowUs = 250;
    cfg.warmupUs = 60;
    auto be = p.makeBackend(seed);
    return melody::mlcMeasure(be.get(), cfg).gbps;
}

void
tableGather(const std::vector<std::string> &headers,
            const std::vector<std::string> &inputs, sweep::Emit &out)
{
    stats::Table t(headers);
    for (const auto &row : inputs)
        t.addRow(bench::splitCells(row));
    out.text(t.render());
}

}  // namespace

namespace figs {

void
buildTable1(sweep::Sweep &S)
{
    S.text(bench::headerText("Table 1",
                             "Testbed latency/bandwidth calibration"));

    S.text(bench::sectionText("Servers (Local / Remote-NUMA)"));
    struct SrvRow
    {
        const char *server;
        double lLat, rLat;  // paper latencies
    };
    const SrvRow servers[] = {
        {"SPR2S", 114, 191}, {"EMR2S", 111, 193},
        {"EMR2S'", 117, 212}, {"SKX2S", 90, 140},
        {"SKX8S", 81, 410},
    };
    std::vector<sweep::Sweep::SlotRef> srvRows;
    for (const auto &s : servers) {
        const std::size_t id = S.point(
            std::string("server|") + s.server + "|seeds=1-4", 1,
            [s](sweep::Emit *slots) {
                const std::string numa =
                    std::string(s.server) == "SKX8S" ? "NUMA-410ns"
                                                     : "NUMA";
                melody::Platform lp(s.server, "Local");
                melody::Platform rp(s.server, numa);
                slots[0].text(bench::joinCells(
                    {s.server, stats::Table::num(idleLat(lp, 1), 0),
                     stats::Table::num(s.lLat, 0),
                     stats::Table::num(peakBw(lp, 2, 1.0), 0),
                     stats::Table::num(
                         melody::paperPeakGBps(s.server, "Local"), 0),
                     stats::Table::num(idleLat(rp, 3), 0),
                     stats::Table::num(s.rLat, 0),
                     stats::Table::num(peakBw(rp, 4, 1.0), 0),
                     stats::Table::num(
                         melody::paperPeakGBps(s.server, numa), 0)}));
            });
        srvRows.push_back({id, 0});
    }
    S.gather(srvRows, [](const std::vector<std::string> &inputs,
                         sweep::Emit &out) {
        tableGather({"Server", "LocalLat(ns)", "paper", "LocalBW",
                     "paper", "RemoteLat", "paper", "RemoteBW",
                     "paper"},
                    inputs, out);
    });

    S.text(bench::sectionText(
        "CXL devices (Local / Remote via NUMA hop)"));
    struct DevRow
    {
        const char *dev;
        const char *server;
        double lLat, lBw, rLat;  // paper values (MLC read BW)
    };
    const DevRow devs[] = {
        {"CXL-A", "EMR2S", 214, 24, 375},
        {"CXL-B", "EMR2S", 271, 22, 473},
        {"CXL-C", "EMR2S", 394, 18, 621},
        {"CXL-D", "EMR2S'", 239, 52, 333},
    };
    std::vector<sweep::Sweep::SlotRef> devRows;
    for (const auto &d : devs) {
        const std::size_t id = S.point(
            std::string("device|") + d.dev + "|seeds=5-8", 1,
            [d](sweep::Emit *slots) {
                melody::Platform lp(d.server, d.dev);
                melody::Platform rp(d.server,
                                    std::string(d.dev) + "+NUMA");
                const bool fpga = std::string(d.dev) == "CXL-C";
                slots[0].text(bench::joinCells(
                    {d.dev, stats::Table::num(idleLat(lp, 5), 0),
                     stats::Table::num(d.lLat, 0),
                     stats::Table::num(peakBw(lp, 6, 1.0), 1),
                     stats::Table::num(d.lBw, 0),
                     stats::Table::num(
                         peakBw(lp, 7, fpga ? 1.0 : 0.67), 1),
                     stats::Table::num(
                         melody::paperPeakGBps(d.server, d.dev), 0),
                     stats::Table::num(idleLat(rp, 8), 0),
                     stats::Table::num(d.rLat, 0)}));
            });
        devRows.push_back({id, 0});
    }
    S.gather(devRows, [](const std::vector<std::string> &inputs,
                         sweep::Emit &out) {
        tableGather({"Device", "Lat(ns)", "paper", "ReadBW", "paper",
                     "MixedPeak", "paper", "RemoteLat", "paper"},
                    inputs, out);
    });
}

}  // namespace figs
