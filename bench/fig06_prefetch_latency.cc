/**
 * @file
 * Figure 6: pointer-chase latency CDFs through the CPU with
 * hardware prefetchers ON (sequential pointer layout). Prefetching
 * slashes average latency but does not eliminate CXL tails.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "core/mio.hh"

using namespace cxlsim;

namespace figs {

void
buildFig06(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 6",
                             "Chase latency via CPU, prefetchers ON"));

    S.textf("%-7s %4s %9s %8s %8s %9s %10s\n", "Setup", "thr",
            "mean(ns)", "p90", "p99", "p99.9", "p99.99");
    for (const char *mem :
         {"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        for (unsigned thr : {1u, 8u, 32u}) {
            S.point(std::string("on|") + mem + "|thr=" +
                        std::to_string(thr) + "|seed=31",
                    [mem, thr](sweep::Emit &out) {
                        melody::Platform plat(
                            std::string(mem) == "CXL-D" ? "EMR2S'"
                                                        : "EMR2S",
                            mem);
                        auto be = plat.makeBackend(31);
                        const auto r = melody::mioChaseViaCpu(
                            plat.cpu(), be.get(), thr,
                            60000 / thr + 2000, true);
                        out.printf(
                            "%-7s %4u %9.1f %8.0f %8.0f %9.0f "
                            "%10.0f\n",
                            mem, thr, r.latencyNs.mean(),
                            r.latencyNs.percentile(0.9),
                            r.latencyNs.percentile(0.99),
                            r.latencyNs.percentile(0.999),
                            r.latencyNs.percentile(0.9999));
                    });
        }
    }

    S.text(bench::sectionText(
        "Prefetchers OFF (reference: raw device latency)"));
    S.textf("%-7s %9s %9s\n", "Setup", "mean(ns)", "p99.9");
    for (const char *mem : {"Local", "CXL-B"}) {
        S.point(std::string("off|") + mem + "|seed=31",
                [mem](sweep::Emit &out) {
                    melody::Platform plat("EMR2S", mem);
                    auto be = plat.makeBackend(31);
                    const auto r = melody::mioChaseViaCpu(
                        plat.cpu(), be.get(), 2, 20000, false);
                    out.printf("%-7s %9.1f %9.0f\n", mem,
                               r.latencyNs.mean(),
                               r.latencyNs.percentile(0.999));
                });
    }
    S.text("\nPaper shape: with prefetchers on, means collapse "
           "toward cache latency for all setups, but CXL "
           "devices keep heavy tails (prefetching is "
           "insufficient to hide CXL-induced latencies).\n");
}

}  // namespace figs
