/**
 * @file
 * Figure 6: pointer-chase latency CDFs through the CPU with
 * hardware prefetchers ON (sequential pointer layout). Prefetching
 * slashes average latency but does not eliminate CXL tails.
 */

#include "bench/common.hh"
#include "core/mio.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Figure 6",
                  "Chase latency via CPU, prefetchers ON");

    std::printf("%-7s %4s %9s %8s %8s %9s %10s\n", "Setup", "thr",
                "mean(ns)", "p90", "p99", "p99.9", "p99.99");
    for (const char *mem :
         {"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        melody::Platform plat(
            std::string(mem) == "CXL-D" ? "EMR2S'" : "EMR2S", mem);
        for (unsigned thr : {1u, 8u, 32u}) {
            auto be = plat.makeBackend(31);
            const auto r = melody::mioChaseViaCpu(
                plat.cpu(), be.get(), thr, 60000 / thr + 2000, true);
            std::printf("%-7s %4u %9.1f %8.0f %8.0f %9.0f %10.0f\n",
                        mem, thr, r.latencyNs.mean(),
                        r.latencyNs.percentile(0.9),
                        r.latencyNs.percentile(0.99),
                        r.latencyNs.percentile(0.999),
                        r.latencyNs.percentile(0.9999));
        }
    }

    bench::section("Prefetchers OFF (reference: raw device latency)");
    std::printf("%-7s %9s %9s\n", "Setup", "mean(ns)", "p99.9");
    for (const char *mem : {"Local", "CXL-B"}) {
        melody::Platform plat("EMR2S", mem);
        auto be = plat.makeBackend(31);
        const auto r = melody::mioChaseViaCpu(plat.cpu(), be.get(),
                                              2, 20000, false);
        std::printf("%-7s %9.1f %9.0f\n", mem, r.latencyNs.mean(),
                    r.latencyNs.percentile(0.999));
    }
    std::printf("\nPaper shape: with prefetchers on, means collapse "
                "toward cache latency for all setups, but CXL "
                "devices keep heavy tails (prefetching is "
                "insufficient to hide CXL-induced latencies).\n");
    return 0;
}
