/**
 * @file
 * Pooling bench: noisy-neighbour interference on a multi-headed
 * CXL pool (the paper's pooling use case + Recommendation #1:
 * predictable latency is crucial for QoS in the cloud).
 *
 * Tenant A runs a latency-critical pointer chase on head 0;
 * tenant B drives increasing streaming load on head 1. We report
 * A's p50/p99.9 latency under each arbitration policy.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "cxl/pool.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"

using namespace cxlsim;
using namespace cxlsim::cxl;

namespace {

struct Result
{
    double p50;
    double p999;
    double victimGbps;
    double bullyGbps;
};

Result
runScenario(PoolArbitration policy, double bully_pace_ns,
            std::uint64_t seed)
{
    DeviceProfile prof = cxlB();
    prof.linkCfg.gbpsPerDir = 64.0;  // fat heads; shared 26GB/s
    prof.queueCapacity = 48;         // scheduler is the bottleneck
    PooledCxlDevice pool(prof, 2, policy, seed);
    Rng rng(seed);
    stats::Histogram lat(1, 1e7, 64);

    // Tenant A: closed-loop dependent chase on head 0.
    // Tenant B: 16 streaming slots on head 1, paced.
    constexpr unsigned kSlots = 256;
    Tick aNext = 0;
    Tick bNext[kSlots];
    Addr bCur[kSlots];
    for (unsigned i = 0; i < kSlots; ++i) {
        bNext[i] = i;
        bCur[i] = (static_cast<Addr>(i) + 1) << 28;
    }
    std::uint64_t aOps = 0, bOps = 0;
    const std::uint64_t target = 30000;
    Tick last = 0;
    while (aOps < target) {
        // Pick the earliest actor.
        unsigned bBest = 0;
        for (unsigned i = 1; i < kSlots; ++i)
            if (bNext[i] < bNext[bBest])
                bBest = i;
        if (aNext <= bNext[bBest]) {
            const Addr addr =
                rng.below(1 << 21) * kCacheLineBytes;
            const Tick done = pool.read(0, addr, aNext);
            lat.record(ticksToNs(done - aNext));
            aNext = done + nsToTicks(2);
            last = std::max(last, done);
            ++aOps;
        } else {
            // Respect credit availability: defer (not queue) when
            // the head is out of credits, like a real host bridge.
            const Tick adm =
                pool.earliestAdmission(1, bNext[bBest]);
            if (adm > bNext[bBest]) {
                bNext[bBest] = adm;
                continue;
            }
            const Tick done =
                pool.read(1, bCur[bBest], bNext[bBest]);
            bCur[bBest] += kCacheLineBytes;
            bNext[bBest] = done + nsToTicks(bully_pace_ns);
            last = std::max(last, done);
            ++bOps;
        }
    }
    Result r;
    r.p50 = lat.percentile(0.5);
    r.p999 = lat.percentile(0.999);
    const double secs = ticksToNs(last) * 1e-9;
    r.victimGbps = aOps * 64.0 / 1e9 / secs;
    r.bullyGbps = bOps * 64.0 / 1e9 / secs;
    return r;
}

const char *
policyName(PoolArbitration p)
{
    switch (p) {
      case PoolArbitration::kNone:
        return "none(FCFS)";
      case PoolArbitration::kRoundRobin:
        return "round-robin";
      default:
        return "weighted";
    }
}

}  // namespace

namespace figs {

void
buildPoolingInterference(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Pooling", "Noisy-neighbour QoS on a multi-headed CXL pool"));

    S.textf("%-12s %12s %10s %10s %12s\n", "policy", "bullyLoad",
            "A p50(ns)", "A p99.9", "bully GB/s");
    for (auto policy :
         {PoolArbitration::kNone, PoolArbitration::kRoundRobin,
          PoolArbitration::kWeighted}) {
        for (double pace : {100000.0, 500.0, 50.0, 0.0}) {
            S.point(std::string("scenario|") + policyName(policy) +
                        "|pace=" + stats::Table::num(pace, 0) +
                        "|seed=77",
                    [policy, pace](sweep::Emit &out) {
                        const auto r = runScenario(policy, pace, 77);
                        out.printf(
                            "%-12s %11.0fns %10.0f %10.0f "
                            "%12.2f\n",
                            policyName(policy), pace, r.p50, r.p999,
                            r.bullyGbps);
                    });
        }
    }
    S.text("\nTwo findings: (1) a streaming neighbour inflates "
           "the latency tenant's p99.9 ~3x even though the "
           "device is NOT saturated — the load-coupled hiccup "
           "behaviour of Finding #1 surfacing as cross-tenant "
           "interference; (2) credit-based fair sharing bounds "
           "the bully's queue occupancy (and throughput) — the "
           "QoS knob Recommendation #1 asks CXL controllers "
           "to expose.\n");
}

}  // namespace figs
