/**
 * @file
 * Shared main() for the standalone figure binaries: each target
 * compiles this file with MELODY_FIGURE_BINARY set to its
 * registered binary name (see bench/CMakeLists.txt).
 */

#include "bench/figures.hh"

int
main()
{
    return figs::figureMain(MELODY_FIGURE_BINARY);
}
