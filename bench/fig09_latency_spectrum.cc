/**
 * @file
 * Figure 9: slowdowns across the full 140-410ns latency spectrum.
 *  (a) violin summaries of suite slowdowns for every
 *      {SKX,SPR,EMR} x {NUMA,CXL} setup;
 *  (b) YCSB A-F slowdowns on Redis and VoltDB (super-linear
 *      growth with latency).
 */

#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"

using namespace cxlsim;

namespace figs {

void
buildFig09(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Figure 9", "Slowdowns across the latency spectrum"));
    auto study = std::make_shared<melody::SlowdownStudy>(999);
    const auto &all = workloads::suite();

    S.text(bench::sectionText("(a) violin summaries per setup "
                              "(suite, every 2nd workload)"));
    struct Setup
    {
        const char *label;
        const char *server;
        const char *memory;
    };
    const Setup setups[] = {
        {"SKX-140ns", "SKX2S", "NUMA-140ns"},
        {"SKX-190ns", "SKX2S", "NUMA-190ns"},
        {"SPR-NUMA", "SPR2S", "NUMA"},
        {"EMR-NUMA", "EMR2S", "NUMA"},
        {"EMR-CXL-D", "EMR2S'", "CXL-D"},
        {"SPR-CXL-A", "SPR2S", "CXL-A"},
        {"EMR-CXL-A", "EMR2S", "CXL-A"},
        {"SPR-CXL-B", "SPR2S", "CXL-B"},
        {"EMR-CXL-B", "EMR2S", "CXL-B"},
        {"EMR-CXL-C", "EMR2S", "CXL-C"},
        {"SKX-410ns", "SKX8S", "NUMA-410ns"},
    };
    S.textf("%-11s %7s %7s %7s %7s %8s %8s\n", "Setup", "min", "p25",
            "p50", "p75", "max", "mean");
    for (const auto &su : setups) {
        std::vector<workloads::WorkloadProfile> sub;
        if (std::string(su.memory) == "CXL-C") {
            for (const auto &w : workloads::cxlCSubset())
                sub.push_back(bench::scaled(w, 30000));
        } else {
            for (std::size_t i = 0; i < all.size(); i += 2)
                sub.push_back(bench::scaled(all[i], 30000));
        }
        S.point(std::string("a|") + su.label + "|n=" +
                    std::to_string(sub.size()) + "|seed=999",
                [study, sub, su](sweep::Emit &out) {
                    std::vector<double> s = study->slowdownBatch(
                        sub, su.server, su.memory);
                    const auto v = stats::violinSummary(s);
                    out.printf(
                        "%-11s %7.1f %7.1f %7.1f %7.1f %8.1f "
                        "%8.1f\n",
                        su.label, v.min, v.p25, v.median, v.p75,
                        v.max, v.mean);
                });
    }
    S.text("Paper: slowdowns worsen toward 410ns, yet 16% of "
           "workloads stay <10% and 30% <50% even there.\n");

    S.text(bench::sectionText("(b) YCSB A-F on Redis / VoltDB"));
    S.textf("%-8s %-4s %8s %8s %8s\n", "Store", "mix", "NUMA",
            "CXL-A", "CXL-B");
    for (const char *store : {"redis", "voltdb"}) {
        for (char mix : {'a', 'b', 'c', 'd', 'e', 'f'}) {
            const std::string name =
                std::string(store) + "/ycsb-" + mix;
            S.point("b|" + name + "|seed=999",
                    [study, store, mix, name](sweep::Emit &out) {
                        const auto &w = workloads::byName(name);
                        out.printf(
                            "%-8s %-4c %7.1f%% %7.1f%% %7.1f%%\n",
                            store, mix,
                            study->slowdown(w, "EMR2S", "NUMA"),
                            study->slowdown(w, "EMR2S", "CXL-A"),
                            study->slowdown(w, "EMR2S", "CXL-B"));
                    });
        }
    }
    S.text("Paper shape: slowdowns grow super-linearly with "
           "latency (NUMA < CXL-A < CXL-B) for cloud "
           "workloads.\n");
}

}  // namespace figs
