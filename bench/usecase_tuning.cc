/**
 * @file
 * §5.7 use case: Spa-guided memory placement tuning. Period-based
 * Spa flags bursty phases of 605.mcf; pinning the hot (Zipf-head)
 * objects to local DRAM recovers most of the slowdown (the paper
 * reports 13% -> 2% after relocating two 2GB objects).
 */

#include "bench/common.hh"
#include "spa/advisor.hh"
#include "spa/period.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Use case (5.7)", "Spa-guided placement tuning");

    auto w = workloads::byName("605.mcf_s");
    w.blocksPerCore = 120000;

    // Step 1: period-based analysis flags the bursty phases.
    melody::Platform lp("EMR2S", "Local");
    melody::Platform tp("EMR2S", "CXL-A");
    const auto base =
        melody::runWorkload(w, lp, 51, true, usToTicks(15));
    const auto test =
        melody::runWorkload(w, tp, 51, true, usToTicks(15));
    const auto periods = spa::periodAnalysis(
        base.samples, test.samples,
        base.counters.instructions / 20.0);
    std::size_t bursty = 0;
    for (const auto &p : periods)
        bursty += p.breakdown.actual > 10.0;
    std::printf("periods above 10%% slowdown: %zu / %zu\n", bursty,
                periods.size());
    const double frac = spa::suggestPinnedFraction(periods, 10.0);
    std::printf("suggested pinned fraction of working set: %.2f\n",
                frac);

    // Step 2: pin the hot objects locally and re-measure.
    for (double pin : {frac, 0.1, 0.3, 0.5}) {
        const auto r =
            spa::tunePlacement(w, "EMR2S", "CXL-A", pin, 51);
        std::printf("pin %4.2f of WS -> slowdown %6.1f%% -> %6.1f%% "
                    " (local serves %4.1f%% of requests)\n",
                    pin, r.slowdownAllCxl, r.slowdownPinned,
                    100 * r.fastRequestFraction);
    }
    std::printf("\nPaper: relocating the two hot 2GB objects cut "
                "605.mcf's slowdown from 13%% to 2%%.\n");
    return 0;
}
