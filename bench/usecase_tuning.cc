/**
 * @file
 * §5.7 use case: Spa-guided memory placement tuning. Period-based
 * Spa flags bursty phases of 605.mcf; pinning the hot (Zipf-head)
 * objects to local DRAM recovers most of the slowdown (the paper
 * reports 13% -> 2% after relocating two 2GB objects).
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/advisor.hh"
#include "spa/period.hh"

using namespace cxlsim;

namespace figs {

void
buildUsecaseTuning(sweep::Sweep &S)
{
    S.text(bench::headerText("Use case (5.7)",
                             "Spa-guided placement tuning"));

    // Step 1 and the suggested-fraction pin share one point: the
    // pin fraction is derived from the period analysis, so both
    // lines depend on the same runs.
    const std::size_t step1 = S.point(
        "step1|605.mcf_s|blocks=120000|seed=51", 2,
        [](sweep::Emit *slots) {
            auto w = workloads::byName("605.mcf_s");
            w.blocksPerCore = 120000;
            melody::Platform lp("EMR2S", "Local");
            melody::Platform tp("EMR2S", "CXL-A");
            const auto base =
                melody::runWorkload(w, lp, 51, true, usToTicks(15));
            const auto test =
                melody::runWorkload(w, tp, 51, true, usToTicks(15));
            const auto periods = spa::periodAnalysis(
                base.samples, test.samples,
                base.counters.instructions / 20.0);
            std::size_t bursty = 0;
            for (const auto &p : periods)
                bursty += p.breakdown.actual > 10.0;
            slots[0].printf(
                "periods above 10%% slowdown: %zu / %zu\n", bursty,
                periods.size());
            const double frac =
                spa::suggestPinnedFraction(periods, 10.0);
            slots[0].printf(
                "suggested pinned fraction of working set: %.2f\n",
                frac);

            const auto r = spa::tunePlacement(w, "EMR2S", "CXL-A",
                                              frac, 51);
            slots[1].printf(
                "pin %4.2f of WS -> slowdown %6.1f%% -> %6.1f%%  "
                "(local serves %4.1f%% of requests)\n",
                frac, r.slowdownAllCxl, r.slowdownPinned,
                100 * r.fastRequestFraction);
        });
    S.place(step1, 0);
    S.place(step1, 1);

    for (double pin : {0.1, 0.3, 0.5}) {
        S.point("pin|605.mcf_s|frac=" + stats::Table::num(pin, 2) +
                    "|seed=51",
                [pin](sweep::Emit &out) {
                    auto w = workloads::byName("605.mcf_s");
                    w.blocksPerCore = 120000;
                    const auto r = spa::tunePlacement(
                        w, "EMR2S", "CXL-A", pin, 51);
                    out.printf(
                        "pin %4.2f of WS -> slowdown %6.1f%% -> "
                        "%6.1f%%  (local serves %4.1f%% of "
                        "requests)\n",
                        pin, r.slowdownAllCxl, r.slowdownPinned,
                        100 * r.fastRequestFraction);
                });
    }
    S.text("\nPaper: relocating the two hot 2GB objects cut "
           "605.mcf's slowdown from 13% to 2%.\n");
}

}  // namespace figs
