/**
 * @file
 * Ablation: memory-level parallelism and CPU tolerance to CXL
 * latency.
 *
 *  (1) coldBurst (miss clustering): isolated misses pay the full
 *      latency delta; clustered misses amortize it across the LFB
 *      — why real workloads tolerate CXL better than a naive
 *      MPKI x latency model predicts (Finding #2's flip side).
 *  (2) ROB size: the window's ability to run ahead of a miss sets
 *      CPU tolerance — compare SKX-class (224) with SPR-class
 *      (512) and hypothetical deeper windows on the same memory.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "cpu/multicore.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

double
slowdownWith(const workloads::WorkloadProfile &w,
             unsigned rob, unsigned lfb, const char *mem)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform tp("EMR2S", mem);
    cpu::CpuProfile prof = lp.cpu();
    if (rob)
        prof.robSize = rob;
    if (lfb)
        prof.lfbEntries = lfb;

    auto lb = lp.makeBackend(5);
    cpu::MultiCore ml(prof, w.exec, lb.get(),
                      workloads::makeKernels(w));
    const auto base = ml.run();

    auto tb = tp.makeBackend(5);
    cpu::MultiCore mt(prof, w.exec, tb.get(),
                      workloads::makeKernels(w));
    return melody::slowdownPct(base, mt.run());
}

}  // namespace

namespace figs {

void
buildAblationMlp(sweep::Sweep &S)
{
    S.text(bench::headerText("Ablation",
                             "MLP and CPU tolerance to CXL latency"));

    S.text(bench::sectionText(
        "(1) dependence sweep (pointer-chase fraction) on CXL-A"));
    S.textf("%10s %12s\n", "depFrac", "S(%)");
    for (double dep : {1.0, 0.5, 0.25, 0.0}) {
        S.point("dep|ubench-rnd-4096m-i56|frac=" +
                    stats::Table::num(dep, 2) + "|seed=5",
                [dep](sweep::Emit &out) {
                    auto v = bench::scaled(
                        workloads::byName("ubench-rnd-4096m-i56"),
                        40000);
                    v.dependentFrac = dep;
                    v.coldBurst = 4;
                    out.printf("%10.2f %12.1f\n", dep,
                               slowdownWith(v, 0, 0, "CXL-A"));
                });
    }
    S.text("MLP lifts absolute performance on every backend, "
           "but the LOCAL baseline gains the most - so the "
           "relative slowdown is LARGER for MLP-friendly "
           "workloads (Finding #2: relative slowdowns exceed "
           "the latency ratio), while pure chases pay the "
           "latency ratio directly.\n");

    S.text(bench::sectionText(
        "(2) ROB-size sweep (chase workload, CXL-B)"));
    S.textf("%8s %12s\n", "ROB", "S(%)");
    for (unsigned rob : {128u, 224u, 512u, 1024u}) {
        S.point("rob|ubench-chase-4096m-i17|" +
                    std::to_string(rob) + "|seed=5",
                [rob](sweep::Emit &out) {
                    auto chase = bench::scaled(
                        workloads::byName("ubench-chase-4096m-i17"),
                        30000);
                    out.printf(
                        "%8u %12.1f\n", rob,
                        slowdownWith(chase, rob, 0, "CXL-B"));
                });
    }
    S.text("Dependent chains defeat the window: ROB growth "
           "barely helps pointer chasing (CPU tolerance is "
           "workload-structural, Finding #2).\n");

    S.text(bench::sectionText(
        "(3) LFB (MLP limit) sweep (random-burst "
        "workload, CXL-B)"));
    S.textf("%8s %12s\n", "LFB", "S(%)");
    for (unsigned lfb : {8u, 16u, 32u, 64u}) {
        S.point("lfb|dlrm-inference|" + std::to_string(lfb) +
                    "|seed=5",
                [lfb](sweep::Emit &out) {
                    auto rnd = bench::scaled(
                        workloads::byName("dlrm-inference"), 20000);
                    out.printf(
                        "%8u %12.1f\n", lfb,
                        slowdownWith(rnd, 0, lfb, "CXL-B"));
                });
    }
    S.text("More fill buffers raise the overlap ceiling — the "
           "hardware lever the paper's Implication #1a points "
           "at (CPUs must tolerate CXL latencies).\n");
}

}  // namespace figs
