/**
 * @file
 * Ablation: how faithful is NUMA-based CXL latency emulation?
 *
 * The paper (like Pond and TPP before it) fills out the latency
 * spectrum with NUMA-emulated points (140/190/410ns). But §3 shows
 * real CXL devices differ from NUMA in *stability*: same average
 * latency, very different tails. Here we build a synthetic CXL
 * device calibrated to ~190ns average and compare workload
 * slowdowns against the SKX NUMA-190ns emulation — quantifying
 * what latency-only emulation misses.
 */

#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "cpu/multicore.hh"
#include "cxl/device_profile.hh"
#include "mem/cxl_backend.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

/** A hypothetical ~190ns CXL device: CXL-A link/controller scaled
 *  down, with CXL-B-like tail behaviour. */
cxl::DeviceProfile
synthetic190()
{
    cxl::DeviceProfile p = cxl::cxlA();
    p.name = "CXL-190ns";
    p.controllerNs = 72.0;  // ~190ns end-to-end
    p.hiccups = cxl::cxlB().hiccups;  // immature-controller tails
    return p;
}

}  // namespace

namespace figs {

void
buildAblationEmulation(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Ablation", "NUMA-emulated vs tail-realistic CXL at ~190ns"));

    // Verify the average latencies line up first. One point: the
    // two measurement loops share one Rng stream, so they are a
    // single unit of work.
    S.point("idle-check|seed=1,5", [](sweep::Emit &out) {
        melody::Platform numa("SKX2S", "NUMA-190ns");
        auto nb = numa.makeBackend(1);
        Rng r(5);
        Tick now = 0;
        double sum = 0;
        for (int i = 0; i < 4000; ++i) {
            const Tick done = nb->access(
                r.below(1 << 22) * kCacheLineBytes,
                mem::ReqType::kDemandLoad, now);
            sum += ticksToNs(done - now);
            now = done + nsToTicks(2);
        }
        mem::CxlBackendConfig cfg;
        cfg.profile = synthetic190();
        cfg.seed = 1;
        mem::CxlBackend cb(cfg);
        now = 0;
        double sum2 = 0;
        for (int i = 0; i < 4000; ++i) {
            const Tick done = cb.access(
                r.below(1 << 22) * kCacheLineBytes,
                mem::ReqType::kDemandLoad, now);
            sum2 += ticksToNs(done - now);
            now = done + nsToTicks(2);
        }
        out.printf("avg idle latency: NUMA-190ns %.0fns vs "
                   "synthetic CXL %.0fns\n\n",
                   sum / 4000, sum2 / 4000);
    });

    S.textf("%-22s %14s %14s %10s\n", "Workload", "S NUMA-190(%)",
            "S CXL-190(%)", "gap(pp)");
    auto study = std::make_shared<melody::SlowdownStudy>(33);
    for (const char *n :
         {"redis/ycsb-c", "520.omnetpp_r", "605.mcf_s", "bfs-web",
          "gpt2-small", "pts-openssl", "dlrm-inference"}) {
        S.point(std::string("wl|") + n + "|seed=33,3",
                [study, n](sweep::Emit &out) {
                    auto w =
                        bench::scaled(workloads::byName(n), 40000);

                    const double sNuma = study->slowdown(
                        w, "SKX2S", "NUMA-190ns");

                    // Same workload against the tail-realistic
                    // device, with the same SKX CPU for a
                    // like-for-like comparison.
                    melody::Platform lp("SKX2S", "Local");
                    auto lb = lp.makeBackend(3);
                    cpu::MultiCore ml(lp.cpu(), w.exec, lb.get(),
                                      workloads::makeKernels(w));
                    const auto base = ml.run();

                    mem::CxlBackendConfig cfg;
                    cfg.profile = synthetic190();
                    cfg.seed = 3;
                    mem::CxlBackend cb(cfg);
                    cpu::MultiCore mt(lp.cpu(), w.exec, &cb,
                                      workloads::makeKernels(w));
                    const double sCxl =
                        melody::slowdownPct(base, mt.run());

                    out.printf("%-22s %14.1f %14.1f %10.1f\n", n,
                               sNuma, sCxl, sCxl - sNuma);
                });
    }
    S.text("\nNUMA emulation matches the average but misses the "
           "tail-driven extra slowdown — the gap column is the "
           "error a latency-only emulation methodology makes "
           "(why the paper insists on real devices).\n");
}

}  // namespace figs
