/**
 * @file
 * Figure 5: latency-bandwidth curves under read/write ratios
 * 1:0, 4:1, 3:1, 2:1, 3:2, 1:1 for each memory setup. Key shapes:
 * local DRAM peaks read-only (unidirectional DDR bus); NUMA and
 * ASIC CXL devices peak under mixed traffic (duplex links); the
 * FPGA CXL-C peaks read-only and degrades with writes.
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "core/mlc.hh"

using namespace cxlsim;

namespace figs {

void
buildFig05(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Figure 5", "Latency-BW curves under read/write ratios"));

    struct Ratio
    {
        const char *label;
        double readFrac;
    };
    const Ratio ratios[] = {{"1:0", 1.0},  {"4:1", 0.8},
                            {"3:1", 0.75}, {"2:1", 0.667},
                            {"3:2", 0.6},  {"1:1", 0.5}};

    S.textf("%-7s %5s %12s %12s   (peak over the delay sweep)\n",
            "Setup", "R:W", "PeakBW(GB/s)", "lat@peak(ns)");
    for (const char *mem :
         {"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        // Slot 0: the printed row; slot 1: hidden hexfloat peak
        // feeding the per-setup verdict gather below.
        std::vector<sweep::Sweep::SlotRef> peaks;
        for (const auto &r : ratios) {
            const std::size_t id = S.point(
                std::string(mem) + "|ratio=" + r.label + "|seed=29",
                2, [mem, r](sweep::Emit *slots) {
                    melody::Platform plat(
                        std::string(mem) == "CXL-D" ? "EMR2S'"
                                                    : "EMR2S",
                        mem);
                    melody::MlcConfig cfg;
                    cfg.readFrac = r.readFrac;
                    cfg.windowUs = 200;
                    cfg.warmupUs = 50;
                    const auto pts = melody::mlcSweep(
                        [&] { return plat.makeBackend(29); }, cfg,
                        {2000, 300, 0});
                    double peak = 0.0, latAtPeak = 0.0;
                    for (const auto &p : pts)
                        if (p.gbps > peak) {
                            peak = p.gbps;
                            latAtPeak = p.avgNs;
                        }
                    slots[0].printf("%-7s %5s %12.2f %12.0f\n", mem,
                                    r.label, peak, latAtPeak);
                    slots[1].hexDoubles({peak});
                });
            S.place(id, 0);
            peaks.push_back({id, 1});
        }
        S.gather(peaks, [mem](const std::vector<std::string> &inputs,
                              sweep::Emit &out) {
            // Input order matches `ratios`; index 0 is read-only.
            double bestRead = 0.0, bestMixed = 0.0;
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                const double peak =
                    sweep::parseHexDoubles(inputs[i]).at(0);
                if (i == 0)
                    bestRead = peak;
                else
                    bestMixed = std::max(bestMixed, peak);
            }
            out.printf("%-7s       read-only peak %.1f vs best "
                       "mixed %.1f -> %s\n",
                       mem, bestRead, bestMixed,
                       bestRead > bestMixed ? "READ-ONLY BEST"
                                            : "MIXED BEST");
        });
    }
    S.text("\nPaper shape: Local read-only best; NUMA + ASIC "
           "CXL (A/B/D) mixed best;\nFPGA CXL-C read-only best "
           "(Finding #1e).\n");
}

}  // namespace figs
