/**
 * @file
 * Figure 7: CXL tail latencies in real workloads.
 *  (a/b) 508.namd-like execution: sampled memory latency spikes on
 *        CXL-C even though read bandwidth stays mostly low;
 *  (c)   Redis YCSB-C: memory-latency percentiles across setups —
 *        device-level tails propagate to the application.
 */

#include <algorithm>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"
#include "cpu/multicore.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

/** Backend wrapper sampling per-request latency and bandwidth. */
class SamplingBackend : public mem::MemoryBackend
{
  public:
    explicit SamplingBackend(mem::BackendPtr inner)
        : inner_(std::move(inner))
    {
    }

    Tick
    access(Addr a, mem::ReqType t, Tick now) override
    {
        note(t);
        const Tick done = inner_->access(a, t, now);
        if (t == mem::ReqType::kDemandLoad) {
            latency_.add(now, ticksToNs(done - now));
            hist_.record(ticksToNs(done - now));
        }
        bytes_ += 64;
        const Tick win = 100 * kTicksPerUs;
        if (now - winStart_ >= win) {
            bw_.add(now, static_cast<double>(bytes_) /
                             ticksToNs(now - winStart_));
            winStart_ = now;
            bytes_ = 0;
        }
        return done;
    }

    const std::string &name() const override { return inner_->name(); }

    stats::TimeSeries latency_;
    stats::TimeSeries bw_;
    stats::Histogram hist_{1.0, 1e7, 64};

  private:
    mem::BackendPtr inner_;
    Tick winStart_ = 0;
    std::uint64_t bytes_ = 0;
};

}  // namespace

namespace figs {

void
buildFig07(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 7",
                             "CXL tail latencies in real workloads"));

    S.text(bench::sectionText(
        "(a/b) 508.namd: sampled latency and bandwidth over time"));
    for (const char *mem : {"Local", "NUMA", "CXL-C"}) {
        S.point(std::string("namd|") + mem + "|seed=41",
                [mem](sweep::Emit &out) {
                    melody::Platform plat("EMR2S", mem);
                    SamplingBackend be(plat.makeBackend(41));
                    auto w = workloads::byName("508.namd_r");
                    cpu::MultiCore mc(plat.cpu(), w.exec, &be,
                                      workloads::makeKernels(w));
                    mc.run();
                    const auto latSeries =
                        be.latency_.downsampleMax(12);
                    out.printf(
                        "%-6s peakLat=%6.0fns p99.9=%6.0fns  "
                        "meanBW=%.2fGB/s peakBW=%.2fGB/s\n",
                        mem, be.latency_.maxValue(),
                        be.hist_.percentile(0.999),
                        be.bw_.meanValue(), be.bw_.maxValue());
                    out.printf("  lat series (max per window, ns):");
                    for (const auto &p : latSeries.points())
                        out.printf(" %5.0f", p.value);
                    out.printf("\n");
                });
    }
    S.text("Paper shape: bandwidth mostly <0.5GB/s with rare "
           "spikes; CXL-C latency still spikes toward 1us "
           "while local/NUMA stay flat.\n");

    S.text(bench::sectionText(
        "(c) Redis YCSB-C memory latency percentiles"));
    S.textf("%-7s %8s %8s %8s %8s %9s %9s\n", "Setup", "p50", "p75",
            "p90", "p95", "p99", "p99.9(ns)");
    for (const char *mem : {"Local", "NUMA", "CXL-B", "CXL-C"}) {
        S.point(std::string("ycsb|") + mem + "|seed=43",
                [mem](sweep::Emit &out) {
                    melody::Platform plat("EMR2S", mem);
                    SamplingBackend be(plat.makeBackend(43));
                    auto w = workloads::byName("redis/ycsb-c");
                    cpu::MultiCore mc(plat.cpu(), w.exec, &be,
                                      workloads::makeKernels(w));
                    mc.run();
                    out.printf(
                        "%-7s %8.0f %8.0f %8.0f %8.0f %9.0f "
                        "%9.0f\n",
                        mem, be.hist_.percentile(0.5),
                        be.hist_.percentile(0.75),
                        be.hist_.percentile(0.9),
                        be.hist_.percentile(0.95),
                        be.hist_.percentile(0.99),
                        be.hist_.percentile(0.999));
                });
    }
    S.text("Paper shape: read-only YCSB-C suffers elevated "
           "tails on CXL-C (device tails propagate to the "
           "application), local/NUMA/CXL-B far lower.\n");
}

}  // namespace figs
