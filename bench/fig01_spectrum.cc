/**
 * @file
 * Figure 1: the spectrum of sub-µs CXL latency and bandwidth —
 * socket-local DRAM, NUMA, CXL, CXL+NUMA, CXL+Switch, and
 * CXL + multi-hops, each plotted as (bandwidth, avg latency).
 */

#include "bench/common.hh"
#include "bench/figures.hh"
#include "core/mio.hh"
#include "core/mlc.hh"

using namespace cxlsim;

namespace figs {

void
buildFig01(sweep::Sweep &S)
{
    S.text(bench::headerText("Figure 1",
                             "Sub-us CXL latency/bandwidth spectrum"));

    struct Point
    {
        const char *label;
        const char *server;
        const char *memory;
    };
    const Point points[] = {
        {"Socket-local DRAM", "EMR2S", "Local"},
        {"NUMA", "EMR2S", "NUMA"},
        {"CXL (A)", "EMR2S", "CXL-A"},
        {"CXL (D)", "EMR2S'", "CXL-D"},
        {"CXL+NUMA", "EMR2S", "CXL-A+NUMA"},
        {"CXL+Switch", "EMR2S", "CXL-A+Switch"},
        {"CXL + multi-hops", "EMR2S", "CXL-A+Switch2"},
    };

    std::vector<sweep::Sweep::SlotRef> rows;
    for (const auto &p : points) {
        const std::size_t id = S.point(
            std::string("row|") + p.server + "|" + p.memory +
                "|seeds=101,102",
            1, [p](sweep::Emit *slots) {
                melody::Platform plat(p.server, p.memory);
                auto idleBe = plat.makeBackend(101);
                const auto idle =
                    melody::mioChaseDirect(idleBe.get(), 1, 15000);

                melody::MlcConfig cfg;
                cfg.readFrac = 0.67;
                cfg.delayCycles = 0;
                cfg.windowUs = 250;
                cfg.warmupUs = 60;
                auto bwBe = plat.makeBackend(102);
                const auto peak = melody::mlcMeasure(bwBe.get(), cfg);

                slots[0].text(bench::joinCells(
                    {p.label,
                     stats::Table::num(idle.latencyNs.mean(), 0),
                     stats::Table::num(peak.gbps, 1)}));
            });
        rows.push_back({id, 0});
    }

    S.gather(rows, [](const std::vector<std::string> &inputs,
                      sweep::Emit &out) {
        stats::Table t({"Setup", "IdleLat(ns)", "PeakBW(GB/s)"});
        for (const auto &row : inputs)
            t.addRow(bench::splitCells(row));
        out.text(t.render());
    });
    S.text("\nPaper: Local ~114ns/218GB/s, NUMA ~193ns, CXL "
           "214-394ns/18-52GB/s,\nCXL+NUMA 333-621ns, "
           "CXL+Switch ~600ns, multi-hops up to ~800ns.\n");
}

}  // namespace figs
