/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench declares the rows/series of one table or figure from
 * the paper onto a sweep::Sweep (see src/sim/sweep.hh). Absolute
 * values come from the simulator; EXPERIMENTS.md records
 * paper-vs-measured for each experiment.
 */

#ifndef MELODY_BENCH_COMMON_HH
#define MELODY_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "sim/sweep.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

namespace bench {

inline std::string
headerText(const std::string &fig, const std::string &what)
{
    std::string s;
    const std::string rule(60, '=');
    s += rule + "\n";
    s += fig + " — " + what + "\n";
    s += rule + "\n";
    return s;
}

inline std::string
sectionText(const std::string &name)
{
    return "\n--- " + name + " ---\n";
}

/**
 * Cell separator for table rows carried through sweep-point slots:
 * points emit joined cells, a gather splits them and feeds a
 * stats::Table so column padding still sees every row.
 */
inline constexpr char kCellSep = '\x1f';

inline std::string
joinCells(const std::vector<std::string> &cells)
{
    std::string s;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            s += kCellSep;
        s += cells[i];
    }
    return s;
}

inline std::vector<std::string>
splitCells(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t sep = s.find(kCellSep, pos);
        if (sep == std::string::npos)
            break;
        out.push_back(s.substr(pos, sep - pos));
        pos = sep + 1;
    }
    out.push_back(s.substr(pos));
    return out;
}

/** Cap a workload's run length so suite-wide sweeps stay fast. */
inline cxlsim::workloads::WorkloadProfile
scaled(const cxlsim::workloads::WorkloadProfile &w,
       std::uint64_t max_blocks)
{
    cxlsim::workloads::WorkloadProfile s = w;
    s.blocksPerCore = std::min(s.blocksPerCore, max_blocks);
    return s;
}

/** Slowdown-CDF summary line for one setup. */
inline std::string
cdfSummaryLine(const std::string &setup,
               const std::vector<double> &slowdowns)
{
    using cxlsim::stats::fractionBelow;
    using cxlsim::stats::quantile;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-16s n=%-3zu  <5%%:%5.1f%%  <10%%:%5.1f%%  "
                  "<25%%:%5.1f%%  <50%%:%5.1f%%  p50=%6.1f  "
                  "p90=%7.1f  max=%8.1f\n",
                  setup.c_str(), slowdowns.size(),
                  100 * fractionBelow(slowdowns, 5.0),
                  100 * fractionBelow(slowdowns, 10.0),
                  100 * fractionBelow(slowdowns, 25.0),
                  100 * fractionBelow(slowdowns, 50.0),
                  quantile(slowdowns, 0.5), quantile(slowdowns, 0.9),
                  quantile(slowdowns, 1.0));
    return buf;
}

/**
 * Lazily computed value shared (via shared_ptr) across sweep
 * points. Several points often need the same deterministic baseline
 * run; computing it once under a mutex keeps the parallel sweep
 * from duplicating the work while staying order-independent — the
 * value is the same whichever point gets there first.
 */
template <typename T>
class Shared
{
  public:
    explicit Shared(std::function<T()> fn) : fn_(std::move(fn)) {}

    const T &
    get()
    {
        std::call_once(once_, [this] { value_ = fn_(); });
        return value_;
    }

  private:
    std::function<T()> fn_;
    std::once_flag once_;
    T value_{};
};

}  // namespace bench

#endif  // MELODY_BENCH_COMMON_HH
