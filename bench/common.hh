/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints the rows/series of one table or figure from
 * the paper. Absolute values come from the simulator; EXPERIMENTS.md
 * records paper-vs-measured for each experiment.
 */

#ifndef MELODY_BENCH_COMMON_HH
#define MELODY_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

namespace bench {

inline void
header(const std::string &fig, const std::string &what)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s — %s\n", fig.c_str(), what.c_str());
    std::printf("==================================================="
                "=========\n");
}

inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/** Cap a workload's run length so suite-wide sweeps stay fast. */
inline cxlsim::workloads::WorkloadProfile
scaled(const cxlsim::workloads::WorkloadProfile &w,
       std::uint64_t max_blocks)
{
    cxlsim::workloads::WorkloadProfile s = w;
    s.blocksPerCore = std::min(s.blocksPerCore, max_blocks);
    return s;
}

/** Print a slowdown-CDF summary line for one setup. */
inline void
printCdfSummary(const std::string &setup,
                const std::vector<double> &slowdowns)
{
    using cxlsim::stats::fractionBelow;
    using cxlsim::stats::quantile;
    std::printf("%-16s n=%-3zu  <5%%:%5.1f%%  <10%%:%5.1f%%  "
                "<25%%:%5.1f%%  <50%%:%5.1f%%  p50=%6.1f  p90=%7.1f  "
                "max=%8.1f\n",
                setup.c_str(), slowdowns.size(),
                100 * fractionBelow(slowdowns, 5.0),
                100 * fractionBelow(slowdowns, 10.0),
                100 * fractionBelow(slowdowns, 25.0),
                100 * fractionBelow(slowdowns, 50.0),
                quantile(slowdowns, 0.5), quantile(slowdowns, 0.9),
                quantile(slowdowns, 1.0));
}

}  // namespace bench

#endif  // MELODY_BENCH_COMMON_HH
