/**
 * @file
 * google-benchmark microbenchmarks for the simulator itself:
 * event-queue throughput, cache lookups, DRAM channel accesses,
 * CXL device round trips, and end-to-end workload simulation rate.
 */

#include <benchmark/benchmark.h>

#include "cpu/cache.hh"
#include "cpu/multicore.hh"
#include "core/platform.hh"
#include "cxl/device.hh"
#include "dram/channel.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

static void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<Tick>((i * 7919) % 100000),
                       [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

static void
BM_CacheLookup(benchmark::State &state)
{
    cpu::Cache cache(2 * 1024 * 1024, 16);
    Rng rng(1);
    for (int i = 0; i < 32768; ++i)
        cache.insert(static_cast<Addr>(i) * 64, 0,
                     cpu::StallTag::kL2, false);
    Tick ready;
    cpu::StallTag home;
    for (auto _ : state) {
        const Addr a = rng.below(65536) * 64;
        benchmark::DoNotOptimize(
            cache.lookup(a, 1000, &ready, &home));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

static void
BM_DramChannelAccess(benchmark::State &state)
{
    dram::ChannelConfig cfg;
    cfg.timing = dram::ddr5_4800();
    dram::Channel chan(cfg);
    Rng rng(2);
    Tick now = 0;
    for (auto _ : state) {
        const Addr a = rng.below(1 << 22) * 64;
        now = chan.access(a, false, now);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramChannelAccess);

static void
BM_CxlDeviceRead(benchmark::State &state)
{
    cxl::CxlDevice dev(cxl::cxlA(), 3);
    Rng rng(4);
    Tick now = 0;
    for (auto _ : state) {
        const Tick done = dev.read(rng.below(1 << 22) * 64, now);
        now = done + nsToTicks(5);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CxlDeviceRead);

static void
BM_WorkloadSimulation(benchmark::State &state)
{
    auto w = workloads::byName("605.mcf_s");
    w.blocksPerCore = 10000;
    for (auto _ : state) {
        melody::Platform plat("EMR2S", "CXL-A");
        auto be = plat.makeBackend(5);
        cpu::MultiCore mc(plat.cpu(), w.exec, be.get(),
                          workloads::makeKernels(w));
        const auto r = mc.run();
        benchmark::DoNotOptimize(r.wallTicks);
    }
    state.SetItemsProcessed(state.iterations() *
                            w.instructionsPerCore());
    // Headline throughput metric for the regression harness
    // (scripts/run_bench.py): simulated instructions per wall
    // second of host time.
    state.counters["sim_instructions_per_second"] =
        benchmark::Counter(static_cast<double>(state.iterations()) *
                               static_cast<double>(
                                   w.instructionsPerCore()),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkloadSimulation);

BENCHMARK_MAIN();
