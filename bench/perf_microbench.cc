/**
 * @file
 * google-benchmark microbenchmarks for the simulator itself:
 * event-queue throughput, cache lookups, DRAM channel accesses,
 * CXL device round trips, and end-to-end workload simulation rate.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "cpu/cache.hh"
#include "cpu/multicore.hh"
#include "core/platform.hh"
#include "cxl/device.hh"
#include "cxl/device_profile.hh"
#include "dram/channel.hh"
#include "sim/event_queue.hh"
#include "sim/partition.hh"
#include "sim/pdes.hh"
#include "sim/rng.hh"
#include "sim/sweep.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

static void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<Tick>((i * 7919) % 100000),
                       [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

static void
BM_CacheLookup(benchmark::State &state)
{
    cpu::Cache cache(2 * 1024 * 1024, 16);
    Rng rng(1);
    for (int i = 0; i < 32768; ++i)
        cache.insert(static_cast<Addr>(i) * 64, 0,
                     cpu::StallTag::kL2, false);
    Tick ready;
    cpu::StallTag home;
    for (auto _ : state) {
        const Addr a = rng.below(65536) * 64;
        benchmark::DoNotOptimize(
            cache.lookup(a, 1000, &ready, &home));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

static void
BM_DramChannelAccess(benchmark::State &state)
{
    dram::ChannelConfig cfg;
    cfg.timing = dram::ddr5_4800();
    dram::Channel chan(cfg);
    Rng rng(2);
    Tick now = 0;
    for (auto _ : state) {
        const Addr a = rng.below(1 << 22) * 64;
        now = chan.access(a, false, now);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramChannelAccess);

static void
BM_CxlDeviceRead(benchmark::State &state)
{
    cxl::CxlDevice dev(cxl::cxlA(), 3);
    Rng rng(4);
    Tick now = 0;
    for (auto _ : state) {
        const Tick done = dev.read(rng.below(1 << 22) * 64, now);
        now = done + nsToTicks(5);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CxlDeviceRead);

static void
BM_WorkloadSimulation(benchmark::State &state)
{
    auto w = workloads::byName("605.mcf_s");
    w.blocksPerCore = 10000;
    for (auto _ : state) {
        melody::Platform plat("EMR2S", "CXL-A");
        auto be = plat.makeBackend(5);
        cpu::MultiCore mc(plat.cpu(), w.exec, be.get(),
                          workloads::makeKernels(w));
        const auto r = mc.run();
        benchmark::DoNotOptimize(r.wallTicks);
    }
    state.SetItemsProcessed(state.iterations() *
                            w.instructionsPerCore());
    // Headline throughput metric for the regression harness
    // (scripts/run_bench.py): simulated instructions per wall
    // second of host time.
    state.counters["sim_instructions_per_second"] =
        benchmark::Counter(static_cast<double>(state.iterations()) *
                               static_cast<double>(
                                   w.instructionsPerCore()),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkloadSimulation);

static void
BM_SweepEngine(benchmark::State &state)
{
    // Engine overhead in isolation: many near-trivial points plus a
    // gather, cache off, rendered to a string. Measures declaration,
    // fan-out over the worker pool, slot buffering, and ordered
    // render — not simulation work.
    constexpr std::size_t kPoints = 256;
    for (auto _ : state) {
        sweep::Options opts;
        opts.cache = false;
        sweep::Sweep s("bm-sweep-engine", opts);
        s.scope("bm");
        std::vector<sweep::Sweep::SlotRef> refs;
        for (std::size_t i = 0; i < kPoints; ++i) {
            const std::size_t id = s.point(
                "p|" + std::to_string(i), 1,
                [i](sweep::Emit *slots) {
                    slots[0].hexDoubles({static_cast<double>(i),
                                         static_cast<double>(i) * 0.5});
                });
            refs.push_back({id, 0});
        }
        s.gather(refs, [](const std::vector<std::string> &in,
                          sweep::Emit &out) {
            double sum = 0;
            for (const auto &slot : in)
                sum += sweep::parseHexDoubles(slot).at(1);
            out.printf("sum %.3f\n", sum);
        });
        const std::string rendered = s.renderToString();
        benchmark::DoNotOptimize(rendered.data());
    }
    state.SetItemsProcessed(state.iterations() * kPoints);
    state.counters["sweep_points_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kPoints,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepEngine);

static void
BM_PdesEpoch(benchmark::State &state)
{
    // Raw epoch/mailbox overhead of the conservative PDES core: a
    // ring of partitions exchanging horizon-distance messages, one
    // local event per hop. Dominated by barrier + mailbox delivery,
    // not event work — the floor on cross-partition scaling.
    const unsigned threads = static_cast<unsigned>(state.range(0));
    const Tick la = cxl::cxlA().pdesLookahead();
    constexpr std::size_t kParts = 8;
    constexpr int kHops = 64;
    std::uint64_t events = 0;
    for (auto _ : state) {
        pdes::Engine eng(la);
        std::vector<pdes::Partition *> parts;
        for (std::size_t i = 0; i < kParts; ++i)
            parts.push_back(
                eng.addPartition("p" + std::to_string(i)));
        struct Hop
        {
            pdes::Engine *eng;
            std::vector<pdes::Partition *> *parts;
            std::function<void(std::uint32_t, int)> fwd;
        };
        Hop hop;
        hop.eng = &eng;
        hop.parts = &parts;
        hop.fwd = [&hop](std::uint32_t at, int left) {
            if (left <= 0)
                return;
            pdes::Partition *self = (*hop.parts)[at];
            const auto next = static_cast<std::uint32_t>(
                (at + 1) % kParts);
            hop.eng->send(*self, *(*hop.parts)[next],
                          self->now() + hop.eng->lookahead(),
                          [&hop, next, left] {
                              hop.fwd(next, left - 1);
                          });
        };
        for (std::size_t i = 0; i < kParts; ++i) {
            const auto id = static_cast<std::uint32_t>(i);
            parts[i]->schedule(1 + i, [&hop, id] {
                hop.fwd(id, kHops);
            });
        }
        eng.run(threads);
        for (const auto *p : parts)
            events += p->executed();
        benchmark::DoNotOptimize(eng.now());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["pdes_events_per_second"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PdesEpoch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

static void
BM_WorkloadSimulationThreads(benchmark::State &state)
{
    // The tentpole gate: one 8-core simulation under the
    // conservative gate at N sim-threads. Output is bit-identical
    // at every N (tests/test_pdes.cc); this measures only speed.
    // scripts/run_bench.py enforces threads:4 >= 2x threads:1 on
    // multi-core recording hosts and no threads:1 regression.
    const unsigned threads = static_cast<unsigned>(state.range(0));
    auto w = workloads::byName("605.mcf_s");
    w.threads = 8;  // partitionable: one gang member per core
    w.blocksPerCore = 4000;
    const unsigned prev = pdes::simThreads();
    pdes::setSimThreads(threads);
    for (auto _ : state) {
        melody::Platform plat("EMR2S", "CXL-A");
        auto be = plat.makeBackend(5);
        cpu::MultiCore mc(plat.cpu(), w.exec, be.get(),
                          workloads::makeKernels(w));
        const auto r = mc.run();
        benchmark::DoNotOptimize(r.wallTicks);
    }
    pdes::setSimThreads(prev);
    state.SetItemsProcessed(state.iterations() *
                            w.instructionsPerCore());
    state.counters["sim_instructions_per_second"] =
        benchmark::Counter(static_cast<double>(state.iterations()) *
                               static_cast<double>(
                                   w.instructionsPerCore()),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkloadSimulationThreads)
    ->Name("BM_WorkloadSimulation")
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Recorded into the JSON context so scripts/run_bench.py can
    // refuse to baseline numbers from a non-Release build.
    benchmark::AddCustomContext("cxlsim_build_type",
                                MELODY_BUILD_TYPE);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
