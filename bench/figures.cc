#include "bench/figures.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace figs {

const std::vector<Figure> &
all()
{
    // Explicit table (no static self-registration: these objects
    // live in a static library, where unreferenced registrars are
    // dropped by the linker). Suite order = paper order.
    static const std::vector<Figure> kFigures = {
        {"fig01", "fig01_spectrum",
         "Sub-us CXL latency/bandwidth spectrum", buildFig01},
        {"table1", "table1_testbed",
         "Testbed latency/bandwidth calibration", buildTable1},
        {"fig03", "fig03_loaded_latency",
         "CXL (tail) latencies and bandwidth", buildFig03},
        {"fig04", "fig04_noise",
         "Latency under co-located bandwidth noise", buildFig04},
        {"fig05", "fig05_rw_ratios",
         "Bandwidth across read:write ratios", buildFig05},
        {"fig06", "fig06_prefetch_latency",
         "Prefetcher impact on average latency", buildFig06},
        {"fig07", "fig07_real_workloads",
         "Real-workload slowdowns on CXL", buildFig07},
        {"fig08", "fig08_slowdowns",
         "Slowdown CDFs across the suite", buildFig08},
        {"fig09", "fig09_latency_spectrum",
         "Slowdown vs latency spectrum", buildFig09},
        {"fig11", "fig11_spa_accuracy",
         "Spa model accuracy", buildFig11},
        {"fig12", "fig12_prefetch_coverage",
         "Prefetch coverage vs slowdown", buildFig12},
        {"fig14", "fig14_breakdown",
         "Slowdown breakdown by component", buildFig14},
        {"fig15", "fig15_breakdown_cdf",
         "Breakdown CDFs across the suite", buildFig15},
        {"fig16", "fig16_period_analysis",
         "Phase/period analysis", buildFig16},
        {"usecase", "usecase_tuning",
         "Tuning use case: pinning fraction", buildUsecaseTuning},
        {"ablation-prefetch", "ablation_prefetch",
         "Ablation: prefetcher model", buildAblationPrefetch},
        {"ablation-tails", "ablation_tails",
         "Ablation: tail injection", buildAblationTails},
        {"ablation-mlp", "ablation_mlp",
         "Ablation: MLP limits", buildAblationMlp},
        {"ablation-emulation", "ablation_emulation",
         "Ablation: NUMA-emulation fidelity", buildAblationEmulation},
        {"pooling", "pooling_interference",
         "Pooled-device interference", buildPoolingInterference},
        {"prediction", "prediction_accuracy",
         "Slowdown-prediction accuracy", buildPredictionAccuracy},
        {"tiering", "tiering_policies",
         "Tiering-policy comparison", buildTieringPolicies},
    };
    return kFigures;
}

const Figure *
find(const std::string &nameOrBinary)
{
    for (const Figure &f : all())
        if (nameOrBinary == f.name || nameOrBinary == f.binary)
            return &f;
    return nullptr;
}

int
figureMain(const char *binary)
{
    using namespace cxlsim;
    const Figure *fig = find(binary);
    SIM_ASSERT(fig != nullptr,
               std::string("unregistered figure binary: ") + binary);
    try {
        sweep::Sweep s(fig->binary, sweep::optionsFromEnv());
        s.scope(fig->binary);
        fig->build(s);
        s.run(stdout);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: %s\n", binary, e.what());
        return 2;
    }
    return 0;
}

}  // namespace figs
