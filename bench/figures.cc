#include "bench/figures.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/logging.hh"
#include "sim/partition.hh"

namespace figs {

const std::vector<Figure> &
all()
{
    // Explicit table (no static self-registration: these objects
    // live in a static library, where unreferenced registrars are
    // dropped by the linker). Suite order = paper order.
    static const std::vector<Figure> kFigures = {
        {"fig01", "fig01_spectrum",
         "Sub-us CXL latency/bandwidth spectrum", buildFig01},
        {"table1", "table1_testbed",
         "Testbed latency/bandwidth calibration", buildTable1},
        {"fig03", "fig03_loaded_latency",
         "CXL (tail) latencies and bandwidth", buildFig03},
        {"fig04", "fig04_noise",
         "Latency under co-located bandwidth noise", buildFig04},
        {"fig05", "fig05_rw_ratios",
         "Bandwidth across read:write ratios", buildFig05},
        {"fig06", "fig06_prefetch_latency",
         "Prefetcher impact on average latency", buildFig06},
        {"fig07", "fig07_real_workloads",
         "Real-workload slowdowns on CXL", buildFig07},
        {"fig08", "fig08_slowdowns",
         "Slowdown CDFs across the suite", buildFig08},
        {"fig09", "fig09_latency_spectrum",
         "Slowdown vs latency spectrum", buildFig09},
        {"fig11", "fig11_spa_accuracy",
         "Spa model accuracy", buildFig11},
        {"fig12", "fig12_prefetch_coverage",
         "Prefetch coverage vs slowdown", buildFig12},
        {"fig14", "fig14_breakdown",
         "Slowdown breakdown by component", buildFig14},
        {"fig15", "fig15_breakdown_cdf",
         "Breakdown CDFs across the suite", buildFig15},
        {"fig16", "fig16_period_analysis",
         "Phase/period analysis", buildFig16},
        {"usecase", "usecase_tuning",
         "Tuning use case: pinning fraction", buildUsecaseTuning},
        {"ablation-prefetch", "ablation_prefetch",
         "Ablation: prefetcher model", buildAblationPrefetch},
        {"ablation-tails", "ablation_tails",
         "Ablation: tail injection", buildAblationTails},
        {"ablation-mlp", "ablation_mlp",
         "Ablation: MLP limits", buildAblationMlp},
        {"ablation-emulation", "ablation_emulation",
         "Ablation: NUMA-emulation fidelity", buildAblationEmulation},
        {"pooling", "pooling_interference",
         "Pooled-device interference", buildPoolingInterference},
        {"prediction", "prediction_accuracy",
         "Slowdown-prediction accuracy", buildPredictionAccuracy},
        {"tiering", "tiering_policies",
         "Tiering-policy comparison", buildTieringPolicies},
    };
    return kFigures;
}

void
buildCrashTest(cxlsim::sweep::Sweep &s)
{
    using cxlsim::sweep::Emit;
    // The mode is part of the victim's cache key: a cached "ok"
    // result must never satisfy a "segv" run (and vice versa).
    const char *env = std::getenv("MELODY_CRASHTEST_MODE");
    const std::string mode = env ? env : "ok";

    s.text("# crashtest: supervised-execution self test\n");
    for (int k = 0; k < 2; ++k)
        s.point("pre k=" + std::to_string(k), [k](Emit &e) {
            e.printf("pre %d = %d\n", k, k * k);
        });
    const std::size_t victim = s.point(
        "victim mode=" + mode, 1, [mode](Emit *slots) {
            if (mode == "segv") {
                volatile int *p = nullptr;
                *p = 42;  // deliberate: exercises SIGSEGV handling
            } else if (mode == "abort") {
                std::abort();
            } else if (mode == "hang") {
                for (;;)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
            } else if (mode == "exception") {
                throw std::runtime_error("crashtest exception");
            } else if (mode == "exit") {
                std::_Exit(7);
            }
            slots[0].text("victim ok\n");
        });
    s.place(victim);
    for (int k = 0; k < 2; ++k)
        s.point("post k=" + std::to_string(k), [k](Emit &e) {
            e.printf("post %d = %d\n", k, k * k * k);
        });
    // A gather over the victim: must render its skip placeholder
    // (not crash) when the victim failed.
    s.gather(s.slotsOf(victim),
             [](const std::vector<std::string> &in, Emit &out) {
                 out.printf("victim emitted %zu byte(s)\n",
                            in[0].size());
             });
}

const Figure *
find(const std::string &nameOrBinary)
{
    for (const Figure &f : all())
        if (nameOrBinary == f.name || nameOrBinary == f.binary)
            return &f;
    // Test-only figure (see figures.hh): resolvable by name so the
    // CI crash-recovery job and test_supervisor can select it, but
    // absent from all() so `sweep all` never runs it.
    static const Figure kCrashTest = {
        "crashtest", "crashtest_selftest",
        "Supervised-execution self test (test-only)",
        buildCrashTest};
    if (nameOrBinary == kCrashTest.name ||
        nameOrBinary == kCrashTest.binary)
        return &kCrashTest;
    return nullptr;
}

int
figureMain(const char *binary)
{
    using namespace cxlsim;
    const Figure *fig = find(binary);
    SIM_ASSERT(fig != nullptr,
               std::string("unregistered figure binary: ") + binary);
    try {
        // Intra-run parallelism knob (melody's --sim-threads
        // equivalent for standalone binaries). Output bytes are
        // identical for every value.
        if (const char *st = std::getenv("MELODY_SIM_THREADS")) {
            char *endp = nullptr;
            const unsigned long v = std::strtoul(st, &endp, 10);
            if (endp == st || *endp != '\0')
                throw ConfigError(
                    "MELODY_SIM_THREADS must be a non-negative "
                    "integer, got '" +
                    std::string(st) + "'");
            pdes::setSimThreads(static_cast<unsigned>(v));
        }
        sweep::Sweep s(fig->binary, sweep::optionsFromEnv());
        s.scope(fig->binary);
        fig->build(s);
        const sweep::Sweep::Report rep = s.run(stdout);
        // Degraded isolated runs (or invariant violations) exit
        // nonzero with a stderr summary; surviving output already
        // streamed above.
        if (!rep.clean()) {
            for (const auto &f : rep.failures)
                std::fprintf(stderr,
                             "%s: point failed: %s (%s, %u "
                             "attempt(s))\n",
                             binary, f.key.c_str(),
                             f.cause.c_str(), f.attempts);
            for (const auto &d : rep.invariantDiags)
                std::fprintf(stderr,
                             "%s: invariant %s at %s: %s "
                             "[point %s]\n",
                             binary, d.invariant.c_str(),
                             d.where.c_str(), d.values.c_str(),
                             d.pointKey.c_str());
            return 1;
        }
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: %s\n", binary, e.what());
        return 2;
    }
    return 0;
}

}  // namespace figs
