/**
 * @file
 * Cross-device prediction bench (§5.7 "performance prediction"):
 * fit a Spa model per workload from {Local, CXL-A} runs, then
 * predict the slowdown on CXL-B and CXL-D *without running them* —
 * and compare against the actually simulated slowdowns.
 */

#include <cmath>
#include <memory>

#include "bench/common.hh"
#include "bench/figures.hh"
#include "spa/breakdown.hh"
#include "spa/predictor.hh"

using namespace cxlsim;

namespace {

/** Prediction-vs-actual summary line over per-workload values. */
void
reportLine(const char *dev, const std::vector<double> &p,
           const std::vector<double> &a, sweep::Emit &out)
{
    std::vector<double> err;
    for (std::size_t i = 0; i < p.size(); ++i)
        err.push_back(std::abs(p[i] - a[i]));
    out.printf("%-6s |pred-actual|: <5pp %5.1f%%  <10pp %5.1f%%"
               "  <20pp %5.1f%%  median %5.1fpp  "
               "Pearson(pred,act)=%.3f\n",
               dev, 100 * stats::fractionBelow(err, 5.0),
               100 * stats::fractionBelow(err, 10.0),
               100 * stats::fractionBelow(err, 20.0),
               stats::quantile(err, 0.5), stats::pearson(p, a));
}

/** Column @p idx of the hidden per-workload hexfloat slots. */
std::vector<double>
column(const std::vector<std::string> &in, std::size_t idx)
{
    std::vector<double> out;
    for (const auto &slot : in)
        out.push_back(cxlsim::sweep::parseHexDoubles(slot).at(idx));
    return out;
}

}  // namespace

namespace figs {

void
buildPredictionAccuracy(sweep::Sweep &S)
{
    S.text(bench::headerText(
        "Prediction", "Spa-model slowdown prediction across devices"));

    const spa::DeviceSheet sheetA{"CXL-A", 214, 32};
    const spa::DeviceSheet sheetB{"CXL-B", 271, 24};
    const spa::DeviceSheet sheetD{"CXL-D", 239, 50};
    const double localLat = 111.0;

    auto study = std::make_shared<melody::SlowdownStudy>(606);
    const auto &all = workloads::suite();
    std::vector<workloads::WorkloadProfile> sub;
    for (std::size_t i = 0; i < all.size(); i += 4)
        sub.push_back(bench::scaled(all[i], 25000));

    // Hidden slot per workload: {predB, actB, predD, actD, naiveB}.
    std::vector<sweep::Sweep::SlotRef> rows;
    std::vector<std::string> names;
    for (const auto &w : sub) {
        names.push_back(w.name);
        const std::size_t id = S.point(
            "wl|" + w.name + "|blocks=" +
                std::to_string(w.blocksPerCore) + "|seed=606",
            1,
            [study, w, sheetA, sheetB, sheetD,
             localLat](sweep::Emit *slots) {
                cpu::RunResult refRun;
                study->slowdownWithRun(w, "EMR2S", "CXL-A",
                                       &refRun);
                const auto &base = study->baseline(w, "EMR2S");
                const auto model =
                    spa::fitModel(base, refRun, sheetA, localLat);
                const double predB = model.predict(sheetB);
                const double actB =
                    study->slowdown(w, "EMR2S", "CXL-B");
                const double predD = model.predict(sheetD);
                const double actD =
                    study->slowdown(w, "EMR2S", "CXL-D");

                // The conventional heuristic the paper criticizes
                // (§5.2): every LLC miss pays the full latency
                // delta, estimated from local-run counters alone.
                const double missPerCycle =
                    static_cast<double>(
                        base.counters.demandL3Miss) /
                    base.counters.cycles;
                const double deltaCycles =
                    (sheetB.latencyNs - localLat) * 2.1;  // EMR GHz
                const double naiveB =
                    missPerCycle * deltaCycles * 100.0;
                slots[0].hexDoubles(
                    {predB, actB, predD, actD, naiveB});
            });
        rows.push_back({id, 0});
    }

    S.gather(rows, [](const std::vector<std::string> &in,
                      sweep::Emit &out) {
        reportLine("CXL-B", column(in, 0), column(in, 1), out);
        reportLine("CXL-D", column(in, 2), column(in, 3), out);
    });

    S.text("\nConventional LLC-miss heuristic (\u00a75.2's "
           "critique), CXL-B:\n");
    S.gather(rows, [](const std::vector<std::string> &in,
                      sweep::Emit &out) {
        reportLine("naive", column(in, 4), column(in, 1), out);
    });

    S.text("\nWorst cases (CXL-B):\n");
    S.textf("%-22s %10s %10s\n", "Workload", "pred(%)",
            "actual(%)");
    S.gather(rows, [names](const std::vector<std::string> &in,
                           sweep::Emit &out) {
        for (std::size_t i = 0; i < in.size(); ++i) {
            const auto v = cxlsim::sweep::parseHexDoubles(in[i]);
            if (std::abs(v.at(0) - v.at(1)) > 40.0)
                out.printf("%-22s %10.1f %10.1f\n",
                           names[i].c_str(), v.at(0), v.at(1));
        }
    });
    S.text("\nOne local + one reference-device profile predicts "
           "unseen devices from their datasheet — the Spa-based "
           "modelling §5.7 sketches (tail-driven workloads are "
           "the residual error).\n");
}

}  // namespace figs
