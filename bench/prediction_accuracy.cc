/**
 * @file
 * Cross-device prediction bench (§5.7 "performance prediction"):
 * fit a Spa model per workload from {Local, CXL-A} runs, then
 * predict the slowdown on CXL-B and CXL-D *without running them* —
 * and compare against the actually simulated slowdowns.
 */

#include <cmath>

#include "bench/common.hh"
#include "sim/parallel.hh"
#include "spa/breakdown.hh"
#include "spa/predictor.hh"

using namespace cxlsim;

int
main()
{
    bench::header("Prediction",
                  "Spa-model slowdown prediction across devices");

    const spa::DeviceSheet sheetA{"CXL-A", 214, 32};
    const spa::DeviceSheet sheetB{"CXL-B", 271, 24};
    const spa::DeviceSheet sheetD{"CXL-D", 239, 50};
    const double localLat = 111.0;

    melody::SlowdownStudy study(606);
    const auto &all = workloads::suite();
    std::vector<workloads::WorkloadProfile> sub;
    for (std::size_t i = 0; i < all.size(); i += 4)
        sub.push_back(bench::scaled(all[i], 25000));

    struct Row
    {
        double predB, actB, predD, actD;
        double naiveB;
    };
    std::vector<Row> rows(sub.size());
    parallelFor(sub.size(), [&](std::size_t i) {
        cpu::RunResult refRun;
        study.slowdownWithRun(sub[i], "EMR2S", "CXL-A", &refRun);
        const auto &base = study.baseline(sub[i], "EMR2S");
        const auto model =
            spa::fitModel(base, refRun, sheetA, localLat);
        rows[i].predB = model.predict(sheetB);
        rows[i].actB = study.slowdown(sub[i], "EMR2S", "CXL-B");
        rows[i].predD = model.predict(sheetD);
        rows[i].actD = study.slowdown(sub[i], "EMR2S", "CXL-D");

        // The conventional heuristic the paper criticizes (§5.2):
        // every LLC miss pays the full latency delta, estimated
        // from local-run counters alone.
        const double missPerCycle =
            static_cast<double>(base.counters.demandL3Miss) /
            base.counters.cycles;
        const double deltaCycles =
            (sheetB.latencyNs - localLat) * 2.1;  // EMR GHz
        rows[i].naiveB = missPerCycle * deltaCycles * 100.0;
    });

    auto report = [&](const char *dev, auto pred, auto act) {
        std::vector<double> err, p, a;
        for (const auto &r : rows) {
            p.push_back(pred(r));
            a.push_back(act(r));
            err.push_back(std::abs(pred(r) - act(r)));
        }
        std::printf("%-6s |pred-actual|: <5pp %5.1f%%  <10pp %5.1f%%"
                    "  <20pp %5.1f%%  median %5.1fpp  "
                    "Pearson(pred,act)=%.3f\n",
                    dev, 100 * stats::fractionBelow(err, 5.0),
                    100 * stats::fractionBelow(err, 10.0),
                    100 * stats::fractionBelow(err, 20.0),
                    stats::quantile(err, 0.5), stats::pearson(p, a));
    };
    report("CXL-B", [](const Row &r) { return r.predB; },
           [](const Row &r) { return r.actB; });
    report("CXL-D", [](const Row &r) { return r.predD; },
           [](const Row &r) { return r.actD; });

    std::printf("\nConventional LLC-miss heuristic (\u00a75.2's "
                "critique), CXL-B:\n");
    report("naive", [](const Row &r) { return r.naiveB; },
           [](const Row &r) { return r.actB; });

    std::printf("\nWorst cases (CXL-B):\n");
    std::printf("%-22s %10s %10s\n", "Workload", "pred(%)",
                "actual(%)");
    for (std::size_t i = 0; i < sub.size(); ++i)
        if (std::abs(rows[i].predB - rows[i].actB) > 40.0)
            std::printf("%-22s %10.1f %10.1f\n",
                        sub[i].name.c_str(), rows[i].predB,
                        rows[i].actB);
    std::printf("\nOne local + one reference-device profile predicts "
                "unseen devices from their datasheet — the Spa-based "
                "modelling §5.7 sketches (tail-driven workloads are "
                "the residual error).\n");
    return 0;
}
