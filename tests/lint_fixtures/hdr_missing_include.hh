// Fixture: hdr-missing-include fires when a std:: type is used
// without its header (virtual path src/sim/fixture.hh).
#ifndef CXLSIM_HDR_MISSING_INCLUDE_HH
#define CXLSIM_HDR_MISSING_INCLUDE_HH

#include <string>

namespace fixture {

struct Record
{
    std::string name;            // fine: <string> included
    std::vector<int> samples;    // VIOLATION line 13: no <vector>
};

}  // namespace fixture

#endif  // CXLSIM_HDR_MISSING_INCLUDE_HH
