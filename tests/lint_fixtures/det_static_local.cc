// Fixture: det-static-local fires on mutable function-local
// statics only (virtual path src/sim/fixture.cc).
namespace fixture {

int
counterBad()
{
    static int calls = 0;  // VIOLATION line 8
    return ++calls;
}

int
constantFine()
{
    static const int kTableSize = 64;
    static constexpr double kScale = 2.0;
    return static_cast<int>(kTableSize * kScale);
}

// Namespace-scope state is visible, reviewable and seeded
// explicitly — not this rule's business.
static int fileScoped_ = 0;

int
touch()
{
    return ++fileScoped_;
}

}  // namespace fixture
