// Fixture: det-banned-call must fire on raw entropy / wall-clock
// sources. Linted under the virtual path src/cxl/fixture.cc.
#include <cstdlib>

namespace fixture {

int
entropy()
{
    return rand();  // VIOLATION line 10: rand()
}

unsigned long
seedFromClock()
{
    std::mt19937 gen(12345);  // VIOLATION line 16: mt19937
    return gen();
}

// A member called rand() is somebody's API, not libc: no finding.
struct HasRandMember
{
    int rand() const;
};

int
fine(const HasRandMember &m)
{
    return m.rand();
}

}  // namespace fixture
