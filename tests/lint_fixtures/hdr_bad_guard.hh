// Fixture: hdr-guard fires when the #ifndef/#define names disagree
// (virtual path src/sim/fixture.hh).
#ifndef CXLSIM_FIXTURE_HH
#define CXLSIM_FIXTURE_TYPO_HH

namespace fixture {
struct Empty {};
}  // namespace fixture

#endif
