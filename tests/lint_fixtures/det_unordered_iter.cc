// Fixture: det-unordered-iter fires on range-for over a hash
// container in an output path (virtual path src/stats/fixture.cc).
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

std::unordered_map<std::uint64_t, double> table_;

double
emitAll()
{
    double sum = 0.0;
    for (const auto &[k, v] : table_)  // VIOLATION line 15
        sum += v;
    return sum;
}

// Iterating a vector is ordered: no finding.
double
fine(const std::vector<double> &v)
{
    double sum = 0.0;
    for (double d : v)
        sum += d;
    return sum;
}

}  // namespace fixture
