// Fixture: a well-behaved translation unit — every rule family
// must stay quiet (linted under virtual paths in each scoped dir).
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

struct Result
{
    long done;
    int status;
};

struct Backend
{
    Result accessEx(long addr, int type, long now);
};

// Ordered containers iterate deterministically.
std::map<std::uint64_t, double> table_;

double
emitAll(Backend &b)
{
    double sum = 0.0;
    for (const auto &[k, v] : table_)
        sum += v;
    const Result r = b.accessEx(0, 0, 0);
    if (r.status != 0)
        return -1.0;
    return sum + static_cast<double>(r.done);
}

}  // namespace fixture
