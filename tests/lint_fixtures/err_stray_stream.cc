// Fixture: err-stray-stream fires on stream writes in library code
// (virtual path src/spa/fixture.cc).
#include <cstdio>
#include <iostream>

namespace fixture {

void
debugDump(double v)
{
    std::cout << "value=" << v << "\n";  // VIOLATION line 11
    printf("value=%f\n", v);             // VIOLATION line 12
}

// Formatting into a caller-owned buffer is fine.
int
format(char *buf, unsigned n, double v)
{
    return std::snprintf(buf, n, "%f", v);
}

}  // namespace fixture
