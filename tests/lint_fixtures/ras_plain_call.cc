// Fixture: ras-plain-call fires on status-less wrappers called
// through a pointer in RAS-aware layers (virtual src/cxl/fixture.cc).
namespace fixture {

struct Backend
{
    long access(long addr, int type, long now);
    struct Result
    {
        long done;
        int status;
    };
    Result accessEx(long addr, int type, long now);
};

long
plain(Backend *b)
{
    return b->access(0, 0, 0);  // VIOLATION line 19
}

long
viaEx(Backend *b)
{
    return b->accessEx(0, 0, 0).done;
}

// Value receivers are non-backend helpers (e.g. dram::Channel):
// out of this rule's scope.
long
channelFine(Backend &chan)
{
    return chan.access(0, 0, 0);
}

}  // namespace fixture
