// Fixture: ras-ignored-status fires when an *Ex result is dropped,
// including via (void) (virtual path src/mem/fixture.cc).
namespace fixture {

struct Result
{
    long done;
    int status;
};

struct Backend
{
    Result accessEx(long addr, int type, long now);
};

long
dropped(Backend &b)
{
    b.accessEx(0, 0, 0);          // VIOLATION line 19
    (void)b.accessEx(0, 0, 0);    // VIOLATION line 20
    Result r = b.accessEx(0, 0, 0);
    return r.done;
}

long
consumed(Backend &b)
{
    auto r = b.accessEx(1, 0, 0);
    if (r.status != 0)
        return -1;
    return b.accessEx(2, 0, 0).done;
}

}  // namespace fixture
