// Fixture: hdr-pragma-once fires — the project convention is a
// classic include guard (virtual path src/sim/fixture.hh).
#pragma once

namespace fixture {
struct Empty {};
}  // namespace fixture
