// Fixture: err-fatal-user-input fires on SIM_FATAL in config
// parsing (virtual path src/ras/fault_plan_util.cc).
#define SIM_FATAL_DEFINED_ELSEWHERE 1

namespace fixture {

void
parseRate(double v)
{
    if (v < 0.0)
        SIM_FATAL("rate out of range");  // VIOLATION line 11
}

}  // namespace fixture
