// Fixture: lint:allow silences a violation on its own line or the
// line above, and the engine counts the suppression.
#include <cstdlib>

namespace fixture {

int
sameLine()
{
    return rand();  // lint:allow(det-banned-call)
}

int
lineAbove()
{
    // lint:allow(det-banned-call)
    return rand();
}

int
wrongRule()
{
    // lint:allow(ras-plain-call) — does not cover this rule
    return rand();  // VIOLATION line 24: still fires
}

}  // namespace fixture
