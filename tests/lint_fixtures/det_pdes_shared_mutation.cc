// det-pdes-shared-mutation fixture: handler lambdas may only mutate
// their own partition (named `self`); cross-partition effects must
// use Engine::send(). Setup code outside lambdas is exempt.

#include "sim/pdes.hh"

void
setup(pdes::Engine &eng)
{
    pdes::Partition *a = eng.addPartition("a");
    pdes::Partition *b = eng.addPartition("b");

    a->schedule(1, [a, b, &eng] {  // ok: setup scope, outside lambda
        pdes::Partition *self = a;
        self->scheduleAfter(5, [] {});  // ok: partition-local via self
        if (self->now() > 10 && !b->empty())  // ok: const accessors
            return;
        b->schedule(7, [] {});  // fires: peer queue from handler
        a->scheduleAfter(3, [] {});  // fires: not named self
        eng.send(*self, *b, self->now() + 4, [b] {
            b->reset();  // fires: non-allowlisted mutating member
        });
    });
    b->scheduleAfter(2, [] {});  // ok: setup scope again
}
