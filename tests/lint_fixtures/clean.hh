// Fixture: a well-formed header — guard matches the convention and
// every std:: type's header is included directly.
#ifndef CXLSIM_CLEAN_FIXTURE_HH
#define CXLSIM_CLEAN_FIXTURE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct Sample
{
    std::string label;
    std::vector<std::uint64_t> values;
};

}  // namespace fixture

#endif  // CXLSIM_CLEAN_FIXTURE_HH
