/**
 * @file
 * Supervised (crash-isolated) sweep execution tests: byte-identical
 * output vs the in-process engine for any job count, structured
 * failure causes for every crash class (SIGSEGV, SIGABRT, thrown
 * exception, premature exit, watchdog hang), retry accounting,
 * journal round trips, resumable runs that skip journaled-complete
 * points, runtime invariant plumbing, and the cache
 * stats/clear maintenance entry points.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/figures.hh"
#include "sim/invariants.hh"
#include "sim/journal.hh"
#include "sim/logging.hh"
#include "sim/run_cache.hh"
#include "sim/sweep.hh"

using namespace cxlsim;

namespace {

std::string
freshDir(const char *leaf)
{
    namespace fs = std::filesystem;
    const fs::path d = fs::path(testing::TempDir()) / leaf;
    fs::remove_all(d);
    return d.string();
}

std::string
freshJournal(const char *leaf)
{
    namespace fs = std::filesystem;
    const fs::path p =
        fs::path(testing::TempDir()) / (std::string(leaf) + ".jsonl");
    fs::remove(p);
    return p.string();
}

sweep::Options
isolated()
{
    sweep::Options o;
    o.cache = false;
    o.isolate = true;
    o.checkInvariants = false;
    return o;
}

/** What the victim point should do when it runs. */
enum class Victim { kOk, kSegv, kAbort, kThrow, kExit, kHang };

/**
 * Synthetic sweep with two healthy points on either side of one
 * configurable victim, plus a gather over the victim's slot. If
 * @p trapSurvivors, the healthy points segfault too — used by the
 * resume tests to prove journaled points are never re-executed.
 */
void
buildVictimSweep(sweep::Sweep &s, Victim mode,
                 bool trapSurvivors = false,
                 const std::string &marker = "")
{
    s.scope("victim-sweep");
    s.text("header\n");
    for (int k = 0; k < 2; ++k)
        s.point("pre k=" + std::to_string(k),
                [k, trapSurvivors](sweep::Emit &e) {
                    if (trapSurvivors) {
                        volatile int *p = nullptr;
                        *p = 1;  // must never run under --resume
                    }
                    e.printf("pre %d = %d\n", k, k * k);
                });
    const std::size_t victim =
        s.point("victim", 1, [mode, marker](sweep::Emit *slots) {
            switch (mode) {
              case Victim::kSegv: {
                  volatile int *p = nullptr;
                  *p = 42;
                  break;
              }
              case Victim::kAbort:
                std::abort();
              case Victim::kThrow:
                throw std::runtime_error("victim boom");
              case Victim::kExit:
                std::_Exit(7);
              case Victim::kHang:
                for (;;)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
              case Victim::kOk:
                break;
            }
            // Transient-failure mode: crash only until the marker
            // file exists (created below on the first attempt).
            if (!marker.empty() &&
                !std::filesystem::exists(marker)) {
                {
                    std::ofstream f(marker);
                    f << "attempted\n";
                }
                std::abort();
            }
            slots[0].text("victim ok\n");
        });
    s.place(victim);
    for (int k = 0; k < 2; ++k)
        s.point("post k=" + std::to_string(k),
                [k, trapSurvivors](sweep::Emit &e) {
                    if (trapSurvivors) {
                        volatile int *p = nullptr;
                        *p = 1;
                    }
                    e.printf("post %d = %d\n", k, k * k * k);
                });
    s.gather(s.slotsOf(victim),
             [](const std::vector<std::string> &in,
                sweep::Emit &out) {
                 out.printf("victim emitted %zu byte(s)\n",
                            in[0].size());
             });
}

std::string
renderVictim(const sweep::Options &opts, Victim mode,
             sweep::Sweep::Report *rep = nullptr,
             bool trapSurvivors = false,
             const std::string &marker = "")
{
    sweep::Sweep s("test-supervisor", opts);
    buildVictimSweep(s, mode, trapSurvivors, marker);
    return s.renderToString(rep);
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
}

}  // namespace

// ---------------------------------------------------------------
// Fault-free supervised runs: byte-identical to in-process mode.
// ---------------------------------------------------------------

TEST(Supervisor, FaultFreeOutputMatchesInProcessByteForByte)
{
    sweep::Options inproc;
    inproc.cache = false;
    inproc.checkInvariants = false;
    const std::string ref = renderVictim(inproc, Victim::kOk);
    ASSERT_FALSE(ref.empty());
    for (unsigned jobs : {1u, 8u}) {
        sweep::Options iso = isolated();
        iso.jobs = jobs;
        sweep::Sweep::Report rep;
        EXPECT_EQ(ref, renderVictim(iso, Victim::kOk, &rep))
            << "jobs=" << jobs;
        EXPECT_TRUE(rep.clean());
        EXPECT_EQ(rep.retries, 0u);
    }
}

/** ISSUE acceptance: real figures, isolated, N in {1, 8}. */
class FigureIsolateDeterminism
    : public testing::TestWithParam<const char *>
{
};

TEST_P(FigureIsolateDeterminism, MatchesInProcessBytes)
{
    const figs::Figure *fig = figs::find(GetParam());
    ASSERT_NE(fig, nullptr);

    auto render = [&](const sweep::Options &o) {
        sweep::Sweep s(fig->binary, o);
        s.scope(fig->binary);
        fig->build(s);
        sweep::Sweep::Report rep;
        const std::string out = s.renderToString(&rep);
        EXPECT_TRUE(rep.clean());
        return out;
    };

    sweep::Options inproc;
    inproc.cache = false;
    inproc.checkInvariants = false;
    const std::string ref = render(inproc);
    ASSERT_FALSE(ref.empty());
    for (unsigned jobs : {1u, 8u}) {
        sweep::Options iso = isolated();
        iso.jobs = jobs;
        EXPECT_EQ(ref, render(iso)) << "jobs=" << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(Figures, FigureIsolateDeterminism,
                         testing::Values("fig01", "fig16",
                                         "usecase"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

// ---------------------------------------------------------------
// Crash classification and graceful degradation.
// ---------------------------------------------------------------

namespace {

/** Run one victim mode to exhaustion and return the report. */
sweep::Sweep::Report
crashReport(Victim mode, std::string *out,
            unsigned maxAttempts = 2, unsigned timeoutMs = 0)
{
    sweep::Options o = isolated();
    o.jobs = 4;
    o.maxAttempts = maxAttempts;
    o.timeoutMs = timeoutMs;
    sweep::Sweep::Report rep;
    *out = renderVictim(o, mode, &rep);
    return rep;
}

}  // namespace

TEST(Supervisor, SegvDegradesGracefully)
{
    std::string out;
    const sweep::Sweep::Report rep =
        crashReport(Victim::kSegv, &out);

    EXPECT_FALSE(rep.clean());
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].key, "victim-sweep|victim");
    EXPECT_EQ(rep.failures[0].cause, "SIGSEGV");
    EXPECT_EQ(rep.failures[0].attempts, 2u);
    EXPECT_EQ(rep.retries, 1u);

    // Survivors render normally; the victim and its dependent
    // gather render deterministic placeholders.
    EXPECT_NE(out.find("pre 0 = 0\n"), std::string::npos);
    EXPECT_NE(out.find("post 1 = 1\n"), std::string::npos);
    EXPECT_NE(out.find("[melody] point failed: "
                       "victim-sweep|victim (SIGSEGV, "
                       "2 attempt(s))\n"),
              std::string::npos);
    EXPECT_NE(out.find("[melody] gather skipped: depends on "
                       "failed point: victim-sweep|victim\n"),
              std::string::npos);
    EXPECT_EQ(out.find("victim ok"), std::string::npos);
}

TEST(Supervisor, AbortReportsSigabrt)
{
    std::string out;
    const sweep::Sweep::Report rep =
        crashReport(Victim::kAbort, &out);
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].cause, "SIGABRT");
}

TEST(Supervisor, ThrownExceptionReportsWhat)
{
    std::string out;
    const sweep::Sweep::Report rep =
        crashReport(Victim::kThrow, &out);
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].cause, "exception: victim boom");
}

TEST(Supervisor, PrematureExitReportsExitCode)
{
    std::string out;
    const sweep::Sweep::Report rep =
        crashReport(Victim::kExit, &out);
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].cause, "exit-code 7");
}

TEST(Supervisor, HangTripsWatchdog)
{
    std::string out;
    const sweep::Sweep::Report rep = crashReport(
        Victim::kHang, &out, /*maxAttempts=*/1,
        /*timeoutMs=*/250);
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].cause, "watchdog-timeout");
    EXPECT_EQ(rep.failures[0].attempts, 1u);
    EXPECT_EQ(rep.retries, 0u);
}

TEST(Supervisor, RetryRecoversTransientFailure)
{
    namespace fs = std::filesystem;
    const fs::path marker =
        fs::path(testing::TempDir()) / "supervisor-transient";
    fs::remove(marker);

    sweep::Options o = isolated();
    o.jobs = 1;
    o.maxAttempts = 3;
    sweep::Sweep::Report rep;
    const std::string out = renderVictim(
        o, Victim::kOk, &rep, false, marker.string());

    // First attempt aborts after dropping the marker; the retry
    // sees it and succeeds, so the sweep finishes clean.
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.retries, 1u);
    EXPECT_NE(out.find("victim ok\n"), std::string::npos);
    EXPECT_NE(out.find("victim emitted 10 byte(s)\n"),
              std::string::npos);
    fs::remove(marker);
}

// ---------------------------------------------------------------
// Journal: lifecycle records, load(), resume, salt guard.
// ---------------------------------------------------------------

TEST(Journal, RecordsLifecycleAndLoadsBack)
{
    const std::string path = freshJournal("journal-lifecycle");
    sweep::Options o = isolated();
    o.jobs = 2;
    o.journalPath = path;
    o.salt = "journal-test-salt";
    sweep::Sweep::Report rep;
    renderVictim(o, Victim::kSegv, &rep);
    ASSERT_EQ(rep.failures.size(), 1u);

    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"event\":\"sweep\""), std::string::npos);
    EXPECT_NE(text.find("\"salt\":\"journal-test-salt\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"queued\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"started\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"finished\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\":\"failed\""),
              std::string::npos);
    EXPECT_NE(text.find("\"final\":true"), std::string::npos);

    // load() surfaces the four completions, not the failure.
    std::map<std::string, std::vector<std::string>> done;
    std::string err;
    ASSERT_TRUE(sweep::Journal::load(path, "journal-test-salt",
                                     &done, &err))
        << err;
    EXPECT_EQ(done.size(), 4u);

    // A different salt refuses the whole journal.
    done.clear();
    EXPECT_FALSE(
        sweep::Journal::load(path, "other-salt", &done, &err));
    EXPECT_NE(err.find("salt"), std::string::npos);
}

TEST(Journal, LoadIgnoresTornTrailingLine)
{
    const std::string path = freshJournal("journal-torn");
    sweep::Options o = isolated();
    o.jobs = 1;
    o.journalPath = path;
    o.salt = "torn-salt";
    renderVictim(o, Victim::kOk);

    // Simulate a crash mid-append: a partial JSON line with no
    // trailing newline must be skipped, not fail the load.
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f << "{\"event\":\"finished\",\"hash\":\"dead";
    }
    std::map<std::string, std::vector<std::string>> done;
    std::string err;
    ASSERT_TRUE(
        sweep::Journal::load(path, "torn-salt", &done, &err))
        << err;
    EXPECT_EQ(done.size(), 5u);
}

TEST(Supervisor, ResumeSkipsJournaledPoints)
{
    const std::string path = freshJournal("journal-resume");

    // Run 1: the victim segfaults; everything else completes and
    // is journaled.
    sweep::Options first = isolated();
    first.jobs = 4;
    first.journalPath = path;
    sweep::Sweep::Report rep1;
    renderVictim(first, Victim::kSegv, &rep1);
    ASSERT_EQ(rep1.failures.size(), 1u);

    // Run 2: --resume with every survivor booby-trapped to
    // segfault if re-executed. A clean report proves the journal
    // (not recomputation) supplied their bytes.
    sweep::Options second = isolated();
    second.jobs = 4;
    second.resume = true;
    second.journalPath = path;
    sweep::Sweep::Report rep2;
    const std::string out = renderVictim(
        second, Victim::kOk, &rep2, /*trapSurvivors=*/true);
    EXPECT_TRUE(rep2.clean());
    EXPECT_EQ(rep2.resumedPoints, 4u);

    // The resumed output is byte-identical to a fully clean run.
    sweep::Options clean = isolated();
    EXPECT_EQ(out, renderVictim(clean, Victim::kOk));
}

TEST(Supervisor, ResumeWithoutJournalPathIsAConfigError)
{
    sweep::Options o = isolated();
    o.resume = true;
    o.journalPath.clear();
    EXPECT_THROW(renderVictim(o, Victim::kOk), ConfigError);
}

TEST(Supervisor, ResumeRefusesSaltMismatch)
{
    const std::string path = freshJournal("journal-salt");
    sweep::Options first = isolated();
    first.journalPath = path;
    first.salt = "salt-one";
    renderVictim(first, Victim::kOk);

    sweep::Options second = isolated();
    second.resume = true;
    second.journalPath = path;
    second.salt = "salt-two";
    EXPECT_THROW(renderVictim(second, Victim::kOk), ConfigError);
}

// ---------------------------------------------------------------
// Invariant checker: collector plumbing and diagnostics.
// ---------------------------------------------------------------

TEST(Invariants, RecordCapAndScopeRestore)
{
    EXPECT_EQ(sim::currentInvariants(), nullptr);
    sim::Invariants outer;
    {
        sim::InvariantScope a(&outer);
        EXPECT_EQ(sim::currentInvariants(), &outer);
        {
            sim::InvariantScope b(nullptr);
            EXPECT_EQ(sim::currentInvariants(), nullptr);
        }
        EXPECT_EQ(sim::currentInvariants(), &outer);

        for (int i = 0; i < 100; ++i)
            outer.record("test/cap", "loop",
                         "i=" + std::to_string(i));
    }
    EXPECT_EQ(sim::currentInvariants(), nullptr);
    EXPECT_TRUE(outer.failed());
    EXPECT_EQ(outer.violations().size(),
              sim::Invariants::kMaxRecorded);
    EXPECT_EQ(outer.dropped(),
              100u - sim::Invariants::kMaxRecorded);
}

TEST(Invariants, ApproxGeToleratesRoundoff)
{
    EXPECT_TRUE(sim::approxGe(1.0, 1.0));
    EXPECT_TRUE(sim::approxGe(2.0, 1.0));
    EXPECT_TRUE(sim::approxGe(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(sim::approxGe(1.0, 1.1));
}

namespace {

/** One-point sweep whose body records a synthetic violation. */
std::string
renderViolating(const sweep::Options &opts,
                sweep::Sweep::Report *rep)
{
    sweep::Sweep s("test-invariants", opts);
    s.scope("iv");
    s.point("bad", [](sweep::Emit &e) {
        if (sim::Invariants *inv = sim::currentInvariants())
            inv->record("test/synthetic", "renderViolating",
                        "x=1");
        e.text("bad ran\n");
    });
    return s.renderToString(rep);
}

}  // namespace

TEST(Invariants, ViolationsSurfaceInProcess)
{
    sweep::Options o;
    o.cache = false;
    o.checkInvariants = true;
    sweep::Sweep::Report rep;
    const std::string out = renderViolating(o, &rep);
    EXPECT_NE(out.find("bad ran\n"), std::string::npos);
    EXPECT_FALSE(rep.clean());
    ASSERT_EQ(rep.invariantDiags.size(), 1u);
    EXPECT_EQ(rep.invariantDiags[0].invariant, "test/synthetic");
    EXPECT_EQ(rep.invariantDiags[0].pointKey, "iv|bad");
    EXPECT_EQ(rep.invariantDiags[0].values, "x=1");
}

TEST(Invariants, ViolationsCrossTheIsolationPipe)
{
    sweep::Options o = isolated();
    o.checkInvariants = true;
    sweep::Sweep::Report rep;
    const std::string out = renderViolating(o, &rep);
    EXPECT_NE(out.find("bad ran\n"), std::string::npos);
    ASSERT_EQ(rep.invariantDiags.size(), 1u);
    EXPECT_EQ(rep.invariantDiags[0].invariant, "test/synthetic");
    EXPECT_EQ(rep.invariantDiags[0].where, "renderViolating");
}

TEST(Invariants, DisabledCheckerRecordsNothing)
{
    sweep::Options o;
    o.cache = false;
    o.checkInvariants = false;
    sweep::Sweep::Report rep;
    renderViolating(o, &rep);
    EXPECT_TRUE(rep.clean());
}

TEST(Invariants, RealFiguresRunCleanWithCheckerOn)
{
    const figs::Figure *fig = figs::find("fig01");
    ASSERT_NE(fig, nullptr);
    sweep::Options o;
    o.cache = false;
    o.checkInvariants = true;
    sweep::Sweep s(fig->binary, o);
    s.scope(fig->binary);
    fig->build(s);
    sweep::Sweep::Report rep;
    s.renderToString(&rep);
    EXPECT_TRUE(rep.clean());
    for (const auto &d : rep.invariantDiags)
        ADD_FAILURE() << d.invariant << " at " << d.where << ": "
                      << d.values;
}

// ---------------------------------------------------------------
// Crashtest figure registration (used by the CI smoke job).
// ---------------------------------------------------------------

TEST(CrashTestFigure, FindableButHiddenFromSuite)
{
    EXPECT_NE(figs::find("crashtest"), nullptr);
    EXPECT_NE(figs::find("crashtest_selftest"), nullptr);
    for (const figs::Figure &f : figs::all())
        EXPECT_STRNE(f.name, "crashtest");
}

// ---------------------------------------------------------------
// Run-cache maintenance: scanDir / clearDir (melody cache).
// ---------------------------------------------------------------

TEST(RunCacheMaintenance, ScanAndClear)
{
    namespace fs = std::filesystem;
    const std::string dir = freshDir("cache-maint");

    sweep::Options o;
    o.cache = true;
    o.cacheDir = dir;
    o.salt = "maint-salt";
    o.checkInvariants = false;
    sweep::Sweep::Report rep;
    renderVictim(o, Victim::kOk, &rep);
    ASSERT_GT(rep.cacheStores, 0u);

    // Drop a foreign file in the directory: counted, never
    // deleted.
    const fs::path foreign = fs::path(dir) / "README.txt";
    {
        std::ofstream f(foreign);
        f << "not a cache entry\n";
    }

    sweep::RunCache::DirStats st = sweep::RunCache::scanDir(dir);
    EXPECT_EQ(st.entries, rep.cacheStores);
    EXPECT_GT(st.bytes, 0u);
    EXPECT_EQ(st.foreign, 1u);
    ASSERT_EQ(st.perSalt.size(), 1u);
    EXPECT_EQ(st.perSalt.begin()->first, "maint-salt");
    EXPECT_EQ(st.perSalt.begin()->second, rep.cacheStores);

    const std::uint64_t removed = sweep::RunCache::clearDir(dir);
    EXPECT_EQ(removed, rep.cacheStores);
    EXPECT_TRUE(fs::exists(foreign));

    st = sweep::RunCache::scanDir(dir);
    EXPECT_EQ(st.entries, 0u);
    EXPECT_EQ(st.foreign, 1u);

    // A missing directory scans as empty rather than erroring.
    st = sweep::RunCache::scanDir(dir + "-missing");
    EXPECT_EQ(st.entries, 0u);
    EXPECT_EQ(st.bytes, 0u);
}

// ---------------------------------------------------------------
// Environment plumbing for the standalone figure binaries.
// ---------------------------------------------------------------

TEST(SweepEnv, IsolateAndInvariantSwitchesParse)
{
    setenv("MELODY_SWEEP_ISOLATE", "1", 1);
    setenv("MELODY_SWEEP_CHECK_INVARIANTS", "1", 1);
    sweep::Options on = sweep::optionsFromEnv();
    EXPECT_TRUE(on.isolate);
    EXPECT_TRUE(on.checkInvariants);

    setenv("MELODY_SWEEP_ISOLATE", "0", 1);
    setenv("MELODY_SWEEP_CHECK_INVARIANTS", "off", 1);
    sweep::Options off = sweep::optionsFromEnv();
    EXPECT_FALSE(off.isolate);
    EXPECT_FALSE(off.checkInvariants);

    unsetenv("MELODY_SWEEP_ISOLATE");
    unsetenv("MELODY_SWEEP_CHECK_INVARIANTS");
}
