/**
 * @file
 * Unit tests for the simulation kernel: event queue and RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

using namespace cxlsim;

TEST(Types, NsTickConversionRoundTrips)
{
    EXPECT_EQ(nsToTicks(1.0), kTicksPerNs);
    EXPECT_EQ(nsToTicks(114.0), 114 * kTicksPerNs);
    EXPECT_DOUBLE_EQ(ticksToNs(nsToTicks(250.0)), 250.0);
    EXPECT_EQ(usToTicks(1.0), kTicksPerUs);
}

TEST(Types, LineAlign)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(130), 128u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(300, [&] { order.push_back(3); });
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(200, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(50, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilAdvancesClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.schedule(500, [&] { ++fired; });
    q.runUntil(250);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 250u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, StressTickSeqOrdering)
{
    // 10k randomly-ticked events must execute in exact (tick,
    // insertion-seq) order — the determinism contract the whole
    // simulator leans on.
    constexpr int kEvents = 10000;
    EventQueue q;
    Rng rng(12345);
    std::vector<std::pair<Tick, int>> expected;
    expected.reserve(kEvents);
    std::vector<std::pair<Tick, int>> executed;
    executed.reserve(kEvents);
    for (int id = 0; id < kEvents; ++id) {
        // Narrow tick range so ties are common.
        const Tick when = rng.below(977);
        expected.emplace_back(when, id);
        q.schedule(when, [&executed, &q, id] {
            executed.emplace_back(q.now(), id);
        });
    }
    q.run();
    // Stable sort by tick keeps insertion order within a tick.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(executed.size(), expected.size());
    for (int i = 0; i < kEvents; ++i) {
        ASSERT_EQ(executed[i].first, expected[i].first) << "at " << i;
        ASSERT_EQ(executed[i].second, expected[i].second)
            << "at " << i;
    }
    EXPECT_EQ(q.executed(), static_cast<std::uint64_t>(kEvents));
}

TEST(EventQueue, HandlerIsAllocationFreeForTypicalCaptures)
{
    // A four-word capture must fit the inline buffer.
    struct Capture
    {
        void *a, *b, *c;
        std::uint64_t d;
    };
    static_assert(sizeof(Capture) <= kInlineFunctionStorage);
    int hits = 0;
    std::uint64_t sum = 0;
    EventQueue q;
    Capture cap{&hits, &q, nullptr, 41};
    q.schedule(5, [cap, &hits, &sum] {
        ++hits;
        sum += cap.d;
    });
    q.run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(sum, 41u);
}

TEST(InlineFunction, MoveOnlyAndOversizedCaptures)
{
    // Move-only capture.
    auto p = std::make_unique<int>(7);
    InlineFunction f([q = std::move(p)] { *q += 1; });
    EXPECT_TRUE(static_cast<bool>(f));
    f();

    // Oversized capture falls back to the heap but still works.
    struct Big
    {
        char bytes[200];
    };
    Big big{};
    big.bytes[199] = 42;
    int seen = 0;
    InlineFunction g([big, &seen] { seen = big.bytes[199]; });
    InlineFunction h = std::move(g);
    EXPECT_FALSE(static_cast<bool>(g));
    h();
    EXPECT_EQ(seen, 42);

    // Move-assignment releases the previous payload.
    h = InlineFunction([&seen] { seen = -1; });
    h();
    EXPECT_EQ(seen, -1);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(n), n);
    }
    EXPECT_EQ(r.below(1), 0u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(11);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_TRUE(r.chance(2.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += r.exponential(250.0);
    EXPECT_NEAR(sum / 20000.0, 250.0, 10.0);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng r(17);
    double lo = 1e9, hi = 0;
    for (int i = 0; i < 20000; ++i) {
        const double v = r.boundedPareto(100.0, 3000.0, 1.2);
        ASSERT_GE(v, 99.999);
        ASSERT_LE(v, 3000.001);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    // Heavy tail: both ends of the range get visited.
    EXPECT_LT(lo, 120.0);
    EXPECT_GT(hi, 1500.0);
}

TEST(Rng, BoundedParetoIsHeavyTailedTowardLow)
{
    Rng r(19);
    int below300 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        below300 += r.boundedPareto(100.0, 3000.0, 1.5) < 300.0;
    // Most mass near the lower bound.
    EXPECT_GT(below300, n / 2);
}

TEST(Rng, ZipfBoundsAndSkew)
{
    Rng r(23);
    const std::uint64_t n = 1000;
    std::uint64_t lowHalf = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t v = r.zipf(n, 0.9);
        ASSERT_LT(v, n);
        lowHalf += v < n / 2;
    }
    // Skew concentrates on low ranks.
    EXPECT_GT(lowHalf, 14000u);

    // Zero skew is roughly uniform.
    lowHalf = 0;
    for (int i = 0; i < 20000; ++i)
        lowHalf += r.zipf(n, 0.0) < n / 2;
    EXPECT_NEAR(static_cast<double>(lowHalf), 10000.0, 600.0);
}

TEST(Rng, NormalMoments)
{
    Rng r(29);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.fork(1);
    Rng c = a.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += b.next() == c.next();
    EXPECT_LT(same, 2);
}
