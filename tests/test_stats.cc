/**
 * @file
 * Unit and property tests for the statistics library.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/streaming.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "stats/timeseries.hh"

using namespace cxlsim;
using namespace cxlsim::stats;

namespace {

/** Reference exact percentile from raw samples. */
double
refPercentile(std::vector<double> v, double q)
{
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1));
    return v[idx];
}

}  // namespace

TEST(Histogram, CountMeanMinMax)
{
    Histogram h(1, 1e6);
    h.record(100);
    h.record(200);
    h.record(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
    EXPECT_DOUBLE_EQ(h.min(), 100.0);
    EXPECT_DOUBLE_EQ(h.max(), 300.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_TRUE(h.cdfPoints().empty());
}

TEST(Histogram, SingleValuePercentiles)
{
    Histogram h(1, 1e6);
    h.recordN(500.0, 1000);
    EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.04);
    EXPECT_NEAR(h.percentile(0.999), 500.0, 500.0 * 0.04);
}

/** Property: percentiles within bucket resolution of exact values
 *  across several distributions. */
class HistogramPercentiles : public ::testing::TestWithParam<int>
{
};

TEST_P(HistogramPercentiles, MatchesExactWithinBucketError)
{
    Rng r(100 + GetParam());
    std::vector<double> samples;
    Histogram h(1, 1e7, 64);
    for (int i = 0; i < 50000; ++i) {
        double v;
        switch (GetParam()) {
          case 0:
            v = 100 + r.uniform() * 900;  // uniform
            break;
          case 1:
            v = r.exponential(300.0) + 50;  // exponential
            break;
          case 2:
            v = r.boundedPareto(100, 100000, 1.1);  // heavy tail
            break;
          default:
            v = r.normal(1000, 100);  // normal-ish
            v = std::max(v, 1.0);
            break;
        }
        samples.push_back(v);
        h.record(v);
    }
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = refPercentile(samples, q);
        // log-bucketed with 64/decade: ~3.7% bucket width.
        EXPECT_NEAR(h.percentile(q), exact, exact * 0.06)
            << "q=" << q << " dist=" << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramPercentiles,
                         ::testing::Values(0, 1, 2, 3));

TEST(Histogram, MergeEqualsCombinedRecording)
{
    Rng r(55);
    Histogram a(1, 1e6), b(1, 1e6), both(1, 1e6);
    for (int i = 0; i < 5000; ++i) {
        const double v = 10 + r.uniform() * 1000;
        if (i % 2) {
            a.record(v);
        } else {
            b.record(v);
        }
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_NEAR(a.mean(), both.mean(), 1e-9 * both.mean());
    EXPECT_DOUBLE_EQ(a.percentile(0.9), both.percentile(0.9));
}

TEST(Histogram, CdfPointsMonotonic)
{
    Rng r(66);
    Histogram h(1, 1e6);
    for (int i = 0; i < 10000; ++i)
        h.record(r.exponential(200));
    const auto pts = h.cdfPoints();
    ASSERT_FALSE(pts.empty());
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].first, pts[i - 1].first);
        EXPECT_GE(pts[i].second, pts[i - 1].second);
    }
    EXPECT_NEAR(pts.back().second, 1.0, 1e-12);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(10, 1000);
    h.record(1.0);     // below range
    h.record(1e9);     // above range
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GT(h.percentile(0.9), 0.0);
}

TEST(Streaming, WelfordMatchesReference)
{
    Rng r(77);
    StreamingStats s;
    std::vector<double> v;
    for (int i = 0; i < 10000; ++i) {
        const double x = r.normal(50, 7);
        s.add(x);
        v.push_back(x);
    }
    double mean = 0;
    for (double x : v)
        mean += x;
    mean /= v.size();
    double var = 0;
    for (double x : v)
        var += (x - mean) * (x - mean);
    var /= (v.size() - 1);
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
    EXPECT_EQ(s.count(), v.size());
}

TEST(Streaming, MergeEqualsCombined)
{
    Rng r(88);
    StreamingStats a, b, both;
    for (int i = 0; i < 2000; ++i) {
        const double x = r.uniform() * 100;
        ((i % 3) ? a : b).add(x);
        both.add(x);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), both.variance(), 1e-6);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
}

TEST(Streaming, BandwidthMeter)
{
    BandwidthMeter m;
    m.start(0);
    m.addBytes(64ULL * 1000 * 1000);  // 64 MB
    m.stop(kTicksPerMs);              // over 1 ms
    EXPECT_NEAR(m.gbps(), 64.0, 0.01);
    m.reset();
    EXPECT_EQ(m.gbps(), 0.0);
}

TEST(Summary, QuantileExact)
{
    std::vector<double> v{5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Summary, FractionBelow)
{
    std::vector<double> v{1, 2, 3, 4, 10};
    EXPECT_DOUBLE_EQ(fractionBelow(v, 4.0), 0.8);
    EXPECT_DOUBLE_EQ(fractionBelow(v, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(fractionBelow(v, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(fractionBelow({}, 1.0), 0.0);
}

TEST(Summary, PearsonPerfectCorrelation)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> yn{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Summary, PearsonUncorrelated)
{
    Rng r(99);
    std::vector<double> x, y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(r.uniform());
        y.push_back(r.uniform());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Summary, RegressionSlope)
{
    std::vector<double> x{0, 1, 2, 3};
    std::vector<double> y{1, 3, 5, 7};  // slope 2
    EXPECT_NEAR(regressionSlope(x, y), 2.0, 1e-12);
}

TEST(Summary, ViolinSummaryOrdering)
{
    Rng r(111);
    std::vector<double> v;
    for (int i = 0; i < 3000; ++i)
        v.push_back(r.normal(40, 10));
    const ViolinSummary s = violinSummary(v);
    EXPECT_LE(s.min, s.p25);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.max);
    EXPECT_NEAR(s.median, 40.0, 1.0);
    ASSERT_EQ(s.gridValues.size(), s.density.size());
    // Density should peak near the median for a unimodal sample.
    std::size_t peak = 0;
    for (std::size_t i = 0; i < s.density.size(); ++i)
        if (s.density[i] > s.density[peak])
            peak = i;
    EXPECT_NEAR(s.gridValues[peak], 40.0, 8.0);
}

TEST(Summary, EmpiricalCdf)
{
    const auto pts = empiricalCdf({3, 1, 2});
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
    EXPECT_NEAR(pts[0].second, 1.0 / 3, 1e-12);
    EXPECT_DOUBLE_EQ(pts[2].first, 3.0);
    EXPECT_NEAR(pts[2].second, 1.0, 1e-12);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"A", "LongHeader"});
    t.addRow({"x", "1"});
    t.addRow({"yy", "2.5"});
    const std::string out = t.render();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
    EXPECT_NE(out.find("yy"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(10.0, 0), "10");
}

TEST(TimeSeries, BasicStats)
{
    TimeSeries ts;
    ts.add(0, 1.0);
    ts.add(10, 5.0);
    ts.add(20, 3.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(ts.meanValue(), 3.0);
}

TEST(TimeSeries, DownsampleKeepsSpikes)
{
    TimeSeries ts;
    for (int i = 0; i < 1000; ++i)
        ts.add(i, i == 567 ? 99.0 : 1.0);
    const TimeSeries d = ts.downsampleMax(50);
    EXPECT_LE(d.size(), 50u);
    EXPECT_DOUBLE_EQ(d.maxValue(), 99.0);
}
