/**
 * @file
 * PDES determinism contract: intra-run parallelism (`--sim-threads`)
 * must be invisible in every output byte.
 *
 *  - Engine: epoch/mailbox scheduling is bit-identical for 1, 2 and
 *    8 workers; sends exactly at the lookahead horizon are legal
 *    and exact; below-horizon sends clamp and report; same-tick
 *    cross-partition messages execute in fixed (src, send-order)
 *    sequence regardless of scheduling.
 *  - FrontierGate: shared sections execute in exact serial
 *    (key, idx) order under racing gang threads.
 *  - MultiCore: full-simulation results (counters, samples,
 *    backend stats, RAS) match the serial engine bit-for-bit at
 *    sim-threads 2 and 8, and ≥3 real figures render identical
 *    bytes at sim-threads 1 vs 8.
 *
 * The PdesStress suite doubles as the TSan target (CI runs it under
 * the tsan preset to certify the gate's happens-before edges).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/figures.hh"
#include "core/platform.hh"
#include "core/slowdown.hh"
#include "cxl/device_profile.hh"
#include "ras/fault_plan.hh"
#include "sim/invariants.hh"
#include "sim/parallel.hh"
#include "sim/partition.hh"
#include "sim/pdes.hh"
#include "sim/sweep.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

namespace {

/** RAII sim-threads override (tests must not leak the global). */
class SimThreadsOverride
{
  public:
    explicit SimThreadsOverride(unsigned n)
        : prev_(pdes::simThreads())
    {
        pdes::setSimThreads(n);
    }
    ~SimThreadsOverride() { pdes::setSimThreads(prev_); }

  private:
    unsigned prev_;
};

/**
 * A deterministic multi-partition scenario: a ring of P partitions.
 * Each event mixes (partition, tick, hop) into partition-local
 * state, schedules local follow-ups, and forwards around the ring
 * at the lookahead horizon. Returns a per-partition fingerprint
 * that any scheduling difference would perturb.
 */
struct RingResult
{
    std::vector<std::uint64_t> hash;
    std::vector<std::uint64_t> executed;
    Tick finalNow;
    std::uint64_t epochs;
};

RingResult
runRing(unsigned threads, std::size_t nparts, Tick lookahead,
        int hops)
{
    pdes::Engine eng(lookahead);
    std::vector<pdes::Partition *> parts;
    for (std::size_t i = 0; i < nparts; ++i)
        parts.push_back(eng.addPartition("p" + std::to_string(i)));

    std::vector<std::uint64_t> hash(nparts, 0);
    auto mix = [&hash](std::uint32_t id, Tick now,
                       std::uint64_t salt) {
        std::uint64_t h = hash[id];
        h ^= (now + salt) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
        hash[id] = h;
    };

    // Hop forwarder: lives in a heap box so queued handlers can
    // reference it through a stable location; events only execute
    // inside eng.run() below, so the raw captures cannot dangle.
    struct Hop
    {
        pdes::Engine *eng;
        std::vector<pdes::Partition *> *parts;
        std::function<void(std::uint32_t, int)> fwd;
    };
    auto hop = std::make_unique<Hop>();
    Hop *h = hop.get();
    h->eng = &eng;
    h->parts = &parts;
    h->fwd = [h, &mix, nparts](std::uint32_t at, int left) {
        pdes::Partition *self = (*h->parts)[at];
        mix(at, self->now(), static_cast<std::uint64_t>(left));
        // Local follow-up below the lookahead horizon: legal for
        // same-partition events.
        self->scheduleAfter(1, [&mix, at, self] {
            mix(at, self->now(), 7);
        });
        if (left <= 0)
            return;
        const std::uint32_t next =
            (at + 1) % static_cast<std::uint32_t>(nparts);
        h->eng->send(*self, *(*h->parts)[next],
                     self->now() + h->eng->lookahead(),
                     [h, next, left] { h->fwd(next, left - 1); });
    };

    // Several concurrent ring walks starting in different
    // partitions at staggered times.
    for (std::size_t i = 0; i < nparts; ++i) {
        const auto id = static_cast<std::uint32_t>(i);
        parts[i]->schedule(10 * (i + 1),
                           [h, id, hops] { h->fwd(id, hops); });
    }

    eng.run(threads);

    RingResult r;
    r.hash = std::move(hash);
    for (std::size_t i = 0; i < nparts; ++i)
        r.executed.push_back(parts[i]->executed());
    r.finalNow = eng.now();
    r.epochs = eng.epochs();
    return r;
}

std::vector<workloads::WorkloadProfile>
smallSuite()
{
    // Same 1-/2-/6-/10-thread mix as test_determinism, shrunk for
    // speed; the multi-thread entries are the ones the parallel
    // engine actually partitions.
    std::vector<workloads::WorkloadProfile> ws;
    for (const char *n :
         {"605.mcf_s", "602.gcc_s", "519.lbm_r", "603.bwaves_s"}) {
        workloads::WorkloadProfile w = workloads::byName(n);
        w.blocksPerCore = 800;
        ws.push_back(w);
    }
    return ws;
}

void
expectSameResult(const cpu::RunResult &a, const cpu::RunResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.wallTicks, b.wallTicks);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.counters.p1, b.counters.p1);
    EXPECT_EQ(a.counters.p2, b.counters.p2);
    EXPECT_EQ(a.counters.p3, b.counters.p3);
    EXPECT_EQ(a.counters.p4, b.counters.p4);
    EXPECT_EQ(a.counters.p5, b.counters.p5);
    EXPECT_EQ(a.counters.p6, b.counters.p6);
    EXPECT_EQ(a.counters.p7, b.counters.p7);
    EXPECT_EQ(a.counters.p8, b.counters.p8);
    EXPECT_EQ(a.counters.p9, b.counters.p9);
    EXPECT_EQ(a.counters.l1pfIssued, b.counters.l1pfIssued);
    EXPECT_EQ(a.counters.l1pfL3Hit, b.counters.l1pfL3Hit);
    EXPECT_EQ(a.counters.l1pfL3Miss, b.counters.l1pfL3Miss);
    EXPECT_EQ(a.counters.l2pfIssued, b.counters.l2pfIssued);
    EXPECT_EQ(a.counters.l2pfL3Hit, b.counters.l2pfL3Hit);
    EXPECT_EQ(a.counters.l2pfL3Miss, b.counters.l2pfL3Miss);
    EXPECT_EQ(a.counters.demandL3Miss, b.counters.demandL3Miss);
    EXPECT_EQ(a.counters.machineChecks, b.counters.machineChecks);
    EXPECT_EQ(a.counters.demandTimeouts, b.counters.demandTimeouts);
    EXPECT_EQ(a.counters.prefetchDrops, b.counters.prefetchDrops);
    EXPECT_EQ(a.backendStats.reads, b.backendStats.reads);
    EXPECT_EQ(a.backendStats.writes, b.backendStats.writes);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].when, b.samples[i].when);
        EXPECT_EQ(a.samples[i].counters.cycles,
                  b.samples[i].counters.cycles);
        EXPECT_EQ(a.samples[i].counters.p1, b.samples[i].counters.p1);
    }
    ASSERT_EQ(a.ras.size(), b.ras.size());
    for (std::size_t i = 0; i < a.ras.size(); ++i) {
        EXPECT_EQ(a.ras[i].name, b.ras[i].name);
        EXPECT_EQ(a.ras[i].stats.corrected, b.ras[i].stats.corrected);
        EXPECT_EQ(a.ras[i].stats.uncorrected,
                  b.ras[i].stats.uncorrected);
        EXPECT_EQ(a.ras[i].stats.crcErrors, b.ras[i].stats.crcErrors);
        EXPECT_EQ(a.ras[i].stats.linkReplays,
                  b.ras[i].stats.linkReplays);
    }
}

}  // namespace

// -----------------------------------------------------------------
// Engine
// -----------------------------------------------------------------

TEST(PdesEngine, ThreadCountInvariant)
{
    const RingResult ref = runRing(1, 6, 500, 40);
    EXPECT_GT(ref.epochs, 0u);
    for (unsigned threads : {2u, 8u}) {
        const RingResult out = runRing(threads, 6, 500, 40);
        SCOPED_TRACE(threads);
        EXPECT_EQ(ref.hash, out.hash);
        EXPECT_EQ(ref.executed, out.executed);
        EXPECT_EQ(ref.finalNow, out.finalNow);
        EXPECT_EQ(ref.epochs, out.epochs);
    }
}

TEST(PdesEngine, DeviceProfileLookaheadDrivesEpochs)
{
    // The production lookahead source: a device's minimum
    // cross-partition latency (link serialization + propagation +
    // fixed controller stage). It must be positive — a zero
    // lookahead would serialize every epoch — and a ring built on
    // it must stay schedule-invariant.
    for (const char *dev : {"CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        const cxl::DeviceProfile p = cxl::profileByName(dev);
        const Tick la = p.pdesLookahead();
        SCOPED_TRACE(dev);
        EXPECT_GT(la, 0u);
        // Lower-bounds the idle latency by construction.
        EXPECT_LT(la, nsToTicks(p.controllerNs +
                                p.linkCfg.minTransferNs() + 1.0));
        const RingResult ref = runRing(1, 3, la, 6);
        const RingResult out = runRing(4, 3, la, 6);
        EXPECT_EQ(ref.hash, out.hash);
    }
}

TEST(PdesEngine, CleanRunRecordsNoViolations)
{
    sim::Invariants inv;
    {
        sim::InvariantScope scope(&inv);
        runRing(8, 4, 200, 10);
    }
    EXPECT_FALSE(inv.failed());
}

TEST(PdesEngine, SendExactlyAtHorizonIsLegalAndExact)
{
    constexpr Tick kLookahead = 250;
    pdes::Engine eng(kLookahead);
    pdes::Partition *a = eng.addPartition("a");
    pdes::Partition *b = eng.addPartition("b");

    Tick sentAt = 0, ranAt = 0;
    a->schedule(100, [&] {
        sentAt = a->now();
        // Exactly at the horizon: the earliest legal target.
        eng.send(*a, *b, a->now() + kLookahead,
                 [&] { ranAt = b->now(); });
    });

    sim::Invariants inv;
    {
        sim::InvariantScope scope(&inv);
        eng.run(2);
    }
    EXPECT_EQ(sentAt, 100u);
    EXPECT_EQ(ranAt, 100u + kLookahead);
    EXPECT_FALSE(inv.failed());
}

TEST(PdesEngine, SendBelowHorizonClampsAndReports)
{
    constexpr Tick kLookahead = 250;
    pdes::Engine eng(kLookahead);
    pdes::Partition *a = eng.addPartition("a");
    pdes::Partition *b = eng.addPartition("b");

    Tick ranAt = 0;
    a->schedule(100, [&] {
        eng.send(*a, *b, a->now() + kLookahead - 1,
                 [&] { ranAt = b->now(); });
    });

    sim::Invariants inv;
    {
        sim::InvariantScope scope(&inv);
        eng.run(1);
    }
    // Clamped to the horizon, and the violation is attributable.
    EXPECT_EQ(ranAt, 100u + kLookahead);
    ASSERT_TRUE(inv.failed());
    EXPECT_EQ(inv.violations()[0].invariant,
              "pdes/lookahead-horizon");
}

TEST(PdesEngine, MailboxDrainOrderIsSourceMajorAndStable)
{
    // Partitions 1..4 all send events to partition 0 targeted at
    // the SAME tick. The tie-breaker is insertion order, which the
    // barrier fixes as (src asc, send order): scheduling must never
    // change it.
    static constexpr Tick kLookahead = 100;
    const auto runOnce = [&](unsigned threads) {
        pdes::Engine eng(kLookahead);
        pdes::Partition *dst = eng.addPartition("dst");
        std::vector<pdes::Partition *> srcs;
        for (int i = 1; i <= 4; ++i)
            srcs.push_back(
                eng.addPartition("src" + std::to_string(i)));

        auto log = std::make_shared<std::vector<int>>();
        for (std::size_t s = 0; s < srcs.size(); ++s) {
            pdes::Partition *src = srcs[s];
            const int tag = static_cast<int>(s + 1);
            // Setup scope (runOnce is itself a lambda, so the rule
            // can't see that no partition is draining yet).
            // lint:allow(det-pdes-shared-mutation)
            src->schedule(10, [&eng, src, dst, tag, log] {
                // Two sends per source, same target tick.
                eng.send(*src, *dst, 10 + kLookahead,
                         [log, tag] { log->push_back(tag * 10); });
                eng.send(*src, *dst, 10 + kLookahead,
                         [log, tag] { log->push_back(tag * 10 + 1); });
            });
        }
        eng.run(threads);
        return *log;
    };

    const std::vector<int> expect = {10, 11, 20, 21, 30, 31, 40, 41};
    EXPECT_EQ(runOnce(1), expect);
    EXPECT_EQ(runOnce(8), expect);
}

// -----------------------------------------------------------------
// FrontierGate
// -----------------------------------------------------------------

TEST(FrontierGate, SharedSectionsExecuteInSerialKeyOrder)
{
    // Each partition walks a scripted, interleaved key sequence and
    // appends (key, idx) inside its shared section. The gate must
    // produce exactly the lexicographic (key, idx) merge no matter
    // how the host schedules the gang.
    constexpr unsigned kParts = 4;
    constexpr int kBlocks = 64;
    std::vector<std::vector<std::pair<Tick, unsigned>>> script(
        kParts);
    for (unsigned p = 0; p < kParts; ++p)
        for (int b = 0; b < kBlocks; ++b)
            script[p].push_back(
                {static_cast<Tick>(b) * (p + 1) + p, p});

    std::vector<std::pair<Tick, unsigned>> expect;
    for (const auto &s : script)
        expect.insert(expect.end(), s.begin(), s.end());
    std::sort(expect.begin(), expect.end());

    for (unsigned tokens : {kParts, 2u}) {
        pdes::FrontierGate gate(kParts, tokens);
        std::vector<std::pair<Tick, unsigned>> log;
        runGang(kParts, [&](std::size_t i) {
            const auto p = static_cast<unsigned>(i);
            for (const auto &blk : script[p]) {
                gate.beginBlock(p, blk.first);
                gate.enterShared(p);
                log.push_back(blk);  // guarded by the gate itself
                gate.endBlock(p);
            }
            gate.finish(p);
        });
        SCOPED_TRACE(tokens);
        EXPECT_EQ(log, expect);
        EXPECT_EQ(gate.stats(0).blocks,
                  static_cast<std::uint64_t>(kBlocks));
        EXPECT_EQ(gate.stats(0).sharedGrants,
                  static_cast<std::uint64_t>(kBlocks));
    }
}

TEST(FrontierGate, DecreasingKeyRecordsEpochMonotonic)
{
    sim::Invariants inv;
    {
        sim::InvariantScope scope(&inv);
        pdes::FrontierGate gate(1, 1);
        gate.beginBlock(0, 100);
        gate.endBlock(0);
        gate.beginBlock(0, 50);  // time must never run backwards
        gate.endBlock(0);
        gate.finish(0);
    }
    ASSERT_TRUE(inv.failed());
    EXPECT_EQ(inv.violations()[0].invariant, "pdes/epoch-monotonic");
}

// -----------------------------------------------------------------
// MultiCore end-to-end
// -----------------------------------------------------------------

TEST(PdesMultiCore, SimThreadsInvariantOnSmallSuite)
{
    const auto ws = smallSuite();
    const melody::Platform plat("EMR2S", "CXL-A");

    std::vector<cpu::RunResult> ref(ws.size());
    {
        SimThreadsOverride serial(1);
        for (std::size_t i = 0; i < ws.size(); ++i)
            ref[i] = melody::runWorkload(ws[i], plat, /*seed=*/1,
                                         true, /*sampling=*/1000000);
    }
    for (unsigned threads : {2u, 8u}) {
        SimThreadsOverride parallel(threads);
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const cpu::RunResult out = melody::runWorkload(
                ws[i], plat, /*seed=*/1, true, /*sampling=*/1000000);
            expectSameResult(ref[i], out,
                             ws[i].name + " @sim-threads " +
                                 std::to_string(threads));
        }
    }
}

TEST(PdesMultiCore, SimThreadsInvariantUnderFaultInjection)
{
    // The RAS streams (seeded per fault process) must also be
    // schedule-invariant: backend accesses happen in serial order
    // under the gate, so every fault draw lands identically.
    auto ws = smallSuite();
    ws.resize(2);  // mcf (1 thread) + gcc (2 threads)
    melody::Platform plat("EMR2S", "CXL-B");
    plat.setFaultPlan(ras::parseFaultPlan(
        "crc=3e-4,ce=2e-4,ue=5e-5,scrub=50us,failover"));

    std::vector<cpu::RunResult> ref(ws.size());
    {
        SimThreadsOverride serial(1);
        for (std::size_t i = 0; i < ws.size(); ++i)
            ref[i] = melody::runWorkload(ws[i], plat, /*seed=*/3);
    }
    ras::RasStats injected;
    for (const auto &r : ref)
        injected += r.rasTotal();
    EXPECT_GT(injected.injected(), 0u);

    SimThreadsOverride parallel(8);
    for (std::size_t i = 0; i < ws.size(); ++i) {
        const cpu::RunResult out =
            melody::runWorkload(ws[i], plat, /*seed=*/3);
        expectSameResult(ref[i], out, ws[i].name + " faulted");
    }
}

TEST(PdesMultiCore, UtilizationCountersPopulateRegistry)
{
    pdes::StatsRegistry::instance().clear();
    workloads::WorkloadProfile w = workloads::byName("603.bwaves_s");
    w.blocksPerCore = 400;
    const melody::Platform plat("EMR2S", "CXL-A");
    std::string json;
    {
        SimThreadsOverride parallel(4);
        (void)melody::runWorkload(w, plat, /*seed=*/1);
        ASSERT_FALSE(pdes::StatsRegistry::instance().empty());
        // json() reports the live simThreads knob, so capture the
        // document inside the override scope.
        json = pdes::StatsRegistry::instance().json();
    }
    // rasReport-style JSON with the fields future partitioning
    // work will be measured by.
    EXPECT_NE(json.find("\"pdes\""), std::string::npos);
    EXPECT_NE(json.find("\"partition\":\"core0\""),
              std::string::npos);
    EXPECT_NE(json.find("\"eventsDrained\""), std::string::npos);
    EXPECT_NE(json.find("\"sharedGrants\""), std::string::npos);
    EXPECT_NE(json.find("\"barrierWaitNs\""), std::string::npos);
    EXPECT_NE(json.find("\"simThreads\":4"), std::string::npos);
    pdes::StatsRegistry::instance().clear();
}

/** ≥3 real figures, sim-threads 1 vs 8, byte-identical output. */
class PdesFigureDeterminism
    : public testing::TestWithParam<const char *>
{};

TEST_P(PdesFigureDeterminism, SimThreadsBytesMatch)
{
    const figs::Figure *fig = figs::find(GetParam());
    ASSERT_NE(fig, nullptr);

    auto render = [&](unsigned simThreads) {
        SimThreadsOverride st(simThreads);
        sweep::Options o;
        o.cache = false;  // a cache hit would prove nothing
        o.jobs = 1;
        sweep::Sweep s(fig->binary, o);
        s.scope(fig->binary);
        fig->build(s);
        return s.renderToString();
    };
    const std::string serial = render(1);
    const std::string parallel = render(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(CheapFigures, PdesFigureDeterminism,
                         testing::Values("fig01", "fig16",
                                         "usecase"));

// -----------------------------------------------------------------
// Stress (the TSan target: ci runs --gtest_filter=PdesStress.*
// under the tsan preset)
// -----------------------------------------------------------------

TEST(PdesStress, MultiPartitionWorkloadRepeated)
{
    workloads::WorkloadProfile w = workloads::byName("603.bwaves_s");
    w.blocksPerCore = 300;  // 10 cores, kept small for TSan
    const melody::Platform plat("EMR2S", "CXL-A");

    SimThreadsOverride parallel(8);
    cpu::RunResult first;
    for (int rep = 0; rep < 3; ++rep) {
        cpu::RunResult r = melody::runWorkload(w, plat, /*seed=*/5);
        if (rep == 0)
            first = r;
        else
            expectSameResult(first, r,
                             "rep " + std::to_string(rep));
    }
}

TEST(PdesStress, EngineRingUnderThreads)
{
    const RingResult ref = runRing(1, 8, 300, 24);
    const RingResult out = runRing(8, 8, 300, 24);
    EXPECT_EQ(ref.hash, out.hash);
    EXPECT_EQ(ref.executed, out.executed);
}
