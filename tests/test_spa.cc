/**
 * @file
 * Tests for Spa: breakdown identities, estimator accuracy
 * (Figure 11's property), period-based analysis, prefetcher
 * coverage transfer (Figure 12) and the placement advisor (§5.7).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "spa/advisor.hh"
#include "spa/breakdown.hh"
#include "spa/period.hh"
#include "spa/prefetch_analysis.hh"
#include "workloads/suite.hh"

using namespace cxlsim;
using namespace cxlsim::spa;

namespace {

struct RunPair
{
    cpu::RunResult base;
    cpu::RunResult test;
};

RunPair
runPair(const std::string &name, const char *memory,
        std::uint64_t blocks = 40000, Tick sampling = 0)
{
    workloads::WorkloadProfile w = workloads::byName(name);
    w.blocksPerCore = blocks;
    melody::Platform lp("EMR2S", "Local");
    melody::Platform tp("EMR2S", memory);
    RunPair rp;
    rp.base = melody::runWorkload(w, lp, 91, true, sampling);
    rp.test = melody::runWorkload(w, tp, 91, true, sampling);
    return rp;
}

}  // namespace

TEST(Breakdown, ZeroForIdenticalRuns)
{
    const auto rp = runPair("pts-openssl", "Local", 20000);
    const Breakdown b = computeBreakdown(rp.base, rp.base);
    EXPECT_DOUBLE_EQ(b.actual, 0.0);
    EXPECT_DOUBLE_EQ(b.dram, 0.0);
    EXPECT_DOUBLE_EQ(b.estMemory, 0.0);
}

TEST(Breakdown, ComponentsPlusOtherEqualActual)
{
    const auto rp = runPair("605.mcf_s", "CXL-A");
    const Breakdown b = computeBreakdown(rp.base, rp.test);
    EXPECT_NEAR(b.componentsSum() + b.core + b.other, b.actual,
                1e-6);
    EXPECT_GT(b.actual, 0.0);
}

/** The Figure 11 property: differential-stall estimators track the
 *  actual slowdown within a few percent, across workloads and
 *  setups. */
class SpaAccuracy : public ::testing::TestWithParam<
                        std::tuple<const char *, const char *>>
{
};

TEST_P(SpaAccuracy, EstimatorsTrackActualSlowdown)
{
    const auto [name, memory] = GetParam();
    const auto rp = runPair(name, memory);
    const Breakdown b = computeBreakdown(rp.base, rp.test);
    // Δs/c (total stalls) is the tightest estimator (Fig 11a).
    EXPECT_NEAR(b.estTotalStalls, b.actual,
                std::max(5.0, 0.12 * std::abs(b.actual)))
        << name << " on " << memory;
    // Δs_Memory (Fig 11c) tracks within 5% of cycles for >95% of
    // workloads in the paper; allow a little more here.
    EXPECT_NEAR(b.estMemory, b.actual,
                std::max(6.0, 0.15 * std::abs(b.actual)))
        << name << " on " << memory;
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndSetups, SpaAccuracy,
    ::testing::Combine(
        ::testing::Values("605.mcf_s", "redis/ycsb-c",
                          "ubench-chase-4096m-i17", "bfs-web",
                          "519.lbm_r"),
        ::testing::Values("NUMA", "CXL-A", "CXL-B")));

TEST(Breakdown, DramDominatedForChase)
{
    const auto rp = runPair("ubench-chase-4096m-i17", "CXL-A");
    const Breakdown b = computeBreakdown(rp.base, rp.test);
    EXPECT_GT(b.dram, 0.7 * b.actual);
    EXPECT_LT(std::abs(b.store), 0.1 * b.actual + 1.0);
}

TEST(Breakdown, CacheComponentsForStreamingWorkload)
{
    // Finding #4: prefetch-timeliness loss shows up as cache
    // slowdown for stream-heavy workloads (on EMR: mostly LLC).
    const auto rp = runPair("603.bwaves_s", "CXL-B", 15000);
    const Breakdown b = computeBreakdown(rp.base, rp.test);
    EXPECT_GT(b.l1 + b.l2 + b.l3, 0.5);
}

TEST(Period, CounterInterpolation)
{
    std::vector<cpu::CounterSample> samples;
    for (int k = 1; k <= 5; ++k) {
        cpu::CounterSample s;
        s.when = k * kTicksPerMs;
        s.counters.instructions = k * 1000.0;
        s.counters.cycles = k * 2000.0;
        s.counters.p1 = k * 100.0;
        samples.push_back(s);
    }
    const auto mid = counterAtInstructions(samples, 2500.0);
    EXPECT_NEAR(mid.cycles, 5000.0, 1e-9);
    EXPECT_NEAR(mid.p1, 250.0, 1e-9);
    // Beyond the last sample clamps.
    const auto end = counterAtInstructions(samples, 99999.0);
    EXPECT_NEAR(end.instructions, 5000.0, 1e-9);
}

TEST(Period, AnalysisRevealsPhases)
{
    // 602.gcc: heavy first two thirds, light tail (Fig 16a).
    const auto rp =
        runPair("602.gcc_s", "CXL-B", 120000, usToTicks(15));
    ASSERT_GT(rp.base.samples.size(), 10u);
    ASSERT_GT(rp.test.samples.size(), 10u);
    const double totalInstr = rp.base.counters.instructions;
    const auto periods = periodAnalysis(rp.base.samples,
                                        rp.test.samples,
                                        totalInstr / 24.0);
    ASSERT_GE(periods.size(), 16u);

    double early = 0, late = 0;
    const std::size_t third = periods.size() / 3;
    for (std::size_t i = 0; i < third; ++i)
        early += periods[i].breakdown.actual;
    for (std::size_t i = periods.size() - third;
         i < periods.size(); ++i)
        late += periods[i].breakdown.actual;
    // The early phase carries clearly more slowdown.
    EXPECT_GT(early / third, late / third + 3.0);
}

TEST(Period, PeriodsConserveTotals)
{
    const auto rp =
        runPair("605.mcf_s", "CXL-A", 60000, usToTicks(15));
    const double totalInstr = rp.base.counters.instructions;
    const auto periods = periodAnalysis(rp.base.samples,
                                        rp.test.samples,
                                        totalInstr / 16.0);
    ASSERT_GE(periods.size(), 8u);
    for (const auto &p : periods) {
        EXPECT_TRUE(std::isfinite(p.breakdown.actual));
        EXPECT_GT(p.instructions, 0.0);
    }
    // Period boundaries are increasing.
    for (std::size_t i = 1; i < periods.size(); ++i)
        EXPECT_GT(periods[i].instructions,
                  periods[i - 1].instructions);
}

TEST(Prefetch, CoverageTransfersFromL2pfToL1pf)
{
    // Figure 12a: the decrease in L2PF-L3-miss under CXL is
    // compensated by an increase in L1PF-L3-miss (y = x).
    const auto rp = runPair("603.bwaves_s", "NUMA", 40000);
    const PrefetchDelta d = prefetchDelta(rp.base, rp.test);
    EXPECT_GT(d.l2pfL3MissDecrease, 0.0);
    EXPECT_GT(d.l1pfL3MissIncrease, 0.0);
    // Same order of magnitude (the paper reports nearly y = x).
    const double ratio =
        d.l1pfL3MissIncrease / d.l2pfL3MissDecrease;
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 3.0);
    // Coverage drops under CXL (2-38% in the paper).
    EXPECT_GT(d.coverageDropPct(), 0.15);
}

TEST(Advisor, SuggestsPinningForBurstyPeriods)
{
    std::vector<PeriodBreakdown> periods(10);
    for (std::size_t i = 0; i < periods.size(); ++i)
        periods[i].breakdown.actual = (i < 3) ? 40.0 : 2.0;
    const double frac = suggestPinnedFraction(periods, 10.0);
    EXPECT_GT(frac, 0.04);
    EXPECT_LE(frac, 0.5);

    for (auto &p : periods)
        p.breakdown.actual = 1.0;
    EXPECT_EQ(suggestPinnedFraction(periods, 10.0), 0.0);
}

TEST(Advisor, PinningHotObjectsCutsSlowdown)
{
    // §5.7: relocating the hot (Zipf-head) objects to local DRAM
    // recovers most of the CXL slowdown (13% -> 2% in the paper).
    workloads::WorkloadProfile w = workloads::byName("605.mcf_s");
    w.blocksPerCore = 50000;
    const TuningResult r =
        tunePlacement(w, "EMR2S", "CXL-A", 0.3, 93);
    EXPECT_GT(r.slowdownAllCxl, 10.0);
    EXPECT_LT(r.slowdownPinned, r.slowdownAllCxl * 0.6);
    EXPECT_GT(r.fastRequestFraction, 0.1);
}

TEST(Breakdown, FromRawCountersConsistent)
{
    cpu::CounterSet base;
    base.cycles = 1000;
    base.p1 = 300;
    base.p3 = 250;
    base.p4 = 200;
    base.p5 = 150;
    base.p2 = 50;
    base.p6 = 400;
    cpu::CounterSet test = base;
    test.cycles = 1400;
    test.p1 = 650;
    test.p3 = 600;
    test.p4 = 550;
    test.p5 = 500;
    test.p2 = 60;
    test.p6 = 810;

    const Breakdown b =
        computeBreakdown(base, 1000, test, 1400);
    EXPECT_NEAR(b.actual, 40.0, 1e-9);
    EXPECT_NEAR(b.dram, 35.0, 1e-9);     // dP5/c
    EXPECT_NEAR(b.l3, 0.0, 1e-9);        // d(P4-P5)/c
    EXPECT_NEAR(b.l2, 0.0, 1e-9);
    EXPECT_NEAR(b.l1, 0.0, 1e-9);        // d(P1-P3)/c
    EXPECT_NEAR(b.store, 1.0, 1e-9);     // dP2/c
    EXPECT_NEAR(b.estTotalStalls, 41.0, 1e-9);
    EXPECT_NEAR(b.estMemory, 36.0, 1e-9);
}

TEST(Breakdown, CounterSetArithmetic)
{
    cpu::CounterSet a;
    a.p1 = 10;
    a.l2pfL3Miss = 100;
    cpu::CounterSet b;
    b.p1 = 3;
    b.l2pfL3Miss = 40;
    const cpu::CounterSet d = a - b;
    EXPECT_DOUBLE_EQ(d.p1, 7.0);
    EXPECT_EQ(d.l2pfL3Miss, 60u);
    cpu::CounterSet acc;
    acc += a;
    acc += b;
    EXPECT_DOUBLE_EQ(acc.p1, 13.0);
    EXPECT_EQ(acc.l2pfL3Miss, 140u);
}

TEST(Period, EmptyInputsAreSafe)
{
    EXPECT_TRUE(periodAnalysis({}, {}, 1000.0).empty());
    std::vector<cpu::CounterSample> one(1);
    one[0].when = kTicksPerMs;
    one[0].counters.instructions = 500;
    EXPECT_TRUE(periodAnalysis(one, one, 0.0).empty());
    // Period longer than the whole run -> no complete periods.
    EXPECT_TRUE(periodAnalysis(one, one, 1e12).empty());
}

TEST(Advisor, ZeroFractionWhenNoPeriods)
{
    EXPECT_EQ(suggestPinnedFraction({}, 10.0), 0.0);
}
