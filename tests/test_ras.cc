/**
 * @file
 * RAS subsystem tests: the FaultPlan spec parser, parameter
 * validation, the device-health state machine, and the end-to-end
 * degradation semantics the host layers promise — poison surfaces
 * only as demand machine checks, host retries stay within budget,
 * failover always completes, and a zero-rate plan is bit-identical
 * to no plan at all.
 *
 * The LinkFaultsStressAllLayers test doubles as the sanitizer
 * stress workload: it drives every fault path (CRC replay,
 * link-down, CE/UE, patrol scrub, scheduled offline/recover,
 * failover) through the interleaved dual-device setup and is the
 * primary target of the -DCXLSIM_SANITIZE=address,undefined build.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "cxl/device_profile.hh"
#include "mem/cxl_backend.hh"
#include "ras/fault_plan.hh"
#include "ras/ras.hh"
#include "sim/logging.hh"
#include "workloads/suite.hh"

using namespace cxlsim;
using melody::Platform;

namespace {

workloads::WorkloadProfile
smallWorkload(const char *name = "605.mcf_s", unsigned blocks = 900)
{
    workloads::WorkloadProfile w = workloads::byName(name);
    w.blocksPerCore = blocks;
    return w;
}

cpu::RunResult
runWithPlan(const char *server, const char *memory,
            const std::string &spec, std::uint64_t seed = 11)
{
    Platform plat(server, memory);
    if (!spec.empty())
        plat.setFaultPlan(ras::parseFaultPlan(spec));
    return melody::runWorkload(smallWorkload(), plat, seed);
}

}  // namespace

TEST(FaultPlanParser, FullSpecRoundTrips)
{
    const ras::FaultPlan p = ras::parseFaultPlan(
        "crc=2e-4,replay=60,maxreplay=4,ce=1e-4,ue=1e-6,ecclat=25,"
        "scrub=100us,timeout=1500,budget=3,backoff=200,"
        "offline@2ms:dev1,degrade@1ms,recover@3ms:dev1,failover");
    EXPECT_DOUBLE_EQ(p.link.crcErrorProb, 2e-4);
    EXPECT_DOUBLE_EQ(p.link.replayNs, 60.0);
    EXPECT_EQ(p.link.maxReplays, 4u);
    EXPECT_DOUBLE_EQ(p.media.correctableProb, 1e-4);
    EXPECT_DOUBLE_EQ(p.media.uncorrectableProb, 1e-6);
    EXPECT_DOUBLE_EQ(p.media.scrubExtraNs, 25.0);
    EXPECT_DOUBLE_EQ(p.media.patrolIntervalUs, 100.0);
    EXPECT_DOUBLE_EQ(p.hostRetry.timeoutNs, 1500.0);
    EXPECT_EQ(p.hostRetry.maxRetries, 3u);
    EXPECT_DOUBLE_EQ(p.hostRetry.backoffNs, 200.0);
    EXPECT_TRUE(p.failover);
    EXPECT_TRUE(p.enabled());

    // Events filter per device and come back time-sorted.
    ASSERT_EQ(p.events.size(), 3u);
    const auto dev1 = p.eventsFor(1);
    ASSERT_EQ(dev1.size(), 2u);
    EXPECT_EQ(dev1[0].kind, ras::FaultEventKind::kOffline);
    EXPECT_EQ(dev1[0].at, 2 * kTicksPerMs);
    EXPECT_EQ(dev1[1].kind, ras::FaultEventKind::kRecover);
    EXPECT_EQ(dev1[1].at, 3 * kTicksPerMs);
    const auto dev0 = p.eventsFor(0);
    ASSERT_EQ(dev0.size(), 1u);
    EXPECT_EQ(dev0[0].kind, ras::FaultEventKind::kDegrade);
}

TEST(FaultPlanParser, EmptySpecDisablesEverything)
{
    const ras::FaultPlan p = ras::parseFaultPlan("");
    EXPECT_FALSE(p.enabled());
    EXPECT_FALSE(p.failover);
    EXPECT_TRUE(p.events.empty());
}

TEST(FaultPlanParser, RejectsMalformedSpecs)
{
    EXPECT_THROW(ras::parseFaultPlan("bogus=1"), ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("nonsense"), ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("crc=abc"), ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("crc=2"), ConfigError);   // p > 1
    EXPECT_THROW(ras::parseFaultPlan("budget=1.5"), ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("scrub=-5us"), ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("explode@1ms"), ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("offline@2ms:gpu1"),
                 ConfigError);
    EXPECT_THROW(ras::parseFaultPlan("offline@oops"), ConfigError);
}

TEST(FaultPlanParser, RejectsOversizedSpecs)
{
    // One byte under the limit parses (all padding commas are
    // empty tokens); one byte over throws.
    std::string spec = "crc=1e-4";
    spec.resize(ras::kFaultPlanMaxSpecBytes, ',');
    EXPECT_NO_THROW(ras::parseFaultPlan(spec));
    spec.push_back(',');
    EXPECT_THROW(ras::parseFaultPlan(spec), ConfigError);
}

TEST(FaultPlanParser, RejectsOversizedTokens)
{
    const std::string pad(ras::kFaultPlanMaxTokenBytes, '0');
    // "crc=0...0" exceeds the token limit by the "crc=" prefix.
    EXPECT_THROW(ras::parseFaultPlan("crc=" + pad), ConfigError);
    // At exactly the limit the token must still parse.
    const std::string fit(ras::kFaultPlanMaxTokenBytes - 6, '0');
    EXPECT_NO_THROW(ras::parseFaultPlan("crc=0." + fit));
}

TEST(FaultPlanParser, RejectsTooManyScheduledEvents)
{
    std::string spec;
    for (std::size_t i = 0; i < ras::kFaultPlanMaxEvents; ++i)
        spec += "offline@1ms:dev0,";
    EXPECT_NO_THROW(ras::parseFaultPlan(spec));
    spec += "offline@2ms:dev0";
    EXPECT_THROW(ras::parseFaultPlan(spec), ConfigError);
}

TEST(Validation, FaultParamBoundsAreChecked)
{
    ras::LinkFaultParams link;
    link.crcErrorProb = -0.1;
    EXPECT_THROW(link.validate(), ConfigError);
    link.crcErrorProb = 0.1;
    link.maxReplays = 0;
    EXPECT_THROW(link.validate(), ConfigError);

    ras::MediaFaultParams media;
    media.uncorrectableProb = 1.5;
    EXPECT_THROW(media.validate(), ConfigError);

    ras::HealthParams health;
    health.degradeThreshold = 0.5;
    health.timeoutThreshold = 0.1;
    EXPECT_THROW(health.validate(), ConfigError);

    ras::HostRetryParams retry;
    retry.backoffMult = 0.5;
    EXPECT_THROW(retry.validate(), ConfigError);
}

TEST(Validation, DeviceProfileBoundsAreChecked)
{
    cxl::DeviceProfile p = cxl::cxlA();
    EXPECT_NO_THROW(p.validate());

    p.hiccups.baseProb = 1.5;
    EXPECT_THROW(p.validate(), ConfigError);

    p = cxl::cxlB();
    p.dramChannels = 0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = cxl::cxlC();
    p.thermal.throttleProb = -0.25;
    EXPECT_THROW(p.validate(), ConfigError);

    // A bad profile must fail loudly at backend construction.
    mem::CxlBackendConfig cfg;
    cfg.profile = cxl::cxlD();
    cfg.profile.queueCapacity = 0;
    EXPECT_THROW(mem::CxlBackend be(cfg), ConfigError);
}

TEST(HealthMonitor, EwmaDrivesDegradeAndTimeout)
{
    ras::HealthParams hp;  // defaults: alpha .02, thresholds .05/.25
    ras::HealthMonitor m(hp);
    EXPECT_EQ(m.state(), ras::DeviceHealth::kHealthy);

    // A burst of errors walks Healthy -> Degraded -> TimedOut.
    for (int i = 0; i < 20; ++i)
        m.recordOutcome(true);
    EXPECT_EQ(m.state(), ras::DeviceHealth::kTimedOut);
    EXPECT_EQ(m.degradedEntries(), 1u);
    EXPECT_EQ(m.offlineEntries(), 1u);

    // Sustained clean traffic recovers with hysteresis: back through
    // Degraded, then Healthy once the EWMA decays far enough.
    for (int i = 0; i < 400; ++i)
        m.recordOutcome(false);
    EXPECT_EQ(m.state(), ras::DeviceHealth::kHealthy);
}

TEST(HealthMonitor, ForcedStatePinsUntilRecover)
{
    ras::HealthMonitor m(ras::HealthParams{});
    m.force(ras::DeviceHealth::kOffline);
    EXPECT_TRUE(ras::isDown(m.state()));
    // Clean outcomes must NOT revive an administratively-offline
    // device — only an explicit recover event does.
    for (int i = 0; i < 1000; ++i)
        m.recordOutcome(false);
    EXPECT_EQ(m.state(), ras::DeviceHealth::kOffline);
    m.recover();
    EXPECT_EQ(m.state(), ras::DeviceHealth::kHealthy);
    EXPECT_DOUBLE_EQ(m.errorRate(), 0.0);
}

TEST(Ras, ZeroRatePlanIsBitIdenticalToNoPlan)
{
    // Arming an all-zero FaultPlan must not perturb a single tick:
    // the fault processes are never constructed and no RNG stream
    // is ever advanced.
    const cpu::RunResult a = runWithPlan("EMR2S", "CXL-B", "");
    Platform armed("EMR2S", "CXL-B");
    armed.setFaultPlan(ras::FaultPlan{});
    const cpu::RunResult b =
        melody::runWorkload(smallWorkload(), armed, 11);

    EXPECT_EQ(a.wallTicks, b.wallTicks);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.backendStats.reads, b.backendStats.reads);
    EXPECT_EQ(a.backendStats.writes, b.backendStats.writes);
    EXPECT_TRUE(a.ras.empty());
    EXPECT_TRUE(b.ras.empty());
}

TEST(Ras, PoisonSurfacesOnlyAsDemandMachineChecks)
{
    const cpu::RunResult r =
        runWithPlan("EMR2S", "CXL-B", "ue=1e-2");
    const ras::RasStats total = r.rasTotal();

    // Poison reached the core on demand loads...
    EXPECT_GT(r.counters.machineChecks, 0u);
    // ...never as a retry or timeout (UE data still arrives)...
    EXPECT_EQ(total.hostRetries, 0u);
    EXPECT_EQ(total.hostTimeouts, 0u);
    EXPECT_EQ(r.counters.demandTimeouts, 0u);
    // ...and every poisoned return is accounted for as either a
    // demand machine check, a dropped prefetch, or an RFO (which
    // installs for write without architectural consumption).
    EXPECT_GE(total.poisonedReturns,
              r.counters.machineChecks + r.counters.prefetchDrops);
    EXPECT_GT(total.uncorrected, 0u);
}

TEST(Ras, HostRetryObeysBudget)
{
    // Device offline from t=0, no failover: every request burns its
    // full re-issue budget and then times out.
    const cpu::RunResult r = runWithPlan(
        "EMR2S", "CXL-B",
        "offline@0ns,budget=2,timeout=500,backoff=100");
    const ras::RasStats total = r.rasTotal();

    EXPECT_GT(total.refusedRequests, 0u);
    EXPECT_GT(total.hostTimeouts, 0u);
    // Exactly maxRetries re-issues per exhausted request — the
    // budget is never exceeded.
    EXPECT_EQ(total.hostRetries, 2 * total.hostTimeouts);
    EXPECT_GT(r.counters.demandTimeouts, 0u);
    // The workload still ran to completion (forward progress even
    // with a dead device).
    EXPECT_GT(r.wallTicks, 0u);
}

TEST(Ras, FailoverCompletesWithoutTimeoutsReachingTheCore)
{
    const cpu::RunResult r = runWithPlan(
        "EMR2S", "CXL-B",
        "offline@0ns,budget=1,timeout=500,failover");
    const ras::RasStats total = r.rasTotal();

    // Every exhausted request was re-served by the fallback tier;
    // the core never observed a timeout or poison.
    EXPECT_GT(total.failovers, 0u);
    EXPECT_GT(total.failoverExtraNs, 0.0);
    EXPECT_EQ(r.counters.demandTimeouts, 0u);
    EXPECT_EQ(r.counters.machineChecks, 0u);
    EXPECT_GT(r.wallTicks, 0u);

    // The report names the failover node alongside the device.
    bool sawFailoverNode = false;
    for (const auto &e : r.ras)
        if (e.name.find("Failover") != std::string::npos)
            sawFailoverNode = true;
    EXPECT_TRUE(sawFailoverNode);
}

TEST(Ras, LinkFaultsStressAllLayers)
{
    // Sanitizer stress: aggressive rates + scheduled events over the
    // interleaved dual-device setup exercise CRC replay, link-down
    // escalation, CE/UE, patrol scrub, per-device offline/recover
    // and failover in one run.
    Platform plat("EMR2S", "CXL-Dx2");
    plat.setFaultPlan(ras::parseFaultPlan(
        "crc=5e-3,replay=40,maxreplay=3,ce=5e-3,ue=1e-4,scrub=2us,"
        "offline@4us:dev0,recover@10us:dev0,degrade@5us:dev1,"
        "budget=2,timeout=800,failover"));
    const cpu::RunResult r =
        melody::runWorkload(smallWorkload("603.bwaves_s", 3000), plat,
                            23);
    const ras::RasStats total = r.rasTotal();

    EXPECT_GT(total.crcErrors, 0u);
    EXPECT_GT(total.linkReplays, 0u);
    EXPECT_GT(total.corrected, 0u);
    EXPECT_GT(total.patrolScrubs, 0u);
    EXPECT_GT(total.offlineEntries, 0u);
    EXPECT_GT(r.wallTicks, 0u);
}
