/**
 * @file
 * Tests for the CPU model: caches with pending-line semantics,
 * prefetchers, and the core's Intel-style stall accounting — the
 * substrate Spa's correctness rests on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/cache.hh"
#include "cpu/core.hh"
#include "cpu/hierarchy.hh"
#include "cpu/multicore.hh"
#include "cpu/prefetcher.hh"
#include "cpu/profile.hh"
#include "core/platform.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;
using namespace cxlsim::cpu;

TEST(Cache, HitMissBasics)
{
    Cache c(64 * 1024, 8);
    Tick ready;
    StallTag home;
    EXPECT_EQ(c.lookup(0, 0, &ready, &home), LookupResult::kMiss);
    c.insert(0, 0, StallTag::kDram, false);
    EXPECT_EQ(c.lookup(0, 10, &ready, &home), LookupResult::kHit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, PendingUntilReady)
{
    Cache c(64 * 1024, 8);
    c.insert(64, nsToTicks(500), StallTag::kL2, false);
    Tick ready;
    StallTag home;
    EXPECT_EQ(c.lookup(64, nsToTicks(100), &ready, &home),
              LookupResult::kPending);
    EXPECT_EQ(ready, nsToTicks(500));
    EXPECT_EQ(home, StallTag::kL2);
    EXPECT_EQ(c.lookup(64, nsToTicks(600), &ready, &home),
              LookupResult::kHit);
    EXPECT_EQ(c.pendingHits(), 1u);
}

TEST(Cache, LruEviction)
{
    // 2 ways, tiny cache: set count = 512 lines / ... use direct
    // geometry: 2 ways, 1 set = 128 bytes.
    Cache c(128, 2);
    ASSERT_EQ(c.sets(), 1u);
    c.insert(0 * 64, 0, StallTag::kDram, false);
    c.insert(1 * 64, 0, StallTag::kDram, false);
    Tick ready;
    StallTag home;
    // Touch line 0 so line 1 becomes LRU.
    c.lookup(0, 10, &ready, &home);
    const Eviction ev = c.insert(2 * 64, 0, StallTag::kDram, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 64u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(64));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(128, 2);
    c.insert(0, 0, StallTag::kDram, true);
    c.insert(64, 0, StallTag::kDram, false);
    const Eviction ev = c.insert(128, 0, StallTag::kDram, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.lineAddr, 0u);
}

TEST(Cache, MarkDirtyAndReinsert)
{
    Cache c(64 * 1024, 8);
    c.insert(0, 0, StallTag::kDram, false);
    c.markDirty(0);
    const Eviction none = c.insert(0, 100, StallTag::kL2, false);
    EXPECT_FALSE(none.valid);  // refresh, not new insert
    c.invalidate(0);
    EXPECT_FALSE(c.contains(0));
}

TEST(StridePrefetcher, TrainsOnConstantStride)
{
    PrefetcherConfig cfg{true, 4, 8, 2};
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(1, 0 * 64, &out);
    EXPECT_TRUE(out.empty());
    pf.observe(1, 1 * 64, &out);
    EXPECT_TRUE(out.empty());  // confidence 1
    pf.observe(1, 2 * 64, &out);
    // Confidence reaches the threshold here: nominations begin.
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 3u * 64);
    EXPECT_EQ(out[3], 6u * 64);
    pf.observe(1, 3 * 64, &out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 4u * 64);
    EXPECT_EQ(out[3], 7u * 64);
}

TEST(StridePrefetcher, NonUnitStride)
{
    PrefetcherConfig cfg{true, 2, 8, 2};
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    for (Addr a = 0; a < 5 * 256; a += 256)
        pf.observe(3, a, &out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 4u * 256 + 256);
}

TEST(StridePrefetcher, RandomAddressesNeverTrain)
{
    PrefetcherConfig cfg{true, 4, 8, 2};
    StridePrefetcher pf(cfg);
    Rng r(3);
    std::vector<Addr> out;
    std::size_t nominated = 0;
    for (int i = 0; i < 1000; ++i) {
        pf.observe(5, r.below(1 << 20) * 64, &out);
        nominated += out.size();
    }
    EXPECT_LT(nominated, 50u);
}

TEST(StridePrefetcher, DisabledNominatesNothing)
{
    PrefetcherConfig cfg{false, 4, 8, 2};
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    for (Addr a = 0; a < 64 * 64; a += 64)
        pf.observe(1, a, &out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, NominatesAheadWithinBudget)
{
    PrefetcherConfig cfg{true, 8, 16, 2};
    StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(0 * 64, 100, &out);
    pf.observe(1 * 64, 100, &out);
    pf.observe(2 * 64, 100, &out);
    ASSERT_FALSE(out.empty());
    // Frontier starts right after the demand line.
    EXPECT_EQ(out.front(), 3u * 64);
    // Next observation continues from the frontier, no re-issue.
    const Addr prevEnd = out.back();
    pf.observe(3 * 64, 100, &out);
    if (!out.empty()) {
        EXPECT_GT(out.front(), prevEnd);
    }
}

TEST(StreamPrefetcher, BudgetBoundsNominations)
{
    PrefetcherConfig cfg{true, 16, 32, 2};
    StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(0, 100, &out);
    pf.observe(64, 100, &out);
    pf.observe(128, 2, &out);  // only 2 in-flight slots left
    EXPECT_LE(out.size(), 2u);
    pf.observe(192, 0, &out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, StaysWithinPage)
{
    PrefetcherConfig cfg{true, 32, 64, 2};
    StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    const Addr lastLines = 4096 - 3 * 64;
    pf.observe(lastLines, 100, &out);
    pf.observe(lastLines + 64, 100, &out);
    pf.observe(lastLines + 128, 100, &out);
    for (Addr a : out)
        EXPECT_LT(a, 4096u);
}

namespace {

CounterSet
runCounters(const workloads::WorkloadProfile &w, const char *memory,
            bool pf_on = true, Tick *wall = nullptr)
{
    melody::Platform plat("EMR2S", memory);
    auto backend = plat.makeBackend(71 ^ w.seed);
    MultiCore mc(plat.cpu(), w.exec, backend.get(),
                 workloads::makeKernels(w), pf_on);
    auto r = mc.run();
    if (wall)
        *wall = r.wallTicks;
    return r.counters;
}

workloads::WorkloadProfile
smallWorkload(const std::string &name)
{
    workloads::WorkloadProfile w = workloads::byName(name);
    w.blocksPerCore = std::min<std::uint64_t>(w.blocksPerCore, 30000);
    return w;
}

}  // namespace

/** Property: Intel counter nesting P1 >= P3 >= P4 >= P5 and
 *  P6 >= P1 + P2 across a spread of workloads and backends. */
class CounterInvariants
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CounterInvariants, NestingHolds)
{
    for (const char *mem : {"Local", "CXL-B"}) {
        const CounterSet c =
            runCounters(smallWorkload(GetParam()), mem);
        EXPECT_GE(c.p1 + 1e-6, c.p3) << mem;
        EXPECT_GE(c.p3 + 1e-6, c.p4) << mem;
        EXPECT_GE(c.p4 + 1e-6, c.p5) << mem;
        EXPECT_GE(c.p6 + 1e-6, c.p1 + c.p2) << mem;
        EXPECT_GT(c.cycles, 0.0);
        EXPECT_GT(c.instructions, 0.0);
        // Stall components are non-negative by construction.
        EXPECT_GE(c.sL1() + 1e-6, 0.0);
        EXPECT_GE(c.sL2() + 1e-6, 0.0);
        EXPECT_GE(c.sL3() + 1e-6, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CounterInvariants,
    ::testing::Values("605.mcf_s", "603.bwaves_s", "redis/ycsb-c",
                      "519.lbm_r", "pts-openssl", "bfs-web",
                      "ubench-chase-256m-i7"));

TEST(Core, InstructionsInvariantAcrossBackends)
{
    const auto w = smallWorkload("605.mcf_s");
    const CounterSet local = runCounters(w, "Local");
    const CounterSet cxl = runCounters(w, "CXL-B");
    // Same instruction stream retires on both (§5.6 relies on it).
    EXPECT_DOUBLE_EQ(local.instructions, cxl.instructions);
    EXPECT_GT(cxl.cycles, local.cycles);
}

TEST(Core, ChaseSlowerThanStream)
{
    auto chase = smallWorkload("ubench-chase-4096m-i17");
    auto stream = smallWorkload("ubench-seq-4096m-i35");
    Tick wallChase, wallStream;
    const CounterSet c1 = runCounters(chase, "CXL-A", true,
                                      &wallChase);
    const CounterSet c2 = runCounters(stream, "CXL-A", true,
                                      &wallStream);
    const double ipcChase = c1.instructions / c1.cycles;
    const double ipcStream = c2.instructions / c2.cycles;
    EXPECT_LT(ipcChase, ipcStream);
}

TEST(Core, DramBoundChaseChargesP5)
{
    auto w = smallWorkload("ubench-chase-4096m-i17");
    const CounterSet c = runCounters(w, "CXL-A");
    // Almost all memory stalls should be LLC-miss (DRAM) stalls.
    EXPECT_GT(c.sDram(), 0.5 * (c.p1 + 1e-9));
}

TEST(Core, StoreBufferPressureChargesP2)
{
    workloads::WorkloadProfile w = workloads::byName("519.lbm_r");
    w.blocksPerCore = 20000;
    w.threads = 2;
    w.storesPerBlock = 2.0;  // exaggerate store pressure
    w.storeHotFrac = 0.0;
    const CounterSet c = runCounters(w, "CXL-C");
    EXPECT_GT(c.p2, 0.0);
}

TEST(Core, PrefetchersOffRemovesCacheStalls)
{
    // Finding #4's control experiment: with HW prefetchers off,
    // there are no pending prefetch lines, so (differential) cache
    // stall components vanish and everything lands in DRAM stalls.
    auto w = smallWorkload("ubench-seq-4096m-i35");
    Tick wallL, wallC;
    melody::Platform lp("EMR2S", "Local"), cp("EMR2S", "CXL-A");

    auto lb = lp.makeBackend(73);
    MultiCore ml(lp.cpu(), w.exec, lb.get(),
                 workloads::makeKernels(w), /*pf=*/false);
    auto rl = ml.run();
    wallL = rl.wallTicks;

    auto cb = cp.makeBackend(73);
    MultiCore mcxl(cp.cpu(), w.exec, cb.get(),
                   workloads::makeKernels(w), /*pf=*/false);
    auto rc = mcxl.run();
    wallC = rc.wallTicks;
    EXPECT_GT(wallC, wallL);

    const CounterSet d = rc.counters - rl.counters;
    const double cacheStalls = d.sL1() + d.sL2() + d.sL3();
    // With PF off, cache-stall deltas are ~0 vs the DRAM delta.
    EXPECT_LT(std::abs(cacheStalls), 0.05 * d.sDram() + 1e3);
    EXPECT_EQ(rc.counters.l1pfIssued, 0u);
    EXPECT_EQ(rc.counters.l2pfIssued, 0u);
}

TEST(Core, PrefetchersImproveStreamPerformance)
{
    auto w = smallWorkload("ubench-seq-4096m-i35");
    Tick wallOn = 0, wallOff = 0;
    runCounters(w, "Local", true, &wallOn);
    runCounters(w, "Local", false, &wallOff);
    EXPECT_LT(wallOn, wallOff);
}

TEST(Hierarchy, DemandMissFillsAllLevels)
{
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(79);
    MemoryHierarchy h(lp.cpu(), 1, be.get(), false);
    const auto out = h.demandLoad(0, 4096, 0, 0);
    EXPECT_FALSE(out.immediate);
    EXPECT_EQ(out.tag, StallTag::kDram);
    // After the fill arrives the line hits in L1.
    const auto again = h.demandLoad(0, 4096, 0, out.readyAt + 1);
    EXPECT_TRUE(again.immediate);
}

TEST(Hierarchy, PendingMergeAttributesToDram)
{
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(83);
    MemoryHierarchy h(lp.cpu(), 1, be.get(), false);
    const auto first = h.demandLoad(0, 8192, 0, 0);
    const auto merged = h.demandLoad(0, 8192, 0, 10);
    EXPECT_EQ(merged.tag, StallTag::kDram);
    EXPECT_LE(merged.readyAt, first.readyAt + nsToTicks(20));
}

TEST(Hierarchy, PreloadMakesLinesResident)
{
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(89);
    MemoryHierarchy h(lp.cpu(), 1, be.get(), false);
    h.preload(0, 1 << 20);
    const auto out = h.demandLoad(0, 1 << 20, 0, 0);
    EXPECT_FALSE(out.immediate);  // L2 hit, small latency
    EXPECT_EQ(out.tag, StallTag::kL2);
    EXPECT_LT(ticksToNs(out.readyAt), 30.0);
}

TEST(Hierarchy, RfoMissGoesToBackend)
{
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(97);
    MemoryHierarchy h(lp.cpu(), 1, be.get(), false);
    const Tick done = h.storeRfo(0, 1 << 21, 0);
    EXPECT_GT(ticksToNs(done), 80.0);  // full memory round trip
    EXPECT_EQ(be->stats().reads, 1u);  // RFO counts as a read
    // A second store to the same line is cheap once owned.
    const Tick again = h.storeRfo(0, 1 << 21, done + 100);
    EXPECT_LT(ticksToNs(again - done - 100), 5.0);
}

TEST(Hierarchy, DirtyEvictionsReachBackendAsWritebacks)
{
    melody::Platform lp("EMR2S", "Local");
    // Tiny-cache profile to force eviction cascades quickly.
    CpuProfile prof = lp.cpu();
    prof.l1 = {4 * 1024, 4, 4.0};
    prof.l2 = {16 * 1024, 4, 14.0};
    prof.l3 = {64 * 1024, 4, 40.0};
    auto be = lp.makeBackend(101);
    MemoryHierarchy h(prof, 1, be.get(), false);
    Tick now = 0;
    for (Addr a = 0; a < (1 << 20); a += kCacheLineBytes)
        now = h.storeRfo(0, a, now) + 10;
    EXPECT_GT(be->stats().writes, 100u);
}

TEST(MultiCore, SymmetricCoresFinishTogether)
{
    auto w = smallWorkload("bfs-web");
    w.threads = 4;
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(103);
    MultiCore mc(lp.cpu(), w.exec, be.get(),
                 workloads::makeKernels(w));
    auto r = mc.run();
    EXPECT_GT(r.wallTicks, 0u);
    EXPECT_GT(r.backendStats.requests(), 100u);
    EXPECT_GT(r.backendGBps(), 0.0);
}

TEST(MultiCore, SamplingProducesMonotonicSamples)
{
    auto w = smallWorkload("602.gcc_s");
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(107);
    MultiCore mc(lp.cpu(), w.exec, be.get(),
                 workloads::makeKernels(w));
    mc.enableSampling(usToTicks(5));
    auto r = mc.run();
    ASSERT_GT(r.samples.size(), 3u);
    for (std::size_t i = 1; i < r.samples.size(); ++i) {
        EXPECT_GT(r.samples[i].when, r.samples[i - 1].when);
        EXPECT_GE(r.samples[i].counters.instructions,
                  r.samples[i - 1].counters.instructions);
        EXPECT_GE(r.samples[i].counters.cycles,
                  r.samples[i - 1].counters.cycles);
    }
}

TEST(Profiles, SkxVsSprPrefetchHoming)
{
    EXPECT_FALSE(skx().l2pfFillsL3);
    EXPECT_TRUE(spr().l2pfFillsL3);
    EXPECT_TRUE(emr().l2pfFillsL3);
    EXPECT_GT(emr().l3.sizeBytes, spr().l3.sizeBytes);
    EXPECT_GT(emrPrime().l3.sizeBytes, emr().l3.sizeBytes);
    EXPECT_LT(skx().robSize, spr().robSize);
}

TEST(Core, PiecewiseStallAttribution)
{
    // A 16-cycle L2 hit coexisting with a 300ns DRAM wait must not
    // taint the whole window as sL2: the DRAM portion dominates.
    workloads::WorkloadProfile w =
        workloads::byName("ubench-rnd-4096m-i56");
    w.blocksPerCore = 20000;
    w.hotFrac = 0.5;  // plenty of L2/L3 traffic alongside misses
    w.dependentFrac = 0.3;
    const CounterSet local = runCounters(w, "Local");
    const CounterSet cxl = runCounters(w, "CXL-A");
    const CounterSet d = cxl - local;
    // The latency delta lands overwhelmingly at DRAM (P5), not in
    // the cache bands.
    EXPECT_GT(d.sDram(), 5.0 * std::max(1.0, d.sL2()));
}

TEST(Core, FrontendStallsBackendInvariant)
{
    // Frontend stalls (P6 minus backend stalls) are a workload
    // property: their delta across backends is ~0 (§5.3).
    auto w = smallWorkload("redis/ycsb-c");
    const CounterSet local = runCounters(w, "Local");
    const CounterSet cxl = runCounters(w, "CXL-B");
    const double feLocal = local.p6 - local.p1 - local.p2;
    const double feCxl = cxl.p6 - cxl.p1 - cxl.p2;
    EXPECT_NEAR(feCxl, feLocal,
                0.05 * std::max(feLocal, 1.0) + 100.0);
}

TEST(Hierarchy, L2pfHomesDifferBySku)
{
    // SKX streamer fills L2 (pending tag kL2); SPR/EMR fill the
    // LLC (pending tag kL3) — the §5.4 mechanism.
    for (bool fillsL3 : {false, true}) {
        CpuProfile prof = fillsL3 ? emr() : skx();
        melody::Platform lp("EMR2S", "CXL-A");
        auto be = lp.makeBackend(301);
        MemoryHierarchy h(prof, 1, be.get(), true);
        // Train the streamer with a clean sequential stream.
        Tick now = 0;
        LoadOutcome out{};
        for (Addr a = 1 << 24; a < (1 << 24) + 64 * 200;
             a += kCacheLineBytes) {
            out = h.demandLoad(0, a, 1, now);
            // Fast consumption: the stream outruns in-flight fills.
            now += nsToTicks(4);
        }
        // A near-future stream line should be pending with the
        // SKU-appropriate home.
        bool sawExpected = false;
        for (int k = 0; k < 40 && !sawExpected; ++k) {
            const Addr next =
                (1 << 24) + 64 * (200 + k);
            const auto o = h.demandLoad(0, next, 1, now);
            if (!o.immediate &&
                o.tag == (fillsL3 ? StallTag::kL3 : StallTag::kL2))
                sawExpected = true;
            now += nsToTicks(2);
        }
        EXPECT_TRUE(sawExpected)
            << (fillsL3 ? "EMR" : "SKX");
    }
}
