/**
 * @file
 * Tests for the CXL device models and the memory backends,
 * including Table-1 calibration checks: each setup's idle latency
 * and peak bandwidth must land near the paper's measurements.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/mio.hh"
#include "core/mlc.hh"
#include "core/platform.hh"
#include "cxl/device.hh"
#include "cxl/device_profile.hh"
#include "mem/cxl_backend.hh"
#include "mem/interleaved_backend.hh"
#include "mem/jitter.hh"
#include "mem/local_backend.hh"
#include "mem/numa_backend.hh"
#include "mem/region_router.hh"
#include "sim/rng.hh"

using namespace cxlsim;
using namespace cxlsim::mem;

namespace {

/** Mean idle latency of a dependent chase on a backend, ns. */
double
idleLatencyNs(MemoryBackend *b, int n = 4000,
              std::uint64_t seed = 5)
{
    Rng r(seed);
    Tick now = 0;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        const Addr a = r.below(1 << 22) * kCacheLineBytes;
        const Tick done =
            b->access(a, ReqType::kDemandLoad, now);
        sum += ticksToNs(done - now);
        now = done + nsToTicks(2);
    }
    return sum / n;
}

}  // namespace

TEST(CxlProfiles, PresetsAreSane)
{
    for (const char *n : {"CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        const auto p = cxl::profileByName(n);
        EXPECT_EQ(p.name, n);
        EXPECT_GT(p.linkCfg.gbpsPerDir, 0.0);
        EXPECT_GT(p.controllerNs, 0.0);
        EXPECT_GE(p.dramChannels, 1u);
        EXPECT_GT(p.schedPeakGBps(), 10.0);
    }
    EXPECT_TRUE(cxl::cxlC().halfDuplexLink);
    EXPECT_FALSE(cxl::cxlA().halfDuplexLink);
    // CXL-C's 16GB capacity is what limits the paper to 60
    // workloads on it.
    EXPECT_EQ(cxl::cxlC().capacityBytes, 16ULL << 30);
}

/** Table 1 calibration: idle latency per memory setup on EMR. */
struct CalPoint
{
    const char *memory;
    double latNs;   // Table 1 value
    double tolFrac;
};

class Table1Latency : public ::testing::TestWithParam<CalPoint>
{
};

TEST_P(Table1Latency, IdleLatencyMatchesTable1)
{
    const auto &cp = GetParam();
    melody::Platform plat("EMR2S", cp.memory);
    auto be = plat.makeBackend(11);
    const double lat = idleLatencyNs(be.get());
    EXPECT_NEAR(lat, cp.latNs, cp.latNs * cp.tolFrac)
        << cp.memory;
}

INSTANTIATE_TEST_SUITE_P(
    EmrSetups, Table1Latency,
    ::testing::Values(CalPoint{"Local", 111, 0.10},
                      CalPoint{"NUMA", 193, 0.10},
                      CalPoint{"CXL-A", 214, 0.08},
                      CalPoint{"CXL-B", 271, 0.08},
                      CalPoint{"CXL-C", 394, 0.08},
                      CalPoint{"CXL-D", 239, 0.08}));

TEST(Table1, ServerLocalLatencies)
{
    struct
    {
        const char *server;
        double lat;
    } rows[] = {{"SPR2S", 114},
                {"EMR2S", 111},
                {"EMR2S'", 117},
                {"SKX2S", 90},
                {"SKX8S", 81}};
    for (const auto &row : rows) {
        melody::Platform plat(row.server, "Local");
        auto be = plat.makeBackend(13);
        EXPECT_NEAR(idleLatencyNs(be.get()), row.lat, row.lat * 0.12)
            << row.server;
    }
}

TEST(Table1, EmulatedNumaLatencyPoints)
{
    struct
    {
        const char *server;
        const char *mem;
        double lat;
    } rows[] = {{"SKX2S", "NUMA-140ns", 140},
                {"SKX8S", "NUMA-410ns", 410}};
    for (const auto &row : rows) {
        melody::Platform plat(row.server, row.mem);
        auto be = plat.makeBackend(17);
        EXPECT_NEAR(idleLatencyNs(be.get()), row.lat, row.lat * 0.12)
            << row.mem;
    }
}

TEST(CxlDevice, PeakBandwidthOrdering)
{
    // Read-only peak bandwidth per device ~ Table 1 "BW" column.
    struct
    {
        const char *mem;
        double bw;
        double tol;
    } rows[] = {{"CXL-A", 24, 6},
                {"CXL-B", 22, 6},
                {"CXL-D", 52, 10}};
    for (const auto &row : rows) {
        melody::Platform plat("EMR2S", row.mem);
        auto be = plat.makeBackend(19);
        melody::MlcConfig cfg;
        cfg.readFrac = 1.0;
        cfg.delayCycles = 0;
        cfg.windowUs = 200;
        cfg.warmupUs = 50;
        const auto p = melody::mlcMeasure(be.get(), cfg);
        EXPECT_NEAR(p.gbps, row.bw, row.tol) << row.mem;
    }
}

TEST(CxlDevice, DuplexPeaksUnderMixedButFpgaPeaksReadOnly)
{
    // Finding #1e: ASIC devices peak under mixed read/write; the
    // FPGA device peaks read-only.
    for (const char *mem : {"CXL-A", "CXL-C"}) {
        melody::Platform plat("EMR2S", mem);
        melody::MlcConfig cfg;
        cfg.delayCycles = 0;
        cfg.windowUs = 200;
        cfg.warmupUs = 50;

        auto be1 = plat.makeBackend(23);
        cfg.readFrac = 1.0;
        const double readOnly = melody::mlcMeasure(be1.get(), cfg).gbps;

        auto be2 = plat.makeBackend(23);
        cfg.readFrac = 0.67;
        const double mixed = melody::mlcMeasure(be2.get(), cfg).gbps;

        if (std::string(mem) == "CXL-A")
            EXPECT_GT(mixed, readOnly * 1.1) << mem;
        else
            EXPECT_LT(mixed, readOnly * 0.9) << mem;
    }
}

TEST(CxlDevice, SwitchAddsLatency)
{
    melody::Platform direct("EMR2S", "CXL-A");
    melody::Platform sw("EMR2S", "CXL-A+Switch");
    melody::Platform sw2("EMR2S", "CXL-A+Switch2");
    auto b0 = direct.makeBackend(29);
    auto b1 = sw.makeBackend(29);
    auto b2 = sw2.makeBackend(29);
    const double l0 = idleLatencyNs(b0.get());
    const double l1 = idleLatencyNs(b1.get());
    const double l2 = idleLatencyNs(b2.get());
    EXPECT_GT(l1, l0 + 100);  // one switch: ~+180ns
    EXPECT_GT(l2, l1 + 100);  // two: "CXL + multi-hops"
}

TEST(CxlDevice, TailLatencyWorseThanLocal)
{
    // Finding #1b: CXL-B/C have large p99.9-p50 gaps even at low
    // load, unlike local DRAM.
    auto run = [](const char *mem) {
        melody::Platform plat("EMR2S", mem);
        auto be = plat.makeBackend(31);
        auto res = melody::mioChaseDirect(be.get(), 4, 20000);
        return res.latencyNs.percentile(0.999) -
               res.latencyNs.percentile(0.5);
    };
    const double local = run("Local");
    const double cxlB = run("CXL-B");
    const double cxlC = run("CXL-C");
    EXPECT_LT(local, 120.0);
    EXPECT_GT(cxlB, local * 1.5);
    EXPECT_GT(cxlC, local * 1.5);
}

TEST(CxlDevice, HiccupStatsAccumulate)
{
    cxl::CxlDevice dev(cxl::cxlB(), 37);
    Rng r(41);
    Tick now = 0;
    for (int i = 0; i < 20000; ++i) {
        const Tick done =
            dev.read(r.below(1 << 20) * kCacheLineBytes, now);
        now = done + nsToTicks(5);
    }
    EXPECT_GT(dev.controllerStats().hiccups, 10u);
    EXPECT_GT(dev.controllerStats().hiccupNs, 0.0);
    EXPECT_EQ(dev.controllerStats().requests, 20000u);
}

TEST(Backends, NumaAddsToLocal)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform np("EMR2S", "NUMA");
    auto lb = lp.makeBackend(43);
    auto nb = np.makeBackend(43);
    EXPECT_GT(idleLatencyNs(nb.get()), idleLatencyNs(lb.get()) + 50);
}

TEST(Backends, CxlNumaWorseThanCxl)
{
    melody::Platform cp("EMR2S", "CXL-A");
    melody::Platform cnp("EMR2S", "CXL-A+NUMA");
    auto cb = cp.makeBackend(47);
    auto cnb = cnp.makeBackend(47);
    const double cxl = idleLatencyNs(cb.get());
    const double cxlNuma = idleLatencyNs(cnb.get());
    // Table 1: CXL-A remote = 375ns (214 + 161).
    EXPECT_NEAR(cxlNuma - cxl, 161, 60);
}

TEST(Backends, InterleavingRaisesBandwidth)
{
    melody::Platform one("EMR2S'", "CXL-D");
    melody::Platform two("EMR2S'", "CXL-Dx2");
    melody::MlcConfig cfg;
    cfg.readFrac = 0.67;
    cfg.delayCycles = 0;
    cfg.windowUs = 200;
    cfg.warmupUs = 50;
    auto b1 = one.makeBackend(53);
    auto b2 = two.makeBackend(53);
    const double bw1 = melody::mlcMeasure(b1.get(), cfg).gbps;
    const double bw2 = melody::mlcMeasure(b2.get(), cfg).gbps;
    EXPECT_GT(bw2, bw1 * 1.6);
}

TEST(Backends, StatsCountReadsAndWrites)
{
    melody::Platform lp("EMR2S", "Local");
    auto be = lp.makeBackend(59);
    be->access(0, ReqType::kDemandLoad, 0);
    be->access(64, ReqType::kL1Prefetch, 0);
    be->access(128, ReqType::kRfo, 0);
    be->access(192, ReqType::kWriteback, 0);
    EXPECT_EQ(be->stats().reads, 3u);
    EXPECT_EQ(be->stats().writes, 1u);
    be->resetStats();
    EXPECT_EQ(be->stats().requests(), 0u);
}

TEST(RegionRouter, RoutesPinnedRegions)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform cp("EMR2S", "CXL-C");
    RegionRouter router("pin", lp.makeBackend(61),
                        cp.makeBackend(61));
    router.pinRegion(0, 1 << 20);

    Tick now = 0;
    double fastLat = 0, slowLat = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        Tick d = router.access(
            static_cast<Addr>(i % 1024) * kCacheLineBytes,
            ReqType::kDemandLoad, now);
        fastLat += ticksToNs(d - now);
        now = d;
        d = router.access((2ULL << 20) +
                              static_cast<Addr>(i) * kCacheLineBytes,
                          ReqType::kDemandLoad, now);
        slowLat += ticksToNs(d - now);
        now = d;
    }
    EXPECT_NEAR(router.fastFraction(), 0.5, 0.01);
    EXPECT_LT(fastLat / n, 200.0);
    EXPECT_GT(slowLat / n, 300.0);
}

TEST(Jitter, InactiveByDefault)
{
    JitterParams p;
    JitterProcess j(p, 5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(j.sample(i * nsToTicks(100)), 0u);
}

TEST(Jitter, EpisodesTriggerUnderRate)
{
    JitterParams p;
    p.episodeProb = 0.05;
    p.refReqPerUs = 1.0;
    p.episodeMinRatePerUs = 1.0;
    p.episodeDurUs = 10.0;
    JitterProcess j(p, 7);
    Tick now = 0;
    std::uint64_t delayed = 0;
    for (int i = 0; i < 20000; ++i) {
        now += nsToTicks(300);  // ~3.3 req/us: above reference
        delayed += j.sample(now) > 0;
    }
    EXPECT_GT(j.episodes(), 5u);
    EXPECT_GT(delayed, 100u);
}

TEST(Jitter, RateCouplingSuppressesAtLowRate)
{
    JitterParams p;
    p.episodeProb = 0.05;
    p.refReqPerUs = 10.0;
    p.episodeMinRatePerUs = 0.001;
    JitterProcess j(p, 7);
    Tick now = 0;
    std::uint64_t delayed = 0;
    for (int i = 0; i < 3000; ++i) {
        now += usToTicks(50);  // 0.02 req/us: far below reference
        delayed += j.sample(now) > 0;
    }
    EXPECT_LT(delayed, 30u);
}

#include "cxl/pool.hh"

TEST(Pool, SingleHeadMatchesPlainDevice)
{
    cxl::PooledCxlDevice pool(cxl::cxlD(), 1,
                              cxl::PoolArbitration::kRoundRobin, 3);
    Rng r(5);
    Tick now = 0;
    double sum = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const Tick done =
            pool.read(0, r.below(1 << 21) * kCacheLineBytes, now);
        sum += ticksToNs(done - now);
        now = done + nsToTicks(2);
    }
    // Idle latency ~ device latency (CXL-D ~239ns minus the host
    // overhead the CxlBackend would add).
    EXPECT_NEAR(sum / n, 200.0, 40.0);
}

TEST(Pool, CreditsThrottleOnlyUnderContention)
{
    cxl::PooledCxlDevice pool(cxl::cxlB(), 2,
                              cxl::PoolArbitration::kRoundRobin, 3);
    // Lone head: admission is always immediate.
    for (Tick t = 0; t < usToTicks(50); t += nsToTicks(500))
        EXPECT_EQ(pool.earliestAdmission(0, t), t);

    // Saturate head 1 with outstanding requests, then check that
    // its own admission defers while head 0 stays unaffected.
    Tick now = usToTicks(100);
    for (int i = 0; i < 64; ++i)
        pool.read(1, static_cast<Addr>(i) * kCacheLineBytes, now);
    pool.read(0, 0, now);  // mark head 0 active -> contended
    EXPECT_GT(pool.earliestAdmission(1, now + 1), now + 1);
    EXPECT_EQ(pool.earliestAdmission(0, now + 1), now + 1);
}

TEST(Pool, WeightedSharesFavorHeavierHead)
{
    std::vector<double> weights{3.0, 1.0};
    cxl::PooledCxlDevice pool(cxl::cxlB(), 2,
                              cxl::PoolArbitration::kWeighted, 3,
                              weights);
    Tick now = usToTicks(10);
    // Both heads active and loaded.
    for (int i = 0; i < 64; ++i) {
        pool.read(0, static_cast<Addr>(i) * 64, now);
        pool.read(1, static_cast<Addr>(i) * 64 + (1 << 20), now);
    }
    // Head 0 (weight 3) has more credits: its admission defers
    // less than head 1's.
    const Tick a0 = pool.earliestAdmission(0, now + 1);
    const Tick a1 = pool.earliestAdmission(1, now + 1);
    EXPECT_LE(a0, a1);
}

TEST(Pool, StatsAccumulatePerHead)
{
    cxl::PooledCxlDevice pool(cxl::cxlA(), 2,
                              cxl::PoolArbitration::kNone, 3);
    pool.read(0, 0, 0);
    pool.write(1, 64, 0);
    pool.write(1, 128, 0);
    EXPECT_EQ(pool.headStats(0).reads, 1u);
    EXPECT_EQ(pool.headStats(0).writes, 0u);
    EXPECT_EQ(pool.headStats(1).writes, 2u);
    EXPECT_EQ(pool.controllerStats().requests, 3u);
}

TEST(CxlDevice, PostedWritesOverlapCommandAndData)
{
    // The write command is queued while data streams: a write's
    // completion is bounded below by both paths but far less than
    // their sum.
    cxl::CxlDevice dev(cxl::cxlA(), 41);
    const Tick done = dev.write(4096, 0);
    const double ns = ticksToNs(done);
    EXPECT_GT(ns, 100.0);  // controller + DRAM + links
    EXPECT_LT(ns, 400.0);  // no serial double-charge
}

TEST(CxlDevice, WriteThroughputMatchesReadOrder)
{
    // Duplex ASIC: write data rides the to-device direction, so
    // write-only throughput is comparable to read-only.
    cxl::CxlDevice dev(cxl::cxlA(), 43);
    Tick lastR = 0, lastW = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        lastR = dev.read(static_cast<Addr>(i) * 64, 0);
    cxl::CxlDevice dev2(cxl::cxlA(), 43);
    for (int i = 0; i < n; ++i)
        lastW = dev2.write(static_cast<Addr>(i) * 64, 0);
    const double rBw = n * 64.0 / ticksToNs(lastR);
    const double wBw = n * 64.0 / ticksToNs(lastW);
    EXPECT_NEAR(wBw, rBw, rBw * 0.5);
}

TEST(CxlDevice, SwitchesForwardInBothDirections)
{
    cxl::CxlDevice direct(cxl::cxlA(), 47, 0);
    cxl::CxlDevice switched(cxl::cxlA(), 47, 1);
    const Tick d0 = direct.read(0, 0);
    const Tick d1 = switched.read(0, 0);
    // Two switch traversals (request + response).
    EXPECT_NEAR(ticksToNs(d1 - d0), 2 * 150.0, 40.0);
}

TEST(Backends, WritebacksCountAsWrites)
{
    melody::Platform lp("EMR2S", "CXL-A");
    auto be = lp.makeBackend(53);
    be->access(0, ReqType::kWriteback, 0);
    be->access(64, ReqType::kWriteback, 0);
    be->access(128, ReqType::kDemandLoad, 0);
    EXPECT_EQ(be->stats().writes, 2u);
    EXPECT_EQ(be->stats().reads, 1u);
    EXPECT_NEAR(be->stats().totalGB(), 3 * 64.0 / 1e9, 1e-12);
}

TEST(RegionRouter, MultipleRegions)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform cp("EMR2S", "CXL-B");
    RegionRouter router("multi", lp.makeBackend(59),
                        cp.makeBackend(59));
    router.pinRegion(0, 1 << 16);
    router.pinRegion(1 << 20, (1 << 20) + (1 << 16));

    auto latOf = [&](Addr a) {
        static Tick now = 0;
        const Tick d =
            router.access(a, ReqType::kDemandLoad, now);
        const double ns = ticksToNs(d - now);
        now = d + nsToTicks(5);
        return ns;
    };
    EXPECT_LT(latOf(100), 200.0);             // region 1 -> local
    EXPECT_LT(latOf((1 << 20) + 64), 200.0);  // region 2 -> local
    EXPECT_GT(latOf(1 << 19), 200.0);         // between -> CXL
    EXPECT_GT(latOf(1 << 22), 200.0);         // beyond -> CXL
}
