/**
 * @file
 * Sweep-engine contract tests: byte-identical output for any job
 * count, cache round trips that reproduce cache-miss bytes exactly
 * (including corrupted-entry fallback), salt invalidation, and
 * figure-level determinism for a few real benches.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/figures.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"

using namespace cxlsim;

namespace {

/** A synthetic sweep exercising every item kind: text, 1-slot
 *  points, a multi-slot point, and a gather over hidden slots. */
void
buildSynthetic(sweep::Sweep &s)
{
    s.scope("synthetic");
    s.text("header\n");
    std::vector<sweep::Sweep::SlotRef> hidden;
    for (int i = 0; i < 20; ++i) {
        const std::size_t id = s.point(
            "row|" + std::to_string(i), 2,
            [i](sweep::Emit *slots) {
                slots[0].printf("row %d value %d\n", i, i * i);
                slots[1].hexDoubles({i * 0.125, i * 1.5});
            });
        s.place(id, 0);
        hidden.push_back({id, 1});
    }
    s.textf("mid %s\n", "section");
    s.gather(hidden, [](const std::vector<std::string> &in,
                        sweep::Emit &out) {
        double sum = 0;
        for (const auto &slot : in)
            sum += sweep::parseHexDoubles(slot).at(1);
        out.printf("sum %.6f over %zu rows\n", sum, in.size());
    });
}

std::string
renderSynthetic(const sweep::Options &opts,
                sweep::Sweep::Report *rep = nullptr)
{
    sweep::Sweep s("test-sweep", opts);
    buildSynthetic(s);
    return s.renderToString(rep);
}

sweep::Options
noCache()
{
    sweep::Options o;
    o.cache = false;
    return o;
}

sweep::Options
cacheAt(const std::string &dir)
{
    sweep::Options o;
    o.cache = true;
    o.cacheDir = dir;
    return o;
}

std::string
freshDir(const char *leaf)
{
    namespace fs = std::filesystem;
    const fs::path d = fs::path(testing::TempDir()) / leaf;
    fs::remove_all(d);
    return d.string();
}

}  // namespace

TEST(Sweep, ParallelOutputMatchesSerialByteForByte)
{
    sweep::Options serial = noCache();
    serial.jobs = 1;
    sweep::Options par = noCache();
    par.jobs = 8;
    const std::string a = renderSynthetic(serial);
    const std::string b = renderSynthetic(par);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Sweep, WarmCacheReproducesColdBytesExactly)
{
    const std::string dir = freshDir("sweep-warm");
    sweep::Sweep::Report cold, warm;
    const std::string a = renderSynthetic(cacheAt(dir), &cold);
    const std::string b = renderSynthetic(cacheAt(dir), &warm);
    EXPECT_EQ(a, b);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheStores, cold.points);
    EXPECT_EQ(warm.cacheHits, warm.points);
    EXPECT_EQ(warm.cacheStores, 0u);
    EXPECT_EQ(warm.corruptEntries, 0u);
}

TEST(Sweep, CorruptedEntriesFallBackToRecompute)
{
    namespace fs = std::filesystem;
    const std::string dir = freshDir("sweep-corrupt");
    const std::string a = renderSynthetic(cacheAt(dir));

    // Truncate one entry and scribble over another: both must be
    // detected, recomputed, and re-stored with identical output.
    std::vector<fs::path> entries;
    for (const auto &e : fs::directory_iterator(dir))
        entries.push_back(e.path());
    ASSERT_GE(entries.size(), 2u);
    std::sort(entries.begin(), entries.end());
    fs::resize_file(entries[0], 4);
    {
        std::ofstream f(entries[1], std::ios::binary);
        f << "melody-runcache 1\nnot a real entry\n";
    }

    sweep::Sweep::Report rep;
    const std::string b = renderSynthetic(cacheAt(dir), &rep);
    EXPECT_EQ(a, b);
    EXPECT_EQ(rep.corruptEntries, 2u);
    EXPECT_EQ(rep.cacheHits, rep.points - 2);
    EXPECT_EQ(rep.cacheStores, 2u);

    // The re-stored entries are valid again.
    sweep::Sweep::Report again;
    renderSynthetic(cacheAt(dir), &again);
    EXPECT_EQ(again.cacheHits, again.points);
    EXPECT_EQ(again.corruptEntries, 0u);
}

TEST(Sweep, SaltChangeInvalidatesEveryEntry)
{
    const std::string dir = freshDir("sweep-salt");
    renderSynthetic(cacheAt(dir));

    sweep::Options bumped = cacheAt(dir);
    bumped.salt = "melody-sweep-v999";
    sweep::Sweep::Report rep;
    const std::string b = renderSynthetic(bumped, &rep);
    EXPECT_EQ(rep.cacheHits, 0u);
    EXPECT_EQ(rep.cacheStores, rep.points);
    EXPECT_EQ(b, renderSynthetic(noCache()));
}

TEST(Sweep, ExceptionInPointPropagates)
{
    sweep::Options o = noCache();
    o.jobs = 4;
    sweep::Sweep s("test-throw", o);
    s.point("ok", [](sweep::Emit &out) { out.printf("fine\n"); });
    s.point("boom", [](sweep::Emit &) {
        throw ConfigError("injected failure");
    });
    EXPECT_THROW(s.renderToString(), ConfigError);
}

/** Real figures must render identical bytes at any job count —
 *  the property the whole bench migration rests on. Spot-check
 *  the three cheapest figures end to end. */
class FigureDeterminism
    : public testing::TestWithParam<const char *>
{};

TEST_P(FigureDeterminism, SerialAndParallelBytesMatch)
{
    const figs::Figure *fig = figs::find(GetParam());
    ASSERT_NE(fig, nullptr);

    auto render = [&](unsigned jobs) {
        sweep::Options o = noCache();
        o.jobs = jobs;
        sweep::Sweep s(fig->binary, o);
        s.scope(fig->binary);
        fig->build(s);
        return s.renderToString();
    };
    const std::string serial = render(1);
    const std::string par = render(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, par);
}

INSTANTIATE_TEST_SUITE_P(CheapFigures, FigureDeterminism,
                         testing::Values("fig01", "fig16",
                                         "usecase"));
