/**
 * @file
 * End-to-end determinism: the same seeded workload must produce
 * bit-identical RunResults no matter how the sweep is scheduled —
 * serially, or via parallelFor with 1, 2 or 8 worker threads. This
 * pins the worker pool's contract (each index claimed exactly
 * once, results written by index) and the indexed multicore
 * scheduler's tie-breaking (lowest core index first).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "ras/fault_plan.hh"
#include "sim/parallel.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

namespace {

std::vector<workloads::WorkloadProfile>
smallSuite()
{
    // Mix of 1-, 2-, 6- and 10-thread workloads so the multicore
    // scheduler's heap path is exercised, shrunk for test speed.
    std::vector<workloads::WorkloadProfile> ws;
    for (const char *n :
         {"605.mcf_s", "602.gcc_s", "519.lbm_r", "603.bwaves_s"}) {
        workloads::WorkloadProfile w = workloads::byName(n);
        w.blocksPerCore = 800;
        ws.push_back(w);
    }
    return ws;
}

void
expectSameResult(const cpu::RunResult &a, const cpu::RunResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.wallTicks, b.wallTicks);
    // Bit-exact: determinism means equality, not tolerance.
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.counters.p1, b.counters.p1);
    EXPECT_EQ(a.counters.p2, b.counters.p2);
    EXPECT_EQ(a.counters.p3, b.counters.p3);
    EXPECT_EQ(a.counters.p4, b.counters.p4);
    EXPECT_EQ(a.counters.p5, b.counters.p5);
    EXPECT_EQ(a.counters.p6, b.counters.p6);
    EXPECT_EQ(a.counters.p7, b.counters.p7);
    EXPECT_EQ(a.counters.p8, b.counters.p8);
    EXPECT_EQ(a.counters.p9, b.counters.p9);
    EXPECT_EQ(a.counters.l1pfIssued, b.counters.l1pfIssued);
    EXPECT_EQ(a.counters.l1pfL3Hit, b.counters.l1pfL3Hit);
    EXPECT_EQ(a.counters.l1pfL3Miss, b.counters.l1pfL3Miss);
    EXPECT_EQ(a.counters.l2pfIssued, b.counters.l2pfIssued);
    EXPECT_EQ(a.counters.l2pfL3Hit, b.counters.l2pfL3Hit);
    EXPECT_EQ(a.counters.l2pfL3Miss, b.counters.l2pfL3Miss);
    EXPECT_EQ(a.counters.demandL3Miss, b.counters.demandL3Miss);
    EXPECT_EQ(a.counters.machineChecks, b.counters.machineChecks);
    EXPECT_EQ(a.counters.demandTimeouts, b.counters.demandTimeouts);
    EXPECT_EQ(a.counters.prefetchDrops, b.counters.prefetchDrops);
    EXPECT_EQ(a.backendStats.reads, b.backendStats.reads);
    EXPECT_EQ(a.backendStats.writes, b.backendStats.writes);

    // RAS reports must agree node-by-node, counter-by-counter.
    ASSERT_EQ(a.ras.size(), b.ras.size());
    for (std::size_t i = 0; i < a.ras.size(); ++i) {
        EXPECT_EQ(a.ras[i].name, b.ras[i].name);
        const ras::RasStats &x = a.ras[i].stats;
        const ras::RasStats &y = b.ras[i].stats;
        EXPECT_EQ(x.crcErrors, y.crcErrors);
        EXPECT_EQ(x.linkReplays, y.linkReplays);
        EXPECT_EQ(x.linkDownEvents, y.linkDownEvents);
        EXPECT_EQ(x.corrected, y.corrected);
        EXPECT_EQ(x.uncorrected, y.uncorrected);
        EXPECT_EQ(x.poisonedReturns, y.poisonedReturns);
        EXPECT_EQ(x.patrolScrubs, y.patrolScrubs);
        EXPECT_EQ(x.refusedRequests, y.refusedRequests);
        EXPECT_EQ(x.hostRetries, y.hostRetries);
        EXPECT_EQ(x.hostTimeouts, y.hostTimeouts);
        EXPECT_EQ(x.failovers, y.failovers);
        EXPECT_EQ(x.failoverExtraNs, y.failoverExtraNs);
        EXPECT_EQ(x.degradedEntries, y.degradedEntries);
        EXPECT_EQ(x.offlineEntries, y.offlineEntries);
    }
}

}  // namespace

TEST(Determinism, ParallelForThreadCountMatchesSerial)
{
    const auto ws = smallSuite();
    const melody::Platform plat("EMR2S", "CXL-A");

    // Serial reference: plain loop, no parallelFor involved.
    std::vector<cpu::RunResult> ref(ws.size());
    for (std::size_t i = 0; i < ws.size(); ++i)
        ref[i] = melody::runWorkload(ws[i], plat, /*seed=*/1);

    for (unsigned threads : {1u, 2u, 8u}) {
        std::vector<cpu::RunResult> out(ws.size());
        parallelFor(
            ws.size(),
            [&](std::size_t i) {
                out[i] = melody::runWorkload(ws[i], plat, /*seed=*/1);
            },
            threads);
        for (std::size_t i = 0; i < ws.size(); ++i)
            expectSameResult(ref[i], out[i],
                             ws[i].name + " @" +
                                 std::to_string(threads) +
                                 " threads");
    }
}

TEST(Determinism, FaultPlanStableAcrossThreadCounts)
{
    // The determinism contract extends to fault injection: every
    // fault process draws from its own seeded stream, so a fixed
    // FaultPlan yields identical results (counters AND RasStats) no
    // matter how many parallelFor workers schedule the runs.
    const auto ws = smallSuite();
    melody::Platform plat("EMR2S", "CXL-B");
    plat.setFaultPlan(ras::parseFaultPlan(
        "crc=3e-4,ce=2e-4,ue=5e-5,scrub=50us,failover"));

    std::vector<cpu::RunResult> ref(ws.size());
    for (std::size_t i = 0; i < ws.size(); ++i)
        ref[i] = melody::runWorkload(ws[i], plat, /*seed=*/3);

    // The plan must actually perturb the runs, or this test proves
    // nothing.
    ras::RasStats injected;
    for (const auto &r : ref)
        injected += r.rasTotal();
    EXPECT_GT(injected.injected(), 0u);

    for (unsigned threads : {1u, 2u, 8u}) {
        std::vector<cpu::RunResult> out(ws.size());
        parallelFor(
            ws.size(),
            [&](std::size_t i) {
                out[i] = melody::runWorkload(ws[i], plat, /*seed=*/3);
            },
            threads);
        for (std::size_t i = 0; i < ws.size(); ++i)
            expectSameResult(ref[i], out[i],
                             ws[i].name + " faulted @" +
                                 std::to_string(threads) +
                                 " threads");
    }
}

TEST(Determinism, RepeatedParallelRunsAreStable)
{
    // Back-to-back pool jobs (the persistent-pool reuse path) must
    // not leak state between jobs.
    const auto ws = smallSuite();
    const melody::Platform plat("SPR2S", "CXL-B");
    std::vector<cpu::RunResult> first(ws.size()),
        second(ws.size());
    for (auto *out : {&first, &second}) {
        parallelFor(
            ws.size(),
            [&](std::size_t i) {
                (*out)[i] =
                    melody::runWorkload(ws[i], plat, /*seed=*/7);
            },
            4);
    }
    for (std::size_t i = 0; i < ws.size(); ++i)
        expectSameResult(first[i], second[i], ws[i].name);
}

TEST(Determinism, ParallelForCoversEveryIndexOnce)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        for (std::size_t grain : {std::size_t{1}, std::size_t{7}}) {
            std::vector<int> hits(1000, 0);
            parallelFor(
                hits.size(), [&](std::size_t i) { ++hits[i]; },
                threads, grain);
            for (std::size_t i = 0; i < hits.size(); ++i)
                ASSERT_EQ(hits[i], 1)
                    << "index " << i << " @" << threads << "t grain "
                    << grain;
        }
    }
}

TEST(Determinism, NestedParallelForFallsBackToSerial)
{
    std::vector<int> outer(16, 0);
    parallelFor(
        outer.size(),
        [&](std::size_t i) {
            int inner = 0;
            parallelFor(
                8, [&](std::size_t) { ++inner; }, 8);
            outer[i] = inner;
        },
        4);
    for (int v : outer)
        EXPECT_EQ(v, 8);
}

TEST(Determinism, CounterScaleMatchesHandDivision)
{
    cpu::CounterSet c;
    c.cycles = 1234.5;
    c.instructions = 999.25;
    c.p1 = 10;
    c.p2 = 20;
    c.p3 = 30;
    c.p4 = 40;
    c.p5 = 50;
    c.p6 = 60;
    c.p7 = 70;
    c.p8 = 80;
    c.p9 = 90;
    c.l2pfIssued = 17;
    cpu::CounterSet d = c;
    d.scale(1.0 / 2.0);
    EXPECT_EQ(d.cycles, c.cycles / 2.0);
    EXPECT_EQ(d.instructions, c.instructions / 2.0);
    EXPECT_EQ(d.p1, c.p1 / 2.0);
    EXPECT_EQ(d.p5, c.p5 / 2.0);
    EXPECT_EQ(d.p9, c.p9 / 2.0);
    // Integral prefetch populations are totals, never scaled.
    EXPECT_EQ(d.l2pfIssued, c.l2pfIssued);
}
