/**
 * @file
 * Tests for the DRAM channel/bank model and the link models.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"
#include "link/link.hh"
#include "sim/rng.hh"

using namespace cxlsim;
using namespace cxlsim::dram;
using namespace cxlsim::link;

TEST(DramTiming, PresetPeaks)
{
    EXPECT_NEAR(ddr4_2933().peakGBps(), 23.5, 0.5);
    EXPECT_NEAR(ddr5_4800().peakGBps(), 38.4, 0.5);
    EXPECT_GT(ddr4_2933().tRFC, 100.0);
    EXPECT_GT(ddr5_4800().tREFI, 1000.0);
}

TEST(Bank, RowHitFasterThanMiss)
{
    const DramTiming t = ddr5_4800();
    Bank b;
    RowResult r;
    const Tick firstDone = b.access(5, 0, t, &r);
    EXPECT_EQ(r, RowResult::kCold);

    Bank hitBank = b;
    const Tick hitDone = hitBank.access(5, firstDone, t, &r);
    EXPECT_EQ(r, RowResult::kHit);

    Bank missBank = b;
    const Tick missDone = missBank.access(9, firstDone, t, &r);
    EXPECT_EQ(r, RowResult::kMiss);

    EXPECT_LT(hitDone, missDone);
    EXPECT_NEAR(ticksToNs(hitDone - firstDone), t.tCL, 0.01);
    EXPECT_NEAR(ticksToNs(missDone - firstDone),
                t.tRP + t.tRCD + t.tCL, 0.01);
}

TEST(Bank, RowHitsPipelineAtBurstRate)
{
    const DramTiming t = ddr5_4800();
    Bank b;
    RowResult r;
    b.access(1, 0, t, &r);
    const Tick free1 = b.freeAt();
    b.access(1, free1, t, &r);
    EXPECT_EQ(r, RowResult::kHit);
    // Occupancy per row hit is the burst time, far below tCL.
    EXPECT_NEAR(ticksToNs(b.freeAt() - free1), t.burst, 0.01);
}

TEST(Bank, BlockDelaysNextAccess)
{
    const DramTiming t = ddr4_2933();
    Bank b;
    b.block(nsToTicks(1000));
    RowResult r;
    const Tick done = b.access(0, 0, t, &r);
    EXPECT_GE(done, nsToTicks(1000));
}

TEST(Channel, SequentialStreamGetsRowHits)
{
    ChannelConfig cfg;
    cfg.timing = ddr5_4800();
    Channel c(cfg);
    Tick now = 0;
    for (Addr a = 0; a < 64 * 1024; a += kCacheLineBytes)
        now = c.access(a, false, now);
    EXPECT_GT(c.stats().rowHitRate(), 0.95);
}

TEST(Channel, RandomAccessesMissRows)
{
    ChannelConfig cfg;
    cfg.timing = ddr4_2933();
    Channel c(cfg);
    Rng r(3);
    Tick now = 0;
    for (int i = 0; i < 4000; ++i) {
        const Addr a = r.below(1 << 22) * kCacheLineBytes;
        now = c.access(a, false, now) + nsToTicks(50);
    }
    EXPECT_LT(c.stats().rowHitRate(), 0.3);
}

TEST(Channel, StreamingBandwidthNearPeak)
{
    ChannelConfig cfg;
    cfg.timing = ddr5_4800();
    cfg.refreshHiding = 1.0;
    Channel c(cfg);
    const int n = 100000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = c.access(static_cast<Addr>(i) * kCacheLineBytes,
                        false, 0);
    const double gbps =
        n * 64.0 / ticksToNs(last);
    EXPECT_GT(gbps, cfg.timing.peakGBps() * 0.9);
    EXPECT_LE(gbps, cfg.timing.peakGBps() * 1.01);
}

TEST(Channel, VisibleRefreshOnlyWhenNotHidden)
{
    for (double hiding : {0.0, 1.0}) {
        ChannelConfig cfg;
        cfg.timing = ddr4_2933();
        cfg.refreshHiding = hiding;
        Channel c(cfg);
        Tick now = 0;
        // Walk long enough to pass many tREFI windows.
        for (int i = 0; i < 50000; ++i) {
            now = c.access(static_cast<Addr>(i % 4096) *
                               kCacheLineBytes,
                           false, now) +
                  nsToTicks(10);
        }
        if (hiding == 0.0)
            EXPECT_GT(c.stats().refreshStalls, 0u);
        else
            EXPECT_EQ(c.stats().refreshStalls, 0u);
    }
}

TEST(Channel, TurnaroundCharged)
{
    ChannelConfig cfg;
    cfg.timing = ddr5_4800();
    Channel c(cfg);
    Tick now = 0;
    for (int i = 0; i < 100; ++i)
        now = c.access(static_cast<Addr>(i) * kCacheLineBytes,
                       i % 2 == 0, now);
    EXPECT_GT(c.stats().turnarounds, 50u);
    EXPECT_EQ(c.stats().reads + c.stats().writes, 100u);
}

TEST(Channel, CompletionMonotonicUnderBackToBackLoad)
{
    ChannelConfig cfg;
    cfg.timing = ddr4_2933();
    Channel c(cfg);
    Tick prev = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tick done = c.access(
            static_cast<Addr>(i) * kCacheLineBytes, false, 0);
        EXPECT_GE(done, prev);  // shared bus serializes
        prev = done;
    }
}

TEST(DuplexLink, DirectionsIndependent)
{
    LinkConfig cfg{.gbpsPerDir = 32.0, .propagationNs = 10.0};
    DuplexLink l(cfg);
    const Tick r1 = l.send(64, Dir::kFromDevice, 0);
    const Tick w1 = l.send(64, Dir::kToDevice, 0);
    // Neither waited for the other: both = ser + prop.
    const Tick expect = serializationTicks(64, 32.0) + nsToTicks(10);
    EXPECT_EQ(r1, expect);
    EXPECT_EQ(w1, expect);
}

TEST(DuplexLink, SerializationQueues)
{
    LinkConfig cfg{.gbpsPerDir = 32.0, .propagationNs = 0.0};
    DuplexLink l(cfg);
    const Tick first = l.send(64, Dir::kFromDevice, 0);
    const Tick second = l.send(64, Dir::kFromDevice, 0);
    EXPECT_EQ(second, 2 * first);
    EXPECT_EQ(l.stats().transfers[1], 2u);
    EXPECT_EQ(l.stats().bytes[1], 128u);
}

TEST(DuplexLink, BandwidthCapProperty)
{
    LinkConfig cfg{.gbpsPerDir = 24.0, .propagationNs = 15.0};
    DuplexLink l(cfg);
    const int n = 50000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = l.send(64, Dir::kFromDevice, 0);
    const double gbps = n * 64.0 / ticksToNs(last);
    EXPECT_NEAR(gbps, 24.0, 0.5);
}

TEST(HalfDuplexLink, TurnaroundOnDirectionFlip)
{
    LinkConfig cfg{.gbpsPerDir = 21.0,
                   .propagationNs = 0.0,
                   .turnaroundNs = 8.0};
    HalfDuplexLink l(cfg);
    const Tick a = l.send(64, Dir::kToDevice, 0);
    const Tick b = l.send(64, Dir::kToDevice, a);
    const Tick sameDirDelta = b - a;
    const Tick c = l.send(64, Dir::kFromDevice, b);
    const Tick flipDelta = c - b;
    EXPECT_NEAR(ticksToNs(flipDelta - sameDirDelta), 8.0, 0.01);
}

TEST(HalfDuplexLink, SharedMediumSerializesBothDirections)
{
    LinkConfig cfg{.gbpsPerDir = 21.0,
                   .propagationNs = 0.0,
                   .turnaroundNs = 0.0};
    HalfDuplexLink l(cfg);
    const int n = 20000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = l.send(64, i % 2 ? Dir::kToDevice : Dir::kFromDevice,
                      0);
    const double gbps = n * 64.0 / ticksToNs(last);
    // Both directions share 21 GB/s (unlike a duplex link's 42).
    EXPECT_NEAR(gbps, 21.0, 0.5);
}
