/**
 * @file
 * Tests for the Melody framework layer: platforms, the MLC-style
 * loaded-latency probe, the MIO latency sampler and the slowdown
 * runner — including the paper's qualitative findings.
 */

#include <gtest/gtest.h>

#include "core/mio.hh"
#include "core/mlc.hh"
#include "core/platform.hh"
#include "core/slowdown.hh"
#include "sim/logging.hh"
#include "workloads/suite.hh"

using namespace cxlsim;
using melody::Platform;

TEST(Platform, NamesAndCpuMapping)
{
    Platform p("EMR2S", "CXL-A");
    EXPECT_EQ(p.displayName(), "EMR:CXL-A");
    EXPECT_EQ(p.cpu().name, "EMR");
    Platform s("SKX8S", "NUMA-410ns");
    EXPECT_EQ(s.cpu().name, "SKX8S");
    EXPECT_NEAR(s.cpu().freqGhz, 2.5, 1e-9);
}

TEST(Platform, AllSetupsConstructBackends)
{
    const char *mems[] = {"Local",        "NUMA",
                          "CXL-A",        "CXL-B",
                          "CXL-C",        "CXL-D",
                          "CXL-A+NUMA",   "CXL-A+Switch",
                          "CXL-B+Switch2", "CXL-Dx2"};
    for (const char *m : mems) {
        Platform p("EMR2S", m);
        auto be = p.makeBackend(1);
        ASSERT_NE(be, nullptr) << m;
        const Tick done = be->access(0, mem::ReqType::kDemandLoad, 0);
        EXPECT_GT(done, 0u) << m;
    }
}

TEST(Mlc, BandwidthRisesAsDelayShrinks)
{
    Platform p("EMR2S", "CXL-A");
    melody::MlcConfig cfg;
    cfg.windowUs = 150;
    cfg.warmupUs = 40;
    const auto pts = melody::mlcSweep(
        [&] { return p.makeBackend(3); }, cfg, {20000, 2000, 200, 0});
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_LT(pts.front().gbps, pts.back().gbps);
    for (const auto &pt : pts)
        EXPECT_GT(pt.samples, 0u);
}

TEST(Mlc, LatencyRisesNearSaturation)
{
    Platform p("EMR2S", "CXL-B");
    auto be = p.makeBackend(5);
    melody::MlcConfig cfg;
    cfg.windowUs = 150;
    cfg.warmupUs = 40;
    cfg.delayCycles = 20000;
    const auto idle = melody::mlcMeasure(be.get(), cfg);
    auto be2 = p.makeBackend(5);
    cfg.delayCycles = 0;
    const auto loaded = melody::mlcMeasure(be2.get(), cfg);
    EXPECT_GT(loaded.avgNs, idle.avgNs * 1.5);
    // Saturated CXL devices reach us-level latencies (Fig 3a).
    EXPECT_GT(loaded.avgNs, 600.0);
}

TEST(Mlc, StandardDelayLadderDescends)
{
    const auto d = melody::mlcStandardDelays();
    ASSERT_GT(d.size(), 5u);
    for (std::size_t i = 1; i < d.size(); ++i)
        EXPECT_LT(d[i], d[i - 1]);
    EXPECT_EQ(d.back(), 0.0);
}

TEST(Mio, RecordsRequestedSamples)
{
    Platform p("EMR2S", "Local");
    auto be = p.makeBackend(7);
    const auto res = melody::mioChaseDirect(be.get(), 2, 3000);
    EXPECT_EQ(res.latencyNs.count(), 2u * 3000u);
    EXPECT_GT(res.gbps, 0.0);
}

TEST(Mio, MoreThreadsRaiseCxlTails)
{
    // Figure 3b: CXL tail latencies grow with co-located chasers.
    Platform p("EMR2S", "CXL-B");
    auto b1 = p.makeBackend(9);
    auto b32 = p.makeBackend(9);
    const auto r1 = melody::mioChaseDirect(b1.get(), 1, 8000);
    const auto r32 = melody::mioChaseDirect(b32.get(), 16, 2000);
    EXPECT_GT(r32.latencyNs.percentile(0.999),
              r1.latencyNs.percentile(0.999));
}

TEST(Mio, NoiseThreadsWorsenTails)
{
    // Figure 4: read/write background traffic inflates CXL tails.
    Platform p("EMR2S", "CXL-A");
    auto quiet = p.makeBackend(11);
    auto noisy = p.makeBackend(11);
    const auto rq = melody::mioChaseDirect(quiet.get(), 1, 6000);
    melody::MioNoise noise;
    noise.threads = 7;
    noise.readFrac = 0.5;
    noise.paceNs = 120.0;
    const auto rn =
        melody::mioChaseDirect(noisy.get(), 1, 6000, noise);
    EXPECT_GT(rn.latencyNs.percentile(0.999),
              rq.latencyNs.percentile(0.999) * 1.2);
    EXPECT_GT(rn.gbps, rq.gbps);
}

TEST(Mio, CpuPrefetchersHideSequentialChaseLatency)
{
    // Figure 6: through the CPU with prefetchers on, a
    // sequential-layout chase sees far lower latencies than the
    // device latency...
    Platform p("EMR2S", "CXL-B");
    auto beOn = p.makeBackend(13);
    const auto on = melody::mioChaseViaCpu(p.cpu(), beOn.get(), 2,
                                           20000, true);
    auto beOff = p.makeBackend(13);
    const auto off = melody::mioChaseViaCpu(p.cpu(), beOff.get(), 2,
                                            20000, false);
    EXPECT_LT(on.latencyNs.mean(), off.latencyNs.mean() * 0.5);
    // ...but prefetching does NOT eliminate the tails.
    EXPECT_GT(on.latencyNs.percentile(0.9999), 150.0);
}

TEST(Slowdown, LocalBaselineIsFaster)
{
    workloads::WorkloadProfile w = workloads::byName("605.mcf_s");
    w.blocksPerCore = 30000;
    Platform local("EMR2S", "Local");
    Platform cxl("EMR2S", "CXL-B");
    const auto b = melody::runWorkload(w, local, 15);
    const auto t = melody::runWorkload(w, cxl, 15);
    EXPECT_GT(melody::slowdownPct(b, t), 5.0);
    EXPECT_EQ(melody::slowdownPct(b, b), 0.0);
}

TEST(Slowdown, StudyCachesBaselines)
{
    melody::SlowdownStudy study(77);
    workloads::WorkloadProfile w = workloads::byName("pts-openssl");
    const auto &b1 = study.baseline(w, "EMR2S");
    const auto &b2 = study.baseline(w, "EMR2S");
    EXPECT_EQ(&b1, &b2);  // memoized
    const double s = study.slowdown(w, "EMR2S", "CXL-A");
    EXPECT_GT(s, -5.0);
    EXPECT_LT(s, 100.0);
}

TEST(Slowdown, SuperLinearInLatency)
{
    // Finding #2: slowdown grows super-linearly with latency; at
    // minimum it must grow monotonically across the 140-410ns span.
    workloads::WorkloadProfile w =
        workloads::byName("ubench-chase-4096m-i17");
    w.blocksPerCore = 25000;
    melody::SlowdownStudy study(79);
    const double s140 = study.slowdown(w, "SKX2S", "NUMA-140ns");
    const double s410 = study.slowdown(w, "SKX8S", "NUMA-410ns");
    EXPECT_GT(s410, s140 * 1.5);
}

TEST(Slowdown, CxlNumaAnomaly)
{
    // §4 Fig 8c/d: CXL+NUMA is far worse than its average latency
    // suggests, due to congestion-episode tails.
    workloads::WorkloadProfile w =
        workloads::byName("520.omnetpp_r");
    w.blocksPerCore = 60000;
    melody::SlowdownStudy study(81);
    const double sCxl = study.slowdown(w, "EMR2S", "CXL-A");
    const double sCxlNuma =
        study.slowdown(w, "EMR2S", "CXL-A+NUMA");
    EXPECT_GT(sCxlNuma, sCxl * 3.0);
    EXPECT_GT(sCxlNuma, 60.0);
}

TEST(Slowdown, BandwidthBoundSufferMostOnWeakDevices)
{
    workloads::WorkloadProfile w = workloads::byName("603.bwaves_s");
    w.blocksPerCore = 15000;
    melody::SlowdownStudy study(83);
    const double sB = study.slowdown(w, "EMR2S", "CXL-B");
    const double sD = study.slowdown(w, "EMR2S", "CXL-D");
    // CXL-D's bandwidth advantage shows exactly here (Fig 8b/f).
    EXPECT_GT(sB, sD * 1.5);
    EXPECT_GT(sB, 150.0);  // the 1.5-5.8x tail
}

TEST(Mlc, WriteFractionMatchesConfig)
{
    Platform p("EMR2S", "Local");
    auto be = p.makeBackend(21);
    melody::MlcConfig cfg;
    cfg.readFrac = 0.75;
    cfg.delayCycles = 500;
    cfg.windowUs = 100;
    cfg.warmupUs = 20;
    cfg.latencyThread = false;
    melody::mlcMeasure(be.get(), cfg);
    const auto &st = be->stats();
    const double writeFrac =
        static_cast<double>(st.writes) /
        static_cast<double>(st.requests());
    EXPECT_NEAR(writeFrac, 0.25, 0.03);
}

TEST(Mio, UtilizationAgainstPeak)
{
    Platform p("EMR2S", "CXL-A");
    auto be = p.makeBackend(23);
    melody::MioNoise noise;
    noise.threads = 16;
    noise.slotsPerThread = 8;
    noise.paceNs = 0.0;
    const auto r =
        melody::mioChaseDirect(be.get(), 1, 8000, noise, 32.0);
    EXPECT_GT(r.utilization, 0.3);
    EXPECT_LE(r.utilization, 1.1);
}

TEST(PlatformDeath, UnknownServerThrows)
{
    EXPECT_THROW(Platform("XEON9000", "Local"),
                 cxlsim::ConfigError);
}

TEST(PlatformDeath, UnknownMemoryThrows)
{
    Platform p("EMR2S", "DDR9");
    EXPECT_THROW(p.makeBackend(1), cxlsim::ConfigError);
}

TEST(SuiteDeath, UnknownWorkloadThrows)
{
    EXPECT_THROW(workloads::byName("586.quake_r"),
                 cxlsim::ConfigError);
}
