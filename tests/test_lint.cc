/**
 * @file
 * melody-lint rule-engine tests: each rule family has a fixture
 * proving it fires (exact rule id + line) and a clean fixture
 * proving it stays quiet, plus suppression, scoping and lexer
 * robustness coverage. Fixtures live in tests/lint_fixtures/ and
 * are linted under *virtual* paths so the path-scoping logic is
 * exercised without depending on where the checkout lives.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace {

using melodylint::Diagnostic;
using melodylint::lintSource;

std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** (rule, line) pairs for compact assertions. */
std::vector<std::pair<std::string, int>>
ruleLines(const std::vector<Diagnostic> &diags)
{
    std::vector<std::pair<std::string, int>> out;
    out.reserve(diags.size());
    for (const auto &d : diags)
        out.emplace_back(d.rule, d.line);
    return out;
}

using Expected = std::vector<std::pair<std::string, int>>;

// ---------------------------------------------------------------
// Family 1: determinism.
// ---------------------------------------------------------------

TEST(LintDeterminism, BannedCallFiresWithRuleAndLine)
{
    const auto diags = lintSource("src/cxl/fixture.cc",
                                  fixture("det_banned_call.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"det-banned-call", 10},
                        {"det-banned-call", 16}}));
}

TEST(LintDeterminism, BannedCallAllowedInsideRng)
{
    // src/sim/rng.cc is the one blessed home for raw entropy.
    const auto diags = lintSource("src/sim/rng.cc",
                                  fixture("det_banned_call.cc"));
    EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, UnorderedIterFiresInStatsPath)
{
    const auto diags = lintSource("src/stats/fixture.cc",
                                  fixture("det_unordered_iter.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"det-unordered-iter", 15}}));
}

TEST(LintDeterminism, UnorderedIterFiresInSweepEnginePaths)
{
    // The sweep engine renders figure bytes, so it is an output
    // path even though it lives under src/sim/.
    const auto sweepDiags = lintSource(
        "src/sim/sweep.cc", fixture("det_unordered_iter.cc"));
    EXPECT_EQ(ruleLines(sweepDiags),
              (Expected{{"det-unordered-iter", 15}}));
    const auto cacheDiags = lintSource(
        "src/sim/run_cache.cc", fixture("det_unordered_iter.cc"));
    EXPECT_EQ(ruleLines(cacheDiags),
              (Expected{{"det-unordered-iter", 15}}));
}

TEST(LintDeterminism, UnorderedIterQuietOutsideOutputPaths)
{
    // The same loop in the memory model is order-insensitive
    // simulation state, not figure output.
    const auto diags = lintSource("src/mem/fixture.cc",
                                  fixture("det_unordered_iter.cc"));
    EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, StaticLocalFiresOnMutableOnly)
{
    const auto diags = lintSource("src/sim/fixture.cc",
                                  fixture("det_static_local.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"det-static-local", 8}}));
}

TEST(LintDeterminism, UnorderedIterFiresInPdesPaths)
{
    // The PDES core's drain order IS the determinism contract, so
    // pdes/partition sources are output paths for this rule.
    const auto pdesDiags = lintSource(
        "src/sim/pdes.cc", fixture("det_unordered_iter.cc"));
    EXPECT_EQ(ruleLines(pdesDiags),
              (Expected{{"det-unordered-iter", 15}}));
    const auto partDiags = lintSource(
        "src/sim/partition.cc", fixture("det_unordered_iter.cc"));
    EXPECT_EQ(ruleLines(partDiags),
              (Expected{{"det-unordered-iter", 15}}));
}

TEST(LintDeterminism, PdesSharedMutationFiresInHandlerLambdas)
{
    // Cross-partition schedule()/mutating calls inside lambda
    // bodies fire; `self`-local scheduling, const accessors, and
    // setup-scope calls outside lambdas stay quiet.
    const auto diags =
        lintSource("src/sim/fixture.cc",
                   fixture("det_pdes_shared_mutation.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"det-pdes-shared-mutation", 18},
                        {"det-pdes-shared-mutation", 19},
                        {"det-pdes-shared-mutation", 21}}));
}

TEST(LintDeterminism, PdesSharedMutationAppliesOnAnyPath)
{
    // Partition handles can leak into tests and tools; the handler
    // contract follows the type, not the directory.
    const auto diags =
        lintSource("tests/fixture.cc",
                   fixture("det_pdes_shared_mutation.cc"));
    EXPECT_EQ(diags.size(), 3u);
}

// ---------------------------------------------------------------
// Family 2: RAS-status hygiene.
// ---------------------------------------------------------------

TEST(LintRas, IgnoredStatusFiresOnDropAndVoidCast)
{
    const auto diags = lintSource("src/mem/fixture.cc",
                                  fixture("ras_ignored_status.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"ras-ignored-status", 19},
                        {"ras-ignored-status", 20}}));
}

TEST(LintRas, IgnoredStatusQuietOutsideRasLayers)
{
    const auto diags = lintSource("src/cpu/fixture.cc",
                                  fixture("ras_ignored_status.cc"));
    EXPECT_TRUE(diags.empty());
}

TEST(LintRas, PlainCallFiresOnPointerReceiver)
{
    const auto diags = lintSource("src/cxl/fixture.cc",
                                  fixture("ras_plain_call.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"ras-plain-call", 19}}));
}

TEST(LintRas, PlainCallQuietInHeadersAndOtherLayers)
{
    // Headers define the status-less wrappers themselves (the
    // header-hygiene rules still inspect the virtual .hh path, so
    // only assert this rule's silence).
    for (const auto &d : lintSource("src/cxl/fixture.hh",
                                    fixture("ras_plain_call.cc")))
        EXPECT_NE(d.rule, "ras-plain-call");
    EXPECT_TRUE(lintSource("src/dram/fixture.cc",
                           fixture("ras_plain_call.cc"))
                    .empty());
}

// ---------------------------------------------------------------
// Family 3: error discipline.
// ---------------------------------------------------------------

TEST(LintError, FatalOnUserInputPathFires)
{
    const auto diags =
        lintSource("src/ras/fault_plan_util.cc",
                   fixture("err_fatal_user_input.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"err-fatal-user-input", 11}}));
}

TEST(LintError, FatalFineOnInternalPaths)
{
    // SIM_FATAL stays legal for internal invariants elsewhere.
    const auto diags = lintSource(
        "src/cpu/core.cc", fixture("err_fatal_user_input.cc"));
    EXPECT_TRUE(diags.empty());
}

TEST(LintError, StrayStreamFiresInLibraryCode)
{
    const auto diags = lintSource("src/spa/fixture.cc",
                                  fixture("err_stray_stream.cc"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"err-stray-stream", 11},
                        {"err-stray-stream", 12}}));
}

TEST(LintError, StrayStreamFineInToolsAndLogging)
{
    EXPECT_TRUE(lintSource("tools/melody_cli.cc",
                           fixture("err_stray_stream.cc"))
                    .empty());
    EXPECT_TRUE(lintSource("src/sim/logging.cc",
                           fixture("err_stray_stream.cc"))
                    .empty());
}

// ---------------------------------------------------------------
// Family 4: header hygiene.
// ---------------------------------------------------------------

TEST(LintHeader, GuardMismatchFires)
{
    const auto diags = lintSource("src/sim/fixture.hh",
                                  fixture("hdr_bad_guard.hh"));
    EXPECT_EQ(ruleLines(diags), (Expected{{"hdr-guard", 3}}));
}

TEST(LintHeader, PragmaOnceFires)
{
    const auto diags = lintSource("src/sim/fixture.hh",
                                  fixture("hdr_pragma_once.hh"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"hdr-pragma-once", 3}}));
}

TEST(LintHeader, MissingIncludeFires)
{
    const auto diags = lintSource("src/sim/fixture.hh",
                                  fixture("hdr_missing_include.hh"));
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"hdr-missing-include", 13}}));
}

TEST(LintHeader, GuardRulesSkipNonHeaders)
{
    const auto diags = lintSource("src/sim/fixture.cc",
                                  fixture("hdr_pragma_once.hh"));
    EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------
// Clean fixtures: every family stays quiet on well-behaved code.
// ---------------------------------------------------------------

TEST(LintClean, CleanSourceIsQuietInEveryScope)
{
    const std::string content = fixture("clean.cc");
    for (const char *path :
         {"src/stats/clean.cc", "src/mem/clean.cc",
          "src/cxl/clean.cc", "src/sim/clean.cc",
          "tools/clean.cc"})
        EXPECT_TRUE(lintSource(path, content).empty())
            << "unexpected finding under " << path;
}

TEST(LintClean, CleanHeaderIsQuiet)
{
    EXPECT_TRUE(
        lintSource("src/sim/clean.hh", fixture("clean.hh"))
            .empty());
}

// ---------------------------------------------------------------
// Suppression syntax.
// ---------------------------------------------------------------

TEST(LintSuppression, AllowCoversSameLineAndLineAbove)
{
    int suppressed = 0;
    const auto diags = lintSource(
        "src/cxl/fixture.cc", fixture("suppressed.cc"),
        &suppressed);
    // Only the wrong-rule allow leaves its violation live.
    EXPECT_EQ(ruleLines(diags),
              (Expected{{"det-banned-call", 24}}));
    EXPECT_EQ(suppressed, 2);
}

// ---------------------------------------------------------------
// Lexer robustness: tokens inside comments and strings are inert.
// ---------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsNeverMatch)
{
    const std::string content =
        "// rand() in a comment\n"
        "/* std::mt19937 in a block\n   comment */\n"
        "const char *s = \"rand() time() SIM_FATAL\";\n"
        "const char *r = R\"(rand() mt19937)\";\n";
    EXPECT_TRUE(lintSource("src/cxl/strings.cc", content).empty());
}

TEST(LintLexer, LineNumbersSurviveMultilineConstructs)
{
    const std::string content =
        "/* one\n   two\n   three */\n"
        "int f() { return rand(); }\n";  // line 4
    const auto diags = lintSource("src/cxl/lines.cc", content);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "det-banned-call");
    EXPECT_EQ(diags[0].line, 4);
}

// ---------------------------------------------------------------
// JSON report shape.
// ---------------------------------------------------------------

TEST(LintReport, JsonHasStableKeysAndCounts)
{
    melodylint::Report report;
    report.filesScanned = 2;
    report.suppressed = 1;
    report.diags.push_back({"src/a.cc", 7, "det-banned-call",
                            melodylint::Severity::kError,
                            "msg with \"quotes\""});
    std::ostringstream os;
    melodylint::writeJsonReport(report, os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"filesScanned\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"warnings\": 0"), std::string::npos);
    EXPECT_NE(j.find("\"suppressed\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"rule\": \"det-banned-call\""),
              std::string::npos);
    EXPECT_NE(j.find("\\\"quotes\\\""), std::string::npos);
}

}  // namespace
