/**
 * @file
 * Tests for the 265-workload suite and the synthetic kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/suite.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;
using namespace cxlsim::workloads;

TEST(Suite, Has265UniqueWorkloads)
{
    const auto &all = suite();
    EXPECT_EQ(all.size(), 265u);
    std::set<std::string> names;
    for (const auto &w : all)
        names.insert(w.name);
    EXPECT_EQ(names.size(), all.size());
}

TEST(Suite, CoversPaperFamilies)
{
    const auto fams = familyNames();
    for (const char *f : {"SPEC", "GAPBS", "PBBS", "PARSEC", "Cloud",
                          "Phoronix", "YCSB", "Spark", "ML", "ubench"})
        EXPECT_NE(std::find(fams.begin(), fams.end(), f), fams.end())
            << f;
}

TEST(Suite, HeadlinersPresent)
{
    for (const char *n :
         {"603.bwaves_s", "619.lbm_s", "649.fotonik3d_s",
          "654.roms_s", "605.mcf_s", "520.omnetpp_r", "602.gcc_s",
          "631.deepsjeng_s", "508.namd_r", "redis/ycsb-c",
          "voltdb/ycsb-a", "bfs-twitter", "tc-kron", "pr-web",
          "gpt2-small", "llama-7b-decode", "dlrm-inference"})
        EXPECT_TRUE(hasWorkload(n)) << n;
    EXPECT_FALSE(hasWorkload("not-a-workload"));
}

TEST(Suite, ProfilesAreSane)
{
    for (const auto &w : suite()) {
        EXPECT_GE(w.threads, 1u) << w.name;
        EXPECT_GT(w.blocksPerCore, 0u) << w.name;
        EXPECT_GT(w.uopsPerBlock, 0.0) << w.name;
        EXPECT_GE(w.loadsPerBlock, 0.0) << w.name;
        EXPECT_GE(w.workingSetBytes, 1u << 16) << w.name;
        EXPECT_LE(w.seqFrac + w.strideFrac + w.hotFrac, 1.03)
            << w.name;
        EXPECT_GE(w.dependentFrac, 0.0) << w.name;
        EXPECT_LE(w.dependentFrac, 1.0) << w.name;
        EXPECT_GE(w.coldBurst, 1u) << w.name;
        EXPECT_GT(w.instructionsPerCore(), 0u) << w.name;
    }
}

TEST(Suite, PhaseWeightsPositive)
{
    for (const auto &w : suite())
        for (const auto &ph : w.phases) {
            EXPECT_GT(ph.weight, 0.0) << w.name;
            EXPECT_GE(ph.intensity, 0.0) << w.name;
        }
}

TEST(Suite, HeadlinersHavePhases)
{
    EXPECT_GE(byName("602.gcc_s").phases.size(), 2u);
    EXPECT_GE(byName("605.mcf_s").phases.size(), 3u);
    EXPECT_GE(byName("631.deepsjeng_s").phases.size(), 3u);
    EXPECT_GE(byName("508.namd_r").phases.size(), 3u);
}

TEST(Suite, CxlCSubsetIs60Smallest)
{
    const auto sub = cxlCSubset();
    EXPECT_EQ(sub.size(), 60u);
    std::uint64_t maxWs = 0;
    for (const auto &w : sub)
        maxWs = std::max(maxWs, w.workingSetBytes);
    // Everything in the subset fits CXL-C's 16GB.
    EXPECT_LE(maxWs, 16ULL << 30);
    // And nothing excluded is smaller than the subset's largest.
    for (const auto &w : suite()) {
        bool inSub = false;
        for (const auto &s : sub)
            if (s.name == w.name)
                inSub = true;
        if (!inSub) {
            EXPECT_GE(w.workingSetBytes, maxWs == 0 ? 0 : 1u);
        }
    }
}

TEST(Suite, FamilyLookup)
{
    const auto spec = familyWorkloads("SPEC");
    EXPECT_GE(spec.size(), 30u);
    for (const auto &w : spec)
        EXPECT_EQ(w.family, "SPEC");
    EXPECT_TRUE(familyWorkloads("no-such-family").empty());
}

TEST(Kernel, DeterministicStream)
{
    const auto &w = byName("605.mcf_s");
    SyntheticKernel a(w, 0), b(w, 0);
    cpu::Block ba, bb;
    for (int i = 0; i < 2000; ++i) {
        const bool ra = a.next(&ba);
        const bool rb = b.next(&bb);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        ASSERT_EQ(ba.uops, bb.uops);
        ASSERT_EQ(ba.nOps, bb.nOps);
        for (unsigned k = 0; k < ba.nOps; ++k) {
            ASSERT_EQ(ba.ops[k].addr, bb.ops[k].addr);
            ASSERT_EQ(ba.ops[k].isStore, bb.ops[k].isStore);
            ASSERT_EQ(ba.ops[k].dependent, bb.ops[k].dependent);
        }
    }
}

TEST(Kernel, CoresGetDisjointPartitions)
{
    auto w = byName("bfs-web");
    w.blocksPerCore = 5000;
    SyntheticKernel k0(w, 0), k1(w, 1);
    cpu::Block b;
    // Sequential stream addresses of different cores never collide.
    std::set<Addr> seq0;
    while (k0.next(&b))
        for (unsigned i = 0; i < b.nOps; ++i)
            if (b.ops[i].streamId == 1)
                seq0.insert(b.ops[i].addr);
    while (k1.next(&b))
        for (unsigned i = 0; i < b.nOps; ++i)
            if (b.ops[i].streamId == 1) {
                EXPECT_EQ(seq0.count(b.ops[i].addr), 0u);
            }
}

TEST(Kernel, EmitsConfiguredRates)
{
    auto w = byName("pts-openssl");
    w.blocksPerCore = 40000;
    SyntheticKernel k(w, 0);
    cpu::Block b;
    std::uint64_t blocks = 0, loads = 0, stores = 0, uops = 0;
    while (k.next(&b)) {
        ++blocks;
        uops += b.uops;
        for (unsigned i = 0; i < b.nOps; ++i)
            (b.ops[i].isStore ? stores : loads) += 1;
    }
    EXPECT_EQ(blocks, w.blocksPerCore);
    EXPECT_NEAR(static_cast<double>(loads) / blocks,
                w.loadsPerBlock, w.loadsPerBlock * 0.15);
    EXPECT_NEAR(static_cast<double>(stores) / blocks,
                w.storesPerBlock, w.storesPerBlock * 0.15);
    EXPECT_NEAR(static_cast<double>(uops) / blocks, w.uopsPerBlock,
                w.uopsPerBlock * 0.1);
}

TEST(Kernel, AddressesStayWithinWorkingSet)
{
    auto w = byName("redis/ycsb-a");
    w.blocksPerCore = 5000;
    for (unsigned core = 0; core < 2; ++core) {
        SyntheticKernel k(w, core);
        cpu::Block b;
        while (k.next(&b))
            for (unsigned i = 0; i < b.nOps; ++i)
                ASSERT_LT(b.ops[i].addr, w.workingSetBytes);
    }
}

TEST(Kernel, PhasesModulateIntensity)
{
    auto w = byName("602.gcc_s");  // heavy 2/3, light 1/3
    w.blocksPerCore = 60000;
    SyntheticKernel k(w, 0);
    cpu::Block b;
    std::uint64_t early = 0, late = 0, blocks = 0;
    while (k.next(&b)) {
        std::uint64_t loads = 0;
        for (unsigned i = 0; i < b.nOps; ++i)
            loads += !b.ops[i].isStore;
        if (blocks < w.blocksPerCore * 6 / 10)
            early += loads;
        else if (blocks >= w.blocksPerCore * 7 / 10)
            late += loads;
        ++blocks;
    }
    // First phase is ~4x more intense than the tail phase.
    EXPECT_GT(early, late * 2);
}

TEST(Kernel, PreloadRespectsBudget)
{
    auto w = byName("ubench-rnd-64m-i1");
    SyntheticKernel k(w, 0);
    std::uint64_t big = 0, small = 0;
    k.forEachPreloadLine([&](Addr) { ++big; }, 128ULL << 20);
    k.forEachPreloadLine([&](Addr) { ++small; }, 4ULL << 20);
    // Generous budget: whole 64MB partition; tight budget: hot set.
    EXPECT_EQ(big, (64ULL << 20) / 64);
    EXPECT_LT(small, (4ULL << 20) / 64);
    EXPECT_GT(small, 0u);
}

TEST(Kernel, DependentOnlyOnColdLoads)
{
    auto w = byName("520.omnetpp_r");
    w.blocksPerCore = 30000;
    SyntheticKernel k(w, 0);
    cpu::Block b;
    std::uint64_t dep = 0, total = 0;
    while (k.next(&b))
        for (unsigned i = 0; i < b.nOps; ++i) {
            if (b.ops[i].isStore)
                continue;
            ++total;
            dep += b.ops[i].dependent;
        }
    EXPECT_GT(dep, 0u);
    EXPECT_LT(dep, total / 2);  // hot/stream loads never dependent
}
