/**
 * @file
 * Cross-module property tests against reference models: the cache
 * vs an exact LRU list, the DRAM channel's physical bounds, the
 * link's byte accounting, counter nesting under random workloads,
 * end-to-end determinism, and the trace kernel.
 */

#include <gtest/gtest.h>

#include <list>
#include <sstream>
#include <unordered_map>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "cpu/cache.hh"
#include "cpu/multicore.hh"
#include "dram/channel.hh"
#include "link/link.hh"
#include "sim/rng.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic_kernel.hh"
#include "workloads/trace_kernel.hh"

using namespace cxlsim;

/**
 * Reference LRU model: per-set ordered list; compare hit/miss
 * decisions and victim choice with the Cache under random traffic.
 */
class CacheVsReference : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheVsReference, MatchesExactLru)
{
    constexpr std::uint64_t kSets = 16;
    constexpr unsigned kWays = 4;
    cpu::Cache cache(kSets * kWays * kCacheLineBytes, kWays);
    ASSERT_EQ(cache.sets(), kSets);

    // Reference: per-set MRU-ordered list of tags.
    std::vector<std::list<Addr>> ref(kSets);
    Rng rng(1000 + GetParam());

    for (int i = 0; i < 20000; ++i) {
        const Addr line =
            rng.below(kSets * kWays * 4) * kCacheLineBytes;
        const std::uint64_t set =
            (line / kCacheLineBytes) % kSets;
        auto &lst = ref[set];
        const auto it =
            std::find(lst.begin(), lst.end(), line);
        const bool refHit = it != lst.end();

        Tick ready;
        cpu::StallTag home;
        const auto got = cache.lookup(line, 1'000'000, &ready, &home);
        ASSERT_EQ(got == cpu::LookupResult::kHit, refHit)
            << "iteration " << i;

        if (refHit) {
            lst.erase(it);
            lst.push_front(line);
        } else {
            cache.insert(line, 0, cpu::StallTag::kDram, false);
            lst.push_front(line);
            if (lst.size() > kWays)
                lst.pop_back();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsReference,
                         ::testing::Values(0, 1, 2, 3, 4));

/** DRAM channel physics: completion after arrival + CAS, and
 *  aggregate bandwidth never above the bus peak. */
class ChannelPhysics : public ::testing::TestWithParam<int>
{
};

TEST_P(ChannelPhysics, BoundsHold)
{
    dram::ChannelConfig cfg;
    cfg.timing = GetParam() % 2 ? dram::ddr4_2933()
                                : dram::ddr5_4800();
    cfg.seed = GetParam();
    dram::Channel chan(cfg);
    Rng rng(2000 + GetParam());

    Tick now = 0;
    Tick last = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Addr a = rng.below(1 << 20) * kCacheLineBytes;
        const bool wr = rng.chance(0.3);
        const Tick done = chan.access(a, wr, now);
        ASSERT_GE(done, now + nsToTicks(cfg.timing.tCL) -
                            nsToTicks(0.01));
        last = std::max(last, done);
        // Mixed pacing: sometimes back-to-back, sometimes spaced.
        if (rng.chance(0.5))
            now = done;
    }
    const double gbps = n * 64.0 / ticksToNs(last);
    EXPECT_LE(gbps, cfg.timing.peakGBps() * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPhysics,
                         ::testing::Values(0, 1, 2, 3));

TEST(LinkProperties, ByteAccountingExact)
{
    link::LinkConfig cfg{.gbpsPerDir = 32, .propagationNs = 10};
    link::DuplexLink l(cfg);
    std::uint64_t to = 0, from = 0;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const unsigned bytes = 8 + rng.below(120);
        if (rng.chance(0.5)) {
            l.send(bytes, link::Dir::kToDevice, i * 100);
            to += bytes;
        } else {
            l.send(bytes, link::Dir::kFromDevice, i * 100);
            from += bytes;
        }
    }
    EXPECT_EQ(l.stats().bytes[0], to);
    EXPECT_EQ(l.stats().bytes[1], from);
}

TEST(Determinism, IdenticalSeedsIdenticalRuns)
{
    const auto w = [] {
        auto p = workloads::byName("redis/ycsb-a");
        p.blocksPerCore = 15000;
        return p;
    }();
    melody::Platform plat("EMR2S", "CXL-B");
    const auto r1 = melody::runWorkload(w, plat, 42);
    const auto r2 = melody::runWorkload(w, plat, 42);
    EXPECT_EQ(r1.wallTicks, r2.wallTicks);
    EXPECT_DOUBLE_EQ(r1.counters.p1, r2.counters.p1);
    EXPECT_DOUBLE_EQ(r1.counters.p5, r2.counters.p5);
    EXPECT_EQ(r1.backendStats.reads, r2.backendStats.reads);

    const auto r3 = melody::runWorkload(w, plat, 43);
    EXPECT_NE(r1.wallTicks, r3.wallTicks);
}

TEST(TraceKernel, ParsesAndReplays)
{
    std::istringstream in(
        "# tiny trace\n"
        "C 10\n"
        "L 1000\n"
        "L 2000 d\n"
        "S 3000\n"
        "C 4\n"
        "L 4000\n");
    auto ops = workloads::parseTrace(in);
    ASSERT_EQ(ops.size(), 6u);
    EXPECT_EQ(ops[0].kind, workloads::TraceOp::Kind::kCompute);
    EXPECT_EQ(ops[0].uops, 10u);
    EXPECT_EQ(ops[1].addr, 0x1000u);
    EXPECT_TRUE(ops[2].dependent);
    EXPECT_EQ(ops[3].kind, workloads::TraceOp::Kind::kStore);

    workloads::TraceKernel k(ops, 3);
    cpu::Block b;
    std::uint64_t loads = 0, stores = 0;
    while (k.next(&b))
        for (unsigned i = 0; i < b.nOps; ++i)
            (b.ops[i].isStore ? stores : loads) += 1;
    EXPECT_EQ(loads, 3u * 3);
    EXPECT_EQ(stores, 1u * 3);
}

TEST(TraceKernel, RunsThroughTheCore)
{
    // A small strided trace replayed on local vs CXL shows a
    // measurable slowdown end to end.
    std::ostringstream trace;
    for (int i = 0; i < 3000; ++i) {
        trace << "C 8\n";
        trace << "L " << std::hex << (0x100000 + i * 0x40)
              << std::dec << "\n";
        if (i % 7 == 0)
            trace << "L " << std::hex
                  << (0x40000000 + (i * 977 % 65536) * 0x40)
                  << std::dec << " d\n";
    }
    auto makeKernels = [&] {
        std::istringstream in(trace.str());
        std::vector<std::unique_ptr<cpu::Kernel>> ks;
        ks.push_back(std::make_unique<workloads::TraceKernel>(
            workloads::parseTrace(in)));
        return ks;
    };
    cpu::CoreExecParams exec;
    melody::Platform lp("EMR2S", "Local");
    auto lb = lp.makeBackend(1);
    cpu::MultiCore ml(lp.cpu(), exec, lb.get(), makeKernels());
    const auto base = ml.run();

    melody::Platform tp("EMR2S", "CXL-B");
    auto tb = tp.makeBackend(1);
    cpu::MultiCore mt(tp.cpu(), exec, tb.get(), makeKernels());
    const auto test = mt.run();

    EXPECT_GT(test.wallTicks, base.wallTicks);
    EXPECT_DOUBLE_EQ(base.counters.instructions,
                     test.counters.instructions);
}

/** Counter identity sweep across random suite picks. */
class SuiteInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteInvariants, StallIdentitiesHold)
{
    Rng rng(3000 + GetParam());
    const auto &all = workloads::suite();
    auto w = all[rng.below(all.size())];
    w.blocksPerCore = std::min<std::uint64_t>(w.blocksPerCore, 8000);
    melody::Platform plat("EMR2S", "CXL-A");
    const auto r = melody::runWorkload(w, plat, 11 + GetParam());
    const auto &c = r.counters;
    ASSERT_GT(c.cycles, 0.0) << w.name;
    EXPECT_GE(c.p1 + 1e-6, c.p3) << w.name;
    EXPECT_GE(c.p3 + 1e-6, c.p4) << w.name;
    EXPECT_GE(c.p4 + 1e-6, c.p5) << w.name;
    EXPECT_GE(c.p6 + 1e-6, c.p1 + c.p2) << w.name;
    EXPECT_LE(c.p6, c.cycles + 1e-6) << w.name;
    // Stall decomposition (Eq. 6) is internally consistent.
    const double s = c.sStore() + c.sL1() + c.sL2() + c.sL3() +
                     c.sDram();
    EXPECT_NEAR(s, c.p1 + c.p2, 1e-6) << w.name;
}

INSTANTIATE_TEST_SUITE_P(RandomPicks, SuiteInvariants,
                         ::testing::Range(0, 12));
