/**
 * @file
 * Tests for the extension modules: the cross-device slowdown
 * predictor (§5.7 "performance prediction") and the two-tier
 * migration backend (§5.7 "smarter tiering policies").
 */

#include <gtest/gtest.h>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "cpu/multicore.hh"
#include "mem/tiering_backend.hh"
#include "spa/predictor.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic_kernel.hh"

using namespace cxlsim;

namespace {

workloads::WorkloadProfile
small(const char *name, std::uint64_t blocks = 25000)
{
    auto w = workloads::byName(name);
    w.blocksPerCore = std::min(w.blocksPerCore, blocks);
    return w;
}

}  // namespace

TEST(Predictor, ZeroDeltaPredictsZeroLatencyTerm)
{
    spa::SlowdownModel m;
    m.latSensitivity = 0.5;
    m.cacheSensitivity = 0.1;
    m.localLatencyNs = 111;
    m.demandGBps = 1.0;
    const spa::DeviceSheet same{"X", 111, 100};
    EXPECT_DOUBLE_EQ(m.predict(same), 0.0);
}

TEST(Predictor, BandwidthTermKicksInPastPeak)
{
    spa::SlowdownModel m;
    m.localLatencyNs = 111;
    m.demandGBps = 48.0;
    const spa::DeviceSheet small{"X", 111, 24};
    EXPECT_NEAR(m.predict(small), 100.0, 1e-9);  // 2x demand
    const spa::DeviceSheet big{"Y", 111, 96};
    EXPECT_DOUBLE_EQ(m.predict(big), 0.0);
}

TEST(Predictor, CrossDevicePredictionTracksActual)
{
    melody::SlowdownStudy study(404);
    const spa::DeviceSheet sheetA{"CXL-A", 214, 32};
    const spa::DeviceSheet sheetB{"CXL-B", 271, 24};

    for (const char *n : {"605.mcf_s", "redis/ycsb-c", "bfs-web"}) {
        const auto w = small(n);
        cpu::RunResult refRun;
        study.slowdownWithRun(w, "EMR2S", "CXL-A", &refRun);
        const auto &base = study.baseline(w, "EMR2S");
        const auto model =
            spa::fitModel(base, refRun, sheetA, 111.0);
        const double pred = model.predict(sheetB);
        const double actual = study.slowdown(w, "EMR2S", "CXL-B");
        EXPECT_NEAR(pred, actual,
                    std::max(12.0, 0.5 * actual))
            << n;
    }
}

TEST(Predictor, MonotonicInLatency)
{
    melody::SlowdownStudy study(405);
    const auto w = small("605.mcf_s");
    cpu::RunResult refRun;
    study.slowdownWithRun(w, "EMR2S", "CXL-A", &refRun);
    const auto model = spa::fitModel(
        study.baseline(w, "EMR2S"), refRun,
        spa::DeviceSheet{"CXL-A", 214, 32}, 111.0);
    double prev = -1.0;
    for (double lat : {150.0, 250.0, 350.0, 450.0}) {
        const double p =
            model.predict({"X", lat, 100.0});
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(Tiering, FirstTouchFillsFastTier)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform sp("EMR2S", "CXL-B");
    mem::TieringBackend::Config cfg;
    cfg.policy = mem::TieringPolicy::kStatic;
    cfg.pageBytes = 1 << 20;
    cfg.fastCapacityBytes = 4ULL << 20;  // 4 pages
    mem::TieringBackend be("t", lp.makeBackend(1),
                           sp.makeBackend(1), cfg);

    Tick now = 0;
    // Touch 8 distinct pages; only the first 4 land fast.
    std::vector<double> lat(8);
    for (int p = 0; p < 8; ++p) {
        const Tick done =
            be.access(static_cast<Addr>(p) << 20,
                      mem::ReqType::kDemandLoad, now);
        lat[p] = ticksToNs(done - now);
        now = done + nsToTicks(10);
    }
    for (int p = 0; p < 4; ++p)
        EXPECT_LT(lat[p], 220.0) << p;
    for (int p = 4; p < 8; ++p)
        EXPECT_GT(lat[p], 220.0) << p;
    EXPECT_GT(be.tieringStats().fastFraction(), 0.4);
}

TEST(Tiering, MigrationPromotesHotSlowPages)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform sp("EMR2S", "CXL-B");
    mem::TieringBackend::Config cfg;
    cfg.policy = mem::TieringPolicy::kStallCost;
    cfg.pageBytes = 1 << 20;
    cfg.fastCapacityBytes = 2ULL << 20;
    cfg.epoch = 20 * kTicksPerUs;
    mem::TieringBackend be("t", lp.makeBackend(2),
                           sp.makeBackend(2), cfg);

    Tick now = 0;
    Rng rng(7);
    // Pages 0-1 claimed first (cold afterwards); page 5 is hot.
    be.access(0, mem::ReqType::kDemandLoad, now);
    be.access(1 << 20, mem::ReqType::kDemandLoad, now);
    for (int i = 0; i < 4000; ++i) {
        const Addr a = (5ULL << 20) +
                       rng.below((1 << 20) / 64) * 64;
        const Tick done =
            be.access(a, mem::ReqType::kDemandLoad, now);
        now = done + nsToTicks(50);
    }
    EXPECT_GT(be.tieringStats().promotions, 0u);
    EXPECT_GT(be.tieringStats().demotions, 0u);
    // Page 5 should now be fast.
    const Tick t0 = now;
    const Tick done =
        be.access(5ULL << 20, mem::ReqType::kDemandLoad, t0);
    EXPECT_LT(ticksToNs(done - t0), 220.0);
}

TEST(Tiering, StaticNeverMigrates)
{
    melody::Platform lp("EMR2S", "Local");
    melody::Platform sp("EMR2S", "CXL-B");
    mem::TieringBackend::Config cfg;
    cfg.policy = mem::TieringPolicy::kStatic;
    cfg.epoch = 5 * kTicksPerUs;
    mem::TieringBackend be("t", lp.makeBackend(3),
                           sp.makeBackend(3), cfg);
    Tick now = 0;
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        const Tick done = be.access(
            rng.below(1 << 20) * 64, mem::ReqType::kDemandLoad,
            now);
        now = done + nsToTicks(20);
    }
    EXPECT_GT(be.tieringStats().epochs, 3u);
    EXPECT_EQ(be.tieringStats().promotions, 0u);
    EXPECT_EQ(be.tieringStats().demotions, 0u);
}
