#!/usr/bin/env python3
"""Benchmark-regression harness for the simulator microbenchmarks.

Runs ``perf_microbench --benchmark_format=json``, writes a dated
``BENCH_<YYYY-MM-DD>.json`` baseline at the repo root, and compares
it against the previous baseline with a configurable tolerance.

Usage:
    # Record today's baseline (and report vs. the previous one):
    python3 scripts/run_bench.py

    # Pre-merge perf gate: nonzero exit if any benchmark's
    # throughput regressed more than --tolerance vs. the latest
    # committed baseline.
    python3 scripts/run_bench.py --check

    # Compare two existing result files without running anything:
    python3 scripts/run_bench.py --compare OLD.json NEW.json

Throughput is taken from ``items_per_second`` when the benchmark
reports it (all of ours do), else from 1/real_time. A regression is
``new < old * (1 - tolerance)``; improvements are reported but never
fail the gate.

Recording refuses binaries built without optimization: the benchmark
embeds ``cxlsim_build_type`` in its JSON context and anything other
than Release/RelWithDebInfo aborts unless ``--allow-debug`` is given
(debug numbers poison every later comparison).

``--suite`` additionally times the figure suite end to end through
``melody sweep`` (serial cold-cache, parallel cold-cache, parallel
warm-cache) and records the wall-clock numbers as ``run_type:
"suite"`` entries in the same JSON; ``compare()`` ignores those, so
they are a recorded metric, not a gated one.
"""

import argparse
import datetime
import glob
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench",
                             "perf_microbench")
DEFAULT_MELODY = os.path.join(REPO_ROOT, "build", "tools", "melody")

#: Build types whose numbers are comparable across runs.
OPTIMIZED_BUILD_TYPES = ("release", "relwithdebinfo")


def throughput(entry):
    """Items/sec for one google-benchmark JSON entry."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    rt = float(entry["real_time"])
    return 1e9 / rt if rt > 0 else 0.0


def load_results(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return out


def run_bench(bench, min_time, extra_args):
    cmd = [bench, "--benchmark_format=json"]
    if min_time is not None:
        cmd.append(f"--benchmark_min_time={min_time}")
    cmd += extra_args
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def check_build_type(data, allow_debug):
    """Refuse to record numbers from an unoptimized build."""
    ctx = data.get("context", {})
    build = str(ctx.get("cxlsim_build_type",
                        ctx.get("library_build_type",
                                "unknown"))).lower()
    if build in OPTIMIZED_BUILD_TYPES:
        return True
    if allow_debug:
        print(f"WARNING: recording from a '{build}' build "
              "(--allow-debug); numbers are NOT comparable to "
              "Release baselines.", file=sys.stderr)
        return True
    print(f"refusing to record from a '{build}' build: configure "
          "with -DCMAKE_BUILD_TYPE=Release (or pass --allow-debug "
          "to override).", file=sys.stderr)
    return False


def run_suite(melody, jobs, cache_dir, figures):
    """One timed `melody sweep` run; returns (seconds, stdout)."""
    env = dict(os.environ)
    env["MELODY_SWEEP_CACHE_DIR"] = cache_dir
    env.pop("MELODY_SWEEP_JOBS", None)
    env.pop("MELODY_SWEEP_CACHE", None)
    cmd = [melody, "sweep", "--jobs", str(jobs)] + figures
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    start = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, env=env,
                          check=True)
    return time.monotonic() - start, proc.stdout


def suite_entries(melody, jobs, figures):
    """Time the figure suite three ways; return JSON entries.

    The three runs must emit byte-identical figure output — the
    engine's core guarantee — so any drift fails loudly here too.
    """
    tmp = tempfile.mkdtemp(prefix="melody-suite-")
    try:
        serial_s, serial_out = run_suite(
            melody, 1, os.path.join(tmp, "serial"), figures)
        cold_s, cold_out = run_suite(
            melody, jobs, os.path.join(tmp, "par"), figures)
        warm_s, warm_out = run_suite(
            melody, jobs, os.path.join(tmp, "par"), figures)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if cold_out != serial_out or warm_out != cold_out:
        print("suite output mismatch between serial/parallel/"
              "warm runs — determinism bug, not recording.",
              file=sys.stderr)
        raise SystemExit(1)

    def entry(name, seconds, run_jobs):
        return {
            "name": name,
            "run_type": "suite",
            "figures": " ".join(figures),
            "jobs": run_jobs,
            "real_time": seconds * 1e9,
            "time_unit": "ns",
            "wall_seconds": round(seconds, 3),
        }

    entries = [
        entry("suite/serial_cold", serial_s, 1),
        entry(f"suite/jobs{jobs}_cold", cold_s, jobs),
        entry(f"suite/jobs{jobs}_warm", warm_s, jobs),
    ]
    speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    print(f"suite wall-clock: serial cold {serial_s:.1f}s, "
          f"jobs={jobs} cold {cold_s:.1f}s, warm {warm_s:.1f}s "
          f"({speedup:.1f}x vs serial cold)", file=sys.stderr)
    return entries


def previous_baseline(out_dir, exclude):
    paths = sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.abspath(p) != exclude]
    return paths[-1] if paths else None


def compare(old_path, new_path, tolerance):
    """Print a comparison table; return list of regressed names."""
    old = load_results(old_path)
    new = load_results(new_path)
    regressions = []
    print(f"baseline: {old_path}")
    print(f"current:  {new_path}")
    print(f"tolerance: {tolerance:.0%}\n")
    print(f"{'benchmark':<28} {'old it/s':>14} {'new it/s':>14} "
          f"{'ratio':>7}  verdict")
    for name, entry in new.items():
        cur = throughput(entry)
        if name not in old:
            print(f"{name:<28} {'-':>14} {cur:>14.3e} {'-':>7}  new")
            continue
        base = throughput(old[name])
        ratio = cur / base if base > 0 else float("inf")
        if cur < base * (1.0 - tolerance):
            verdict = "REGRESSED"
            regressions.append(name)
        elif ratio > 1.0 + tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<28} {base:>14.3e} {cur:>14.3e} "
              f"{ratio:>6.2f}x  {verdict}")
    for name in old:
        if name not in new:
            print(f"{name:<28} missing from current run: REGRESSED")
            regressions.append(name)
    return regressions


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", default=DEFAULT_BENCH,
                    help="perf_microbench binary "
                         f"(default: {DEFAULT_BENCH})")
    ap.add_argument("--out-dir", default=REPO_ROOT,
                    help="where BENCH_<date>.json is written")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown "
                         "(default 0.15)")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero if any benchmark regressed "
                         "vs. the latest baseline")
    ap.add_argument("--baseline",
                    help="explicit baseline JSON to compare "
                         "against (default: latest BENCH_*.json)")
    ap.add_argument("--compare", nargs=2,
                    metavar=("OLD", "NEW"),
                    help="compare two existing JSON files; "
                         "runs nothing")
    ap.add_argument("--min-time", default=None,
                    help="forwarded as --benchmark_min_time")
    ap.add_argument("--allow-debug", action="store_true",
                    help="record even from a non-Release build "
                         "(numbers will not be comparable)")
    ap.add_argument("--suite", action="store_true",
                    help="also time the figure suite via "
                         "'melody sweep' (serial/parallel/warm) "
                         "and record run_type='suite' entries")
    ap.add_argument("--melody", default=DEFAULT_MELODY,
                    help="melody binary for --suite "
                         f"(default: {DEFAULT_MELODY})")
    ap.add_argument("--suite-jobs", type=int, default=4,
                    help="worker count for the parallel suite "
                         "runs (default 4)")
    ap.add_argument("--suite-figures", default="all",
                    help="space-separated figure list for --suite "
                         "(default: all)")
    ap.add_argument("bench_args", nargs="*",
                    help="extra args forwarded to the benchmark")
    args = ap.parse_args()

    if args.compare:
        for p in args.compare:
            if not os.path.exists(p):
                print(f"no such file: {p}", file=sys.stderr)
                return 2
        regressions = compare(args.compare[0], args.compare[1],
                              args.tolerance)
        if regressions:
            print(f"\n{len(regressions)} regression(s): "
                  f"{', '.join(regressions)}")
            return 1
        print("\nno regressions")
        return 0

    if not os.path.exists(args.bench):
        print(f"benchmark binary not found: {args.bench}\n"
              "build it first: cmake --build build "
              "--target perf_microbench", file=sys.stderr)
        return 2

    data = run_bench(args.bench, args.min_time, args.bench_args)
    if not check_build_type(data, args.allow_debug):
        return 2
    if args.suite:
        if not os.path.exists(args.melody):
            print(f"melody binary not found: {args.melody}\n"
                  "build it first: cmake --build build "
                  "--target melody", file=sys.stderr)
            return 2
        data.setdefault("benchmarks", []).extend(
            suite_entries(args.melody, args.suite_jobs,
                          args.suite_figures.split()))
    date = datetime.date.today().isoformat()
    out_path = os.path.abspath(
        os.path.join(args.out_dir, f"BENCH_{date}.json"))
    with open(out_path, "w") as f:
        json.dump(data, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}", file=sys.stderr)

    baseline = args.baseline or previous_baseline(
        args.out_dir, exclude=out_path)
    if baseline is None:
        print("no previous baseline found; recorded only.")
        return 0

    regressions = compare(baseline, out_path, args.tolerance)
    if regressions:
        print(f"\n{len(regressions)} regression(s): "
              f"{', '.join(regressions)}")
        return 1 if args.check else 0
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
