#!/usr/bin/env python3
"""Benchmark-regression harness for the simulator microbenchmarks.

Runs ``perf_microbench --benchmark_format=json``, writes a dated
``BENCH_<YYYY-MM-DD>.json`` baseline at the repo root, and compares
it against the previous baseline with a configurable tolerance.

Usage:
    # Record today's baseline (and report vs. the previous one):
    python3 scripts/run_bench.py

    # Pre-merge perf gate: nonzero exit if any benchmark's
    # throughput regressed more than --tolerance vs. the latest
    # committed baseline.
    python3 scripts/run_bench.py --check

    # Compare two existing result files without running anything:
    python3 scripts/run_bench.py --compare OLD.json NEW.json

Throughput is taken from ``items_per_second`` when the benchmark
reports it (all of ours do), else from 1/real_time. A regression is
``new < old * (1 - tolerance)``; improvements are reported but never
fail the gate. Entries are keyed on ``(name, threads)`` — parsed
from the ``/threads:N`` suffix — so threaded benchmark families
only ever compare like against like.

The intra-run parallelism floor (``pdes_speedup_gate``) additionally
requires ``BM_WorkloadSimulation/threads:4`` to run at least 2x the
``threads:1`` throughput of the same recording. It only applies on
hosts with >= 4 CPUs (recorded in the JSON context); single-core
recorders report the ratio and skip the verdict.

Recording refuses binaries built without optimization: the benchmark
embeds ``cxlsim_build_type`` in its JSON context and anything other
than Release/RelWithDebInfo aborts unless ``--allow-debug`` is given
(debug numbers poison every later comparison).

``--suite`` additionally times the figure suite end to end through
``melody sweep`` (serial cold-cache, parallel cold-cache, parallel
warm-cache) and records the wall-clock numbers as ``run_type:
"suite"`` entries in the same JSON; ``compare()`` ignores those, so
they are a recorded metric, not a gated one.
"""

import argparse
import datetime
import glob
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench",
                             "perf_microbench")
DEFAULT_MELODY = os.path.join(REPO_ROOT, "build", "tools", "melody")

#: Build types whose numbers are comparable across runs.
OPTIMIZED_BUILD_TYPES = ("release", "relwithdebinfo")


#: threads:4 must deliver at least this speedup over threads:1
#: (enforced only on recording hosts with >= PDES_GATE_MIN_CPUS
#: CPUs: the conservative scheduler cannot beat serial on a
#: single-core host, where gang threads just time-slice).
PDES_SPEEDUP_FLOOR = 2.0
PDES_GATE_MIN_CPUS = 4


def throughput(entry):
    """Items/sec for one google-benchmark JSON entry."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    rt = float(entry["real_time"])
    return 1e9 / rt if rt > 0 else 0.0


def parse_name(name):
    """Split a benchmark name into its (base, threads) key.

    'BM_Foo/threads:4' -> ('BM_Foo', 4). A name without the
    suffix keys as ('BM_Foo', None), NOT ('BM_Foo', 1): the plain
    and threads:1 variants of a family are distinct benchmarks
    (different workload configurations) and must never be compared
    against each other.
    """
    base, sep, rest = name.partition("/threads:")
    if sep and rest.isdigit():
        return base, int(rest)
    return name, None


def load_json(path):
    with open(path) as f:
        return json.load(f)


def iteration_entries(data):
    """(base, threads) -> entry for one loaded result document."""
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[parse_name(b["name"])] = b
    return out


def load_results(path):
    return iteration_entries(load_json(path))


def pdes_speedup_gate(data):
    """Enforce the intra-run parallelism floor on capable hosts.

    Returns a list of failure names (empty = pass or skipped).
    Compares BM_WorkloadSimulation/threads:4 against threads:1
    from the SAME run, so the verdict reflects that machine, not
    a cross-host ratio.
    """
    entries = iteration_entries(data)
    t1 = entries.get(("BM_WorkloadSimulation", 1))
    t4 = entries.get(("BM_WorkloadSimulation", 4))
    if t1 is None or t4 is None:
        print("pdes gate: threaded BM_WorkloadSimulation entries "
              "missing; skipped", file=sys.stderr)
        return []
    ncpu = int(data.get("context", {}).get("num_cpus", 0))
    speedup = (throughput(t4) / throughput(t1)
               if throughput(t1) > 0 else float("inf"))
    if ncpu < PDES_GATE_MIN_CPUS:
        print(f"pdes gate: threads:4 speedup {speedup:.2f}x "
              f"(floor {PDES_SPEEDUP_FLOOR:.1f}x not applicable: "
              f"host has {ncpu} CPU(s))", file=sys.stderr)
        return []
    if speedup < PDES_SPEEDUP_FLOOR:
        print(f"pdes gate: threads:4 speedup {speedup:.2f}x is "
              f"below the {PDES_SPEEDUP_FLOOR:.1f}x floor "
              f"({ncpu}-CPU host): FAILED", file=sys.stderr)
        return ["BM_WorkloadSimulation/threads:4 (speedup floor)"]
    print(f"pdes gate: threads:4 speedup {speedup:.2f}x "
          f"(floor {PDES_SPEEDUP_FLOOR:.1f}x): ok", file=sys.stderr)
    return []


def run_bench(bench, min_time, extra_args):
    cmd = [bench, "--benchmark_format=json"]
    if min_time is not None:
        cmd.append(f"--benchmark_min_time={min_time}")
    cmd += extra_args
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def check_build_type(data, allow_debug):
    """Refuse to record numbers from an unoptimized build."""
    ctx = data.get("context", {})
    build = str(ctx.get("cxlsim_build_type",
                        ctx.get("library_build_type",
                                "unknown"))).lower()
    if build in OPTIMIZED_BUILD_TYPES:
        return True
    if allow_debug:
        print(f"WARNING: recording from a '{build}' build "
              "(--allow-debug); numbers are NOT comparable to "
              "Release baselines.", file=sys.stderr)
        return True
    print(f"refusing to record from a '{build}' build: configure "
          "with -DCMAKE_BUILD_TYPE=Release (or pass --allow-debug "
          "to override).", file=sys.stderr)
    return False


def run_suite(melody, jobs, cache_dir, figures):
    """One timed `melody sweep` run; returns (seconds, stdout)."""
    env = dict(os.environ)
    env["MELODY_SWEEP_CACHE_DIR"] = cache_dir
    env.pop("MELODY_SWEEP_JOBS", None)
    env.pop("MELODY_SWEEP_CACHE", None)
    cmd = [melody, "sweep", "--jobs", str(jobs)] + figures
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    start = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, env=env,
                          check=True)
    return time.monotonic() - start, proc.stdout


def suite_entries(melody, jobs, figures):
    """Time the figure suite three ways; return JSON entries.

    The three runs must emit byte-identical figure output — the
    engine's core guarantee — so any drift fails loudly here too.
    """
    tmp = tempfile.mkdtemp(prefix="melody-suite-")
    try:
        serial_s, serial_out = run_suite(
            melody, 1, os.path.join(tmp, "serial"), figures)
        cold_s, cold_out = run_suite(
            melody, jobs, os.path.join(tmp, "par"), figures)
        warm_s, warm_out = run_suite(
            melody, jobs, os.path.join(tmp, "par"), figures)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if cold_out != serial_out or warm_out != cold_out:
        print("suite output mismatch between serial/parallel/"
              "warm runs — determinism bug, not recording.",
              file=sys.stderr)
        raise SystemExit(1)

    def entry(name, seconds, run_jobs):
        return {
            "name": name,
            "run_type": "suite",
            "figures": " ".join(figures),
            "jobs": run_jobs,
            "real_time": seconds * 1e9,
            "time_unit": "ns",
            "wall_seconds": round(seconds, 3),
        }

    entries = [
        entry("suite/serial_cold", serial_s, 1),
        entry(f"suite/jobs{jobs}_cold", cold_s, jobs),
        entry(f"suite/jobs{jobs}_warm", warm_s, jobs),
    ]
    speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    print(f"suite wall-clock: serial cold {serial_s:.1f}s, "
          f"jobs={jobs} cold {cold_s:.1f}s, warm {warm_s:.1f}s "
          f"({speedup:.1f}x vs serial cold)", file=sys.stderr)
    return entries


def previous_baseline(out_dir, exclude):
    paths = sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.abspath(p) != exclude]
    return paths[-1] if paths else None


def compare(old_path, new_path, tolerance):
    """Print a comparison table; return list of regressed names.

    Entries are matched on (base name, thread count) so a threaded
    family member is only ever compared against the same thread
    count in the baseline — 'BM_X/threads:4' never pairs with
    'BM_X/threads:1' or plain 'BM_X'.
    """
    old = load_results(old_path)
    new = load_results(new_path)
    regressions = []
    print(f"baseline: {old_path}")
    print(f"current:  {new_path}")
    print(f"tolerance: {tolerance:.0%}\n")
    print(f"{'benchmark':<38} {'old it/s':>14} {'new it/s':>14} "
          f"{'ratio':>7}  verdict")
    for key, entry in new.items():
        name = entry["name"]
        cur = throughput(entry)
        if key not in old:
            print(f"{name:<38} {'-':>14} {cur:>14.3e} {'-':>7}  new")
            continue
        base = throughput(old[key])
        ratio = cur / base if base > 0 else float("inf")
        if cur < base * (1.0 - tolerance):
            verdict = "REGRESSED"
            regressions.append(name)
        elif ratio > 1.0 + tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<38} {base:>14.3e} {cur:>14.3e} "
              f"{ratio:>6.2f}x  {verdict}")
    for key, entry in old.items():
        if key not in new:
            name = entry["name"]
            print(f"{name:<38} missing from current run: REGRESSED")
            regressions.append(name)
    return regressions


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", default=DEFAULT_BENCH,
                    help="perf_microbench binary "
                         f"(default: {DEFAULT_BENCH})")
    ap.add_argument("--out-dir", default=REPO_ROOT,
                    help="where BENCH_<date>.json is written")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown "
                         "(default 0.15)")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero if any benchmark regressed "
                         "vs. the latest baseline")
    ap.add_argument("--baseline",
                    help="explicit baseline JSON to compare "
                         "against (default: latest BENCH_*.json)")
    ap.add_argument("--compare", nargs=2,
                    metavar=("OLD", "NEW"),
                    help="compare two existing JSON files; "
                         "runs nothing")
    ap.add_argument("--min-time", default=None,
                    help="forwarded as --benchmark_min_time")
    ap.add_argument("--allow-debug", action="store_true",
                    help="record even from a non-Release build "
                         "(numbers will not be comparable)")
    ap.add_argument("--suite", action="store_true",
                    help="also time the figure suite via "
                         "'melody sweep' (serial/parallel/warm) "
                         "and record run_type='suite' entries")
    ap.add_argument("--melody", default=DEFAULT_MELODY,
                    help="melody binary for --suite "
                         f"(default: {DEFAULT_MELODY})")
    ap.add_argument("--suite-jobs", type=int, default=4,
                    help="worker count for the parallel suite "
                         "runs (default 4)")
    ap.add_argument("--suite-figures", default="all",
                    help="space-separated figure list for --suite "
                         "(default: all)")
    ap.add_argument("bench_args", nargs="*",
                    help="extra args forwarded to the benchmark")
    args = ap.parse_args()

    if args.compare:
        for p in args.compare:
            if not os.path.exists(p):
                print(f"no such file: {p}", file=sys.stderr)
                return 2
        regressions = compare(args.compare[0], args.compare[1],
                              args.tolerance)
        regressions += pdes_speedup_gate(load_json(args.compare[1]))
        if regressions:
            print(f"\n{len(regressions)} regression(s): "
                  f"{', '.join(regressions)}")
            return 1
        print("\nno regressions")
        return 0

    if not os.path.exists(args.bench):
        print(f"benchmark binary not found: {args.bench}\n"
              "build it first: cmake --build build "
              "--target perf_microbench", file=sys.stderr)
        return 2

    data = run_bench(args.bench, args.min_time, args.bench_args)
    if not check_build_type(data, args.allow_debug):
        return 2
    if args.suite:
        if not os.path.exists(args.melody):
            print(f"melody binary not found: {args.melody}\n"
                  "build it first: cmake --build build "
                  "--target melody", file=sys.stderr)
            return 2
        data.setdefault("benchmarks", []).extend(
            suite_entries(args.melody, args.suite_jobs,
                          args.suite_figures.split()))
    date = datetime.date.today().isoformat()
    out_path = os.path.abspath(
        os.path.join(args.out_dir, f"BENCH_{date}.json"))
    with open(out_path, "w") as f:
        json.dump(data, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}", file=sys.stderr)

    gate_failures = pdes_speedup_gate(data)

    baseline = args.baseline or previous_baseline(
        args.out_dir, exclude=out_path)
    if baseline is None:
        if gate_failures:
            print(f"\npdes gate failure(s): "
                  f"{', '.join(gate_failures)}")
            return 1 if args.check else 0
        print("no previous baseline found; recorded only.")
        return 0

    regressions = compare(baseline, out_path, args.tolerance)
    regressions += gate_failures
    if regressions:
        print(f"\n{len(regressions)} regression(s): "
              f"{', '.join(regressions)}")
        return 1 if args.check else 0
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
