#!/usr/bin/env python3
"""Benchmark-regression harness for the simulator microbenchmarks.

Runs ``perf_microbench --benchmark_format=json``, writes a dated
``BENCH_<YYYY-MM-DD>.json`` baseline at the repo root, and compares
it against the previous baseline with a configurable tolerance.

Usage:
    # Record today's baseline (and report vs. the previous one):
    python3 scripts/run_bench.py

    # Pre-merge perf gate: nonzero exit if any benchmark's
    # throughput regressed more than --tolerance vs. the latest
    # committed baseline.
    python3 scripts/run_bench.py --check

    # Compare two existing result files without running anything:
    python3 scripts/run_bench.py --compare OLD.json NEW.json

Throughput is taken from ``items_per_second`` when the benchmark
reports it (all of ours do), else from 1/real_time. A regression is
``new < old * (1 - tolerance)``; improvements are reported but never
fail the gate.
"""

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench",
                             "perf_microbench")


def throughput(entry):
    """Items/sec for one google-benchmark JSON entry."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    rt = float(entry["real_time"])
    return 1e9 / rt if rt > 0 else 0.0


def load_results(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return out


def run_bench(bench, min_time, extra_args):
    cmd = [bench, "--benchmark_format=json"]
    if min_time is not None:
        cmd.append(f"--benchmark_min_time={min_time}")
    cmd += extra_args
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def previous_baseline(out_dir, exclude):
    paths = sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.abspath(p) != exclude]
    return paths[-1] if paths else None


def compare(old_path, new_path, tolerance):
    """Print a comparison table; return list of regressed names."""
    old = load_results(old_path)
    new = load_results(new_path)
    regressions = []
    print(f"baseline: {old_path}")
    print(f"current:  {new_path}")
    print(f"tolerance: {tolerance:.0%}\n")
    print(f"{'benchmark':<28} {'old it/s':>14} {'new it/s':>14} "
          f"{'ratio':>7}  verdict")
    for name, entry in new.items():
        cur = throughput(entry)
        if name not in old:
            print(f"{name:<28} {'-':>14} {cur:>14.3e} {'-':>7}  new")
            continue
        base = throughput(old[name])
        ratio = cur / base if base > 0 else float("inf")
        if cur < base * (1.0 - tolerance):
            verdict = "REGRESSED"
            regressions.append(name)
        elif ratio > 1.0 + tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<28} {base:>14.3e} {cur:>14.3e} "
              f"{ratio:>6.2f}x  {verdict}")
    for name in old:
        if name not in new:
            print(f"{name:<28} missing from current run: REGRESSED")
            regressions.append(name)
    return regressions


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", default=DEFAULT_BENCH,
                    help="perf_microbench binary "
                         f"(default: {DEFAULT_BENCH})")
    ap.add_argument("--out-dir", default=REPO_ROOT,
                    help="where BENCH_<date>.json is written")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown "
                         "(default 0.15)")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero if any benchmark regressed "
                         "vs. the latest baseline")
    ap.add_argument("--baseline",
                    help="explicit baseline JSON to compare "
                         "against (default: latest BENCH_*.json)")
    ap.add_argument("--compare", nargs=2,
                    metavar=("OLD", "NEW"),
                    help="compare two existing JSON files; "
                         "runs nothing")
    ap.add_argument("--min-time", default=None,
                    help="forwarded as --benchmark_min_time")
    ap.add_argument("bench_args", nargs="*",
                    help="extra args forwarded to the benchmark")
    args = ap.parse_args()

    if args.compare:
        for p in args.compare:
            if not os.path.exists(p):
                print(f"no such file: {p}", file=sys.stderr)
                return 2
        regressions = compare(args.compare[0], args.compare[1],
                              args.tolerance)
        if regressions:
            print(f"\n{len(regressions)} regression(s): "
                  f"{', '.join(regressions)}")
            return 1
        print("\nno regressions")
        return 0

    if not os.path.exists(args.bench):
        print(f"benchmark binary not found: {args.bench}\n"
              "build it first: cmake --build build "
              "--target perf_microbench", file=sys.stderr)
        return 2

    data = run_bench(args.bench, args.min_time, args.bench_args)
    date = datetime.date.today().isoformat()
    out_path = os.path.abspath(
        os.path.join(args.out_dir, f"BENCH_{date}.json"))
    with open(out_path, "w") as f:
        json.dump(data, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}", file=sys.stderr)

    baseline = args.baseline or previous_baseline(
        args.out_dir, exclude=out_path)
    if baseline is None:
        print("no previous baseline found; recorded only.")
        return 0

    regressions = compare(baseline, out_path, args.tolerance)
    if regressions:
        print(f"\n{len(regressions)} regression(s): "
              f"{', '.join(regressions)}")
        return 1 if args.check else 0
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
