#!/usr/bin/env bash
# Full local correctness gate: configure + build + ctest (unit,
# determinism, RAS, lint) + melody-lint JSON report + clang-tidy
# (when installed). CI runs the same sequence; run this before
# pushing.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== melody-lint =="
"${BUILD_DIR}/tools/lint/melody_lint" \
    --json "${BUILD_DIR}/lint-report.json" \
    src tools examples tests
echo "report: ${BUILD_DIR}/lint-report.json"

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    # compile_commands.json makes tidy see the exact build flags.
    cmake -B "${BUILD_DIR}" -S . \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    mapfile -t TIDY_SOURCES < <(find src tools -name '*.cc' | sort)
    clang-tidy -p "${BUILD_DIR}" --quiet "${TIDY_SOURCES[@]}"
else
    echo "clang-tidy not installed; skipping (install it to run" \
         "the .clang-tidy profile)"
fi

echo "== all checks passed =="
