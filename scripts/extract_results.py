#!/usr/bin/env python3
"""Split a combined bench run into per-figure text files.

Usage:
    for b in build/bench/*; do echo "### $b"; $b; done > results/bench_all.txt
    python3 scripts/extract_results.py results/bench_all.txt results/

Each `### build/bench/<name>` section is written to
`results/<name>.txt`, ready for inspection or plotting.
"""

import os
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    src, outdir = sys.argv[1], sys.argv[2]
    os.makedirs(outdir, exist_ok=True)

    current = None
    buf: list[str] = []

    def flush() -> None:
        if current and buf:
            path = os.path.join(outdir, f"{current}.txt")
            with open(path, "w") as f:
                f.writelines(buf)
            print(f"wrote {path} ({len(buf)} lines)")

    with open(src) as f:
        for line in f:
            if line.startswith("### "):
                flush()
                current = os.path.basename(line.split()[1])
                buf = []
                # Skip non-bench entries the shell glob picked up.
                if current in ("CMakeFiles", "CTestTestfile.cmake",
                               "cmake_install.cmake"):
                    current = None
            elif current:
                buf.append(line)
    flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
