/**
 * @file
 * Fault injection walkthrough: run one workload on a CXL platform
 * under increasingly hostile FaultPlans and watch the RAS counters
 * and the slowdown respond.
 *
 *   1. Clean baseline (no plan) — the reference run.
 *   2. Background noise — CRC + correctable-ECC rates and a patrol
 *      scrubber: the workload survives with a small latency tax.
 *   3. Poison — uncorrectable errors surfacing as machine checks.
 *   4. Device loss with failover — the device goes offline mid-run
 *      and recovers; timed-out requests are served by local DRAM.
 */

#include <cstdio>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "ras/fault_plan.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

namespace {

cpu::RunResult
runPlan(const workloads::WorkloadProfile &w, const char *spec)
{
    melody::Platform plat("EMR2S", "CXL-B");
    if (spec && *spec)
        plat.setFaultPlan(ras::parseFaultPlan(spec));
    return melody::runWorkload(w, plat, /*seed=*/42);
}

}  // namespace

int
main()
{
    std::printf("== Melody-Sim fault injection ==\n\n");

    // Bandwidth-hungry enough that fault rates in the 1e-4 range
    // produce visible counts within a ~250us simulated run.
    workloads::WorkloadProfile w = workloads::byName("603.bwaves_s");
    w.blocksPerCore = 20000;

    struct Scenario
    {
        const char *label;
        const char *spec;
    };
    const Scenario scenarios[] = {
        {"clean", ""},
        {"noisy link+media",
         "crc=2e-4,ce=1e-4,scrub=50us"},
        {"poison", "ue=5e-4"},
        {"device loss+failover",
         "offline@50us,recover@150us,timeout=800,budget=2,failover"},
    };

    const cpu::RunResult base = runPlan(w, "");

    stats::Table t({"Scenario", "Slowdown(%)", "CRC", "CE", "MCE",
                    "Retries", "Failovers"});
    for (const Scenario &s : scenarios) {
        const cpu::RunResult r = runPlan(w, s.spec);
        const ras::RasStats total = r.rasTotal();
        t.addRow({s.label,
                  stats::Table::num(melody::slowdownPct(base, r), 2),
                  stats::Table::num(double(total.crcErrors), 0),
                  stats::Table::num(double(total.corrected), 0),
                  stats::Table::num(double(r.counters.machineChecks), 0),
                  stats::Table::num(double(total.hostRetries), 0),
                  stats::Table::num(double(total.failovers), 0)});
    }
    t.print();

    std::printf(
        "\n(Sub-1%% slowdowns are run-to-run noise: non-zero fault"
        " rates shift the\n device's stochastic hiccup draws.)\n"
        "\nThe same plans drive the CLI:\n"
        "  melody ras 603.bwaves_s EMR2S CXL-B "
        "\"ue=5e-4,offline@50us,failover\"\n");
    return 0;
}
