/**
 * @file
 * Device-comparison example: characterize the four CXL expanders
 * the way §3 of the paper does — idle latency, tail latency,
 * loaded-latency curve, and read/write-ratio bandwidth — and print
 * a vendor scorecard. Shows the device-level half of the public
 * API (Platform, MlcProbe, Mio).
 */

#include <cstdio>
#include <algorithm>
#include <string>

#include "core/mio.hh"
#include "core/mlc.hh"
#include "core/platform.hh"
#include "stats/table.hh"

using namespace cxlsim;

int
main()
{
    std::printf("== CXL device comparison (the paper's 'not all CXL "
                "devices are created equal') ==\n\n");

    stats::Table t({"Device", "Idle(ns)", "p99.9(ns)", "p99.9-p50",
                    "ReadBW", "MixedBW", "BestRatio"});
    for (const char *dev : {"CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        const char *server =
            std::string(dev) == "CXL-D" ? "EMR2S'" : "EMR2S";
        melody::Platform plat(server, dev);

        // Idle + tail latency via the MIO pointer chase.
        auto idleBe = plat.makeBackend(1);
        const auto mio =
            melody::mioChaseDirect(idleBe.get(), 4, 20000);

        // Bandwidth under read-only and mixed traffic.
        melody::MlcConfig cfg;
        cfg.delayCycles = 0;
        cfg.windowUs = 200;
        cfg.warmupUs = 50;
        cfg.readFrac = 1.0;
        auto rdBe = plat.makeBackend(2);
        const double readBw = melody::mlcMeasure(rdBe.get(), cfg).gbps;
        double mixBw = 0.0;
        for (double rf : {0.75, 0.67}) {  // 3:1 and 2:1
            cfg.readFrac = rf;
            auto mxBe = plat.makeBackend(2);
            mixBw = std::max(
                mixBw, melody::mlcMeasure(mxBe.get(), cfg).gbps);
        }

        t.addRow({dev, stats::Table::num(mio.latencyNs.mean(), 0),
                  stats::Table::num(mio.latencyNs.percentile(0.999),
                                    0),
                  stats::Table::num(
                      mio.latencyNs.percentile(0.999) -
                          mio.latencyNs.percentile(0.5),
                      0),
                  stats::Table::num(readBw, 1),
                  stats::Table::num(mixBw, 1),
                  mixBw > readBw ? "mixed (duplex ASIC)"
                                 : "read-only (FPGA-like)"});
    }
    t.print();

    std::printf("\nRecommendation #1 from the paper: evaluate CXL "
                "devices on TAIL latency, not just averages — the "
                "p99.9-p50 column separates devices that identical "
                "avg-latency metrics would conflate.\n");
    return 0;
}
