/**
 * @file
 * Capacity-planner example: "should this workload go on CXL?"
 *
 * Implements the paper's deployment guidance (Recommendation #2):
 * for each candidate workload, measure local bandwidth demand and
 * slowdown on each device, then bin it as a drop-in candidate,
 * latency-sensitive, or bandwidth-bound. This is the decision a
 * memory-pooling operator makes before placing a tenant on CXL.
 */

#include <cstdio>
#include <vector>

#include "core/slowdown.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

namespace {

const char *
verdict(double s_best, double bw_gbps)
{
    if (s_best < 10.0)
        return "DROP-IN: CXL-ready";
    if (bw_gbps > 20.0)
        return "BANDWIDTH-BOUND: needs CXL-D/x2";
    if (s_best < 50.0)
        return "TOLERABLE: pool with headroom";
    return "KEEP LOCAL or tier hot set";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::printf("== CXL capacity planner ==\n\n");

    std::vector<std::string> names;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            names.push_back(argv[i]);
    } else {
        names = {"redis/ycsb-b",  "605.mcf_s",    "gpt2-small",
                 "pts-openssl",   "bfs-web",      "519.lbm_r",
                 "dlrm-inference", "spark-scan",  "520.omnetpp_r"};
    }

    melody::SlowdownStudy study(2026);
    stats::Table t({"Workload", "LocalBW(GB/s)", "S(CXL-D)",
                    "S(CXL-A)", "S(CXL-B)", "Verdict"});
    for (const auto &n : names) {
        if (!workloads::hasWorkload(n)) {
            std::printf("unknown workload: %s (skipping)\n",
                        n.c_str());
            continue;
        }
        auto w = workloads::byName(n);
        w.blocksPerCore =
            std::min<std::uint64_t>(w.blocksPerCore, 40000);
        const auto &base = study.baseline(w, "EMR2S");
        const double sD = study.slowdown(w, "EMR2S", "CXL-D");
        const double sA = study.slowdown(w, "EMR2S", "CXL-A");
        const double sB = study.slowdown(w, "EMR2S", "CXL-B");
        t.addRow({n, stats::Table::num(base.backendGBps(), 1),
                  stats::Table::num(sD, 1) + "%",
                  stats::Table::num(sA, 1) + "%",
                  stats::Table::num(sB, 1) + "%",
                  verdict(std::min({sD, sA, sB}),
                          base.backendGBps())});
    }
    t.print();
    std::printf("\nUsage: capacity_planner [workload ...] — any of "
                "the 265 suite names.\n");
    return 0;
}
