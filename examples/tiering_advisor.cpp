/**
 * @file
 * Tiering-advisor example: the paper's §5.7 workflow end to end.
 *
 *   1. Run the workload on local DRAM and on CXL, sampling the Spa
 *      counters every 15us.
 *   2. Re-align the samples on instruction boundaries and break
 *      the slowdown down per period (§5.6).
 *   3. Ask the advisor how much of the working set to pin locally.
 *   4. Re-run with the hot objects pinned via a RegionRouter and
 *      report the recovered performance.
 */

#include <cstdio>

#include "core/platform.hh"
#include "core/slowdown.hh"
#include "spa/advisor.hh"
#include "spa/breakdown.hh"
#include "spa/period.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "605.mcf_s";
    const std::string device = argc > 2 ? argv[2] : "CXL-A";
    auto w = workloads::byName(name);
    w.blocksPerCore = std::min<std::uint64_t>(w.blocksPerCore,
                                              120000);

    std::printf("== Spa tiering advisor: %s on %s ==\n\n",
                name.c_str(), device.c_str());

    melody::Platform local("EMR2S", "Local");
    melody::Platform cxl("EMR2S", device);
    const auto base =
        melody::runWorkload(w, local, 7, true, usToTicks(15));
    const auto test =
        melody::runWorkload(w, cxl, 7, true, usToTicks(15));

    const auto overall = spa::computeBreakdown(base, test);
    std::printf("overall slowdown %.1f%%  (DRAM %.1f, cache %.1f, "
                "store %.1f, other %.1f)\n",
                overall.actual, overall.dram,
                overall.l1 + overall.l2 + overall.l3, overall.store,
                overall.other + overall.core);

    const auto periods = spa::periodAnalysis(
        base.samples, test.samples,
        base.counters.instructions / 16.0);
    std::printf("\nper-period slowdown (16 instruction periods):\n ");
    for (const auto &p : periods)
        std::printf(" %5.1f", p.breakdown.actual);
    std::printf("\n");

    const double frac = spa::suggestPinnedFraction(periods, 10.0);
    if (frac == 0.0) {
        std::printf("\nno bursty periods above 10%%: tiering not "
                    "needed for this workload.\n");
        return 0;
    }
    std::printf("\nadvisor: pin the hot %.0f%% of the working set "
                "to local DRAM\n",
                100 * frac);

    const auto r =
        spa::tunePlacement(w, "EMR2S", device, frac, 7);
    std::printf("result: slowdown %.1f%% -> %.1f%%  (local DRAM "
                "serves %.1f%% of requests)\n",
                r.slowdownAllCxl, r.slowdownPinned,
                100 * r.fastRequestFraction);
    std::printf("\n(The paper's 605.mcf case: 13%% -> 2%% after "
                "relocating two hot 2GB objects.)\n");
    return 0;
}
