/**
 * @file
 * Quickstart: build testbed platforms, measure idle latency and
 * peak bandwidth of each memory setup, and run one workload to
 * get its CXL slowdown and Spa breakdown.
 *
 * This exercises the three layers of the public API:
 *   melody::Platform / mlcMeasure / mioChaseDirect  (device level)
 *   melody::runWorkload / slowdownPct               (workload level)
 *   cxlsim::spa::computeBreakdown                   (analysis level)
 */

#include <cstdio>

#include "core/mio.hh"
#include "core/mlc.hh"
#include "core/platform.hh"
#include "core/slowdown.hh"
#include "spa/breakdown.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

int
main()
{
    std::printf("== Melody-Sim quickstart ==\n\n");

    // 1. Device-level characterization on the EMR server.
    stats::Table t({"Setup", "IdleLat(ns)", "p99.9(ns)", "PeakBW(GB/s)"});
    for (const char *mem :
         {"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"}) {
        melody::Platform plat("EMR2S", mem);
        auto idleBackend = plat.makeBackend(1);
        auto idle = melody::mioChaseDirect(idleBackend.get(),
                                           /*threads=*/1,
                                           /*samples=*/20000);

        auto loadBackend = plat.makeBackend(2);
        melody::MlcConfig cfg;
        cfg.delayCycles = 0;
        cfg.readFrac = 0.67;  // mixed traffic exposes duplex links
        auto peak = melody::mlcMeasure(loadBackend.get(), cfg);

        t.addRow({mem, stats::Table::num(idle.latencyNs.mean(), 0),
                  stats::Table::num(idle.latencyNs.percentile(0.999), 0),
                  stats::Table::num(peak.gbps, 1)});
    }
    t.print();

    // 2. Workload-level slowdown for one SPEC workload.
    const auto &w = workloads::byName("605.mcf_s");
    melody::Platform local("EMR2S", "Local");
    melody::Platform cxl("EMR2S", "CXL-A");
    const auto base = melody::runWorkload(w, local, 7);
    const auto test = melody::runWorkload(w, cxl, 7);
    std::printf("\n%s on CXL-A: slowdown %.1f%% (IPC %.2f -> %.2f)\n",
                w.name.c_str(), melody::slowdownPct(base, test),
                base.counters.instructions / base.counters.cycles,
                test.counters.instructions / test.counters.cycles);

    // 3. Spa breakdown of that slowdown.
    const auto b = spa::computeBreakdown(base, test);
    std::printf("Spa: actual=%.1f%%  est(mem stalls)=%.1f%%  "
                "[store %.1f, L1 %.1f, L2 %.1f, L3 %.1f, DRAM %.1f, "
                "core %.1f, other %.1f]\n",
                b.actual, b.estMemory, b.store, b.l1, b.l2, b.l3,
                b.dram, b.core, b.other);
    return 0;
}
