/**
 * @file
 * melody — command-line front end for the Melody/Spa framework.
 *
 *   melody list [family]                workloads in the suite
 *   melody families                     family names
 *   melody characterize <srv> <mem>     idle/tail latency + peak BW
 *   melody slowdown <wl> <srv> <mem>    slowdown + Spa breakdown
 *   melody sweep <wl>                   one workload across setups
 *   melody sweep [opts] <fig...>|all    figure suite via the sweep
 *                                       engine (parallel + cached);
 *                                       --isolate forks crash-
 *                                       isolated workers, --resume
 *                                       continues a killed run
 *   melody cache stats|clear            inspect/purge the run cache
 *   melody period <wl> <mem> [N]        period-based breakdown
 *   melody advise <wl> <mem>            §5.7 tiering advice
 *   melody batch <srv> <mem> [stride]   whole-suite slowdowns, CSV
 *   melody ras <wl> <srv> <mem> [plan]  fault-injection run, JSON
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/figures.hh"
#include "core/mio.hh"
#include "core/mlc.hh"
#include "core/platform.hh"
#include "core/slowdown.hh"
#include "ras/fault_plan.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/partition.hh"
#include "sim/run_cache.hh"
#include "sim/sweep.hh"
#include "spa/advisor.hh"
#include "spa/breakdown.hh"
#include "spa/period.hh"
#include "stats/json.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

using namespace cxlsim;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  melody list [family]\n"
        "  melody families\n"
        "  melody characterize <server> <memory>\n"
        "  melody slowdown <workload> <server> <memory>\n"
        "  melody sweep <workload>\n"
        "  melody sweep [--jobs N] [--no-cache] [--cache-dir D]\n"
        "               [--isolate] [--resume] [--retries N]\n"
        "               [--timeout-ms N] [--journal F]\n"
        "               [--check-invariants] [--pdes-stats]\n"
        "               <figure...>|all\n"
        "  melody sweep --list\n"
        "  melody cache stats|clear [--cache-dir D]\n"
        "  melody period <workload> <memory> [periods]\n"
        "  melody advise <workload> <memory>\n"
        "  melody batch <server> <memory> [stride]\n"
        "  melody ras <workload> <server> <memory> [faultplan]\n"
        "servers: SPR2S EMR2S EMR2S' SKX2S SKX8S\n"
        "memory:  Local NUMA NUMA-140ns NUMA-190ns NUMA-410ns "
        "CXL-A..D CXL-X+NUMA CXL-X+Switch[2] CXL-Dx2\n"
        "faultplan: crc=<p>,ce=<p>,ue=<p>,scrub=<dur>,"
        "offline@<t>[:devN],failover,... (see src/ras/fault_plan.hh)\n"
        "global: --sim-threads N  worker threads inside each\n"
        "        simulation (conservative PDES; output is\n"
        "        bit-identical for every N). Composes with sweep\n"
        "        --jobs: when --jobs is not given, jobs defaults\n"
        "        to hardware/N so the combined budget stays at\n"
        "        the machine size.\n");
    return 2;
}

/** Value of the global --sim-threads flag; 0 = not given. */
unsigned g_simThreadsArg = 0;

/** Strict numeric argument parsing: reject trailing garbage. */
unsigned
parseUnsignedArg(const char *s, const char *what)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0')
        throw ConfigError(std::string(what) +
                          " must be a non-negative integer, got '" +
                          s + "'");
    return static_cast<unsigned>(v);
}

int
cmdList(const std::string &family)
{
    for (const auto &w : workloads::suite()) {
        if (!family.empty() && w.family != family)
            continue;
        std::printf("%-24s %-9s threads=%-2u ws=%lluMB\n",
                    w.name.c_str(), w.family.c_str(), w.threads,
                    static_cast<unsigned long long>(
                        w.workingSetBytes >> 20));
    }
    return 0;
}

int
cmdFamilies()
{
    for (const auto &f : workloads::familyNames()) {
        std::size_t n = workloads::familyWorkloads(f).size();
        std::printf("%-10s %zu workloads\n", f.c_str(), n);
    }
    return 0;
}

int
cmdCharacterize(const std::string &srv, const std::string &mem)
{
    melody::Platform plat(srv, mem);
    auto idleBe = plat.makeBackend(1);
    const auto mio = melody::mioChaseDirect(idleBe.get(), 2, 20000);

    melody::MlcConfig cfg;
    cfg.delayCycles = 0;
    cfg.windowUs = 250;
    cfg.warmupUs = 60;
    cfg.readFrac = 1.0;
    auto rdBe = plat.makeBackend(2);
    const double readBw = melody::mlcMeasure(rdBe.get(), cfg).gbps;
    cfg.readFrac = 0.67;
    auto mxBe = plat.makeBackend(2);
    const double mixBw = melody::mlcMeasure(mxBe.get(), cfg).gbps;

    std::printf("%s on %s\n", mem.c_str(), srv.c_str());
    std::printf("  idle latency   %7.0f ns\n", mio.latencyNs.mean());
    std::printf("  p50 / p99 / p99.9 / p99.99:"
                " %0.0f / %0.0f / %0.0f / %0.0f ns\n",
                mio.latencyNs.percentile(0.5),
                mio.latencyNs.percentile(0.99),
                mio.latencyNs.percentile(0.999),
                mio.latencyNs.percentile(0.9999));
    std::printf("  read-only BW   %7.1f GB/s\n", readBw);
    std::printf("  mixed (2:1) BW %7.1f GB/s\n", mixBw);
    return 0;
}

int
cmdSlowdown(const std::string &wl, const std::string &srv,
            const std::string &mem)
{
    const auto &w = workloads::byName(wl);
    melody::Platform lp(srv, "Local");
    melody::Platform tp(srv, mem);
    const auto base = melody::runWorkload(w, lp, 1);
    const auto test = melody::runWorkload(w, tp, 1);
    const auto b = spa::computeBreakdown(base, test);

    std::printf("%s on %s:%s\n", wl.c_str(), srv.c_str(),
                mem.c_str());
    std::printf("  slowdown        %7.1f %%\n", b.actual);
    std::printf("  IPC             %7.2f -> %.2f\n",
                base.counters.instructions / base.counters.cycles,
                test.counters.instructions / test.counters.cycles);
    std::printf("  backend BW      %7.1f -> %.1f GB/s\n",
                base.backendGBps(), test.backendGBps());
    std::printf("  Spa breakdown: DRAM %.1f  L3 %.1f  L2 %.1f  "
                "L1 %.1f  Store %.1f  Core %.1f  Other %.1f\n",
                b.dram, b.l3, b.l2, b.l1, b.store, b.core, b.other);
    std::printf("  estimators: ds %.1f  dsBackend %.1f  "
                "dsMemory %.1f (actual %.1f)\n",
                b.estTotalStalls, b.estBackend, b.estMemory,
                b.actual);
    return 0;
}

int
cmdSweep(const std::string &wl)
{
    const auto &w = workloads::byName(wl);
    melody::SlowdownStudy study(1);
    stats::Table t({"Setup", "Slowdown(%)"});
    struct
    {
        const char *srv;
        const char *mem;
    } setups[] = {{"SKX2S", "NUMA-140ns"}, {"SKX2S", "NUMA-190ns"},
                  {"EMR2S", "NUMA"},        {"EMR2S'", "CXL-D"},
                  {"EMR2S", "CXL-A"},       {"EMR2S", "CXL-B"},
                  {"EMR2S", "CXL-C"},       {"EMR2S", "CXL-A+NUMA"},
                  {"SKX8S", "NUMA-410ns"}};
    for (const auto &s : setups)
        t.addRow({std::string(s.srv) + ":" + s.mem,
                  stats::Table::num(
                      study.slowdown(w, s.srv, s.mem), 1)});
    t.print();
    return 0;
}

int
cmdSweepFigures(const std::vector<std::string> &args)
{
    sweep::Options opts = sweep::optionsFromEnv();
    bool jobsGiven = std::getenv("MELODY_SWEEP_JOBS") != nullptr;
    bool pdesStats = false;
    std::vector<const figs::Figure *> picked;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--list") {
            for (const auto &f : figs::all())
                std::printf("%-12s %-26s %s\n", f.name, f.binary,
                            f.title);
            return 0;
        } else if (a == "--jobs") {
            if (i + 1 == args.size())
                throw ConfigError("--jobs needs a value");
            opts.jobs = parseUnsignedArg(args[++i].c_str(), "--jobs");
            jobsGiven = true;
        } else if (a == "--pdes-stats") {
            pdesStats = true;
        } else if (a == "--no-cache") {
            opts.cache = false;
        } else if (a == "--cache-dir") {
            if (i + 1 == args.size())
                throw ConfigError("--cache-dir needs a value");
            opts.cacheDir = args[++i];
        } else if (a == "--isolate") {
            opts.isolate = true;
        } else if (a == "--resume") {
            opts.resume = true;
        } else if (a == "--retries") {
            if (i + 1 == args.size())
                throw ConfigError("--retries needs a value");
            opts.maxAttempts =
                parseUnsignedArg(args[++i].c_str(), "--retries") +
                1;
        } else if (a == "--timeout-ms") {
            if (i + 1 == args.size())
                throw ConfigError("--timeout-ms needs a value");
            opts.timeoutMs = parseUnsignedArg(args[++i].c_str(),
                                              "--timeout-ms");
        } else if (a == "--journal") {
            if (i + 1 == args.size())
                throw ConfigError("--journal needs a value");
            opts.journalPath = args[++i];
        } else if (a == "--check-invariants") {
            opts.checkInvariants = true;
        } else if (a == "all") {
            for (const auto &f : figs::all())
                picked.push_back(&f);
        } else {
            const auto *f = figs::find(a);
            if (!f)
                throw ConfigError("unknown figure '" + a +
                                  "' (melody sweep --list)");
            picked.push_back(f);
        }
    }
    if (picked.empty())
        throw ConfigError("no figures selected "
                          "(melody sweep --list)");
    // Isolated (and therefore resumable) runs journal by default
    // so a killed run can always be picked back up.
    if ((opts.isolate || opts.resume) && opts.journalPath.empty())
        opts.journalPath = "results/sweep-journal.jsonl";

    // Combined thread budget: with --sim-threads N and no explicit
    // --jobs, split the machine between point fan-out and intra-run
    // gangs instead of oversubscribing N-fold.
    if (g_simThreadsArg > 1 && !jobsGiven) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        opts.jobs = std::max(1u, hw / g_simThreadsArg);
    }
    if (pdesStats)
        pdes::StatsRegistry::instance().clear();

    // One engine run for the whole selection; each figure keeps its
    // own cache scope so entries are shared with the standalone
    // bench binaries.
    sweep::Sweep s("melody-sweep", opts);
    for (const auto *f : picked) {
        s.scope(f->binary);
        f->build(s);
    }
    const sweep::Sweep::Report rep = s.run(stdout);
    // Utilization/imbalance report on stderr: stdout carries only
    // figure bytes, which must stay identical across sim-threads.
    if (pdesStats)
        std::fprintf(stderr, "%s\n",
                     pdes::StatsRegistry::instance().json().c_str());
    std::fprintf(stderr,
                 "melody sweep: %zu figure(s), %zu point(s), "
                 "%zu cache hit(s), %zu store(s), %zu corrupt\n",
                 picked.size(), rep.points, rep.cacheHits,
                 rep.cacheStores, rep.corruptEntries);
    if (rep.resumedPoints || rep.retries)
        std::fprintf(
            stderr,
            "melody sweep: %zu point(s) resumed from journal, "
            "%llu retry(ies)\n",
            rep.resumedPoints,
            static_cast<unsigned long long>(rep.retries));
    // Degraded-run reporting: surviving figures already rendered
    // above; summarize what was lost and exit nonzero so scripts
    // notice.
    if (!rep.failures.empty()) {
        std::fprintf(stderr,
                     "melody sweep: %zu point(s) FAILED:\n",
                     rep.failures.size());
        std::fprintf(stderr, "  %-6s %-10s %s\n", "point",
                     "attempts", "key (cause)");
        for (const auto &f : rep.failures)
            std::fprintf(stderr, "  %-6zu %-10u %s (%s)\n",
                         f.point, f.attempts, f.key.c_str(),
                         f.cause.c_str());
    }
    if (!rep.invariantDiags.empty()) {
        std::fprintf(stderr,
                     "melody sweep: %zu invariant violation(s):\n",
                     rep.invariantDiags.size());
        for (const auto &d : rep.invariantDiags)
            std::fprintf(stderr, "  %s at %s: %s [point %s]\n",
                         d.invariant.c_str(), d.where.c_str(),
                         d.values.c_str(), d.pointKey.c_str());
    }
    return rep.clean() ? 0 : 1;
}

int
cmdCache(const std::vector<std::string> &args)
{
    std::string dir = "results/.runcache";
    std::string action;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--cache-dir") {
            if (i + 1 == args.size())
                throw ConfigError("--cache-dir needs a value");
            dir = args[++i];
        } else if (a == "stats" || a == "clear") {
            if (!action.empty())
                throw ConfigError(
                    "cache takes one action, got '" + action +
                    "' and '" + a + "'");
            action = a;
        } else {
            throw ConfigError("unknown cache argument '" + a +
                              "' (stats|clear [--cache-dir D])");
        }
    }
    if (action.empty())
        throw ConfigError(
            "cache needs an action: stats|clear [--cache-dir D]");

    if (action == "clear") {
        const std::uint64_t removed = sweep::RunCache::clearDir(dir);
        std::printf("removed %llu file(s) from %s\n",
                    static_cast<unsigned long long>(removed),
                    dir.c_str());
        return 0;
    }
    const sweep::RunCache::DirStats ds =
        sweep::RunCache::scanDir(dir);
    std::printf("cache %s: %llu entr%s, %.1f MB",
                dir.c_str(),
                static_cast<unsigned long long>(ds.entries),
                ds.entries == 1 ? "y" : "ies",
                static_cast<double>(ds.bytes) / 1e6);
    if (ds.foreign)
        std::printf(", %llu foreign file(s)",
                    static_cast<unsigned long long>(ds.foreign));
    std::printf("\n");
    for (const auto &[salt, n] : ds.perSalt)
        std::printf("  salt %-24s %llu entr%s%s\n", salt.c_str(),
                    static_cast<unsigned long long>(n),
                    n == 1 ? "y" : "ies",
                    salt == sweep::kSweepSalt ? " (current)"
                                              : " (stale)");
    return 0;
}

/** True when the `sweep` arguments select figure mode (flags,
 *  `all`, or a known figure alias/binary) rather than a workload. */
bool
sweepWantsFigures(int argc, char **argv)
{
    if (argc < 3)
        return false;
    if (argc > 3)
        return true;  // `sweep <workload>` is always exactly 1 arg
    const std::string a = argv[2];
    return a.rfind("--", 0) == 0 || a == "all" ||
           figs::find(a) != nullptr;
}

int
cmdPeriod(const std::string &wl, const std::string &mem,
          unsigned periods)
{
    auto w = workloads::byName(wl);
    melody::Platform lp("EMR2S", "Local");
    melody::Platform tp("EMR2S", mem);
    const auto base =
        melody::runWorkload(w, lp, 1, true, usToTicks(15));
    const auto test =
        melody::runWorkload(w, tp, 1, true, usToTicks(15));
    const auto ps = spa::periodAnalysis(
        base.samples, test.samples,
        base.counters.instructions / periods);
    std::printf("%-4s %8s | %6s %5s %5s %5s %6s\n", "per", "S(%)",
                "DRAM", "L3", "L2", "L1", "Store");
    for (const auto &p : ps)
        std::printf("%-4llu %8.1f | %6.1f %5.1f %5.1f %5.1f %6.1f\n",
                    static_cast<unsigned long long>(p.periodIndex),
                    p.breakdown.actual, p.breakdown.dram,
                    p.breakdown.l3, p.breakdown.l2, p.breakdown.l1,
                    p.breakdown.store);
    return 0;
}

int
cmdBatch(const std::string &srv, const std::string &mem,
         unsigned stride)
{
    melody::SlowdownStudy study(1);
    std::vector<workloads::WorkloadProfile> ws;
    const auto &all = workloads::suite();
    for (std::size_t i = 0; i < all.size(); i += stride) {
        ws.push_back(all[i]);
        ws.back().blocksPerCore =
            std::min<std::uint64_t>(ws.back().blocksPerCore, 40000);
    }
    const auto s = study.slowdownBatch(ws, srv, mem);
    std::printf("workload,family,threads,slowdown_pct\n");
    for (std::size_t i = 0; i < ws.size(); ++i)
        std::printf("%s,%s,%u,%.2f\n", ws[i].name.c_str(),
                    ws[i].family.c_str(), ws[i].threads, s[i]);
    return 0;
}

int
cmdAdvise(const std::string &wl, const std::string &mem)
{
    auto w = workloads::byName(wl);
    melody::Platform lp("EMR2S", "Local");
    melody::Platform tp("EMR2S", mem);
    const auto base =
        melody::runWorkload(w, lp, 1, true, usToTicks(15));
    const auto test =
        melody::runWorkload(w, tp, 1, true, usToTicks(15));
    const auto ps = spa::periodAnalysis(
        base.samples, test.samples,
        base.counters.instructions / 16.0);
    const double frac = spa::suggestPinnedFraction(ps, 10.0);
    if (frac == 0.0) {
        std::printf("no bursty periods: leave the workload on %s\n",
                    mem.c_str());
        return 0;
    }
    const auto r = spa::tunePlacement(w, "EMR2S", mem, frac, 1);
    std::printf("pin %.0f%% of the working set locally: slowdown "
                "%.1f%% -> %.1f%%\n",
                100 * frac, r.slowdownAllCxl, r.slowdownPinned);
    return 0;
}

int
cmdRas(const std::string &wl, const std::string &srv,
       const std::string &mem, const std::string &planSpec)
{
    const auto &w = workloads::byName(wl);
    melody::Platform plat(srv, mem);
    ras::FaultPlan plan;
    if (!planSpec.empty())
        plan = ras::parseFaultPlan(planSpec);
    plat.setFaultPlan(plan);

    const auto r = melody::runWorkload(w, plat, 1);
    const ras::RasStats total = r.rasTotal();

    stats::JsonWriter j;
    j.beginObject();
    j.field("workload", wl);
    j.field("server", srv);
    j.field("memory", mem);
    j.field("fault_plan", planSpec);
    j.field("wall_ms", r.seconds() * 1e3);
    j.field("backend_gbps", r.backendGBps());
    j.field("machine_checks", r.counters.machineChecks);
    j.field("demand_timeouts", r.counters.demandTimeouts);
    j.field("prefetch_drops", r.counters.prefetchDrops);
    j.key("ras_total");
    total.writeJson(&j);
    j.key("nodes");
    j.beginArray();
    for (const auto &e : r.ras) {
        j.beginObject();
        j.field("name", e.name);
        j.key("stats");
        e.stats.writeJson(&j);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    std::printf("%s\n", j.str().c_str());
    return 0;
}

int
dispatch(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList(argc > 2 ? argv[2] : "");
    if (cmd == "families")
        return cmdFamilies();
    if (cmd == "characterize" && argc == 4)
        return cmdCharacterize(argv[2], argv[3]);
    if (cmd == "slowdown" && argc == 5)
        return cmdSlowdown(argv[2], argv[3], argv[4]);
    if (cmd == "sweep" && sweepWantsFigures(argc, argv))
        return cmdSweepFigures(
            std::vector<std::string>(argv + 2, argv + argc));
    if (cmd == "cache")
        return cmdCache(
            std::vector<std::string>(argv + 2, argv + argc));
    if (cmd == "sweep" && argc == 3)
        return cmdSweep(argv[2]);
    if (cmd == "period" && argc >= 4)
        return cmdPeriod(argv[2], argv[3],
                         argc > 4 ? parseUnsignedArg(argv[4],
                                                     "periods")
                                  : 16);
    if (cmd == "advise" && argc == 4)
        return cmdAdvise(argv[2], argv[3]);
    if (cmd == "batch" && argc >= 4)
        return cmdBatch(argv[2], argv[3],
                        argc > 4 ? parseUnsignedArg(argv[4],
                                                    "stride")
                                 : 1);
    if (cmd == "ras" && (argc == 5 || argc == 6))
        return cmdRas(argv[2], argv[3], argv[4],
                      argc == 6 ? argv[5] : "");
    return usage();
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        // --sim-threads is global (any subcommand that simulates
        // honours it), so strip it before dispatch.
        std::vector<char *> args;
        for (int i = 0; i < argc; ++i) {
            if (std::strcmp(argv[i], "--sim-threads") == 0) {
                if (i + 1 == argc)
                    throw ConfigError("--sim-threads needs a value");
                g_simThreadsArg = parseUnsignedArg(
                    argv[++i], "--sim-threads");
                pdes::setSimThreads(g_simThreadsArg);
                continue;
            }
            args.push_back(argv[i]);
        }
        return dispatch(static_cast<int>(args.size()), args.data());
    } catch (const ConfigError &e) {
        // User-input errors end with a message + usage, never an
        // abort: scripts can distinguish bad flags (exit 2) from
        // simulator bugs (SIM_PANIC aborts).
        std::fprintf(stderr, "melody: error: %s\n", e.what());
        return usage();
    }
}
