#include "lexer.hh"

#include <cctype>
#include <cstring>

namespace melodylint {

bool
LexResult::allowed(int line, const std::string &rule) const
{
    return allows.count({line, rule}) > 0 ||
           allows.count({line - 1, rule}) > 0;
}

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first. */
const char *const kPuncts[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", ".*",
};

/** Record every lint:allow(rule[, rule...]) inside comment text. */
void
scanAllows(const std::string &comment, int line,
           std::set<std::pair<int, std::string>> *allows)
{
    std::size_t pos = 0;
    while ((pos = comment.find("lint:allow(", pos)) !=
           std::string::npos) {
        pos += std::strlen("lint:allow(");
        const std::size_t close = comment.find(')', pos);
        if (close == std::string::npos)
            return;
        std::string id;
        for (std::size_t i = pos; i <= close; ++i) {
            const char c = i < close ? comment[i] : ',';
            if (c == ',' ) {
                if (!id.empty())
                    allows->insert({line, id});
                id.clear();
            } else if (!std::isspace(static_cast<unsigned char>(c))) {
                id += c;
            }
        }
        pos = close + 1;
    }
}

}  // namespace

LexResult
lex(const std::string &content)
{
    LexResult out;
    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;  // only whitespace seen on this line

    auto push = [&](TokKind k, std::string text) {
        out.tokens.push_back({k, std::move(text), line});
    };

    while (i < n) {
        const char c = content[i];

        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment (may carry a lint:allow).
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            const std::size_t eol = content.find('\n', i);
            const std::size_t end =
                eol == std::string::npos ? n : eol;
            scanAllows(content.substr(i, end - i), line,
                       &out.allows);
            i = end;
            continue;
        }

        // Block comment; count the lines it spans.
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            std::size_t j = i + 2;
            int startLine = line;
            std::string body;
            while (j + 1 < n &&
                   !(content[j] == '*' && content[j + 1] == '/')) {
                if (content[j] == '\n')
                    ++line;
                body += content[j];
                ++j;
            }
            scanAllows(body, startLine, &out.allows);
            i = j + 2 <= n ? j + 2 : n;
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && content[j] != '(')
                delim += content[j++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = content.find(closer, j);
            std::size_t stop =
                end == std::string::npos ? n : end + closer.size();
            for (std::size_t k = i; k < stop; ++k)
                if (content[k] == '\n')
                    ++line;
            push(TokKind::kString, "R\"...\"");
            i = stop;
            atLineStart = false;
            continue;
        }

        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && content[j] != quote) {
                if (content[j] == '\\' && j + 1 < n)
                    ++j;
                else if (content[j] == '\n')
                    ++line;  // unterminated; keep counting
                ++j;
            }
            push(TokKind::kString,
                 content.substr(i, j + 1 > n ? n - i : j + 1 - i));
            i = j + 1;
            atLineStart = false;
            continue;
        }

        // Preprocessor directive (only when '#' is first non-blank).
        if (c == '#' && atLineStart) {
            std::size_t j = i + 1;
            while (j < n && (content[j] == ' ' || content[j] == '\t'))
                ++j;
            std::string name;
            while (j < n && identChar(content[j]))
                name += content[j++];
            push(TokKind::kDirective, name);
            i = j;
            atLineStart = false;
            continue;
        }

        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(content[j]))
                ++j;
            push(TokKind::kIdent, content.substr(i, j - i));
            i = j;
            atLineStart = false;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n && (identChar(content[j]) ||
                             content[j] == '\'' ||
                             (content[j] == '.' ) ||
                             ((content[j] == '+' || content[j] == '-') &&
                              j > i &&
                              (content[j - 1] == 'e' ||
                               content[j - 1] == 'E' ||
                               content[j - 1] == 'p' ||
                               content[j - 1] == 'P'))))
                ++j;
            push(TokKind::kNumber, content.substr(i, j - i));
            i = j;
            atLineStart = false;
            continue;
        }

        // Punctuator, longest match first.
        bool matched = false;
        for (const char *p : kPuncts) {
            const std::size_t len = std::strlen(p);
            if (content.compare(i, len, p) == 0) {
                push(TokKind::kPunct, p);
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            push(TokKind::kPunct, std::string(1, c));
            ++i;
        }
        atLineStart = false;
    }
    return out;
}

}  // namespace melodylint
