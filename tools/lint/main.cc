/**
 * @file
 * melody-lint CLI.
 *
 *   melody_lint [--json <path>] [--quiet] <path>...
 *
 * Paths may be files or directories (recursed). Diagnostics print
 * as  path:line: severity: [rule-id] message  — the format editors
 * and CI annotators already parse. Exit status: 0 clean (warnings
 * allowed), 1 rule errors found, 2 usage/IO error.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string jsonPath;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            if (++i >= argc) {
                std::cerr << "melody-lint: --json needs a path\n";
                return 2;
            }
            jsonPath = argv[i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: melody_lint [--json <path>] "
                         "[--quiet] <path>...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "melody-lint: unknown option " << arg
                      << "\n";
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        std::cerr << "usage: melody_lint [--json <path>] [--quiet] "
                     "<path>...\n";
        return 2;
    }

    const melodylint::Report report = melodylint::lintTree(roots);

    for (const auto &d : report.diags)
        std::cout << d.path << ":" << d.line << ": "
                  << melodylint::severityName(d.severity) << ": ["
                  << d.rule << "] " << d.message << "\n";

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "melody-lint: cannot write " << jsonPath
                      << "\n";
            return 2;
        }
        melodylint::writeJsonReport(report, out);
    }

    if (!quiet)
        std::cerr << "melody-lint: " << report.filesScanned
                  << " files, " << report.errorCount()
                  << " errors, " << report.warningCount()
                  << " warnings, " << report.suppressed
                  << " suppressed\n";

    return report.errorCount() > 0 ? 1 : 0;
}
