/**
 * @file
 * melody-lint rule engine: every project contract rule, implemented
 * over the token stream from lexer.cc. See lint.hh for the contract
 * each family enforces and DESIGN.md §8 for the full rule table.
 */

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"
#include "lint.hh"

namespace melodylint {
namespace {

// ---------------------------------------------------------------
// Path scoping helpers. Paths are repo-relative ("src/mem/x.cc");
// tests lint fixture content under virtual paths of the same form.
// ---------------------------------------------------------------

bool
underDir(const std::string &path, const std::string &prefix)
{
    return path.rfind(prefix, 0) == 0 ||
           path.find("/" + prefix) != std::string::npos;
}

bool
pathHas(const std::string &path, const std::string &frag)
{
    return path.find(frag) != std::string::npos;
}

bool
isHeaderPath(const std::string &path)
{
    auto ends = [&](const char *suf) {
        const std::string s(suf);
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return ends(".hh") || ends(".h") || ends(".hpp");
}

// ---------------------------------------------------------------
// Token-stream helpers.
// ---------------------------------------------------------------

using Tokens = std::vector<Token>;

bool
isIdent(const Tokens &t, std::size_t i, const char *s)
{
    return i < t.size() && t[i].kind == TokKind::kIdent && t[i].is(s);
}

bool
isPunct(const Tokens &t, std::size_t i, const char *s)
{
    return i < t.size() && t[i].kind == TokKind::kPunct && t[i].is(s);
}

/** Index of the ')' matching the '(' at @p open (or npos). */
std::size_t
matchParen(const Tokens &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kPunct)
            continue;
        if (t[i].is("("))
            ++depth;
        else if (t[i].is(")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Skip a template argument list starting at '<'; returns the index
 *  one past the matching '>' (handles '>>'), or @p i if not a '<'. */
std::size_t
skipTemplateArgs(const Tokens &t, std::size_t i)
{
    if (!isPunct(t, i, "<"))
        return i;
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kPunct)
            continue;
        if (t[i].is("<")) {
            ++depth;
        } else if (t[i].is(">")) {
            if (--depth == 0)
                return i + 1;
        } else if (t[i].is(">>")) {
            depth -= 2;
            if (depth <= 0)
                return i + 1;
        } else if (t[i].is(";")) {
            return i;  // malformed; bail out
        }
    }
    return i;
}

/** Emit unless a lint:allow covers (line, rule). */
class Sink
{
  public:
    Sink(const std::string &path, const LexResult &lexed,
         std::vector<Diagnostic> *out, int *suppressed)
        : path_(path), lexed_(lexed), out_(out),
          suppressed_(suppressed)
    {}

    void
    emit(int line, const std::string &rule, Severity sev,
         const std::string &msg)
    {
        if (lexed_.allowed(line, rule)) {
            if (suppressed_)
                ++*suppressed_;
            return;
        }
        out_->push_back({path_, line, rule, sev, msg});
    }

  private:
    const std::string &path_;
    const LexResult &lexed_;
    std::vector<Diagnostic> *out_;
    int *suppressed_;
};

// ---------------------------------------------------------------
// Family 1: determinism.
// ---------------------------------------------------------------

/**
 * det-banned-call — every stochastic or wall-clock source outside
 * the seeded Rng breaks bit-reproducibility across runs and across
 * parallelFor schedules (PAPER.md §4's measurements are only
 * comparable because reruns are bit-identical).
 */
void
ruleDetBannedCall(const std::string &path, const Tokens &t,
                  Sink *sink)
{
    if (pathHas(path, "sim/rng."))
        return;  // the one blessed home for raw entropy

    static const std::set<std::string> kAlwaysBanned = {
        "random_device", "mt19937",   "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "ranlux24",      "ranlux48",  "knuth_b",
        "system_clock",  "high_resolution_clock",
        "gettimeofday",  "srand",     "srandom",
        "drand48",       "rand_r",    "random_shuffle",
    };
    // Banned only as a direct call: short names that legitimately
    // appear as member/variable names elsewhere.
    static const std::set<std::string> kBannedCalls = {
        "rand", "time", "clock", "localtime", "gmtime", "random",
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent)
            continue;
        const std::string &name = t[i].text;
        if (kAlwaysBanned.count(name)) {
            sink->emit(t[i].line, "det-banned-call",
                       Severity::kError,
                       "nondeterministic source '" + name +
                           "'; all randomness and time must come "
                           "from the seeded cxlsim::Rng "
                           "(src/sim/rng.hh)");
            continue;
        }
        if (!kBannedCalls.count(name) || !isPunct(t, i + 1, "("))
            continue;
        // Member access (x.time(), p->clock()) is someone else's
        // API, not libc; `foo::time()` is fine unless foo is std.
        if (i > 0 && (isPunct(t, i - 1, ".") ||
                      isPunct(t, i - 1, "->")))
            continue;
        // A declaration of a member with the same name (`int
        // rand() const;`): preceded by its return type.
        if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
            !t[i - 1].is("return") && !t[i - 1].is("co_return") &&
            !t[i - 1].is("throw") && !t[i - 1].is("else") &&
            !t[i - 1].is("do") && !t[i - 1].is("case"))
            continue;
        if (i > 0 && isPunct(t, i - 1, "::") &&
            !(i > 1 && isIdent(t, i - 2, "std")))
            continue;
        sink->emit(t[i].line, "det-banned-call", Severity::kError,
                   "call to nondeterministic '" + name +
                       "()'; draw from the seeded cxlsim::Rng "
                       "(src/sim/rng.hh) instead");
    }
}

/**
 * det-unordered-iter — iterating a hash container in code that
 * produces figures/statistics makes output depend on hash-table
 * layout (pointer values, libstdc++ version), the classic silent
 * nondeterminism bug. Sort into a vector first (see
 * TieringBackend::runEpoch for the idiom).
 */
void
ruleDetUnorderedIter(const std::string &path, const Tokens &t,
                     Sink *sink)
{
    const bool scoped = underDir(path, "src/stats/") ||
                        underDir(path, "src/spa/") ||
                        underDir(path, "bench/") ||
                        underDir(path, "tools/") ||
                        pathHas(path, "sim/sweep") ||
                        pathHas(path, "sim/run_cache") ||
                        pathHas(path, "sim/pdes") ||
                        pathHas(path, "sim/partition");
    if (!scoped)
        return;

    // Pass 1: names declared with an unordered container type.
    std::set<std::string> unordered;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent)
            continue;
        const std::string &n = t[i].text;
        if (n != "unordered_map" && n != "unordered_set" &&
            n != "unordered_multimap" && n != "unordered_multiset")
            continue;
        std::size_t j = skipTemplateArgs(t, i + 1);
        if (j < t.size() && t[j].kind == TokKind::kIdent)
            unordered.insert(t[j].text);
    }
    if (unordered.empty())
        return;

    // Pass 2: range-for whose range expression names one of them.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t, i, "for") || !isPunct(t, i + 1, "("))
            continue;
        const std::size_t close = matchParen(t, i + 1);
        if (close == std::string::npos)
            continue;
        // Find the top-level ':' of a range-for.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t k = i + 2; k < close; ++k) {
            if (t[k].kind != TokKind::kPunct)
                continue;
            if (t[k].is("(") || t[k].is("[") || t[k].is("{"))
                ++depth;
            else if (t[k].is(")") || t[k].is("]") || t[k].is("}"))
                --depth;
            else if (t[k].is(":") && depth == 0) {
                colon = k;
                break;
            }
            if (t[k].is(";"))
                break;  // classic for loop
        }
        if (colon == std::string::npos)
            continue;
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (t[k].kind == TokKind::kIdent &&
                unordered.count(t[k].text)) {
                sink->emit(t[k].line, "det-unordered-iter",
                           Severity::kError,
                           "iteration over unordered container '" +
                               t[k].text +
                               "' in an output/stats path; order "
                               "depends on hash layout — collect "
                               "and sort deterministically first");
                break;
            }
        }
    }
}

/**
 * det-static-local — a mutable function-local `static` in simulator
 * code is shared state reachable from parallelFor workers: a data
 * race at worst, cross-run coupling at best. Pass state explicitly
 * or make it const/constexpr.
 */
void
ruleDetStaticLocal(const std::string &path, const Tokens &t,
                   Sink *sink)
{
    if (!underDir(path, "src/"))
        return;

    enum class Scope { kNamespace, kClass, kBlock };
    std::vector<Scope> stack;
    enum class Pending { kNone, kNamespace, kClass };
    Pending pending = Pending::kNone;

    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        if (tok.kind == TokKind::kIdent) {
            if (tok.is("namespace")) {
                pending = Pending::kNamespace;
            } else if (tok.is("class") || tok.is("struct") ||
                       tok.is("union") || tok.is("enum")) {
                pending = Pending::kClass;
            } else if (tok.is("static")) {
                const bool inBlock =
                    !stack.empty() && stack.back() == Scope::kBlock;
                if (!inBlock)
                    continue;
                // `static const`/`static constexpr` locals are
                // immutable after init — allowed.
                bool immutable = false;
                for (std::size_t k = i + 1;
                     k < std::min(i + 4, t.size()); ++k) {
                    if (isIdent(t, k, "const") ||
                        isIdent(t, k, "constexpr"))
                        immutable = true;
                }
                if (!immutable)
                    sink->emit(tok.line, "det-static-local",
                               Severity::kError,
                               "mutable function-local static: "
                               "hidden shared state reachable from "
                               "parallelFor workers; pass state "
                               "explicitly or make it constexpr");
            }
            continue;
        }
        if (tok.kind != TokKind::kPunct)
            continue;
        if (tok.is("{")) {
            Scope s = Scope::kBlock;
            if (pending == Pending::kNamespace)
                s = Scope::kNamespace;
            else if (pending == Pending::kClass)
                s = Scope::kClass;
            stack.push_back(s);
            pending = Pending::kNone;
        } else if (tok.is("}")) {
            if (!stack.empty())
                stack.pop_back();
        } else if (tok.is(";") || tok.is("(") || tok.is(")") ||
                   tok.is(",") || tok.is(">") || tok.is("=")) {
            // Forward declarations, template parameters and
            // elaborated type specifiers never open their brace.
            pending = Pending::kNone;
        }
    }
}

// ---------------------------------------------------------------
// Family 2: RAS-status hygiene.
// ---------------------------------------------------------------

const std::set<std::string> kExCalls = {"accessEx", "readEx",
                                        "writeEx", "serviceEx"};

/**
 * ras-ignored-status — dropping the result of an *Ex call silently
 * converts a poisoned or timed-out access into a clean one; every
 * call site must consume the ras::Status ([[nodiscard]] catches the
 * plain-discard case at compile time; this also rejects the (void)
 * escape hatch).
 */
void
ruleRasIgnoredStatus(const std::string &path, const Tokens &t,
                     Sink *sink)
{
    if (!underDir(path, "src/mem/") && !underDir(path, "src/cxl/"))
        return;

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent ||
            !kExCalls.count(t[i].text) || !isPunct(t, i + 1, "("))
            continue;

        // A declaration, not a call: the name is preceded by its
        // return type (`ServiceOutcome readEx(...)`) or a
        // declarator (`*`, `&`).
        if (i > 0 && (t[i - 1].kind == TokKind::kIdent ||
                      isPunct(t, i - 1, "*") ||
                      isPunct(t, i - 1, "&")))
            continue;

        // Result must be consumed: the call's ')' followed by ';'
        // means the full expression ends here...
        const std::size_t close = matchParen(t, i + 1);
        if (close == std::string::npos ||
            !isPunct(t, close + 1, ";"))
            continue;

        // ...and the receiver chain starting a statement (or being
        // (void)-cast) means nothing upstream captures it either.
        std::size_t k = i;
        while (k > 0 &&
               (isPunct(t, k - 1, ".") || isPunct(t, k - 1, "->") ||
                isPunct(t, k - 1, "::") ||
                (t[k - 1].kind == TokKind::kIdent &&
                 !t[k - 1].is("return") && !t[k - 1].is("throw") &&
                 !t[k - 1].is("co_return"))))
            --k;
        const bool stmtStart =
            k == 0 || isPunct(t, k - 1, ";") ||
            isPunct(t, k - 1, "{") || isPunct(t, k - 1, "}");
        const bool voidCast =
            k >= 3 && isPunct(t, k - 3, "(") &&
            isIdent(t, k - 2, "void") && isPunct(t, k - 1, ")");
        if (stmtStart || voidCast)
            sink->emit(t[i].line, "ras-ignored-status",
                       Severity::kError,
                       "result of '" + t[i].text +
                           "()' discarded; the ras::Status must be "
                           "consumed (poison/timeout would vanish "
                           "silently)");
    }
}

/**
 * ras-plain-call — the RAS-aware layers must not call the
 * status-less compatibility wrappers on a backend/device: they
 * exist for fault-free callers (CPU model, tests), and using them
 * inside src/mem//src/cxl reintroduces status-dropping one level
 * down.
 */
void
ruleRasPlainCall(const std::string &path, const Tokens &t,
                 Sink *sink)
{
    if (!underDir(path, "src/mem/") && !underDir(path, "src/cxl/"))
        return;
    if (isHeaderPath(path))
        return;  // headers define the wrappers themselves

    static const std::set<std::string> kPlain = {"access", "read",
                                                 "write", "service"};
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!isPunct(t, i, "->"))
            continue;
        if (t[i + 1].kind == TokKind::kIdent &&
            kPlain.count(t[i + 1].text) && isPunct(t, i + 2, "(")) {
            sink->emit(t[i + 1].line, "ras-plain-call",
                       Severity::kError,
                       "status-less '" + t[i + 1].text +
                           "()' in a RAS-aware layer; call '" +
                           t[i + 1].text +
                           "Ex()' and consume the ras::Status");
        }
    }
}

// ---------------------------------------------------------------
// Family 3: error discipline.
// ---------------------------------------------------------------

/**
 * err-fatal-user-input — user-supplied configuration (CLI flags,
 * profile/fault-plan specs) must throw ConfigError so front ends
 * print usage and exit(2); SIM_FATAL aborts the process and is
 * reserved for internal invariants.
 */
void
ruleErrFatalUserInput(const std::string &path, const Tokens &t,
                      Sink *sink)
{
    const bool userInput = pathHas(path, "fault_plan") ||
                           pathHas(path, "device_profile") ||
                           pathHas(path, "_cli") ||
                           underDir(path, "tools/");
    if (!userInput)
        return;
    for (const Token &tok : t) {
        if (tok.kind == TokKind::kIdent && tok.is("SIM_FATAL"))
            sink->emit(tok.line, "err-fatal-user-input",
                       Severity::kError,
                       "SIM_FATAL on a user-input path; throw "
                       "cxlsim::ConfigError so the front end can "
                       "print usage and exit cleanly");
    }
}

/**
 * err-stray-stream — the simulator library writes no streams:
 * stdout belongs to figure output (bit-compared across runs) and
 * stderr to the logging helpers. snprintf into buffers is fine.
 */
void
ruleErrStrayStream(const std::string &path, const Tokens &t,
                   Sink *sink)
{
    if (!underDir(path, "src/") || pathHas(path, "sim/logging."))
        return;
    static const std::set<std::string> kBanned = {
        "cout", "cerr", "clog", "printf", "fprintf",
        "puts", "putchar", "vprintf", "vfprintf",
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent ||
            !kBanned.count(t[i].text))
            continue;
        // Member access is someone else's API (writer.puts(...)).
        if (i > 0 && (isPunct(t, i - 1, ".") ||
                      isPunct(t, i - 1, "->")))
            continue;
        sink->emit(t[i].line, "err-stray-stream", Severity::kError,
                   "'" + t[i].text +
                       "' in library code; use SIM_WARN/SIM_PANIC "
                       "or return data to the caller (stdout is "
                       "reserved for figure output)");
    }
}

// ---------------------------------------------------------------
// Family 4: header hygiene.
// ---------------------------------------------------------------

/**
 * hdr-guard / hdr-pragma-once — headers carry a classic include
 * guard whose name matches the ALL_CAPS *_HH convention (stable
 * under file moves in ways #pragma once is not, and greppable).
 */
void
ruleHdrGuard(const std::string &path, const Tokens &t, Sink *sink)
{
    if (!isHeaderPath(path))
        return;

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kDirective)
            continue;
        if (t[i].is("pragma") && isIdent(t, i + 1, "once")) {
            sink->emit(t[i].line, "hdr-pragma-once",
                       Severity::kError,
                       "#pragma once; project convention is a "
                       "classic CXLSIM_*_HH include guard");
            return;
        }
        if (!t[i].is("ifndef")) {
            sink->emit(t[i].line, "hdr-guard", Severity::kError,
                       "first preprocessor directive is not the "
                       "include guard's #ifndef");
            return;
        }
        // #ifndef NAME  /  #define NAME  (same NAME, *_HH shape).
        if (i + 1 >= t.size() ||
            t[i + 1].kind != TokKind::kIdent) {
            sink->emit(t[i].line, "hdr-guard", Severity::kError,
                       "malformed include guard");
            return;
        }
        const std::string &name = t[i + 1].text;
        if (!(i + 3 < t.size() && t[i + 2].is("define") &&
              t[i + 2].kind == TokKind::kDirective &&
              t[i + 3].kind == TokKind::kIdent &&
              t[i + 3].text == name)) {
            sink->emit(t[i].line, "hdr-guard", Severity::kError,
                       "include guard #ifndef '" + name +
                           "' is not followed by a matching "
                           "#define");
            return;
        }
        bool shape = !name.empty() && name.back() != '_' &&
                     (name.size() < 3 ||
                      name.compare(name.size() - 3, 3, "_HH") == 0 ||
                      name.compare(name.size() - 2, 2, "_H") == 0);
        for (char c : name)
            if (!(std::isupper(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) ||
                  c == '_'))
                shape = false;
        if (!shape)
            sink->emit(t[i].line, "hdr-guard", Severity::kError,
                       "include-guard name '" + name +
                           "' does not follow the ALL_CAPS *_HH "
                           "convention");
        return;
    }
    sink->emit(1, "hdr-guard", Severity::kError,
               "header has no include guard");
}

/**
 * hdr-missing-include — a header that names a std:: type must
 * include that type's header itself; relying on a transitive
 * include breaks the next refactor (include-what-you-use, limited
 * to an unambiguous symbol→header map so it cannot false-positive).
 */
void
ruleHdrMissingInclude(const std::string &path, const Tokens &t,
                      Sink *sink)
{
    if (!isHeaderPath(path) ||
        (!underDir(path, "src/") && !underDir(path, "tools/")))
        return;

    static const std::map<std::string, std::string> kSymbolHeader = {
        {"string", "string"},
        {"string_view", "string_view"},
        {"vector", "vector"},
        {"deque", "deque"},
        {"array", "array"},
        {"map", "map"},
        {"multimap", "map"},
        {"set", "set"},
        {"multiset", "set"},
        {"unordered_map", "unordered_map"},
        {"unordered_multimap", "unordered_map"},
        {"unordered_set", "unordered_set"},
        {"unordered_multiset", "unordered_set"},
        {"optional", "optional"},
        {"function", "functional"},
        {"unique_ptr", "memory"},
        {"shared_ptr", "memory"},
        {"weak_ptr", "memory"},
        {"make_unique", "memory"},
        {"make_shared", "memory"},
        {"uint8_t", "cstdint"},
        {"uint16_t", "cstdint"},
        {"uint32_t", "cstdint"},
        {"uint64_t", "cstdint"},
        {"int8_t", "cstdint"},
        {"int16_t", "cstdint"},
        {"int32_t", "cstdint"},
        {"int64_t", "cstdint"},
        {"size_t", "cstddef"},
        {"atomic", "atomic"},
        {"mutex", "mutex"},
        {"thread", "thread"},
        {"condition_variable", "condition_variable"},
    };

    std::set<std::string> included;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == TokKind::kDirective && t[i].is("include") &&
            isPunct(t, i + 1, "<") &&
            t.size() > i + 2 && t[i + 2].kind == TokKind::kIdent)
            included.insert(t[i + 2].text);
    }

    std::set<std::string> reported;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!isIdent(t, i, "std") || !isPunct(t, i + 1, "::"))
            continue;
        const auto it = kSymbolHeader.find(t[i + 2].text);
        if (it == kSymbolHeader.end() || included.count(it->second))
            continue;
        if (!reported.insert(it->second).second)
            continue;  // one diagnostic per missing header
        sink->emit(t[i + 2].line, "hdr-missing-include",
                   Severity::kError,
                   "uses std::" + t[i + 2].text +
                       " without including <" + it->second +
                       "> (headers must be self-contained)");
    }
}

/**
 * det-pdes-shared-mutation — under the conservative PDES engine a
 * handler executes on its partition's thread while peers drain the
 * same epoch concurrently. The only legal way to affect ANOTHER
 * partition from handler code is a time-stamped mailbox message
 * (Engine::send); a direct schedule()/scheduleAfter() — or any
 * other mutating member — through a cross-partition pointer races
 * that partition's event queue and silently breaks both the
 * determinism argument and the lookahead proof (DESIGN.md §11).
 *
 * Enforced convention: inside lambda bodies (where handlers live),
 * mutating Partition members may only be called through a variable
 * named `self` — the partition the handler runs on, per the naming
 * convention in sim/pdes.hh. Const accessors (now/id/name/empty/
 * executed) are always fine, and code outside lambdas (pre-run
 * setup, the engine's own barrier) is exempt: it runs while no
 * partition is draining.
 */
void
ruleDetPdesSharedMutation(const std::string &path, const Tokens &t,
                          Sink *sink)
{
    (void)path;  // applies everywhere Partition handles appear

    // Pass 1: names declared with a (pdes::)Partition pointer or
    // reference type. `vector<Partition *>` members are skipped:
    // the closing '>' is not a declarator name.
    std::set<std::string> vars;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t, i, "Partition"))
            continue;
        std::size_t j = i + 1;
        bool indirect = false;
        while (j < t.size() &&
               (isPunct(t, j, "*") || isPunct(t, j, "&") ||
                isIdent(t, j, "const"))) {
            if (!isIdent(t, j, "const"))
                indirect = true;
            ++j;
        }
        if (indirect && j < t.size() &&
            t[j].kind == TokKind::kIdent)
            vars.insert(t[j].text);
    }
    if (vars.empty())
        return;

    // Pass 2: lambda body token ranges. '[' opens a capture list
    // only in expression position (a subscript follows a value);
    // '[[' is an attribute.
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isPunct(t, i, "["))
            continue;
        if (i > 0 && (t[i - 1].kind == TokKind::kIdent ||
                      isPunct(t, i - 1, ")") ||
                      isPunct(t, i - 1, "]")))
            continue;  // subscript
        if (isPunct(t, i + 1, "["))
            continue;  // attribute
        // Matching ']' of the capture list.
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t k = i; k < t.size(); ++k) {
            if (isPunct(t, k, "["))
                ++depth;
            else if (isPunct(t, k, "]") && --depth == 0) {
                close = k;
                break;
            }
        }
        if (close == std::string::npos)
            continue;
        std::size_t j = close + 1;
        if (j < t.size() && isPunct(t, j, "(")) {
            j = matchParen(t, j);
            if (j == std::string::npos)
                continue;
            ++j;
        }
        // Skip specifiers / trailing return type up to the body.
        while (j < t.size() && !isPunct(t, j, "{") &&
               !isPunct(t, j, ";") && !isPunct(t, j, ",") &&
               !isPunct(t, j, ")"))
            ++j;
        if (j >= t.size() || !isPunct(t, j, "{"))
            continue;
        int braces = 0;
        for (std::size_t k = j; k < t.size(); ++k) {
            if (isPunct(t, k, "{"))
                ++braces;
            else if (isPunct(t, k, "}") && --braces == 0) {
                bodies.emplace_back(j, k);
                break;
            }
        }
    }
    if (bodies.empty())
        return;

    const auto inLambda = [&bodies](std::size_t i) {
        for (const auto &b : bodies)
            if (i > b.first && i < b.second)
                return true;
        return false;
    };

    // Partition's const API: safe from any thread's handler.
    static const std::set<std::string> kConstMembers = {
        "now", "id", "name", "empty", "executed",
    };

    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent || !vars.count(t[i].text))
            continue;
        if (!isPunct(t, i + 1, "->") && !isPunct(t, i + 1, "."))
            continue;
        if (t[i + 2].kind != TokKind::kIdent ||
            !isPunct(t, i + 3, "("))
            continue;
        const std::string &member = t[i + 2].text;
        if (kConstMembers.count(member))
            continue;
        if (!inLambda(i))
            continue;
        if (t[i].is("self") && (member == "schedule" ||
                                member == "scheduleAfter"))
            continue;  // partition-local: the handler's own queue
        sink->emit(t[i].line, "det-pdes-shared-mutation",
                   Severity::kError,
                   "'" + t[i].text + t[i + 1].text + member +
                       "()' mutates another partition's state from "
                       "handler code; route cross-partition effects "
                       "through Engine::send() (mailboxes), or name "
                       "the executing partition 'self'");
    }
}

}  // namespace

const char *
severityName(Severity s)
{
    return s == Severity::kError ? "error" : "warning";
}

int
Report::errorCount() const
{
    return static_cast<int>(std::count_if(
        diags.begin(), diags.end(), [](const Diagnostic &d) {
            return d.severity == Severity::kError;
        }));
}

int
Report::warningCount() const
{
    return static_cast<int>(diags.size()) - errorCount();
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &content,
           int *suppressedOut)
{
    const LexResult lexed = lex(content);
    std::vector<Diagnostic> diags;
    Sink sink(path, lexed, &diags, suppressedOut);

    ruleDetBannedCall(path, lexed.tokens, &sink);
    ruleDetUnorderedIter(path, lexed.tokens, &sink);
    ruleDetStaticLocal(path, lexed.tokens, &sink);
    ruleDetPdesSharedMutation(path, lexed.tokens, &sink);
    ruleRasIgnoredStatus(path, lexed.tokens, &sink);
    ruleRasPlainCall(path, lexed.tokens, &sink);
    ruleErrFatalUserInput(path, lexed.tokens, &sink);
    ruleErrStrayStream(path, lexed.tokens, &sink);
    ruleHdrGuard(path, lexed.tokens, &sink);
    ruleHdrMissingInclude(path, lexed.tokens, &sink);

    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return diags;
}

}  // namespace melodylint
