/**
 * @file
 * Minimal C++ tokenizer for melody-lint.
 *
 * Deliberately not a preprocessor or parser: it splits a source
 * file into identifiers, literals, punctuators and preprocessor
 * directives with accurate line numbers, strips comments (recording
 * lint:allow suppressions as it goes), and understands raw strings.
 * That is exactly enough for the rule engine to reason about call
 * sites and declarations without libclang.
 */

#ifndef MELODY_LINT_LEXER_HH
#define MELODY_LINT_LEXER_HH

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace melodylint {

enum class TokKind {
    kIdent,      ///< identifier or keyword
    kNumber,     ///< numeric literal
    kString,     ///< string or char literal (quotes included)
    kPunct,      ///< operator / punctuator, longest-match ("->", "::")
    kDirective,  ///< preprocessor directive name ("ifndef", "pragma")
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;

    bool is(const char *s) const { return text == s; }
};

/** Lexer output: token stream plus the suppression side table. */
struct LexResult
{
    std::vector<Token> tokens;
    /** (line, rule-id) pairs from lint:allow comments. A pair on
     *  line L suppresses diagnostics on L and L+1. */
    std::set<std::pair<int, std::string>> allows;

    /** True when @p rule is suppressed at @p line. */
    bool allowed(int line, const std::string &rule) const;
};

LexResult lex(const std::string &content);

}  // namespace melodylint

#endif  // MELODY_LINT_LEXER_HH
