/**
 * @file
 * melody-lint: project-specific static analysis for the simulator.
 *
 * The simulator's correctness story rests on contracts that the
 * type system cannot express and that runtime tests only probe:
 *
 *  - determinism: every stochastic draw goes through the seeded
 *    cxlsim::Rng; iteration order of output-producing code must not
 *    depend on hash-table layout; no hidden mutable state reachable
 *    from parallelFor workers;
 *  - RAS-status hygiene: fault-capable layers must consume the
 *    ras::Status a request returns — dropping one silently converts
 *    a poisoned/timed-out access into a clean one;
 *  - error discipline: invalid *user input* throws ConfigError so
 *    front ends can print usage and exit(2); SIM_FATAL is reserved
 *    for internal invariants, and stray stdout/stderr writes in the
 *    library would corrupt figure output streams;
 *  - header hygiene: headers are include-guarded (project
 *    convention, not #pragma once) and self-contained.
 *
 * melody-lint enforces these as compile-time-cheap textual rules
 * over a real tokenizer (comments and string literals never produce
 * false hits). A violation can be suppressed on its own line or the
 * line above with:  // lint:allow(rule-id[, rule-id...])  — the
 * suppression count is reported so drift stays visible.
 */

#ifndef MELODY_LINT_LINT_HH
#define MELODY_LINT_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace melodylint {

/** Diagnostic severity: errors gate the build, warnings inform. */
enum class Severity { kWarning, kError };

const char *severityName(Severity s);

/** One finding, anchored to a repo-relative path and 1-based line. */
struct Diagnostic
{
    std::string path;
    int line = 0;
    std::string rule;
    Severity severity = Severity::kError;
    std::string message;
};

/** Aggregate result of linting one or more files. */
struct Report
{
    std::vector<Diagnostic> diags;
    int filesScanned = 0;
    /** Violations silenced by lint:allow (kept visible in JSON). */
    int suppressed = 0;

    int errorCount() const;
    int warningCount() const;
};

/**
 * Lint one translation unit.
 *
 * @param path    Repo-relative path; rule scoping (which rules
 *                apply) is derived from it, so tests can lint
 *                fixture content under a virtual path.
 * @param content Full file contents.
 * @param suppressedOut Incremented per lint:allow'd violation.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &content,
                                   int *suppressedOut = nullptr);

/**
 * Recursively lint every C/C++ source under each root (file roots
 * are linted directly). Directories named lint_fixtures, build*,
 * .git, CMakeFiles and results are skipped.
 */
Report lintTree(const std::vector<std::string> &roots);

/** Machine-readable report (stable keys, sorted diagnostics). */
void writeJsonReport(const Report &report, std::ostream &os);

}  // namespace melodylint

#endif  // MELODY_LINT_LINT_HH
