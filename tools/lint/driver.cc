/**
 * @file
 * melody-lint tree walker and JSON report writer — in the core
 * library (not main.cc) so tests can exercise them directly.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;

namespace melodylint {
namespace {

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/** Directories that hold generated or fixture content, not code. */
bool
skippedDir(const std::string &name)
{
    return name == "lint_fixtures" || name == ".git" ||
           name == "CMakeFiles" || name == "results" ||
           name.rfind("build", 0) == 0;
}

std::string
readFile(const fs::path &p, bool *ok)
{
    std::ifstream in(p, std::ios::binary);
    *ok = static_cast<bool>(in);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Repo-relative-ish display path: strip a leading "./". */
std::string
displayPath(const fs::path &p)
{
    std::string s = p.generic_string();
    if (s.rfind("./", 0) == 0)
        s = s.substr(2);
    return s;
}

void
lintOne(const fs::path &p, Report *report)
{
    bool ok = false;
    const std::string content = readFile(p, &ok);
    if (!ok) {
        std::cerr << "melody-lint: cannot read " << p << "\n";
        return;
    }
    ++report->filesScanned;
    int suppressed = 0;
    auto diags = lintSource(displayPath(p), content, &suppressed);
    report->suppressed += suppressed;
    report->diags.insert(report->diags.end(), diags.begin(),
                         diags.end());
}

}  // namespace

Report
lintTree(const std::vector<std::string> &roots)
{
    Report report;
    for (const std::string &root : roots) {
        fs::path rp(root);
        std::error_code ec;
        if (fs::is_regular_file(rp, ec)) {
            lintOne(rp, &report);
            continue;
        }
        if (!fs::is_directory(rp, ec)) {
            std::cerr << "melody-lint: no such path: " << root
                      << "\n";
            continue;
        }
        fs::recursive_directory_iterator it(
            rp, fs::directory_options::skip_permission_denied, ec);
        for (auto end = fs::end(it); it != end;
             it.increment(ec)) {
            if (ec)
                break;
            const fs::directory_entry &e = *it;
            if (e.is_directory(ec)) {
                if (skippedDir(e.path().filename().string()))
                    it.disable_recursion_pending();
                continue;
            }
            if (e.is_regular_file(ec) && lintableFile(e.path()))
                lintOne(e.path(), &report);
        }
    }
    return report;
}

void
writeJsonReport(const Report &report, std::ostream &os)
{
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    os << "{\n  \"filesScanned\": " << report.filesScanned
       << ",\n  \"errors\": " << report.errorCount()
       << ",\n  \"warnings\": " << report.warningCount()
       << ",\n  \"suppressed\": " << report.suppressed
       << ",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < report.diags.size(); ++i) {
        const Diagnostic &d = report.diags[i];
        os << (i ? "," : "") << "\n    {\"path\": \""
           << escape(d.path) << "\", \"line\": " << d.line
           << ", \"rule\": \"" << escape(d.rule)
           << "\", \"severity\": \"" << severityName(d.severity)
           << "\", \"message\": \"" << escape(d.message) << "\"}";
    }
    os << (report.diags.empty() ? "" : "\n  ") << "]\n}\n";
}

}  // namespace melodylint
