/**
 * @file
 * Rate-coupled jitter process.
 *
 * Models contention-induced latency spikes whose frequency grows
 * with the recent request rate. Used for the CXL+NUMA combination,
 * where the paper observes tail latencies (starting ~p98, up to
 * 800ns) that shrink when workload intensity is reduced (Fig 8d) —
 * direct evidence that the tails, not bandwidth, cause the
 * CXL+NUMA slowdown anomaly.
 */

#ifndef CXLSIM_MEM_JITTER_HH
#define CXLSIM_MEM_JITTER_HH

#include <algorithm>
#include <cstdint>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlsim::mem {

/** Configuration of a rate-coupled jitter source. */
struct JitterParams
{
    /** Probability of a spike per request at the reference rate. */
    double probAtRef = 0.0;
    /** Reference request rate (requests/us) for full probability. */
    double refReqPerUs = 50.0;
    /** Spike magnitude bounds (ns) and Pareto shape. */
    double minNs = 100.0;
    double maxNs = 800.0;
    double alpha = 1.2;

    /**
     * Congestion episodes: with per-request probability
     * episodeProb (rate-scaled), the path enters a congested
     * regime for episodeDurUs in which every request pays an
     * additional heavy delay in [episodeMinNs, episodeMaxNs].
     * This models the flow-control interference storms between
     * the UPI and CXL protocol layers that make CXL+NUMA far
     * worse than its average latency suggests (§4, Fig 8c/d).
     */
    double episodeProb = 0.0;
    /** Episodes only arm above this request rate (req/us): a lone
     *  latency probe stays clean while real workload traffic
     *  triggers the interference (matching Table 1's stable
     *  remote-latency numbers vs Fig 8d's workload tails). */
    double episodeMinRatePerUs = 4.0;
    double episodeDurUs = 30.0;
    /** Minimum quiet time between episodes: bounds the duty cycle
     *  so congestion storms stay episodic rather than permanent. */
    double episodeRefractoryUs = 60.0;
    double episodeMinNs = 1500.0;
    double episodeMaxNs = 8000.0;
    double episodeAlpha = 1.3;
};

/** Stateful jitter source; ask it for extra delay per request. */
class JitterProcess
{
  public:
    JitterProcess(const JitterParams &params, std::uint64_t seed)
        : params_(params), rng_(seed)
    {
    }

    /**
     * Extra delay in ticks for a request arriving at @p now.
     * Updates the internal rate estimate.
     */
    Tick
    sample(Tick now)
    {
        // EWMA of request rate in requests per microsecond.
        const double dtUs = std::max(
            1e-4, ticksToNs(now > last_ ? now - last_ : 0) / 1000.0 +
                      1e-5);
        last_ = now;
        const double inst = 1.0 / dtUs;
        constexpr double a = 0.05;
        rate_ = a * inst + (1.0 - a) * rate_;

        const double scale =
            std::min(1.5, rate_ / params_.refReqPerUs);

        Tick delay = 0;
        // Congestion episodes: every request during an episode
        // pays a heavy extra delay.
        if (params_.episodeProb > 0.0 &&
            rate_ >= params_.episodeMinRatePerUs) {
            if (now < episodeEnd_) {
                delay += nsToTicks(rng_.boundedPareto(
                    params_.episodeMinNs, params_.episodeMaxNs,
                    params_.episodeAlpha));
                ++episodeHits_;
            } else if (now >= nextEpisodeAllowed_ &&
                       rng_.chance(params_.episodeProb * scale)) {
                episodeEnd_ =
                    now + usToTicks(params_.episodeDurUs);
                nextEpisodeAllowed_ =
                    episodeEnd_ +
                    usToTicks(params_.episodeRefractoryUs);
                ++episodes_;
            }
        }
        if (params_.probAtRef > 0.0 &&
            rng_.chance(params_.probAtRef * scale)) {
            delay += nsToTicks(rng_.boundedPareto(
                params_.minNs, params_.maxNs, params_.alpha));
        }
        return delay;
    }

    double ratePerUs() const { return rate_; }
    std::uint64_t episodes() const { return episodes_; }
    std::uint64_t episodeHits() const { return episodeHits_; }

  private:
    JitterParams params_;
    Rng rng_;
    Tick last_ = 0;
    double rate_ = 0.0;
    Tick episodeEnd_ = 0;
    Tick nextEpisodeAllowed_ = 0;
    std::uint64_t episodes_ = 0;
    std::uint64_t episodeHits_ = 0;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_JITTER_HH
