#include "local_backend.hh"

namespace cxlsim::mem {

LocalDramBackend::LocalDramBackend(const LocalDramConfig &cfg)
    : cfg_(cfg)
{
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        dram::ChannelConfig cc;
        cc.timing = cfg_.timing;
        cc.refreshHiding = cfg_.refreshHiding;
        cc.seed = cfg_.seed * 104729 + c;
        channels_.push_back(std::make_unique<dram::Channel>(cc));
    }
}

Tick
LocalDramBackend::access(Addr addr, ReqType type, Tick now)
{
    note(type);
    const Addr line = addr / kCacheLineBytes;
    const std::size_t n = channels_.size();
    auto &chan = *channels_[line % n];
    // Channel-local address: consecutive lines on one channel
    // spread across all its banks.
    const Addr local = (line / n) * kCacheLineBytes;
    const Tick done = chan.access(local, !isRead(type), now);
    return done + nsToTicks(cfg_.baseNs);
}

double
LocalDramBackend::peakGBps() const
{
    return cfg_.timing.peakGBps() * static_cast<double>(cfg_.channels);
}

}  // namespace cxlsim::mem
