#include "tiering_backend.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlsim::mem {

TieringBackend::TieringBackend(std::string name, BackendPtr fast,
                               BackendPtr slow, const Config &cfg)
    : name_(std::move(name)), fast_(std::move(fast)),
      slow_(std::move(slow)), cfg_(cfg),
      fastPageBudget_(
          std::max<std::uint64_t>(1, cfg.fastCapacityBytes /
                                         cfg.pageBytes)),
      nextEpoch_(cfg.epoch)
{
    SIM_ASSERT(cfg_.pageBytes >= kCacheLineBytes,
               "page smaller than a line");
}

AccessResult
TieringBackend::accessEx(Addr addr, ReqType type, Tick now)
{
    note(type);
    if (now >= nextEpoch_) {
        runEpoch(now);
        nextEpoch_ = now + cfg_.epoch;
    }

    const std::uint64_t page = addr / cfg_.pageBytes;
    auto [it, inserted] = pages_.try_emplace(page);
    PageInfo &info = it->second;
    if (inserted && fastPagesUsed_ < fastPageBudget_) {
        // First touch lands on the fast tier while it has room
        // (the allocation behaviour of real tiering systems).
        info.fast = true;
        ++fastPagesUsed_;
    }

    MemoryBackend &target = info.fast ? *fast_ : *slow_;
    AccessResult r = target.accessEx(addr, type, now);
    if (!info.fast && failover_ &&
        r.status == ras::Status::kTimeout) {
        // Slow tier unresponsive: serve the line from the fast
        // tier (no residency change — the migration policy keeps
        // owning placement) and record the degradation.
        const AccessResult f = fast_->accessEx(addr, type, r.done);
        ++rstats_.failovers;
        rstats_.failoverExtraNs += ticksToNs(r.done - now);
        r = f;
    }
    const Tick done = r.done;

    ++info.accesses;
    // Latency cost the core actually suffers: demand stalls
    // directly, and prefetch fetch latency (the timeliness cost
    // that surfaces as delayed hits, Finding #4). RFOs and
    // writebacks are excluded — the store buffer hides them, so
    // their traffic inflates access counts without stalling the
    // core (exactly the distinction Spa draws).
    if (isRead(type) && type != ReqType::kRfo)
        info.stallNs += ticksToNs(done - now);
    if (info.fast)
        ++tstats_.fastAccesses;
    else
        ++tstats_.slowAccesses;
    return r;
}

void
TieringBackend::rasReport(std::vector<ras::RasReportEntry> *out) const
{
    if (rstats_.any())
        out->push_back({name_ + "/failover", rstats_});
    fast_->rasReport(out);
    slow_->rasReport(out);
}

void
TieringBackend::runEpoch(Tick now)
{
    ++tstats_.epochs;
    if (cfg_.policy == TieringPolicy::kStatic) {
        for (auto &[page, info] : pages_) {
            info.accesses = 0;
            info.stallNs = 0.0;
        }
        return;
    }

    // Rank pages by the policy metric.
    auto score = [&](const PageInfo &p) {
        return cfg_.policy == TieringPolicy::kAccessCount
                   ? static_cast<double>(p.accesses)
                   : p.stallNs;
    };
    std::vector<std::pair<double, std::uint64_t>> ranked;
    ranked.reserve(pages_.size());
    for (const auto &[page, info] : pages_)
        ranked.emplace_back(score(info), page);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;  // deterministic ties
              });

    // The top `fastPageBudget_` pages deserve the fast tier;
    // migrate the highest-ranked slow pages in, evicting the
    // lowest-ranked fast pages, up to the per-epoch migration cap.
    unsigned migrated = 0;
    std::size_t loser = ranked.size();
    const std::uint64_t linesPerPage =
        cfg_.pageBytes / kCacheLineBytes;
    for (std::size_t i = 0;
         i < ranked.size() && i < fastPageBudget_ &&
         migrated < cfg_.migrationsPerEpoch;
         ++i) {
        PageInfo &winner = pages_[ranked[i].second];
        if (winner.fast)
            continue;
        // Find the worst-ranked fast page to evict (if the fast
        // tier is full).
        if (fastPagesUsed_ >= fastPageBudget_) {
            while (loser > i + 1 &&
                   !pages_[ranked[loser - 1].second].fast)
                --loser;
            if (loser <= i + 1)
                break;
            --loser;
            PageInfo &victim = pages_[ranked[loser].second];
            victim.fast = false;
            --fastPagesUsed_;
            ++tstats_.demotions;
            // Demotion traffic: read fast, write slow (sampled at
            // 1/8 of the page to keep epoch cost realistic for
            // partially dirty pages).
            // Migration traffic models the page-copy engine's
            // bandwidth cost only; its completion status is owned
            // by the demand path that next touches the page, so
            // the status-less calls are intentional here.
            const Addr vBase = ranked[loser].second * cfg_.pageBytes;
            for (std::uint64_t l = 0; l < linesPerPage; l += 128) {
                fast_->access(vBase + l * kCacheLineBytes,  // lint:allow(ras-plain-call)
                              ReqType::kDemandLoad, now);
                slow_->access(vBase + l * kCacheLineBytes,  // lint:allow(ras-plain-call)
                              ReqType::kWriteback, now);
            }
        }
        winner.fast = true;
        ++fastPagesUsed_;
        ++migrated;
        ++tstats_.promotions;
        // Promotion traffic: read slow, write fast (status-less by
        // design, as for demotions above).
        const Addr wBase = ranked[i].second * cfg_.pageBytes;
        for (std::uint64_t l = 0; l < linesPerPage; l += 128) {
            slow_->access(wBase + l * kCacheLineBytes,  // lint:allow(ras-plain-call)
                          ReqType::kDemandLoad, now);
            fast_->access(wBase + l * kCacheLineBytes,  // lint:allow(ras-plain-call)
                          ReqType::kWriteback, now);
        }
    }

    // Exponential decay keeps history while favouring recency.
    for (auto &[page, info] : pages_) {
        info.accesses /= 2;
        info.stallNs *= 0.5;
    }
}

}  // namespace cxlsim::mem
