/**
 * @file
 * CXL expander backend: host root-port overhead + a CxlDevice.
 */

#ifndef CXLSIM_MEM_CXL_BACKEND_HH
#define CXLSIM_MEM_CXL_BACKEND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cxl/device.hh"
#include "mem/backend.hh"
#include "ras/fault_plan.hh"

namespace cxlsim::mem {

/** Host-side configuration for a directly attached CXL expander. */
struct CxlBackendConfig
{
    cxl::DeviceProfile profile;
    /** Switch hops between root port and device. */
    unsigned switchHops = 0;
    /** Uncore traversal from LLC miss to the CXL root port and the
     *  response path back, ns. */
    double hostOverheadNs = 40.0;
    std::uint64_t seed = 3;
    /** Fault-injection plan (default: everything disabled). */
    ras::FaultPlan faultPlan;
    /** This device's index in the plan's scheduled events. */
    unsigned deviceIndex = 0;
};

/**
 * A CXL type-3 memory expander as a memory backend.
 *
 * With a FaultPlan armed, the backend also models the host's
 * recovery path: a completion timer per request, exponential
 * backoff between re-issues, and a bounded retry budget. A request
 * that exhausts the budget surfaces kTimeout to the caller
 * (RegionRouter/TieringBackend fail over; the CPU records a
 * machine check on demand loads).
 */
class CxlBackend : public MemoryBackend
{
  public:
    explicit CxlBackend(const CxlBackendConfig &cfg);

    Tick
    access(Addr addr, ReqType type, Tick now) override
    {
        return accessEx(addr, type, now).done;
    }
    AccessResult accessEx(Addr addr, ReqType type, Tick now) override;
    void rasReport(std::vector<ras::RasReportEntry> *out)
        const override;
    const std::string &name() const override { return name_; }

    const cxl::CxlDevice &device() const { return device_; }
    cxl::CxlDevice &device() { return device_; }

  private:
    std::string name_;
    CxlBackendConfig cfg_;
    cxl::CxlDevice device_;
    /** Host-side recovery counters (retries, timeouts). */
    ras::RasStats hostStats_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_CXL_BACKEND_HH
