/**
 * @file
 * CXL expander backend: host root-port overhead + a CxlDevice.
 */

#ifndef CXLSIM_MEM_CXL_BACKEND_HH
#define CXLSIM_MEM_CXL_BACKEND_HH

#include <string>

#include "cxl/device.hh"
#include "mem/backend.hh"

namespace cxlsim::mem {

/** Host-side configuration for a directly attached CXL expander. */
struct CxlBackendConfig
{
    cxl::DeviceProfile profile;
    /** Switch hops between root port and device. */
    unsigned switchHops = 0;
    /** Uncore traversal from LLC miss to the CXL root port and the
     *  response path back, ns. */
    double hostOverheadNs = 40.0;
    std::uint64_t seed = 3;
};

/** A CXL type-3 memory expander as a memory backend. */
class CxlBackend : public MemoryBackend
{
  public:
    explicit CxlBackend(const CxlBackendConfig &cfg);

    Tick access(Addr addr, ReqType type, Tick now) override;
    const std::string &name() const override { return name_; }

    const cxl::CxlDevice &device() const { return device_; }
    cxl::CxlDevice &device() { return device_; }

  private:
    std::string name_;
    CxlBackendConfig cfg_;
    cxl::CxlDevice device_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_CXL_BACKEND_HH
