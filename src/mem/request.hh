/**
 * @file
 * Memory request taxonomy (paper Figure 2c).
 *
 * The CPU issues demand loads, prefetch reads (from the L1 and L2
 * hardware prefetchers), RFOs (read-for-ownership triggered by
 * stores), and writebacks on cache eviction. The distinction
 * matters for Spa: demand-load stalls attribute to sDRAM while
 * prefetch-induced waits attribute to cache levels.
 */

#ifndef CXLSIM_MEM_REQUEST_HH
#define CXLSIM_MEM_REQUEST_HH

#include <cstdint>
#include <string_view>

#include "sim/types.hh"

namespace cxlsim::mem {

/** Request classes reaching the memory controller. */
enum class ReqType : std::uint8_t {
    kDemandLoad,
    kL1Prefetch,
    kL2Prefetch,
    kRfo,
    kWriteback,
};

/** True if the request moves data from memory to the CPU. */
constexpr bool
isRead(ReqType t)
{
    return t != ReqType::kWriteback;
}

constexpr std::string_view
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::kDemandLoad:
        return "demand";
      case ReqType::kL1Prefetch:
        return "l1pf";
      case ReqType::kL2Prefetch:
        return "l2pf";
      case ReqType::kRfo:
        return "rfo";
      case ReqType::kWriteback:
        return "writeback";
    }
    return "?";
}

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_REQUEST_HH
