/**
 * @file
 * Cross-socket (NUMA) hop: a UPI-like duplex link in front of any
 * memory target. Composing it over a LocalDramBackend gives plain
 * NUMA memory; over a CxlBackend it gives the paper's CXL+NUMA
 * configuration, including the rate-coupled jitter responsible for
 * the surprising CXL+NUMA tail-latency slowdowns (§4, Fig 8c/d).
 */

#ifndef CXLSIM_MEM_NUMA_BACKEND_HH
#define CXLSIM_MEM_NUMA_BACKEND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "link/link.hh"
#include "mem/backend.hh"
#include "mem/jitter.hh"

namespace cxlsim::mem {

/** Parameters of one socket-to-socket hop. */
struct NumaHopConfig
{
    /** UPI link: per-direction effective GB/s and one-way ns. */
    link::LinkConfig upi{.gbpsPerDir = 97.0,
                         .propagationNs = 32.0,
                         .turnaroundNs = 0.0};
    /** Extra fixed latency beyond the link (remote CHA, snoops). */
    double extraNs = 8.0;
    /** Contention jitter (used for CXL+NUMA; zero for plain NUMA). */
    JitterParams jitter;
    std::uint64_t seed = 2;
};

/** A memory target accessed through one NUMA hop. */
class NumaBackend : public MemoryBackend
{
  public:
    NumaBackend(std::string name, BackendPtr target,
                const NumaHopConfig &cfg);

    Tick
    access(Addr addr, ReqType type, Tick now) override
    {
        return accessEx(addr, type, now).done;
    }
    AccessResult accessEx(Addr addr, ReqType type, Tick now) override;
    void
    rasReport(std::vector<ras::RasReportEntry> *out) const override
    {
        target_->rasReport(out);
    }
    const std::string &name() const override { return name_; }

    MemoryBackend &target() { return *target_; }

  private:
    std::string name_;
    BackendPtr target_;
    NumaHopConfig cfg_;
    link::DuplexLink upi_;
    JitterProcess jitter_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_NUMA_BACKEND_HH
