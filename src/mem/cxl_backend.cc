#include "cxl_backend.hh"

namespace cxlsim::mem {

CxlBackend::CxlBackend(const CxlBackendConfig &cfg)
    : name_(cfg.switchHops
                ? cfg.profile.name + "+Switch"
                : cfg.profile.name),
      cfg_(cfg), device_(cfg.profile, cfg.seed, cfg.switchHops)
{
}

Tick
CxlBackend::access(Addr addr, ReqType type, Tick now)
{
    note(type);
    const Tick issue = now + nsToTicks(cfg_.hostOverheadNs);
    if (isRead(type))
        return device_.read(addr, issue);
    return device_.write(addr, issue);
}

}  // namespace cxlsim::mem
