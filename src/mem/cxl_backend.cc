#include "cxl_backend.hh"

#include <algorithm>

namespace cxlsim::mem {

CxlBackend::CxlBackend(const CxlBackendConfig &cfg)
    : name_(cfg.switchHops
                ? cfg.profile.name + "+Switch"
                : cfg.profile.name),
      cfg_(cfg), device_(cfg.profile, cfg.seed, cfg.switchHops)
{
    if (cfg_.faultPlan.enabled()) {
        cfg_.faultPlan.validate();
        device_.enableRas(cfg_.faultPlan, cfg_.deviceIndex,
                          cfg_.seed ^ 0xd1b54a32d192ed03ULL);
    }
}

AccessResult
CxlBackend::accessEx(Addr addr, ReqType type, Tick now)
{
    note(type);
    const Tick overhead = nsToTicks(cfg_.hostOverheadNs);
    const auto &rp = cfg_.faultPlan.hostRetry;

    Tick issue = now + overhead;
    double backoffNs = rp.backoffNs;
    for (unsigned attempt = 0;; ++attempt) {
        const cxl::ServiceOutcome so =
            isRead(type) ? device_.readEx(addr, issue)
                         : device_.writeEx(addr, issue);
        if (so.status == ras::Status::kOk ||
            so.status == ras::Status::kPoisoned)
            return {so.done, so.status};

        // No (usable) completion arrived: the host's completion
        // timer expires, then it backs off and re-issues — or
        // gives up once the retry budget is spent.
        const Tick expired =
            std::max(so.done, issue + nsToTicks(rp.timeoutNs));
        if (attempt >= rp.maxRetries) {
            ++hostStats_.hostTimeouts;
            return {expired, ras::Status::kTimeout};
        }
        ++hostStats_.hostRetries;
        issue = expired + nsToTicks(backoffNs);
        backoffNs *= rp.backoffMult;
    }
}

void
CxlBackend::rasReport(std::vector<ras::RasReportEntry> *out) const
{
    ras::RasStats s = hostStats_;
    device_.addRasTo(&s);
    if (s.any())
        out->push_back({name_, s});
}

}  // namespace cxlsim::mem
