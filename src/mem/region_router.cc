#include "region_router.hh"

namespace cxlsim::mem {

RegionRouter::RegionRouter(std::string name, BackendPtr fast,
                           BackendPtr slow)
    : name_(std::move(name)), fast_(std::move(fast)),
      slow_(std::move(slow))
{
}

void
RegionRouter::pinRegion(Addr lo, Addr hi)
{
    regions_.push_back({lo, hi});
}

bool
RegionRouter::pinned(Addr a) const
{
    for (const auto &r : regions_)
        if (a >= r.lo && a < r.hi)
            return true;
    return false;
}

Tick
RegionRouter::access(Addr addr, ReqType type, Tick now)
{
    note(type);
    ++total_;
    if (pinned(addr)) {
        ++fastHits_;
        return fast_->access(addr, type, now);
    }
    return slow_->access(addr, type, now);
}

double
RegionRouter::fastFraction() const
{
    return total_ ? static_cast<double>(fastHits_) /
                        static_cast<double>(total_)
                  : 0.0;
}

}  // namespace cxlsim::mem
