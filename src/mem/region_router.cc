#include "region_router.hh"

namespace cxlsim::mem {

RegionRouter::RegionRouter(std::string name, BackendPtr fast,
                           BackendPtr slow)
    : name_(std::move(name)), fast_(std::move(fast)),
      slow_(std::move(slow))
{
}

void
RegionRouter::pinRegion(Addr lo, Addr hi)
{
    regions_.push_back({lo, hi});
}

bool
RegionRouter::pinned(Addr a) const
{
    for (const auto &r : regions_)
        if (a >= r.lo && a < r.hi)
            return true;
    return false;
}

AccessResult
RegionRouter::accessEx(Addr addr, ReqType type, Tick now)
{
    note(type);
    ++total_;
    if (pinned(addr)) {
        ++fastHits_;
        return fast_->accessEx(addr, type, now);
    }
    AccessResult r = slow_->accessEx(addr, type, now);
    if (failover_ && r.status == ras::Status::kTimeout) {
        // The slow device gave no answer within the host's retry
        // budget: serve the line from the fallback instead. The
        // request still paid the full wait on the dead device —
        // that is the degradation the stats account for.
        const AccessResult f = fast_->accessEx(addr, type, r.done);
        ++rstats_.failovers;
        rstats_.failoverExtraNs += ticksToNs(r.done - now);
        return f;
    }
    return r;
}

void
RegionRouter::rasReport(std::vector<ras::RasReportEntry> *out) const
{
    if (rstats_.any())
        out->push_back({name_ + "/failover", rstats_});
    fast_->rasReport(out);
    slow_->rasReport(out);
}

double
RegionRouter::fastFraction() const
{
    return total_ ? static_cast<double>(fastHits_) /
                        static_cast<double>(total_)
                  : 0.0;
}

}  // namespace cxlsim::mem
