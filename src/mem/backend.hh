/**
 * @file
 * MemoryBackend: the interface between the CPU's last-level cache
 * and whatever provides memory — socket-local DRAM, a remote NUMA
 * node, or a CXL expander (possibly behind switches or a NUMA hop).
 *
 * The paper's experiments bind entire workloads to one backend
 * ("worst-case CXL setup, excluding tiering or interleaving",
 * §3.1); the RegionRouter below additionally supports the §5.7
 * tuning use case, where specific hot objects are pinned back to
 * local DRAM.
 */

#ifndef CXLSIM_MEM_BACKEND_HH
#define CXLSIM_MEM_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "ras/ras.hh"
#include "sim/types.hh"

namespace cxlsim::mem {

/** Completion tick + RAS status of one backend access. The struct
 *  is [[nodiscard]]: dropping it silently swallows poison/timeout
 *  (melody-lint's ras-ignored-status rule rejects the (void) escape
 *  hatch too). */
struct [[nodiscard]] AccessResult
{
    Tick done;
    ras::Status status = ras::Status::kOk;
};

/** Byte/request counters every backend keeps. */
struct BackendStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    std::uint64_t
    requests() const
    {
        return reads + writes;
    }

    double
    totalGB() const
    {
        return static_cast<double>(requests()) * 64.0 / 1e9;
    }
};

/** Abstract memory target for 64B line requests. */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * Issue a 64B request and return its completion tick.
     *
     * @param addr Line-aligned physical address.
     * @param type Request class (affects read/write direction).
     * @param now  Issue tick (request leaves the LLC/uncore).
     */
    virtual Tick access(Addr addr, ReqType type, Tick now) = 0;

    /**
     * As access(), plus the RAS completion status. Fault-free
     * backends (local DRAM) use this default — always kOk;
     * RAS-capable backends override BOTH access() and accessEx()
     * so either entry point observes faults.
     */
    virtual AccessResult
    accessEx(Addr addr, ReqType type, Tick now)
    {
        return {access(addr, type, now), ras::Status::kOk};
    }

    /**
     * Append this backend's (and its children's) RAS counters to
     * @p out, one entry per fault-capable node. Fault-free
     * backends contribute nothing.
     */
    virtual void
    rasReport(std::vector<ras::RasReportEntry> *out) const
    {
        (void)out;
    }

    /** Human-readable setup name ("Local", "CXL-A", ...). */
    virtual const std::string &name() const = 0;

    const BackendStats &stats() const { return stats_; }
    void resetStats() { stats_ = BackendStats{}; }

  protected:
    void
    note(ReqType t)
    {
        if (isRead(t))
            ++stats_.reads;
        else
            ++stats_.writes;
    }

    BackendStats stats_;
};

using BackendPtr = std::unique_ptr<MemoryBackend>;

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_BACKEND_HH
