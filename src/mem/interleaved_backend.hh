/**
 * @file
 * Hardware interleaving across multiple identical backends — the
 * "two CXL-D devices, effectively doubling bandwidth to 104 GB/s"
 * experiment of Figure 8f.
 */

#ifndef CXLSIM_MEM_INTERLEAVED_BACKEND_HH
#define CXLSIM_MEM_INTERLEAVED_BACKEND_HH

#include <cstddef>
#include <string>
#include <vector>

#include "mem/backend.hh"

namespace cxlsim::mem {

/** Line-granularity round-robin interleaving over N backends. */
class InterleavedBackend : public MemoryBackend
{
  public:
    InterleavedBackend(std::string name,
                       std::vector<BackendPtr> targets);

    Tick
    access(Addr addr, ReqType type, Tick now) override
    {
        return accessEx(addr, type, now).done;
    }
    AccessResult accessEx(Addr addr, ReqType type, Tick now) override;
    void
    rasReport(std::vector<ras::RasReportEntry> *out) const override
    {
        for (const auto &t : targets_)
            t->rasReport(out);
    }
    const std::string &name() const override { return name_; }

    std::size_t ways() const { return targets_.size(); }

  private:
    std::string name_;
    std::vector<BackendPtr> targets_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_INTERLEAVED_BACKEND_HH
