/**
 * @file
 * Socket-local DRAM backend: integrated memory controller (iMC)
 * with N DDR channels behind the CPU uncore.
 */

#ifndef CXLSIM_MEM_LOCAL_BACKEND_HH
#define CXLSIM_MEM_LOCAL_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "mem/backend.hh"

namespace cxlsim::mem {

/** Configuration of a socket's local memory. */
struct LocalDramConfig
{
    std::string name = "Local";
    /** Uncore + iMC pipeline latency (mesh traversal, home agent,
     *  queue, response path), ns. */
    double baseNs = 68.0;
    /** Number of DDR channels on the socket. */
    unsigned channels = 8;
    dram::DramTiming timing;
    /** iMCs hide nearly all refreshes (mature controllers). */
    double refreshHiding = 0.995;
    std::uint64_t seed = 1;
};

/** Socket-local DRAM: the paper's performance baseline. */
class LocalDramBackend : public MemoryBackend
{
  public:
    explicit LocalDramBackend(const LocalDramConfig &cfg);

    Tick access(Addr addr, ReqType type, Tick now) override;
    const std::string &name() const override { return cfg_.name; }

    /** Theoretical peak bandwidth across channels, GB/s. */
    double peakGBps() const;

  private:
    LocalDramConfig cfg_;
    std::vector<std::unique_ptr<dram::Channel>> channels_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_LOCAL_BACKEND_HH
