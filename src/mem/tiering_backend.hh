/**
 * @file
 * Page-granular two-tier memory with online migration — the
 * tiering-system context of §5.7 ("smarter tiering policy designs"
 * and the Pond/Memtis/TPP line of work the paper cites).
 *
 * Pages live on the fast tier (local DRAM, capacity-limited) or
 * the slow tier (CXL). Each epoch the policy re-ranks pages and
 * migrates the winners into the fast tier, paying real migration
 * bandwidth on both tiers. Two ranking metrics are implemented:
 *
 *   kAccessCount - classic hotness (what LLC-miss-count-style
 *                  policies approximate), and
 *   kStallCost   - Spa's argument: rank by the *latency actually
 *                  suffered* on the page, so pages whose accesses
 *                  are prefetched or overlapped rank below pages
 *                  that stall the core.
 *
 * A page full of streamed (prefetch-friendly) lines has a huge
 * access count but costs little; a pointer-chased page costs its
 * full latency per access. Stall-cost ranking tells them apart.
 */

#ifndef CXLSIM_MEM_TIERING_BACKEND_HH
#define CXLSIM_MEM_TIERING_BACKEND_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/backend.hh"

namespace cxlsim::mem {

/** Page-ranking metric for promotion decisions. */
enum class TieringPolicy : std::uint8_t {
    kStatic,       ///< no migration (first-touch stays put)
    kAccessCount,  ///< promote most-accessed pages
    kStallCost,    ///< promote pages with highest latency cost
};

/** Tiering statistics. */
struct TieringStats
{
    std::uint64_t epochs = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t fastAccesses = 0;
    std::uint64_t slowAccesses = 0;

    double
    fastFraction() const
    {
        const auto n = fastAccesses + slowAccesses;
        return n ? static_cast<double>(fastAccesses) /
                       static_cast<double>(n)
                 : 0.0;
    }
};

/** Two-tier backend with epoch-based page migration. */
class TieringBackend : public MemoryBackend
{
  public:
    struct Config
    {
        /** Page granularity. */
        std::uint64_t pageBytes = 512ULL << 10;
        /** Fast-tier capacity in bytes. */
        std::uint64_t fastCapacityBytes = 256ULL << 20;
        /** Epoch length. */
        Tick epoch = 50 * kTicksPerUs;
        TieringPolicy policy = TieringPolicy::kStallCost;
        /** Pages migrated per epoch at most (bounds migration
         *  bandwidth to a few GB/s, as real tiering systems do). */
        unsigned migrationsPerEpoch = 8;
    };

    TieringBackend(std::string name, BackendPtr fast,
                   BackendPtr slow, const Config &cfg);

    /** Serve timed-out slow-tier requests from the fast tier. */
    void enableFailover(bool on = true) { failover_ = on; }

    Tick
    access(Addr addr, ReqType type, Tick now) override
    {
        return accessEx(addr, type, now).done;
    }
    AccessResult accessEx(Addr addr, ReqType type, Tick now) override;
    void rasReport(std::vector<ras::RasReportEntry> *out)
        const override;
    const std::string &name() const override { return name_; }

    const TieringStats &tieringStats() const { return tstats_; }

  private:
    struct PageInfo
    {
        bool fast = false;
        std::uint64_t accesses = 0;
        double stallNs = 0.0;
    };

    /** Run the migration policy at an epoch boundary. */
    void runEpoch(Tick now);

    std::string name_;
    BackendPtr fast_;
    BackendPtr slow_;
    Config cfg_;

    std::unordered_map<std::uint64_t, PageInfo> pages_;
    std::uint64_t fastPagesUsed_ = 0;
    std::uint64_t fastPageBudget_;
    Tick nextEpoch_;
    TieringStats tstats_;
    bool failover_ = false;
    ras::RasStats rstats_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_TIERING_BACKEND_HH
