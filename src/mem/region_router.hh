/**
 * @file
 * Address-range routing between two memory backends.
 *
 * Implements the §5.7 "performance tuning" use case: after Spa
 * identifies the objects responsible for slowdown bursts, those
 * address ranges are pinned to local DRAM while the rest of the
 * heap stays on CXL — reducing 605.mcf's slowdown from 13% to 2%
 * in the paper.
 */

#ifndef CXLSIM_MEM_REGION_ROUTER_HH
#define CXLSIM_MEM_REGION_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/backend.hh"

namespace cxlsim::mem {

/**
 * Routes pinned address ranges to a "fast" backend, rest to "slow".
 *
 * With failover enabled, a slow-backend request that times out
 * (device Offline/TimedOut, host retry budget exhausted) is
 * re-issued on the fast backend instead of surfacing kTimeout —
 * the host-side graceful-degradation path. The wasted wait on the
 * dead device is recorded as failover slowdown.
 */
class RegionRouter : public MemoryBackend
{
  public:
    RegionRouter(std::string name, BackendPtr fast, BackendPtr slow);

    /** Pin [lo, hi) to the fast backend. */
    void pinRegion(Addr lo, Addr hi);

    /** Re-route timed-out slow-backend requests to the fast one. */
    void enableFailover(bool on = true) { failover_ = on; }

    Tick
    access(Addr addr, ReqType type, Tick now) override
    {
        return accessEx(addr, type, now).done;
    }
    AccessResult accessEx(Addr addr, ReqType type, Tick now) override;
    void rasReport(std::vector<ras::RasReportEntry> *out)
        const override;
    const std::string &name() const override { return name_; }

    /** Fraction of requests that were served by the fast backend. */
    double fastFraction() const;

  private:
    struct Region
    {
        Addr lo;
        Addr hi;
    };

    bool pinned(Addr a) const;

    std::string name_;
    BackendPtr fast_;
    BackendPtr slow_;
    std::vector<Region> regions_;
    std::uint64_t fastHits_ = 0;
    std::uint64_t total_ = 0;
    bool failover_ = false;
    ras::RasStats rstats_;
};

}  // namespace cxlsim::mem

#endif  // CXLSIM_MEM_REGION_ROUTER_HH
