#include "numa_backend.hh"

namespace cxlsim::mem {

namespace {
constexpr unsigned kRequestBytes = 16;
constexpr unsigned kDataBytes = 64;
constexpr unsigned kAckBytes = 8;
}  // namespace

NumaBackend::NumaBackend(std::string name, BackendPtr target,
                         const NumaHopConfig &cfg)
    : name_(std::move(name)), target_(std::move(target)), cfg_(cfg),
      upi_(cfg.upi), jitter_(cfg.jitter, cfg.seed ^ 0x9d2c5680ULL)
{
}

AccessResult
NumaBackend::accessEx(Addr addr, ReqType type, Tick now)
{
    note(type);
    const bool read = isRead(type);

    Tick t = now + jitter_.sample(now);
    // Outbound: a small request for reads, the full line for writes.
    t = upi_.send(read ? kRequestBytes : kDataBytes,
                  link::Dir::kToDevice, t);
    const AccessResult r = target_->accessEx(addr, type, t);
    if (r.status == ras::Status::kTimeout) {
        // Nothing comes back over the hop — the timeout already
        // includes the host's full retry wait.
        return r;
    }
    // Inbound: data for reads, an ack for writes.
    t = upi_.send(read ? kDataBytes : kAckBytes,
                  link::Dir::kFromDevice, r.done);
    return {t + nsToTicks(cfg_.extraNs), r.status};
}

}  // namespace cxlsim::mem
