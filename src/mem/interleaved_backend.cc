#include "interleaved_backend.hh"

#include "sim/logging.hh"

namespace cxlsim::mem {

InterleavedBackend::InterleavedBackend(std::string name,
                                       std::vector<BackendPtr> targets)
    : name_(std::move(name)), targets_(std::move(targets))
{
    SIM_ASSERT(!targets_.empty(), "interleaving needs >= 1 target");
}

AccessResult
InterleavedBackend::accessEx(Addr addr, ReqType type, Tick now)
{
    note(type);
    const Addr line = addr / kCacheLineBytes;
    const std::size_t n = targets_.size();
    // Device-local line address: without the rescale, each device
    // would only ever see lines congruent to one residue and alias
    // onto a single one of its internal DDR channels.
    const Addr local = (line / n) * kCacheLineBytes;
    return targets_[line % n]->accessEx(local, type, now);
}

}  // namespace cxlsim::mem
