#include "predictor.hh"

#include <algorithm>

namespace cxlsim::spa {

SlowdownModel
fitModel(const cpu::RunResult &local, const cpu::RunResult &reference,
         const DeviceSheet &reference_sheet, double local_latency_ns)
{
    SlowdownModel m;
    m.localLatencyNs = local_latency_ns;
    m.refDeltaNs =
        std::max(1.0, reference_sheet.latencyNs - local_latency_ns);
    m.demandGBps = local.backendGBps();

    const Breakdown b = computeBreakdown(local, reference);

    // Separate the bandwidth-driven part of the reference slowdown
    // (present only if local demand exceeded the reference peak)
    // from the latency-driven part, then normalize per ns.
    double bwPart = 0.0;
    if (m.demandGBps > reference_sheet.peakGBps)
        bwPart = (m.demandGBps / reference_sheet.peakGBps - 1.0) *
                 100.0;
    const double latPart =
        std::max(0.0, b.dram + b.store - bwPart * 0.7);
    const double cachePart = std::max(0.0, b.l1 + b.l2 + b.l3);

    m.latSensitivity = latPart / m.refDeltaNs;
    m.cacheSensitivity = cachePart / m.refDeltaNs;
    m.storeSensitivity = std::max(0.0, b.store) / m.refDeltaNs;
    return m;
}

double
SlowdownModel::predict(const DeviceSheet &target) const
{
    const double delta =
        std::max(0.0, target.latencyNs - localLatencyNs);
    double s = (latSensitivity + cacheSensitivity) * delta;
    // Bandwidth term: execution time scales with the demand-to-
    // capacity ratio once the device saturates.
    if (demandGBps > target.peakGBps && target.peakGBps > 0.0)
        s += (demandGBps / target.peakGBps - 1.0) * 100.0;
    return s;
}

}  // namespace cxlsim::spa
