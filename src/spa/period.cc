#include "period.hh"

#include <algorithm>
#include <cmath>

namespace cxlsim::spa {

namespace {

/** Linear interpolation of every counter between two snapshots. */
cpu::CounterSet
lerp(const cpu::CounterSet &a, const cpu::CounterSet &b, double f)
{
    auto mixd = [&](double x, double y) { return x + (y - x) * f; };
    auto mixu = [&](std::uint64_t x, std::uint64_t y) {
        return static_cast<std::uint64_t>(
            static_cast<double>(x) +
            (static_cast<double>(y) - static_cast<double>(x)) * f);
    };
    cpu::CounterSet r;
    r.cycles = mixd(a.cycles, b.cycles);
    r.instructions = mixd(a.instructions, b.instructions);
    r.p1 = mixd(a.p1, b.p1);
    r.p2 = mixd(a.p2, b.p2);
    r.p3 = mixd(a.p3, b.p3);
    r.p4 = mixd(a.p4, b.p4);
    r.p5 = mixd(a.p5, b.p5);
    r.p6 = mixd(a.p6, b.p6);
    r.p7 = mixd(a.p7, b.p7);
    r.p8 = mixd(a.p8, b.p8);
    r.p9 = mixd(a.p9, b.p9);
    r.l1pfL3Miss = mixu(a.l1pfL3Miss, b.l1pfL3Miss);
    r.l1pfL3Hit = mixu(a.l1pfL3Hit, b.l1pfL3Hit);
    r.l2pfL3Miss = mixu(a.l2pfL3Miss, b.l2pfL3Miss);
    r.l2pfL3Hit = mixu(a.l2pfL3Hit, b.l2pfL3Hit);
    r.demandL3Miss = mixu(a.demandL3Miss, b.demandL3Miss);
    r.l2pfIssued = mixu(a.l2pfIssued, b.l2pfIssued);
    r.l1pfIssued = mixu(a.l1pfIssued, b.l1pfIssued);
    return r;
}

}  // namespace

cpu::CounterSet
counterAtInstructions(const std::vector<cpu::CounterSample> &samples,
                      double instr)
{
    if (samples.empty())
        return {};
    if (instr <= samples.front().counters.instructions)
        return lerp({}, samples.front().counters,
                    instr / std::max(
                                1.0,
                                samples.front().counters.instructions));
    for (std::size_t i = 1; i < samples.size(); ++i) {
        const double lo = samples[i - 1].counters.instructions;
        const double hi = samples[i].counters.instructions;
        if (instr <= hi) {
            const double f =
                hi > lo ? (instr - lo) / (hi - lo) : 0.0;
            return lerp(samples[i - 1].counters,
                        samples[i].counters, f);
        }
    }
    return samples.back().counters;
}

std::vector<PeriodBreakdown>
periodAnalysis(const std::vector<cpu::CounterSample> &base_samples,
               const std::vector<cpu::CounterSample> &test_samples,
               double instr_per_period)
{
    std::vector<PeriodBreakdown> out;
    if (base_samples.empty() || test_samples.empty() ||
        instr_per_period <= 0.0)
        return out;

    const double totalInstr =
        std::min(base_samples.back().counters.instructions,
                 test_samples.back().counters.instructions);
    const auto periods = static_cast<std::uint64_t>(
        totalInstr / instr_per_period);

    cpu::CounterSet prevBase{};
    cpu::CounterSet prevTest{};
    for (std::uint64_t k = 1; k <= periods; ++k) {
        const double boundary =
            static_cast<double>(k) * instr_per_period;
        const cpu::CounterSet curBase =
            counterAtInstructions(base_samples, boundary);
        const cpu::CounterSet curTest =
            counterAtInstructions(test_samples, boundary);

        // Per-period counters = difference of boundary snapshots.
        const cpu::CounterSet baseP = curBase - prevBase;
        const cpu::CounterSet testP = curTest - prevTest;
        prevBase = curBase;
        prevTest = curTest;

        PeriodBreakdown pb;
        pb.periodIndex = k - 1;
        pb.instructions = boundary;
        // Wall time within the period, in ticks-equivalent cycles:
        // use the cycle counters directly (per-period).
        pb.breakdown = computeBreakdown(
            baseP, static_cast<Tick>(std::max(1.0, baseP.cycles)),
            testP, static_cast<Tick>(std::max(1.0, testP.cycles)));
        out.push_back(pb);
    }
    return out;
}

}  // namespace cxlsim::spa
