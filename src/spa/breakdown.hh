/**
 * @file
 * Spa: stall-based CXL performance analysis (paper §5).
 *
 * Spa's key insight: the *differential* CPU stalls between a CXL
 * run and a local-DRAM run of the same workload accurately
 * decompose the slowdown into sources (Equations 1-8):
 *
 *   S        = Δc / c  ≈  Δs/c  ≈  Δs_Backend/c  ≈  Δs_Memory/c
 *   Δs_Memory = ΔP1 + ΔP2
 *   S ≈ S_store + S_L1 + S_L2 + S_L3 + S_DRAM   (Equation 8)
 *
 * with sStore=P2, sL1=P1-P3, sL2=P3-P4, sL3=P4-P5, sDRAM=P5.
 * "Other" is whatever the 9 counters fail to capture; Figure 11
 * shows it is small (<5% for >95% of workloads).
 */

#ifndef CXLSIM_SPA_BREAKDOWN_HH
#define CXLSIM_SPA_BREAKDOWN_HH

#include "cpu/multicore.hh"

namespace cxlsim::spa {

/** Slowdown decomposition of one (baseline, test) run pair.
 *  All values are percentages of baseline cycles. */
struct Breakdown
{
    /** Measured application-level slowdown (wall time). */
    double actual = 0.0;

    /** Component slowdowns (Equation 8). */
    double store = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    double dram = 0.0;
    double core = 0.0;
    /** actual - (store+l1+l2+l3+dram+core). */
    double other = 0.0;

    /** Estimators of Figure 11: Δs/c, Δs_Backend/c, Δs_Memory/c. */
    double estTotalStalls = 0.0;
    double estBackend = 0.0;
    double estMemory = 0.0;

    double
    componentsSum() const
    {
        return store + l1 + l2 + l3 + dram;
    }
};

/** Compute the Spa breakdown from two runs of the same workload. */
Breakdown computeBreakdown(const cpu::RunResult &baseline,
                           const cpu::RunResult &test);

/** As above but from raw counter sets + wall times. */
Breakdown computeBreakdown(const cpu::CounterSet &base_c, Tick base_wall,
                           const cpu::CounterSet &test_c, Tick test_wall);

}  // namespace cxlsim::spa

#endif  // CXLSIM_SPA_BREAKDOWN_HH
