/**
 * @file
 * Spa-guided memory placement tuning (paper §5.7).
 *
 * The paper's workflow: period-based Spa flags bursty high-
 * slowdown phases; binary instrumentation maps them to two
 * performance-critical 2GB objects; relocating those objects to
 * local DRAM cuts 605.mcf's slowdown from 13% to 2%. Here the
 * "objects" are the hot head of the workload's (Zipf-skewed)
 * working set, pinned to local DRAM through a RegionRouter while
 * the rest stays on CXL.
 */

#ifndef CXLSIM_SPA_ADVISOR_HH
#define CXLSIM_SPA_ADVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "spa/period.hh"
#include "workloads/profile.hh"

namespace cxlsim::spa {

/** Outcome of a placement-tuning experiment. */
struct TuningResult
{
    /** Slowdown with the whole working set on CXL. */
    double slowdownAllCxl = 0.0;
    /** Slowdown with the hot region pinned to local DRAM. */
    double slowdownPinned = 0.0;
    /** Fraction of the working set pinned. */
    double pinnedFraction = 0.0;
    /** Fraction of memory requests served by local DRAM. */
    double fastRequestFraction = 0.0;
};

/**
 * Pick a pinned fraction from period analysis: enough to cover the
 * bursty phases (any period above @p burst_threshold_pct), scaled
 * by how much of the slowdown they carry. Returns 0 when no
 * period is bursty.
 */
double suggestPinnedFraction(
    const std::vector<PeriodBreakdown> &periods,
    double burst_threshold_pct);

/**
 * Run @p w (i) all-local, (ii) all-CXL, (iii) hot fraction pinned
 * local, and report the §5.7-style before/after slowdowns.
 *
 * @param server Server the backends attach to (e.g. "EMR2S").
 * @param memory CXL setup name (e.g. "CXL-A").
 */
TuningResult tunePlacement(const workloads::WorkloadProfile &w,
                           const std::string &server,
                           const std::string &memory,
                           double pinned_fraction,
                           std::uint64_t seed = 99);

}  // namespace cxlsim::spa

#endif  // CXLSIM_SPA_ADVISOR_HH
