#include "breakdown.hh"

namespace cxlsim::spa {

Breakdown
computeBreakdown(const cpu::CounterSet &base_c, Tick base_wall,
                 const cpu::CounterSet &test_c, Tick test_wall)
{
    Breakdown b;
    const double c = base_c.cycles;
    if (c <= 0.0)
        return b;
    const cpu::CounterSet d = test_c - base_c;

    b.actual = base_wall
                   ? (static_cast<double>(test_wall) /
                          static_cast<double>(base_wall) -
                      1.0) * 100.0
                   : 0.0;

    b.store = d.sStore() / c * 100.0;
    b.l1 = d.sL1() / c * 100.0;
    b.l2 = d.sL2() / c * 100.0;
    b.l3 = d.sL3() / c * 100.0;
    b.dram = d.sDram() / c * 100.0;
    b.core = d.sCore() / c * 100.0;
    b.other = b.actual - (b.componentsSum() + b.core);

    b.estTotalStalls = d.p6 / c * 100.0;
    b.estBackend = d.sBackend() / c * 100.0;
    b.estMemory = d.sMemory() / c * 100.0;
    return b;
}

Breakdown
computeBreakdown(const cpu::RunResult &baseline,
                 const cpu::RunResult &test)
{
    return computeBreakdown(baseline.counters, baseline.wallTicks,
                            test.counters, test.wallTicks);
}

}  // namespace cxlsim::spa
