/**
 * @file
 * Prefetcher-efficiency analysis under CXL (paper §5.4, Fig 12-13).
 *
 * Under CXL's longer latency the L2 streamer's in-flight budget
 * pins its frontier closer to the demand stream, so fewer stream
 * lines are fetched by L2 prefetches (L2PF-L3-miss decreases) and
 * the L1 prefetcher / demand stream picks them up instead
 * (L1PF-L3-miss increases by nearly the same amount — the y = x
 * relationship of Figure 12a, Pearson 0.99). The lost coverage
 * appears as cache slowdown (delayed hits on pending lines).
 */

#ifndef CXLSIM_SPA_PREFETCH_ANALYSIS_HH
#define CXLSIM_SPA_PREFETCH_ANALYSIS_HH

#include "cpu/multicore.hh"

namespace cxlsim::spa {

/** Prefetch-behaviour deltas between a local and a CXL run. */
struct PrefetchDelta
{
    /** Increase in L1 prefetches that fetch from memory. */
    double l1pfL3MissIncrease = 0.0;
    /** Decrease in L2 prefetches that fetch from memory. */
    double l2pfL3MissDecrease = 0.0;
    /** Change in L2PF LLC hits (the paper observes ~none). */
    double l2pfL3HitChange = 0.0;

    /** L2 streamer coverage = share of memory fetches it issued. */
    double coverageBase = 0.0;
    double coverageTest = 0.0;

    /** Coverage drop in percentage points. */
    double
    coverageDropPct() const
    {
        return (coverageBase - coverageTest) * 100.0;
    }
};

/** Compute prefetch deltas from two runs of the same workload. */
PrefetchDelta prefetchDelta(const cpu::RunResult &baseline,
                            const cpu::RunResult &test);

}  // namespace cxlsim::spa

#endif  // CXLSIM_SPA_PREFETCH_ANALYSIS_HH
