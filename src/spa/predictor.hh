/**
 * @file
 * Spa-based cross-device slowdown prediction (§5.7, "Performance
 * prediction and metric", and the companion technical report).
 *
 * Idea: a workload's slowdown decomposes into stall sources whose
 * sensitivities to memory latency and bandwidth differ:
 *
 *   - sDRAM scales with the demand-visible latency delta,
 *   - cache components scale with the prefetch-exposed share of
 *     the latency delta,
 *   - the bandwidth-bound part scales with achieved-bandwidth
 *     ratios once demand exceeds a device's peak.
 *
 * Having profiled a workload on local DRAM and ONE reference CXL
 * device, the predictor estimates its slowdown on a different
 * device from that device's (latency, bandwidth) datasheet alone —
 * no run needed. This is what makes Spa useful for capacity
 * planning across heterogeneous CXL fleets.
 */

#ifndef CXLSIM_SPA_PREDICTOR_HH
#define CXLSIM_SPA_PREDICTOR_HH

#include <string>

#include "cpu/multicore.hh"
#include "spa/breakdown.hh"

namespace cxlsim::spa {

/** Datasheet view of a memory device. */
struct DeviceSheet
{
    std::string name;
    /** Idle read latency, ns. */
    double latencyNs;
    /** Peak sustainable bandwidth, GB/s. */
    double peakGBps;
};

/** The per-workload model fitted from local + one reference run. */
struct SlowdownModel
{
    /** Latency sensitivity: slowdown %-points per ns of extra
     *  demand-visible latency. */
    double latSensitivity = 0.0;
    /** Prefetch-exposed sensitivity (cache components). */
    double cacheSensitivity = 0.0;
    /** Local achieved bandwidth (demand), GB/s. */
    double demandGBps = 0.0;
    /** Store-side sensitivity. */
    double storeSensitivity = 0.0;
    /** Reference latency delta the model was fitted at, ns. */
    double refDeltaNs = 0.0;
    double localLatencyNs = 0.0;

    /** Predict the slowdown (%) on @p target. */
    double predict(const DeviceSheet &target) const;
};

/**
 * Fit a model from the local run, the reference-device run, and
 * the reference device's datasheet.
 */
SlowdownModel fitModel(const cpu::RunResult &local,
                       const cpu::RunResult &reference,
                       const DeviceSheet &reference_sheet,
                       double local_latency_ns);

}  // namespace cxlsim::spa

#endif  // CXLSIM_SPA_PREDICTOR_HH
