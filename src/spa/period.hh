/**
 * @file
 * Period-based slowdown analysis (paper §5.6).
 *
 * Challenge: the same instructions take different wall time on
 * local DRAM and CXL, so time-based samples (every 1ms) from the
 * two runs cannot be compared directly. Solution (the paper's):
 * since retired instructions are invariant across backends,
 * re-align both sampled counter series onto instruction-count
 * boundaries (e.g. every 1B instructions) by proportional
 * interpolation within each sampling interval, then difference
 * the aligned series per period.
 */

#ifndef CXLSIM_SPA_PERIOD_HH
#define CXLSIM_SPA_PERIOD_HH

#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "spa/breakdown.hh"

namespace cxlsim::spa {

/** One instruction-period's slowdown decomposition. */
struct PeriodBreakdown
{
    std::uint64_t periodIndex = 0;
    /** Instructions at the period's end boundary. */
    double instructions = 0.0;
    Breakdown breakdown;
};

/**
 * Interpolate the counter state at an exact instruction count from
 * a time-sampled series (assumes smooth progression within each
 * sampling interval, as the paper does).
 */
cpu::CounterSet counterAtInstructions(
    const std::vector<cpu::CounterSample> &samples, double instr);

/**
 * Align two sampled runs on instruction boundaries and break down
 * the slowdown per period.
 *
 * @param base_samples  Samples from the local-DRAM run.
 * @param test_samples  Samples from the CXL run.
 * @param instr_per_period Period length in instructions.
 */
std::vector<PeriodBreakdown> periodAnalysis(
    const std::vector<cpu::CounterSample> &base_samples,
    const std::vector<cpu::CounterSample> &test_samples,
    double instr_per_period);

}  // namespace cxlsim::spa

#endif  // CXLSIM_SPA_PERIOD_HH
