#include "prefetch_analysis.hh"

namespace cxlsim::spa {

namespace {

double
coverage(const cpu::CounterSet &c)
{
    const double fetches =
        static_cast<double>(c.l2pfL3Miss) +
        static_cast<double>(c.l1pfL3Miss) +
        static_cast<double>(c.demandL3Miss);
    return fetches > 0.0
               ? static_cast<double>(c.l2pfL3Miss) / fetches
               : 0.0;
}

}  // namespace

PrefetchDelta
prefetchDelta(const cpu::RunResult &baseline,
              const cpu::RunResult &test)
{
    PrefetchDelta d;
    const auto &b = baseline.counters;
    const auto &t = test.counters;
    d.l1pfL3MissIncrease = static_cast<double>(t.l1pfL3Miss) -
                           static_cast<double>(b.l1pfL3Miss);
    d.l2pfL3MissDecrease = static_cast<double>(b.l2pfL3Miss) -
                           static_cast<double>(t.l2pfL3Miss);
    d.l2pfL3HitChange = static_cast<double>(t.l2pfL3Hit) -
                        static_cast<double>(b.l2pfL3Hit);
    d.coverageBase = coverage(b);
    d.coverageTest = coverage(t);
    return d;
}

}  // namespace cxlsim::spa
