#include "advisor.hh"

#include <algorithm>

#include "core/slowdown.hh"
#include "cpu/multicore.hh"
#include "mem/region_router.hh"
#include "workloads/synthetic_kernel.hh"

namespace cxlsim::spa {

double
suggestPinnedFraction(const std::vector<PeriodBreakdown> &periods,
                      double burst_threshold_pct)
{
    if (periods.empty())
        return 0.0;
    double burstSlow = 0.0;
    double totalSlow = 0.0;
    for (const auto &p : periods) {
        const double s = std::max(0.0, p.breakdown.actual);
        totalSlow += s;
        if (s > burst_threshold_pct)
            burstSlow += s;
    }
    if (totalSlow <= 0.0 || burstSlow <= 0.0)
        return 0.0;
    // Pin proportionally to the share of slowdown in bursts,
    // capped: pinning beyond the hot set wastes local DRAM.
    return std::clamp(0.5 * burstSlow / totalSlow, 0.05, 0.5);
}

TuningResult
tunePlacement(const workloads::WorkloadProfile &w,
              const std::string &server, const std::string &memory,
              double pinned_fraction, std::uint64_t seed)
{
    TuningResult r;
    r.pinnedFraction = pinned_fraction;

    melody::Platform localPlat(server, "Local");
    melody::Platform cxlPlat(server, memory);

    const cpu::RunResult baseline =
        melody::runWorkload(w, localPlat, seed);
    const cpu::RunResult allCxl = melody::runWorkload(w, cxlPlat, seed);
    r.slowdownAllCxl = melody::slowdownPct(baseline, allCxl);

    // Pinned run: hot head of the working set on local DRAM.
    auto router = std::make_unique<mem::RegionRouter>(
        memory + "+pin", localPlat.makeBackend(seed ^ 0xabcd),
        cxlPlat.makeBackend(seed ^ 0xdcba));
    const Addr hotBytes = static_cast<Addr>(
        pinned_fraction *
        static_cast<double>(w.workingSetBytes));
    router->pinRegion(0, hotBytes);

    cpu::MultiCore mc(cxlPlat.cpu(), w.exec, router.get(),
                      workloads::makeKernels(w));
    const cpu::RunResult pinned = mc.run();
    r.slowdownPinned = melody::slowdownPct(baseline, pinned);
    r.fastRequestFraction = router->fastFraction();
    return r;
}

}  // namespace cxlsim::spa
