/**
 * @file
 * MlcProbe: an Intel MLC-style loaded-latency / bandwidth probe.
 *
 * Methodology mirrors §3.2: one foreground latency thread performs
 * a dependent pointer chase while T traffic threads inject
 * read/write streams, each pacing itself with a configurable delay
 * (0-40K cycles) between accesses — sweeping the delay moves the
 * device from idle to saturation. Latency is measured per chase
 * step; bandwidth is total bytes over the measurement window.
 */

#ifndef MELODY_CORE_MLC_HH
#define MELODY_CORE_MLC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/backend.hh"
#include "stats/histogram.hh"

namespace melody {

/** Probe configuration. */
struct MlcConfig
{
    /** Traffic-generating threads (paper uses 31). */
    unsigned trafficThreads = 31;
    /** Outstanding slots per traffic thread (streaming MLP from
     *  AVX + HW prefetch in real MLC). */
    unsigned slotsPerThread = 24;
    /** Fraction of traffic accesses that are reads. */
    double readFrac = 1.0;
    /** Injected delay between accesses, in 2.1GHz cycles. */
    double delayCycles = 0.0;
    /** Simulated measurement window. */
    double windowUs = 400.0;
    /** Warmup before measuring. */
    double warmupUs = 100.0;
    /** Buffer each thread walks. */
    std::uint64_t regionBytes = 64ULL << 20;
    std::uint64_t seed = 42;
    /** Include the foreground latency (chase) thread. */
    bool latencyThread = true;
};

/** One measured operating point. */
struct MlcPoint
{
    double delayCycles = 0.0;
    double gbps = 0.0;       ///< total achieved bandwidth
    double avgNs = 0.0;      ///< mean chase latency
    double p50Ns = 0.0;
    double p999Ns = 0.0;
    double p9999Ns = 0.0;
    std::uint64_t samples = 0;
};

/** Measure one operating point on @p backend. */
MlcPoint mlcMeasure(cxlsim::mem::MemoryBackend *backend,
                    const MlcConfig &cfg);

/**
 * Sweep injected delays (descending: light load to saturation)
 * and return the latency-bandwidth curve of Figures 3a and 5.
 * Each point runs against a fresh backend from @p make_backend so
 * queue state never leaks between operating points.
 */
std::vector<MlcPoint> mlcSweep(
    const std::function<cxlsim::mem::BackendPtr()> &make_backend,
    MlcConfig cfg, const std::vector<double> &delays);

/** The paper's standard delay ladder (0..40K cycles). */
std::vector<double> mlcStandardDelays();

}  // namespace melody

#endif  // MELODY_CORE_MLC_HH
