#include "mlc.hh"

#include <algorithm>
#include <queue>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "stats/streaming.hh"

namespace melody {

using namespace cxlsim;

namespace {

constexpr double kCycleNs = 1.0 / 2.1;  // pacing clock (2.1 GHz)

/** One issue slot: a self-repacing access chain. */
struct Slot
{
    Tick nextIssue;
    Addr cursor;
    Addr base;
    std::uint64_t span;
    bool chase;      ///< latency thread: dependent random chase
    unsigned rwPhase;
};

}  // namespace

MlcPoint
mlcMeasure(mem::MemoryBackend *backend, const MlcConfig &cfg)
{
    Rng rng(cfg.seed);
    const Tick delay = nsToTicks(cfg.delayCycles * kCycleNs);
    const Tick warmup = usToTicks(cfg.warmupUs);
    const Tick end = warmup + usToTicks(cfg.windowUs);

    // Build slots: traffic threads stream sequentially through
    // disjoint regions; the chase thread hops randomly.
    std::vector<Slot> slots;
    const unsigned nTraffic = cfg.trafficThreads * cfg.slotsPerThread;
    slots.reserve(nTraffic + 1);
    for (unsigned i = 0; i < nTraffic; ++i) {
        Slot s{};
        s.base = static_cast<Addr>(i) * cfg.regionBytes;
        s.span = cfg.regionBytes;
        s.cursor = s.base + rng.below(s.span / kCacheLineBytes) *
                                kCacheLineBytes;
        // Staggered start within one delay period.
        s.nextIssue = delay ? rng.below(delay + 1) : i;
        s.chase = false;
        s.rwPhase = static_cast<unsigned>(rng.below(100));
        slots.push_back(s);
    }
    int chaseIdx = -1;
    if (cfg.latencyThread) {
        Slot s{};
        s.base = static_cast<Addr>(nTraffic) * cfg.regionBytes;
        s.span = cfg.regionBytes;
        s.cursor = s.base;
        s.nextIssue = 0;
        s.chase = true;
        slots.push_back(s);
        chaseIdx = static_cast<int>(slots.size()) - 1;
    }

    stats::Histogram lat(1.0, 1e7, 64);
    stats::StreamingStats latAll;
    std::uint64_t bytes = 0;

    // Advance the earliest slot until the window closes.
    while (true) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < slots.size(); ++i)
            if (slots[i].nextIssue < slots[best].nextIssue)
                best = i;
        Slot &s = slots[best];
        const Tick issue = s.nextIssue;
        if (issue >= end)
            break;

        bool isWrite = false;
        Addr addr;
        if (s.chase) {
            addr = s.base + rng.below(s.span / kCacheLineBytes) *
                                kCacheLineBytes;
        } else {
            addr = s.cursor;
            s.cursor += kCacheLineBytes;
            if (s.cursor >= s.base + s.span)
                s.cursor = s.base;
            s.rwPhase = (s.rwPhase + 1) % 100;
            isWrite = s.rwPhase >=
                      static_cast<unsigned>(cfg.readFrac * 100.0);
        }

        const Tick done = backend->access(
            addr,
            isWrite ? mem::ReqType::kWriteback
                    : mem::ReqType::kDemandLoad,
            issue);

        if (issue >= warmup) {
            bytes += kCacheLineBytes;
            if (s.chase) {
                const double ns = ticksToNs(done - issue);
                lat.record(ns);
                latAll.add(ns);
            }
        }
        // Closed-loop with injected delay: next access when this
        // one completes plus the pacing delay.
        s.nextIssue = done + delay;
        if (s.chase)
            s.nextIssue = done + nsToTicks(2.0);  // tiny compute
    }

    MlcPoint p;
    p.delayCycles = cfg.delayCycles;
    const double secs = static_cast<double>(end - warmup) /
                        static_cast<double>(kTicksPerSec);
    // Exclude the latency thread's own traffic from bandwidth.
    const std::uint64_t chaseBytes =
        chaseIdx >= 0 ? latAll.count() * kCacheLineBytes : 0;
    p.gbps = static_cast<double>(bytes - chaseBytes) / 1e9 / secs;
    p.avgNs = latAll.mean();
    p.p50Ns = lat.percentile(0.50);
    p.p999Ns = lat.percentile(0.999);
    p.p9999Ns = lat.percentile(0.9999);
    p.samples = latAll.count();
    return p;
}

std::vector<MlcPoint>
mlcSweep(const std::function<mem::BackendPtr()> &make_backend,
         MlcConfig cfg, const std::vector<double> &delays)
{
    std::vector<MlcPoint> out;
    out.reserve(delays.size());
    for (double d : delays) {
        cfg.delayCycles = d;
        const mem::BackendPtr backend = make_backend();
        out.push_back(mlcMeasure(backend.get(), cfg));
    }
    return out;
}

std::vector<double>
mlcStandardDelays()
{
    return {40000, 20000, 10000, 5000, 2500, 1200, 700,
            500,   300,   200,   120,  80,   40,   0};
}

}  // namespace melody
