#include "mio.hh"

#include <algorithm>
#include <vector>

#include "cpu/hierarchy.hh"
#include "sim/rng.hh"

namespace melody {

using namespace cxlsim;

namespace {

constexpr std::uint64_t kChaseRegion = 256ULL << 20;  // > LLC
constexpr std::uint64_t kNoiseRegion = 64ULL << 20;

struct Agent
{
    Tick nextIssue = 0;
    Addr base = 0;
    std::uint64_t spanLines = 0;
    Addr cursor = 0;
    bool chase = false;
    unsigned rwPhase = 0;
    std::uint64_t remaining = 0;
};

}  // namespace

MioResult
mioChaseDirect(mem::MemoryBackend *backend, unsigned threads,
               std::uint64_t samples_per_thread, const MioNoise &noise,
               double peak_gbps, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Agent> agents;

    Addr nextBase = 0;
    for (unsigned t = 0; t < threads; ++t) {
        Agent a;
        a.base = nextBase;
        nextBase += kChaseRegion;
        a.spanLines = kChaseRegion / kCacheLineBytes;
        a.chase = true;
        a.remaining = samples_per_thread;
        a.nextIssue = t;  // deterministic stagger
        agents.push_back(a);
    }
    const unsigned noiseSlots = noise.threads * noise.slotsPerThread;
    for (unsigned t = 0; t < noiseSlots; ++t) {
        Agent a;
        a.base = nextBase;
        nextBase += kNoiseRegion;
        a.spanLines = kNoiseRegion / kCacheLineBytes;
        a.cursor = a.base;
        a.chase = false;
        a.remaining = ~0ULL;
        a.nextIssue = rng.below(1000);
        a.rwPhase = static_cast<unsigned>(rng.below(100));
        agents.push_back(a);
    }

    MioResult res;
    std::uint64_t bytes = 0;
    Tick lastTick = 0;
    std::uint64_t liveChasers = threads;

    while (liveChasers > 0) {
        std::size_t best = agents.size();
        for (std::size_t i = 0; i < agents.size(); ++i) {
            if (agents[i].remaining == 0)
                continue;
            if (best == agents.size() ||
                agents[i].nextIssue < agents[best].nextIssue)
                best = i;
        }
        Agent &a = agents[best];
        const Tick issue = a.nextIssue;

        Addr addr;
        bool isWrite = false;
        if (a.chase) {
            addr = a.base +
                   rng.below(a.spanLines) * kCacheLineBytes;
        } else {
            addr = a.cursor;
            a.cursor += kCacheLineBytes;
            if (a.cursor >= a.base + a.spanLines * kCacheLineBytes)
                a.cursor = a.base;
            a.rwPhase = (a.rwPhase + 1) % 100;
            isWrite = a.rwPhase >=
                      static_cast<unsigned>(noise.readFrac * 100.0);
        }

        const Tick done = backend->access(
            addr,
            isWrite ? mem::ReqType::kWriteback
                    : mem::ReqType::kDemandLoad,
            issue);
        bytes += kCacheLineBytes;
        lastTick = std::max(lastTick, done);

        if (a.chase) {
            res.latencyNs.record(ticksToNs(done - issue));
            // Dependent: next pointer known only after the load.
            a.nextIssue = done + nsToTicks(2.0);
            if (--a.remaining == 0) {
                --liveChasers;
                if (liveChasers == 0)
                    break;
                // Noise agents stop with the last chaser.
                if (threads > 0 && liveChasers == 0)
                    break;
            }
        } else {
            a.nextIssue = done + nsToTicks(noise.paceNs);
        }

        // Terminate noise when all chasers finished.
        if (liveChasers == 0)
            break;
    }

    const double secs =
        static_cast<double>(lastTick) /
        static_cast<double>(kTicksPerSec);
    res.gbps = secs > 0 ? static_cast<double>(bytes) / 1e9 / secs : 0;
    res.utilization = peak_gbps > 0 ? res.gbps / peak_gbps : 0.0;
    return res;
}

MioResult
mioChaseViaCpu(const cpu::CpuProfile &profile,
               mem::MemoryBackend *backend, unsigned threads,
               std::uint64_t samples_per_thread, bool prefetchers_on,
               std::uint64_t seed)
{
    (void)seed;
    cpu::MemoryHierarchy hier(profile, threads, backend,
                              prefetchers_on);
    MioResult res;

    struct Chaser
    {
        Tick now = 0;
        Addr cursor = 0;
        std::uint64_t remaining = 0;
    };
    std::vector<Chaser> chasers(threads);
    for (unsigned t = 0; t < threads; ++t) {
        chasers[t].cursor = static_cast<Addr>(t) * kChaseRegion;
        chasers[t].remaining = samples_per_thread;
        chasers[t].now = t;
    }

    std::uint64_t live = threads;
    std::uint64_t bytes = 0;
    Tick lastTick = 0;
    while (live > 0) {
        std::size_t best = chasers.size();
        for (std::size_t i = 0; i < chasers.size(); ++i) {
            if (chasers[i].remaining == 0)
                continue;
            if (best == chasers.size() ||
                chasers[i].now < chasers[best].now)
                best = i;
        }
        Chaser &c = chasers[best];
        // Sequential pointer layout: the next pointer lives in the
        // next line, so the stride prefetcher can run ahead.
        const auto out = hier.demandLoad(
            static_cast<unsigned>(best), c.cursor,
            /*stream_id=*/static_cast<unsigned>(best), c.now);
        const Tick done = out.immediate ? c.now : out.readyAt;
        res.latencyNs.record(ticksToNs(done - c.now));
        bytes += kCacheLineBytes;
        lastTick = std::max(lastTick, done);
        c.cursor += kCacheLineBytes;
        c.now = done + nsToTicks(2.0);
        if (--c.remaining == 0)
            --live;
    }

    const double secs =
        static_cast<double>(lastTick) /
        static_cast<double>(kTicksPerSec);
    res.gbps = secs > 0 ? static_cast<double>(bytes) / 1e9 / secs : 0;
    return res;
}

}  // namespace melody
