/**
 * @file
 * Mio: the paper's custom microbenchmark for cacheline-level
 * request latencies (§3.2), which Intel MLC cannot report.
 *
 * Modes:
 *  - chaseDirect(): N co-located pointer-chase threads against the
 *    device (prefetchers disabled / bypassed) — Figure 3b, and
 *    with background read pressure or read/write noise threads —
 *    Figures 3c and 4.
 *  - chaseViaCpu(): the chase runs through the full CPU cache
 *    hierarchy with hardware prefetchers enabled over a
 *    prefetch-friendly (sequential) pointer layout — Figure 6.
 */

#ifndef MELODY_CORE_MIO_HH
#define MELODY_CORE_MIO_HH

#include <cstdint>
#include <memory>

#include "cpu/profile.hh"
#include "mem/backend.hh"
#include "stats/histogram.hh"

namespace melody {

/** Background traffic specification. */
struct MioNoise
{
    /** Number of bandwidth-generating background threads. */
    unsigned threads = 0;
    /** Fraction of noise accesses that are reads. */
    double readFrac = 1.0;
    /** Pacing delay between accesses per noise slot, ns
     *  (0 = as fast as the device allows). */
    double paceNs = 0.0;
    /** Outstanding slots per noise thread. */
    unsigned slotsPerThread = 4;
};

/** Result: the latency distribution plus achieved load. */
struct MioResult
{
    cxlsim::stats::Histogram latencyNs{1.0, 1e7, 64};
    /** Total achieved backend bandwidth (noise + chase), GB/s. */
    double gbps = 0.0;
    /** Device bandwidth utilization vs @p peak if supplied. */
    double utilization = 0.0;
};

/**
 * Device-level pointer chase (Figures 3b/3c/4).
 *
 * @param backend  Memory under test.
 * @param threads  Co-located chase threads (1-32 in the paper).
 * @param samples_per_thread Latency samples per thread.
 * @param noise    Optional background traffic.
 * @param peak_gbps For the utilization field (0 = skip).
 * @param seed     Determinism seed.
 */
MioResult mioChaseDirect(cxlsim::mem::MemoryBackend *backend,
                         unsigned threads,
                         std::uint64_t samples_per_thread,
                         const MioNoise &noise = {},
                         double peak_gbps = 0.0,
                         std::uint64_t seed = 7);

/**
 * Chase through the CPU caches with prefetchers on/off (Figure 6).
 * The pointer layout is sequential, so the stride prefetcher can
 * (partially) hide the device latency.
 */
MioResult mioChaseViaCpu(const cxlsim::cpu::CpuProfile &profile,
                         cxlsim::mem::MemoryBackend *backend,
                         unsigned threads,
                         std::uint64_t samples_per_thread,
                         bool prefetchers_on,
                         std::uint64_t seed = 7);

}  // namespace melody

#endif  // MELODY_CORE_MIO_HH
