/**
 * @file
 * Workload slowdown measurement (§3.1 "Performance metric"):
 * S = (P_DRAM / P_CXL - 1) * 100%, with socket-local DRAM as the
 * baseline. Performance is wall-clock execution time of the same
 * instruction stream, so S reflects the combined latency and
 * bandwidth impact of the memory setup.
 */

#ifndef MELODY_CORE_SLOWDOWN_HH
#define MELODY_CORE_SLOWDOWN_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "cpu/multicore.hh"
#include "workloads/profile.hh"

namespace melody {

/** Run @p w on @p platform once. */
cxlsim::cpu::RunResult
runWorkload(const cxlsim::workloads::WorkloadProfile &w,
            const Platform &platform, std::uint64_t seed,
            bool prefetchers_on = true,
            cxlsim::Tick sampling_interval = 0);

/** Slowdown percentage of @p test relative to @p baseline. */
double slowdownPct(const cxlsim::cpu::RunResult &baseline,
                   const cxlsim::cpu::RunResult &test);

/**
 * Runs workloads across setups, caching the per-server Local
 * baseline so each workload's baseline runs once.
 */
class SlowdownStudy
{
  public:
    explicit SlowdownStudy(std::uint64_t seed = 1234) : seed_(seed) {}

    /** Baseline result for (workload, server), memoized. */
    const cxlsim::cpu::RunResult &
    baseline(const cxlsim::workloads::WorkloadProfile &w,
             const std::string &server);

    /** Slowdown of @p w on (server, memory) vs the local baseline. */
    double slowdown(const cxlsim::workloads::WorkloadProfile &w,
                    const std::string &server,
                    const std::string &memory);

    /** As slowdown(), but also expose the test run. */
    double slowdownWithRun(const cxlsim::workloads::WorkloadProfile &w,
                           const std::string &server,
                           const std::string &memory,
                           cxlsim::cpu::RunResult *test_out);

    /**
     * Slowdowns of many workloads on one setup, computed in
     * parallel (each run is independent and deterministic).
     * Results are returned in input order.
     */
    std::vector<double> slowdownBatch(
        const std::vector<cxlsim::workloads::WorkloadProfile> &ws,
        const std::string &server, const std::string &memory,
        unsigned threads = 0);

  private:
    std::uint64_t seed_;
    std::mutex mu_;
    std::map<std::string, cxlsim::cpu::RunResult> baselines_;
};

}  // namespace melody

#endif  // MELODY_CORE_SLOWDOWN_HH
