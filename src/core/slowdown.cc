#include "slowdown.hh"

#include "sim/parallel.hh"

#include "workloads/synthetic_kernel.hh"

namespace melody {

using namespace cxlsim;

cpu::RunResult
runWorkload(const workloads::WorkloadProfile &w,
            const Platform &platform, std::uint64_t seed,
            bool prefetchers_on, Tick sampling_interval)
{
    mem::BackendPtr backend = platform.makeBackend(seed ^ w.seed);
    cpu::MultiCore mc(platform.cpu(), w.exec, backend.get(),
                      workloads::makeKernels(w), prefetchers_on);
    if (sampling_interval)
        mc.enableSampling(sampling_interval);
    return mc.run();
}

double
slowdownPct(const cpu::RunResult &baseline,
            const cpu::RunResult &test)
{
    if (baseline.wallTicks == 0)
        return 0.0;
    return (static_cast<double>(test.wallTicks) /
                static_cast<double>(baseline.wallTicks) -
            1.0) *
           100.0;
}

const cpu::RunResult &
SlowdownStudy::baseline(const workloads::WorkloadProfile &w,
                        const std::string &server)
{
    // Include run length and thread count: callers may run scaled
    // variants of the same named workload.
    const std::string key = server + "/" + w.name + "/" +
                            std::to_string(w.blocksPerCore) + "/" +
                            std::to_string(w.threads);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = baselines_.find(key);
        if (it != baselines_.end())
            return it->second;
    }
    Platform p(server, "Local");
    cpu::RunResult r = runWorkload(w, p, seed_);
    std::lock_guard<std::mutex> lock(mu_);
    // Another thread may have inserted meanwhile; emplace keeps
    // the first (identical, deterministic) result.
    return baselines_.emplace(key, std::move(r)).first->second;
}

double
SlowdownStudy::slowdown(const workloads::WorkloadProfile &w,
                        const std::string &server,
                        const std::string &memory)
{
    return slowdownWithRun(w, server, memory, nullptr);
}

double
SlowdownStudy::slowdownWithRun(const workloads::WorkloadProfile &w,
                               const std::string &server,
                               const std::string &memory,
                               cpu::RunResult *test_out)
{
    const cpu::RunResult &base = baseline(w, server);
    Platform p(server, memory);
    cpu::RunResult test = runWorkload(w, p, seed_);
    const double s = slowdownPct(base, test);
    if (test_out)
        *test_out = std::move(test);
    return s;
}

std::vector<double>
SlowdownStudy::slowdownBatch(
    const std::vector<workloads::WorkloadProfile> &ws,
    const std::string &server, const std::string &memory,
    unsigned threads)
{
    std::vector<double> out(ws.size());
    parallelFor(
        ws.size(),
        [&](std::size_t i) {
            out[i] = slowdown(ws[i], server, memory);
        },
        threads);
    return out;
}

}  // namespace melody
