#include "platform.hh"

#include "cxl/device_profile.hh"
#include "dram/timing.hh"
#include "mem/cxl_backend.hh"
#include "mem/interleaved_backend.hh"
#include "mem/local_backend.hh"
#include "mem/numa_backend.hh"
#include "mem/region_router.hh"
#include "sim/logging.hh"

namespace melody {

using namespace cxlsim;

namespace {

/** Per-server local-DRAM and UPI parameters (calibrated to the
 *  Table 1 Local/Remote latency and bandwidth columns). */
struct ServerSpec
{
    cpu::CpuProfile cpu;
    mem::LocalDramConfig local;
    /** UPI effective GB/s per direction and one-way ns. */
    double upiGBps;
    double upiPropNs;
};

ServerSpec
serverSpec(const std::string &server)
{
    ServerSpec s;
    if (server == "SPR2S") {
        s.cpu = cpu::spr();
        s.local.baseNs = 66.0;  // -> ~114ns idle random latency
        s.local.channels = 8;
        s.local.timing = dram::ddr5_4800();
        s.upiGBps = 97.0;
        s.upiPropNs = 33.0;     // -> ~191ns remote
    } else if (server == "EMR2S") {
        s.cpu = cpu::emr();
        s.local.baseNs = 63.0;  // -> ~111ns
        s.local.channels = 8;
        s.local.timing = dram::ddr5_4800();
        s.upiGBps = 120.0;
        s.upiPropNs = 36.0;     // -> ~193ns
    } else if (server == "EMR2S'") {
        s.cpu = cpu::emrPrime();
        s.local.baseNs = 69.0;  // -> ~117ns
        s.local.channels = 8;
        s.local.timing = dram::ddr5_4800();
        s.upiGBps = 119.0;
        s.upiPropNs = 43.0;     // -> ~212ns
    } else if (server == "SKX2S") {
        s.cpu = cpu::skx();
        s.local.baseNs = 40.0;  // -> ~90ns
        s.local.channels = 6;
        s.local.timing = dram::ddr4_2933();
        s.upiGBps = 32.0;
        s.upiPropNs = 21.0;     // -> ~140ns
    } else if (server == "SKX8S") {
        s.cpu = cpu::skx();
        s.cpu.name = "SKX8S";
        s.cpu.freqGhz = 2.5;
        s.cpu.l3 = {38500ULL * 1024, 11, 46.0};
        s.local.baseNs = 33.0;  // -> ~81ns
        s.local.channels = 6;
        s.local.timing = dram::ddr4_2933();
        s.upiGBps = 7.0;        // 8-socket multi-hop path
        s.upiPropNs = 160.0;    // -> ~410ns
    } else {
        throw ConfigError("unknown server: " + server);
    }
    s.local.name = "Local";
    return s;
}

/** Extra one-way UPI propagation for the SKX emulated points. */
double
emulatedNumaProp(const std::string &memory, const ServerSpec &s)
{
    if (memory == "NUMA-140ns")
        return 21.0;
    if (memory == "NUMA-190ns")
        return 46.0;  // lowered uncore frequency
    if (memory == "NUMA-410ns")
        return 160.0;
    return s.upiPropNs;
}

}  // namespace

Platform::Platform(std::string server, std::string memory)
    : server_(std::move(server)), memory_(std::move(memory)),
      cpu_(serverSpec(server_).cpu)
{
}

std::string
Platform::displayName() const
{
    return cpu_.name + ":" + memory_;
}

void
Platform::setFaultPlan(const cxlsim::ras::FaultPlan &plan)
{
    plan.validate();
    faultPlan_ = plan;
}

mem::BackendPtr
Platform::makeBackend(std::uint64_t seed) const
{
    const ServerSpec s = serverSpec(server_);

    auto makeLocal = [&](std::uint64_t sd) {
        mem::LocalDramConfig cfg = s.local;
        cfg.seed = sd;
        return std::make_unique<mem::LocalDramBackend>(cfg);
    };

    // Graceful degradation: when the plan asks for failover, CXL
    // setups get a router whose fallback tier is socket-local DRAM
    // — timed-out requests are served there instead of surfacing
    // kTimeout to the core.
    auto withFailover = [&](mem::BackendPtr b) -> mem::BackendPtr {
        if (!faultPlan_.failover)
            return b;
        const std::string nm = b->name() + "+Failover";
        auto router = std::make_unique<mem::RegionRouter>(
            nm, makeLocal(seed ^ 0x7f4a7c15), std::move(b));
        router->enableFailover();
        return router;
    };

    if (memory_ == "Local")
        return makeLocal(seed);

    if (memory_.rfind("NUMA", 0) == 0) {
        mem::NumaHopConfig hop;
        hop.upi.gbpsPerDir = s.upiGBps;
        hop.upi.propagationNs = emulatedNumaProp(memory_, s);
        hop.seed = seed ^ 0x5bd1e995;
        return std::make_unique<mem::NumaBackend>(
            memory_, makeLocal(seed + 1), hop);
    }

    if (memory_.rfind("CXL-Dx2", 0) == 0) {
        std::vector<mem::BackendPtr> devs;
        for (unsigned i = 0; i < 2; ++i) {
            mem::CxlBackendConfig cfg;
            cfg.profile = cxl::cxlD();
            cfg.seed = seed + 17 * (i + 1);
            cfg.faultPlan = faultPlan_;
            cfg.deviceIndex = i;
            devs.push_back(
                std::make_unique<mem::CxlBackend>(cfg));
        }
        return withFailover(std::make_unique<mem::InterleavedBackend>(
            "CXL-Dx2", std::move(devs)));
    }

    if (memory_.rfind("CXL-", 0) == 0) {
        const std::string dev = memory_.substr(0, 5);  // "CXL-X"
        const std::string suffix = memory_.substr(5);
        mem::CxlBackendConfig cfg;
        cfg.profile = cxl::profileByName(dev);
        cfg.seed = seed ^ 0x85ebca6b;
        cfg.faultPlan = faultPlan_;
        if (suffix == "+Switch")
            cfg.switchHops = 1;
        else if (suffix == "+Switch2")
            cfg.switchHops = 2;
        auto device = std::make_unique<mem::CxlBackend>(cfg);

        if (suffix == "+NUMA") {
            mem::NumaHopConfig hop;
            hop.upi.gbpsPerDir = s.upiGBps;
            hop.upi.propagationNs = s.upiPropNs;
            hop.extraNs = 8.0 + cfg.profile.numaExtraNs;
            // CXL traffic crossing UPI: contention-coupled jitter —
            // the source of the paper's CXL+NUMA tail anomaly.
            hop.jitter.probAtRef = 0.02;
            hop.jitter.refReqPerUs = 1.5;
            hop.jitter.minNs = 150.0;
            hop.jitter.maxNs = 800.0;
            hop.jitter.alpha = 1.1;
            hop.jitter.episodeProb = 0.012;
            hop.jitter.episodeDurUs = 15.0;
            hop.jitter.episodeMinNs = 800.0;
            hop.jitter.episodeMaxNs = 3500.0;
            hop.jitter.episodeAlpha = 1.3;
            hop.seed = seed ^ 0xc2b2ae35;
            return withFailover(std::make_unique<mem::NumaBackend>(
                memory_, std::move(device), hop));
        }
        if (!suffix.empty() && suffix != "+Switch" &&
            suffix != "+Switch2")
            throw ConfigError("unknown CXL setup suffix: " + memory_);
        return withFailover(std::move(device));
    }

    throw ConfigError("unknown memory setup: " + memory_);
}

double
paperPeakGBps(const std::string &server, const std::string &memory)
{
    // Table 1 calibration targets. CXL rows are the mixed-traffic
    // peaks of the devices themselves, so any server and any
    // switch/NUMA path resolves to the base device's number.
    if (memory.rfind("CXL-", 0) == 0) {
        const std::string dev = memory.substr(0, 5);  // "CXL-X"
        if (dev == "CXL-A")
            return 32.0;
        if (dev == "CXL-B")
            return 26.0;
        if (dev == "CXL-C")
            return 21.0;
        if (dev == "CXL-D")
            return 59.0;
        throw ConfigError("paperPeakGBps: unknown CXL device: " +
                          memory);
    }

    struct SrvBw
    {
        const char *server;
        double localGBps;
        double remoteGBps;
    };
    static constexpr SrvBw kServers[] = {
        {"SPR2S", 218.0, 97.0},  {"EMR2S", 246.0, 120.0},
        {"EMR2S'", 236.0, 119.0}, {"SKX2S", 52.0, 32.0},
        {"SKX8S", 109.0, 7.0},
    };
    for (const SrvBw &s : kServers) {
        if (server != s.server)
            continue;
        if (memory == "Local")
            return s.localGBps;
        if (memory.rfind("NUMA", 0) == 0)
            return s.remoteGBps;
        throw ConfigError("paperPeakGBps: unknown memory setup: " +
                          memory);
    }
    throw ConfigError("paperPeakGBps: unknown server: " + server);
}

}  // namespace melody
