/**
 * @file
 * Testbed platform builder (paper Table 1).
 *
 * A Platform pairs a CPU profile with a memory-backend factory for
 * a named memory setup. Supported setups:
 *
 *   "Local"                socket-local DRAM (the baseline)
 *   "NUMA"                 one cross-socket hop to remote DRAM
 *   "NUMA-140ns" / "NUMA-190ns" / "NUMA-410ns"
 *                          the SKX-based emulated latency points
 *   "CXL-A".."CXL-D"       the four CXL expanders, direct-attached
 *   "CXL-X+NUMA"           CXL device accessed from a remote socket
 *   "CXL-X+Switch"         one CXL switch between host and device
 *   "CXL-X+Switch2"        two switch hops ("CXL + multi-hops")
 *   "CXL-Dx2"              two CXL-D interleaved (Fig 8f)
 *
 * Servers: "SPR2S", "EMR2S", "EMR2S'", "SKX2S", "SKX8S".
 */

#ifndef MELODY_CORE_PLATFORM_HH
#define MELODY_CORE_PLATFORM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/profile.hh"
#include "mem/backend.hh"
#include "ras/fault_plan.hh"

namespace melody {

/** A (server, memory setup) pair from Table 1. */
class Platform
{
  public:
    /**
     * @param server Server name (see file comment).
     * @param memory Memory setup name (see file comment).
     */
    Platform(std::string server, std::string memory);

    const std::string &server() const { return server_; }
    const std::string &memory() const { return memory_; }

    /** "EMR:CXL-A"-style display name. */
    std::string displayName() const;

    /** CPU profile of the server. */
    const cxlsim::cpu::CpuProfile &cpu() const { return cpu_; }

    /**
     * Arm a fault-injection plan: every CXL backend built by
     * makeBackend() carries it (interleaved devices get their own
     * device index for scheduled events). With plan.failover set,
     * CXL setups are wrapped in a failover router whose fallback
     * is socket-local DRAM.
     *
     * @throw cxlsim::ConfigError on out-of-range parameters.
     */
    void setFaultPlan(const cxlsim::ras::FaultPlan &plan);

    const cxlsim::ras::FaultPlan &faultPlan() const
    {
        return faultPlan_;
    }

    /**
     * Build a fresh memory backend for one experiment run.
     * Distinct seeds give independent stochastic behaviour.
     */
    cxlsim::mem::BackendPtr makeBackend(std::uint64_t seed) const;

  private:
    std::string server_;
    std::string memory_;
    cxlsim::cpu::CpuProfile cpu_;
    cxlsim::ras::FaultPlan faultPlan_;
};

/**
 * Paper-measured peak bandwidth (GB/s, Table 1) for a
 * (server, memory setup) pair — the single source for the
 * calibration targets the benches print and for bandwidth
 * normalization (e.g. Fig 3c utilization). CXL devices use the
 * mixed-traffic peak and are server-independent; "NUMA*" setups
 * use the server's remote-socket bandwidth; switch/NUMA-suffixed
 * CXL setups ("CXL-A+Switch", ...) resolve to the base device.
 *
 * @throw cxlsim::ConfigError on an unknown server or setup.
 */
double paperPeakGBps(const std::string &server,
                     const std::string &memory);

}  // namespace melody

#endif  // MELODY_CORE_PLATFORM_HH
