/**
 * @file
 * Assembled CXL type-3 memory expander: Flex Bus link(s) +
 * controller + DDR channels, optionally behind one or more CXL
 * switches (each switch adds a store-and-forward stage, the
 * "CXL+Switch" and "CXL + multi-hops" points in Figure 1).
 */

#ifndef CXLSIM_CXL_DEVICE_HH
#define CXLSIM_CXL_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/controller.hh"
#include "cxl/device_profile.hh"
#include "link/link.hh"
#include "sim/types.hh"

namespace cxlsim::cxl {

/** Bytes on the wire for each message class (header overheads are
 *  folded into the links' effective rates). */
constexpr unsigned kReadRequestBytes = 16;
constexpr unsigned kDataBytes = 64;
constexpr unsigned kCompletionBytes = 8;

/**
 * One CXL memory expander as seen from a host root port.
 *
 * read()/write() take the tick the request leaves the host's
 * uncore and return the tick the response reaches it.
 */
class CxlDevice
{
  public:
    /**
     * @param profile     Vendor preset (cxlA()..cxlD()).
     * @param seed        Determinism seed.
     * @param switch_hops Number of CXL switches between host and
     *                    device (0 = direct attach).
     */
    CxlDevice(const DeviceProfile &profile, std::uint64_t seed,
              unsigned switch_hops = 0);

    /** 64B read: request down, DRAM access, data back. */
    Tick read(Addr addr, Tick host_issue)
    {
        return readEx(addr, host_issue).done;
    }

    /** 64B write: data down, DRAM write, completion (NDR) back. */
    Tick write(Addr addr, Tick host_issue)
    {
        return writeEx(addr, host_issue).done;
    }

    /** As read(), plus the RAS completion status: Retryable when a
     *  flit was lost to replay exhaustion, Timeout when the device
     *  is down, Poisoned on an uncorrectable media error. */
    ServiceOutcome readEx(Addr addr, Tick host_issue);

    /** As write(); a poisoned write target is recorded, not
     *  surfaced (writes overwrite the bad line). */
    ServiceOutcome writeEx(Addr addr, Tick host_issue);

    /**
     * Arm the fault plan on this device: CRC/LLR faults on the
     * device link, media faults + health machine + scheduled
     * events (for index @p device) on the controller.
     */
    void enableRas(const ras::FaultPlan &plan, unsigned device,
                   std::uint64_t seed);

    /** Current health (Healthy when RAS is disabled). */
    ras::DeviceHealth health() const { return ctrl_.health(); }

    /** Aggregate link + controller RAS counters into @p out. */
    void addRasTo(ras::RasStats *out) const;

    const DeviceProfile &profile() const { return profile_; }
    const ControllerStats &controllerStats() const
    {
        return ctrl_.stats();
    }
    double utilization() const { return ctrl_.utilization(); }

    /** Total bytes moved over the device link (both directions). */
    std::uint64_t linkBytes() const;

  private:
    link::SendResult sendLinkEx(unsigned bytes, link::Dir dir,
                                Tick now);
    Tick
    sendLink(unsigned bytes, link::Dir dir, Tick now)
    {
        return sendLinkEx(bytes, dir, now).at;
    }
    Tick throughSwitches(unsigned bytes, link::Dir dir, Tick now);

    DeviceProfile profile_;
    // Exactly one of the two links exists, per profile.halfDuplexLink.
    std::unique_ptr<link::DuplexLink> duplex_;
    std::unique_ptr<link::HalfDuplexLink> halfDuplex_;
    /** Store-and-forward switch stages (host-side first). */
    std::vector<std::unique_ptr<link::DuplexLink>> switches_;
    CxlController ctrl_;
};

}  // namespace cxlsim::cxl

#endif  // CXLSIM_CXL_DEVICE_HH
