#include "pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlsim::cxl {

PooledCxlDevice::PooledCxlDevice(const DeviceProfile &profile,
                                 unsigned heads,
                                 PoolArbitration policy,
                                 std::uint64_t seed,
                                 std::vector<double> weights)
    : profile_(profile), policy_(policy),
      weights_(std::move(weights)), stats_(heads),
      inflight_(heads), lastActive_(heads, 0),
      ctrl_(profile, seed ^ 0xbeefcafe12345678ULL)
{
    SIM_ASSERT(heads >= 1, "pool needs at least one head");
    if (weights_.empty())
        weights_.assign(heads, 1.0);
    SIM_ASSERT(weights_.size() == heads, "one weight per head");
    for (unsigned h = 0; h < heads; ++h)
        links_.push_back(
            std::make_unique<link::DuplexLink>(profile_.linkCfg));
}

void
PooledCxlDevice::retire(unsigned head, Tick completion)
{
    inflight_[head].push_back(completion);
}

Tick
PooledCxlDevice::earliestAdmission(unsigned head, Tick now)
{
    if (policy_ == PoolArbitration::kNone)
        return now;
    constexpr Tick kHorizon = 2 * kTicksPerUs;
    bool contended = false;
    for (unsigned h = 0; h < lastActive_.size(); ++h) {
        if (h == head)
            continue;
        const Tick d = now >= lastActive_[h]
                           ? now - lastActive_[h]
                           : lastActive_[h] - now;
        if (d < kHorizon)
            contended = true;
    }
    if (!contended)
        return now;

    double share = 1.0 / static_cast<double>(inflight_.size());
    if (policy_ == PoolArbitration::kWeighted) {
        double total = 0.0;
        for (double w : weights_)
            total += w;
        share = weights_[head] / total;
    }
    const auto credits = std::max<std::size_t>(
        2, static_cast<std::size_t>(share * profile_.queueCapacity));

    auto &fl = inflight_[head];
    Tick start = now;
    while (true) {
        fl.erase(std::remove_if(fl.begin(), fl.end(),
                                [&](Tick t) { return t <= start; }),
                 fl.end());
        if (fl.size() < credits)
            break;
        Tick earliest = fl.front();
        for (Tick t : fl)
            earliest = std::min(earliest, t);
        start = earliest;
    }
    return start;
}

Tick
PooledCxlDevice::arbitrate(unsigned head, Tick arrival)
{
    lastActive_[head] = arrival;
    if (policy_ == PoolArbitration::kNone)
        return arrival;

    // A head is "competing" if another head was active within the
    // recent horizon; only then does the credit limit engage.
    constexpr Tick kHorizon = 2 * kTicksPerUs;
    bool contended = false;
    for (unsigned h = 0; h < lastActive_.size(); ++h)
        if (h != head && arrival >= lastActive_[h] &&
            arrival - lastActive_[h] < kHorizon)
            contended = true;
    if (!contended)
        return arrival;

    const Tick start = earliestAdmission(head, arrival);
    if (start > arrival)
        stats_[head].arbWaitNs += ticksToNs(start - arrival);
    return start;
}

void
PooledCxlDevice::enableRas(const ras::FaultPlan &plan,
                           unsigned device, std::uint64_t seed)
{
    ctrl_.enableRas(plan, device, seed);
    for (unsigned h = 0; h < links_.size(); ++h)
        links_[h]->enableFaults(plan.link,
                                seed ^ (0x94d049bb133111ebULL + h));
}

void
PooledCxlDevice::addRasTo(ras::RasStats *out) const
{
    for (const auto &l : links_)
        l->addRasTo(out);
    ctrl_.addRasTo(out);
}

ServiceOutcome
PooledCxlDevice::readEx(unsigned head, Addr addr, Tick host_issue)
{
    ++stats_[head].reads;
    const auto req = links_[head]->sendEx(
        kReadRequestBytes, link::Dir::kToDevice, host_issue);
    if (req.lost) {
        ctrl_.noteLinkDown();
        return {req.at, ras::Status::kRetryable};
    }
    const Tick entry = arbitrate(head, req.at);
    const ServiceOutcome so =
        ctrl_.serviceEx(addr, /*is_write=*/false, entry);
    if (so.status == ras::Status::kTimeout)
        return so;
    retire(head, so.done);
    const auto data = links_[head]->sendEx(
        kDataBytes, link::Dir::kFromDevice, so.done);
    if (data.lost) {
        ctrl_.noteLinkDown();
        return {data.at, ras::Status::kRetryable};
    }
    return {data.at, so.status};
}

ServiceOutcome
PooledCxlDevice::writeEx(unsigned head, Addr addr, Tick host_issue)
{
    ++stats_[head].writes;
    const auto data = links_[head]->sendEx(
        kDataBytes, link::Dir::kToDevice, host_issue);
    if (data.lost) {
        ctrl_.noteLinkDown();
        return {data.at, ras::Status::kRetryable};
    }
    const Tick cmd =
        host_issue + nsToTicks(profile_.linkCfg.propagationNs);
    const Tick entry = arbitrate(head, cmd);
    const ServiceOutcome so =
        ctrl_.serviceEx(addr, /*is_write=*/true, entry);
    if (so.status == ras::Status::kTimeout)
        return so;
    retire(head, so.done);
    const auto cmpl = links_[head]->sendEx(
        kCompletionBytes, link::Dir::kFromDevice,
        std::max(so.done, data.at));
    if (cmpl.lost) {
        ctrl_.noteLinkDown();
        return {cmpl.at, ras::Status::kRetryable};
    }
    return {cmpl.at, ras::Status::kOk};
}

}  // namespace cxlsim::cxl
