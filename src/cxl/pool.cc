#include "pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlsim::cxl {

PooledCxlDevice::PooledCxlDevice(const DeviceProfile &profile,
                                 unsigned heads,
                                 PoolArbitration policy,
                                 std::uint64_t seed,
                                 std::vector<double> weights)
    : profile_(profile), policy_(policy),
      weights_(std::move(weights)), stats_(heads),
      inflight_(heads), lastActive_(heads, 0),
      ctrl_(profile, seed ^ 0xbeefcafe12345678ULL)
{
    SIM_ASSERT(heads >= 1, "pool needs at least one head");
    if (weights_.empty())
        weights_.assign(heads, 1.0);
    SIM_ASSERT(weights_.size() == heads, "one weight per head");
    for (unsigned h = 0; h < heads; ++h)
        links_.push_back(
            std::make_unique<link::DuplexLink>(profile_.linkCfg));
}

void
PooledCxlDevice::retire(unsigned head, Tick completion)
{
    inflight_[head].push_back(completion);
}

Tick
PooledCxlDevice::earliestAdmission(unsigned head, Tick now)
{
    if (policy_ == PoolArbitration::kNone)
        return now;
    constexpr Tick kHorizon = 2 * kTicksPerUs;
    bool contended = false;
    for (unsigned h = 0; h < lastActive_.size(); ++h) {
        if (h == head)
            continue;
        const Tick d = now >= lastActive_[h]
                           ? now - lastActive_[h]
                           : lastActive_[h] - now;
        if (d < kHorizon)
            contended = true;
    }
    if (!contended)
        return now;

    double share = 1.0 / static_cast<double>(inflight_.size());
    if (policy_ == PoolArbitration::kWeighted) {
        double total = 0.0;
        for (double w : weights_)
            total += w;
        share = weights_[head] / total;
    }
    const auto credits = std::max<std::size_t>(
        2, static_cast<std::size_t>(share * profile_.queueCapacity));

    auto &fl = inflight_[head];
    Tick start = now;
    while (true) {
        fl.erase(std::remove_if(fl.begin(), fl.end(),
                                [&](Tick t) { return t <= start; }),
                 fl.end());
        if (fl.size() < credits)
            break;
        Tick earliest = fl.front();
        for (Tick t : fl)
            earliest = std::min(earliest, t);
        start = earliest;
    }
    return start;
}

Tick
PooledCxlDevice::arbitrate(unsigned head, Tick arrival)
{
    lastActive_[head] = arrival;
    if (policy_ == PoolArbitration::kNone)
        return arrival;

    // A head is "competing" if another head was active within the
    // recent horizon; only then does the credit limit engage.
    constexpr Tick kHorizon = 2 * kTicksPerUs;
    bool contended = false;
    for (unsigned h = 0; h < lastActive_.size(); ++h)
        if (h != head && arrival >= lastActive_[h] &&
            arrival - lastActive_[h] < kHorizon)
            contended = true;
    if (!contended)
        return arrival;

    const Tick start = earliestAdmission(head, arrival);
    if (start > arrival)
        stats_[head].arbWaitNs += ticksToNs(start - arrival);
    return start;
}

Tick
PooledCxlDevice::read(unsigned head, Addr addr, Tick host_issue)
{
    ++stats_[head].reads;
    Tick t = links_[head]->send(kReadRequestBytes,
                                link::Dir::kToDevice, host_issue);
    t = arbitrate(head, t);
    t = ctrl_.service(addr, /*is_write=*/false, t);
    retire(head, t);
    return links_[head]->send(kDataBytes, link::Dir::kFromDevice, t);
}

Tick
PooledCxlDevice::write(unsigned head, Addr addr, Tick host_issue)
{
    ++stats_[head].writes;
    Tick data = links_[head]->send(kDataBytes, link::Dir::kToDevice,
                                   host_issue);
    const Tick cmd =
        host_issue + nsToTicks(profile_.linkCfg.propagationNs);
    const Tick entry = arbitrate(head, cmd);
    const Tick done = ctrl_.service(addr, /*is_write=*/true, entry);
    retire(head, done);
    return links_[head]->send(kCompletionBytes,
                              link::Dir::kFromDevice,
                              std::max(done, data));
}

}  // namespace cxlsim::cxl
