/**
 * @file
 * CXL memory controller model (paper Figure 2b).
 *
 * The controller parses arriving flits, queues requests, schedules
 * them onto DDR channels, and is subject to the vendor-specific
 * effects the paper reasons about in §3.2: scheduler hiccups /
 * flow-control backpressure accumulation (modelled as a
 * bounded-Pareto pause process whose rate couples to utilization),
 * thermal throttling, and imperfect refresh hiding. These are what
 * produce the microsecond-level tail latencies the paper is first
 * to disclose.
 */

#ifndef CXLSIM_CXL_CONTROLLER_HH
#define CXLSIM_CXL_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/device_profile.hh"
#include "dram/channel.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlsim::cxl {

/** Controller-side counters. */
struct ControllerStats
{
    std::uint64_t requests = 0;
    std::uint64_t hiccups = 0;
    std::uint64_t thermalPauses = 0;
    double hiccupNs = 0.0;
};

/**
 * Request queue + scheduler + DDR channels of one CXL device.
 *
 * service() is called in arrival order with the tick the request
 * clears the link; it returns the tick the data is ready to leave
 * the device (read) or is durably accepted (write).
 */
class CxlController
{
  public:
    CxlController(const DeviceProfile &profile, std::uint64_t seed);

    /** Service one 64B request; see class comment. */
    Tick service(Addr addr, bool is_write, Tick arrival);

    const ControllerStats &stats() const { return stats_; }

    /** Smoothed utilization estimate in [0, 1]. */
    double utilization() const { return util_; }

    /** Aggregate DRAM-side row hit rate (for diagnostics). */
    double dramRowHitRate() const;

  private:
    double hiccupProbability() const;
    void updateUtilization(Tick now);

    DeviceProfile profile_;
    std::vector<std::unique_ptr<dram::Channel>> channels_;
    Rng rng_;

    Tick schedFreeAt_ = 0;
    Tick lastArrival_ = 0;
    double util_ = 0.0;
    /** EWMA of achieved GB/s for the thermal model. */
    double ewmaGBps_ = 0.0;
    /** Measurement window for the bandwidth estimate. */
    Tick windowStart_ = 0;
    std::uint64_t windowBytes_ = 0;

    Tick idleCreditTicks_ = 0;

    ControllerStats stats_;
};

}  // namespace cxlsim::cxl

#endif  // CXLSIM_CXL_CONTROLLER_HH
