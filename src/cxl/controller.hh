/**
 * @file
 * CXL memory controller model (paper Figure 2b).
 *
 * The controller parses arriving flits, queues requests, schedules
 * them onto DDR channels, and is subject to the vendor-specific
 * effects the paper reasons about in §3.2: scheduler hiccups /
 * flow-control backpressure accumulation (modelled as a
 * bounded-Pareto pause process whose rate couples to utilization),
 * thermal throttling, and imperfect refresh hiding. These are what
 * produce the microsecond-level tail latencies the paper is first
 * to disclose.
 */

#ifndef CXLSIM_CXL_CONTROLLER_HH
#define CXLSIM_CXL_CONTROLLER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/device_profile.hh"
#include "dram/channel.hh"
#include "ras/fault_plan.hh"
#include "ras/ras.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlsim::cxl {

/** Controller-side counters. */
struct ControllerStats
{
    std::uint64_t requests = 0;
    std::uint64_t hiccups = 0;
    std::uint64_t thermalPauses = 0;
    double hiccupNs = 0.0;
};

/** Completion tick + RAS status of one serviced request.
 *  [[nodiscard]] for the same reason as mem::AccessResult: a
 *  dropped outcome is a silently-ignored fault. */
struct [[nodiscard]] ServiceOutcome
{
    Tick done;
    ras::Status status;
};

/**
 * Request queue + scheduler + DDR channels of one CXL device.
 *
 * service() is called in arrival order with the tick the request
 * clears the link; it returns the tick the data is ready to leave
 * the device (read) or is durably accepted (write).
 *
 * With RAS enabled (enableRas), the controller additionally runs
 * the media-error process (correctable ECC, poison-returning
 * uncorrectable errors, patrol scrub) and a device-health state
 * machine composing with the hiccup/thermal processes: a Degraded
 * device serves with extra scrub latency, a TimedOut/Offline one
 * refuses service (the host's completion timer expires instead).
 */
class CxlController
{
  public:
    CxlController(const DeviceProfile &profile, std::uint64_t seed);

    /** Service one 64B request; see class comment. */
    Tick
    service(Addr addr, bool is_write, Tick arrival)
    {
        return serviceEx(addr, is_write, arrival).done;
    }

    /** As service(), but with the RAS completion status. */
    ServiceOutcome serviceEx(Addr addr, bool is_write, Tick arrival);

    /**
     * Arm fault injection: media-error process, health monitor and
     * the scheduled events of @p plan targeting @p device, all on
     * RNG streams derived from @p seed (independent of the hiccup
     * stream, so a zero-rate plan is bit-identical to no plan).
     */
    void enableRas(const ras::FaultPlan &plan, unsigned device,
                   std::uint64_t seed);

    /** Link layer escalation: replay budget exhausted. */
    void noteLinkDown();

    /** Current device health (Healthy when RAS is disabled). */
    ras::DeviceHealth health() const;

    /** Media/health fault counters (empty when RAS is disabled). */
    void addRasTo(ras::RasStats *out) const;

    const ControllerStats &stats() const { return stats_; }

    /** Smoothed utilization estimate in [0, 1]. */
    double utilization() const { return util_; }

    /** Aggregate DRAM-side row hit rate (for diagnostics). */
    double dramRowHitRate() const;

  private:
    double hiccupProbability() const;
    void updateUtilization(Tick now);
    void applyScheduledEvents(Tick now);
    Tick patrolScrubCatchUp(Tick now);

    /** All fault-injection state; absent (null) when RAS is off so
     *  the clean path stays bit-identical to pre-RAS builds. */
    struct RasState
    {
        ras::MediaFaultParams mediaParams;
        std::unique_ptr<ras::MediaFaultProcess> media;
        ras::HealthMonitor monitor;
        /** Scheduled events for this device, sorted by tick. */
        std::vector<ras::ScheduledFault> events;
        std::size_t nextEvent = 0;
        /** Next patrol-scrub pass (0 = patrol disabled). */
        Tick nextScrub = 0;
        ras::RasStats stats;

        RasState(const ras::FaultPlan &plan, unsigned device,
                 std::uint64_t seed);
    };

    DeviceProfile profile_;
    std::vector<std::unique_ptr<dram::Channel>> channels_;
    Rng rng_;
    std::unique_ptr<RasState> ras_;

    Tick schedFreeAt_ = 0;
    Tick lastArrival_ = 0;
    double util_ = 0.0;
    /** EWMA of achieved GB/s for the thermal model. */
    double ewmaGBps_ = 0.0;
    /** Measurement window for the bandwidth estimate. */
    Tick windowStart_ = 0;
    std::uint64_t windowBytes_ = 0;

    Tick idleCreditTicks_ = 0;

    ControllerStats stats_;
};

}  // namespace cxlsim::cxl

#endif  // CXLSIM_CXL_CONTROLLER_HH
