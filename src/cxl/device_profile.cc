#include "device_profile.hh"

#include "sim/logging.hh"

namespace cxlsim::cxl {

namespace {

void
checkProb(double v, const std::string &profile, const char *what)
{
    if (!(v >= 0.0 && v <= 1.0))
        throw ConfigError(profile + ": " + what +
                          " must be a probability in [0, 1], got " +
                          std::to_string(v));
}

void
checkNonNegative(double v, const std::string &profile,
                 const char *what)
{
    if (!(v >= 0.0))
        throw ConfigError(profile + ": " + what +
                          " must be non-negative, got " +
                          std::to_string(v));
}

void
checkPositive(double v, const std::string &profile, const char *what)
{
    if (!(v > 0.0))
        throw ConfigError(profile + ": " + what +
                          " must be positive, got " +
                          std::to_string(v));
}

}  // namespace

void
HiccupParams::validate() const
{
    const std::string ctx = "hiccup params";
    checkProb(baseProb, ctx, "base probability");
    checkProb(loadProb, ctx, "load probability");
    checkNonNegative(loadExponent, ctx, "load exponent");
    if (!(onsetUtil >= 0.0 && onsetUtil < 1.0))
        throw ConfigError(ctx + ": onset utilization must be in "
                                "[0, 1), got " +
                          std::to_string(onsetUtil));
    checkNonNegative(minNs, ctx, "min pause");
    if (!(maxNs >= minNs))
        throw ConfigError(ctx + ": max pause must be >= min pause");
    checkPositive(alpha, ctx, "Pareto shape");
}

void
ThermalParams::validate() const
{
    const std::string ctx = "thermal params";
    checkPositive(bwThresholdGBps, ctx, "bandwidth threshold");
    checkProb(throttleProb, ctx, "throttle probability");
    checkNonNegative(pauseNs, ctx, "pause duration");
}

void
DeviceProfile::validate() const
{
    const std::string ctx =
        name.empty() ? std::string("device profile") : name;
    checkPositive(linkCfg.gbpsPerDir, ctx, "link bandwidth");
    checkNonNegative(linkCfg.propagationNs, ctx, "link propagation");
    checkNonNegative(linkCfg.turnaroundNs, ctx, "link turnaround");
    if (dramChannels == 0)
        throw ConfigError(ctx + ": DRAM channel count must be >= 1");
    if (!(refreshHiding >= 0.0 && refreshHiding <= 1.0))
        throw ConfigError(ctx + ": refresh hiding must be in [0, 1]");
    checkNonNegative(controllerNs, ctx, "controller latency");
    checkPositive(schedulerPerReqNs, ctx, "scheduler occupancy");
    if (queueCapacity == 0)
        throw ConfigError(ctx + ": queue capacity must be >= 1");
    checkNonNegative(numaExtraNs, ctx, "remote-socket extra latency");
    if (capacityBytes == 0)
        throw ConfigError(ctx + ": capacity must be non-zero");
    try {
        hiccups.validate();
        thermal.validate();
    } catch (const ConfigError &e) {
        throw ConfigError(ctx + ": " + e.what());
    }
}

DeviceProfile
cxlA()
{
    DeviceProfile p;
    p.name = "CXL-A";
    p.linkCfg.gbpsPerDir = 24.0;     // x8 effective
    p.linkCfg.propagationNs = 15.0;
    p.halfDuplexLink = false;
    p.dramTiming = dram::ddr4_2933();
    p.dramChannels = 2;
    p.refreshHiding = 0.96;
    p.controllerNs = 96.0;
    p.schedulerPerReqNs = 2.0;       // 32 GB/s mixed peak
    p.queueCapacity = 64;
    p.hiccups.baseProb = 0.0004;
    p.hiccups.loadProb = 0.05;
    p.hiccups.loadExponent = 2.0;
    p.hiccups.onsetUtil = 0.30;      // tails start at ~30% util (Fig 3c)
    p.hiccups.minNs = 150.0;
    p.hiccups.maxNs = 900.0;
    p.hiccups.alpha = 1.6;
    p.numaExtraNs = 81.0;            // +161ns total with the UPI hop
    p.capacityBytes = 128ULL << 30;
    return p;
}

DeviceProfile
cxlB()
{
    DeviceProfile p;
    p.name = "CXL-B";
    p.linkCfg.gbpsPerDir = 22.0;
    p.linkCfg.propagationNs = 18.0;
    p.halfDuplexLink = false;
    p.dramTiming = dram::ddr5_4800();
    p.dramChannels = 1;
    p.refreshHiding = 0.88;
    p.controllerNs = 135.0;
    p.schedulerPerReqNs = 2.46;      // 26 GB/s mixed peak
    p.queueCapacity = 48;
    p.hiccups.baseProb = 0.0045;     // visible tails even at idle
    p.hiccups.loadProb = 0.08;
    p.hiccups.loadExponent = 1.5;
    p.hiccups.onsetUtil = 0.15;
    p.hiccups.minNs = 120.0;
    p.hiccups.maxNs = 2000.0;
    p.hiccups.alpha = 1.1;
    p.numaExtraNs = 122.0;           // +202ns total
    p.capacityBytes = 128ULL << 30;
    return p;
}

DeviceProfile
cxlC()
{
    DeviceProfile p;
    p.name = "CXL-C";
    p.linkCfg.gbpsPerDir = 21.0;     // shared, half-duplex (FPGA IP)
    p.linkCfg.propagationNs = 40.0;  // FPGA fabric latency
    p.linkCfg.turnaroundNs = 8.0;    // per-flit effective (batching)
    p.halfDuplexLink = true;
    p.dramTiming = dram::ddr4_2933();
    p.dramChannels = 2;
    p.refreshHiding = 0.80;
    p.controllerNs = 217.0;
    p.schedulerPerReqNs = 3.05;      // 21 GB/s peak (read-only best)
    p.queueCapacity = 32;
    p.hiccups.baseProb = 0.008;      // worst tails: spikes to ~3us
    p.hiccups.loadProb = 0.12;
    p.hiccups.loadExponent = 1.3;
    p.hiccups.onsetUtil = 0.10;
    p.hiccups.minNs = 150.0;
    p.hiccups.maxNs = 3000.0;
    p.hiccups.alpha = 1.0;
    p.thermal.bwThresholdGBps = 17.0;
    p.thermal.throttleProb = 0.01;
    p.thermal.pauseNs = 500.0;
    p.numaExtraNs = 147.0;           // +227ns total
    p.capacityBytes = 16ULL << 30;   // limits evaluation to 60 workloads
    return p;
}

DeviceProfile
cxlD()
{
    DeviceProfile p;
    p.name = "CXL-D";
    p.linkCfg.gbpsPerDir = 52.0;     // x16 PCIe 5
    p.linkCfg.propagationNs = 15.0;
    p.halfDuplexLink = false;
    p.dramTiming = dram::ddr5_4800();
    p.dramChannels = 2;
    p.refreshHiding = 0.98;
    p.controllerNs = 115.0;
    p.schedulerPerReqNs = 1.08;      // 59 GB/s mixed peak
    p.queueCapacity = 96;
    p.hiccups.baseProb = 0.0002;     // best stability of the four
    p.hiccups.loadProb = 0.04;
    p.hiccups.loadExponent = 3.0;
    p.hiccups.onsetUtil = 0.70;      // tails appear only near saturation
    p.hiccups.minNs = 120.0;
    p.hiccups.maxNs = 700.0;
    p.hiccups.alpha = 1.8;
    p.numaExtraNs = 14.0;            // +94ns total
    p.capacityBytes = 756ULL << 30;
    return p;
}

DeviceProfile
profileByName(const std::string &name)
{
    if (name == "CXL-A")
        return cxlA();
    if (name == "CXL-B")
        return cxlB();
    if (name == "CXL-C")
        return cxlC();
    if (name == "CXL-D")
        return cxlD();
    throw ConfigError("unknown CXL device profile: " + name);
}

}  // namespace cxlsim::cxl
