/**
 * @file
 * Multi-headed pooled CXL device (the paper's pooling scenario).
 *
 * §4's takeaway — "CXL could be useful for certain real-world
 * applications, e.g., in pooling scenarios" — and Recommendation
 * #1 — "predictable latency is crucial for QoS in the cloud" —
 * motivate this extension: one expander shared by multiple host
 * ports (as in CXL 2.0 multi-headed devices / Pond-style pools).
 *
 * Each head has its own link; the controller is shared. The
 * arbiter decides how head traffic interleaves into the shared
 * request scheduler:
 *   kNone         - FCFS free-for-all (a noisy neighbour can
 *                   monopolize the scheduler),
 *   kRoundRobin   - per-head queues drained fairly,
 *   kWeighted     - bandwidth-weighted fair sharing.
 *
 * The pooling bench measures tenant-A tail latency as tenant-B
 * load rises under each policy.
 */

#ifndef CXLSIM_CXL_POOL_HH
#define CXLSIM_CXL_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/controller.hh"
#include "cxl/device.hh"
#include "cxl/device_profile.hh"
#include "link/link.hh"
#include "sim/types.hh"

namespace cxlsim::cxl {

/** Head-arbitration policy for the shared request scheduler. */
enum class PoolArbitration : std::uint8_t {
    kNone,
    kRoundRobin,
    kWeighted,
};

/** Per-head counters. */
struct HeadStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** Extra ticks spent waiting on the arbiter. */
    double arbWaitNs = 0.0;
};

/**
 * A type-3 expander with N host ports sharing one controller.
 *
 * Fairness is enforced the way CXL does it — credit-based flow
 * control: each head owns a share of the device's request-queue
 * credits, and a head that exhausts its credits must wait for one
 * of its outstanding requests to complete before injecting more.
 * Under kNone a single head may consume the whole queue.
 */
class PooledCxlDevice
{
  public:
    /**
     * @param profile  Device preset (e.g. cxlD() for a big pool).
     * @param heads    Number of host ports.
     * @param policy   Arbitration policy.
     * @param weights  Relative share per head (kWeighted only);
     *                 defaults to equal shares.
     */
    PooledCxlDevice(const DeviceProfile &profile, unsigned heads,
                    PoolArbitration policy, std::uint64_t seed,
                    std::vector<double> weights = {});

    /**
     * Earliest tick at which @p head may inject a new request
     * (credit availability). Callers running a closed loop should
     * defer issue until this time so requests enter the shared
     * scheduler in true time order — exactly how CXL flow-control
     * credits gate a real host bridge.
     */
    Tick earliestAdmission(unsigned head, Tick now);

    /** 64B read from @p head; returns host-visible completion. */
    Tick read(unsigned head, Addr addr, Tick host_issue)
    {
        return readEx(head, addr, host_issue).done;
    }

    /** 64B write from @p head. */
    Tick write(unsigned head, Addr addr, Tick host_issue)
    {
        return writeEx(head, addr, host_issue).done;
    }

    /** As read()/write(), with the RAS completion status (the
     *  shared controller's health gates every head at once). */
    ServiceOutcome readEx(unsigned head, Addr addr, Tick host_issue);
    ServiceOutcome writeEx(unsigned head, Addr addr, Tick host_issue);

    /** Arm the fault plan on each head link + shared controller. */
    void enableRas(const ras::FaultPlan &plan, unsigned device,
                   std::uint64_t seed);

    ras::DeviceHealth health() const { return ctrl_.health(); }

    /** Aggregate RAS counters (all head links + controller). */
    void addRasTo(ras::RasStats *out) const;

    unsigned heads() const
    {
        return static_cast<unsigned>(links_.size());
    }
    const HeadStats &headStats(unsigned head) const
    {
        return stats_[head];
    }
    const ControllerStats &controllerStats() const
    {
        return ctrl_.stats();
    }

  private:
    /** Arbiter: earliest tick @p head may enter the scheduler
     *  (credit-based: waits for an outstanding-request credit). */
    Tick arbitrate(unsigned head, Tick arrival);

    /** Record a completion so its credit can be reclaimed. */
    void retire(unsigned head, Tick completion);

    DeviceProfile profile_;
    PoolArbitration policy_;
    std::vector<double> weights_;
    std::vector<std::unique_ptr<link::DuplexLink>> links_;
    std::vector<HeadStats> stats_;
    /** Outstanding-request completion times per head (credits). */
    std::vector<std::vector<Tick>> inflight_;
    /** Recent activity horizon per head (for contention checks). */
    std::vector<Tick> lastActive_;
    CxlController ctrl_;
};

}  // namespace cxlsim::cxl

#endif  // CXLSIM_CXL_POOL_HH
