#include "controller.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/invariants.hh"

namespace cxlsim::cxl {

CxlController::CxlController(const DeviceProfile &profile,
                             std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    profile_.validate();
    for (unsigned c = 0; c < profile_.dramChannels; ++c) {
        dram::ChannelConfig cc;
        cc.timing = profile_.dramTiming;
        cc.refreshHiding = profile_.refreshHiding;
        cc.seed = seed * 7919 + c;
        channels_.push_back(std::make_unique<dram::Channel>(cc));
    }
}

CxlController::RasState::RasState(const ras::FaultPlan &plan,
                                  unsigned device, std::uint64_t seed)
    : mediaParams(plan.media),
      monitor(plan.health),
      events(plan.eventsFor(device))
{
    if (mediaParams.enabled())
        media = std::make_unique<ras::MediaFaultProcess>(
            mediaParams, seed ^ 0x9e3779b97f4a7c15ULL);
    if (mediaParams.patrolIntervalUs > 0.0)
        nextScrub = usToTicks(mediaParams.patrolIntervalUs);
}

void
CxlController::enableRas(const ras::FaultPlan &plan, unsigned device,
                         std::uint64_t seed)
{
    plan.validate();
    if (plan.enabled())
        ras_ = std::make_unique<RasState>(plan, device, seed);
}

void
CxlController::noteLinkDown()
{
    if (ras_)
        ras_->monitor.noteLinkDown();
}

ras::DeviceHealth
CxlController::health() const
{
    return ras_ ? ras_->monitor.state()
                : ras::DeviceHealth::kHealthy;
}

void
CxlController::addRasTo(ras::RasStats *out) const
{
    if (!ras_)
        return;
    *out += ras_->stats;
    out->degradedEntries += ras_->monitor.degradedEntries();
    out->offlineEntries += ras_->monitor.offlineEntries();
}

void
CxlController::applyScheduledEvents(Tick now)
{
    auto &r = *ras_;
    while (r.nextEvent < r.events.size() &&
           r.events[r.nextEvent].at <= now) {
        switch (r.events[r.nextEvent].kind) {
          case ras::FaultEventKind::kOffline:
            r.monitor.force(ras::DeviceHealth::kOffline);
            break;
          case ras::FaultEventKind::kDegrade:
            r.monitor.force(ras::DeviceHealth::kDegraded);
            break;
          case ras::FaultEventKind::kRecover:
            r.monitor.recover();
            break;
        }
        ++r.nextEvent;
    }
}

Tick
CxlController::patrolScrubCatchUp(Tick now)
{
    // Patrol scrub occupies the scheduler like a background
    // request stream: every elapsed interval pushes the schedule
    // tail out by one pass.
    auto &r = *ras_;
    Tick extra = 0;
    if (r.nextScrub == 0)
        return 0;
    const Tick interval = usToTicks(r.mediaParams.patrolIntervalUs);
    while (r.nextScrub <= now) {
        extra += nsToTicks(r.mediaParams.patrolNs);
        ++r.stats.patrolScrubs;
        r.nextScrub += interval;
    }
    return extra;
}

double
CxlController::hiccupProbability() const
{
    const auto &h = profile_.hiccups;
    double p = h.baseProb;
    if (util_ > h.onsetUtil && h.loadProb > 0.0) {
        const double x = (util_ - h.onsetUtil) / (1.0 - h.onsetUtil);
        p += h.loadProb * std::pow(x, h.loadExponent);
    }
    return p;
}

void
CxlController::updateUtilization(Tick now)
{
    // Windowed bandwidth estimate (robust to bursty arrivals,
    // unlike per-arrival inter-arrival rates).
    constexpr Tick kWindow = 2 * kTicksPerUs;
    windowBytes_ += 64;
    if (now < windowStart_) {
        // Slightly out-of-order arrival; fold into current window.
        return;
    }
    if (now - windowStart_ >= kWindow) {
        const double gbps =
            static_cast<double>(windowBytes_) /
            ticksToNs(now - windowStart_);
        constexpr double a = 0.3;
        ewmaGBps_ = a * gbps + (1.0 - a) * ewmaGBps_;
        util_ = std::clamp(ewmaGBps_ / profile_.schedPeakGBps(),
                           0.0, 1.0);
        windowStart_ = now;
        windowBytes_ = 0;
    }
    lastArrival_ = now;
}

ServiceOutcome
CxlController::serviceEx(Addr addr, bool is_write, Tick arrival)
{
    if (ras_) {
        applyScheduledEvents(arrival);
        if (ras::isDown(ras_->monitor.state())) {
            // Down devices drop the request on the floor: the host
            // sees no completion and its timer expires.
            ++ras_->stats.refusedRequests;
            return {arrival, ras::Status::kTimeout};
        }
        schedFreeAt_ += patrolScrubCatchUp(arrival);
    }

    ++stats_.requests;
    updateUtilization(arrival);

    // Work-conserving scheduler with idle backfill: callers (e.g.
    // the pooled-device arbiter) may present arrivals out of time
    // order. A request arriving before the current schedule tail
    // can be served in an idle gap the scheduler provably had,
    // instead of queueing behind slots scheduled for the future.
    const Tick perReq = nsToTicks(profile_.schedulerPerReqNs);
    Tick start;
    bool backfilled = false;
    if (arrival >= schedFreeAt_) {
        idleCreditTicks_ = std::min<Tick>(
            idleCreditTicks_ + (arrival - schedFreeAt_),
            kTicksPerUs);
        start = arrival;
    } else if (idleCreditTicks_ >= perReq) {
        idleCreditTicks_ -= perReq;
        start = arrival;
        backfilled = true;
    } else {
        start = schedFreeAt_;
    }

    // Vendor hiccup process: a heavy-tailed extra delay for this
    // request (flow-control backpressure accumulation, scheduler
    // reordering, transient management traffic). It inflates the
    // request's latency without stalling the whole pipeline —
    // devices reach their rated bandwidth despite their tails
    // (Table 1 vs Figure 3).
    Tick hiccupDelay = 0;
    if (rng_.chance(hiccupProbability())) {
        const auto &h = profile_.hiccups;
        const double pauseNs =
            rng_.boundedPareto(h.minNs, h.maxNs, h.alpha);
        hiccupDelay = nsToTicks(pauseNs);
        ++stats_.hiccups;
        stats_.hiccupNs += pauseNs;
    }

    // Thermal throttling when sustained bandwidth exceeds the
    // device's envelope: this one does block the scheduler.
    const auto &th = profile_.thermal;
    if (ewmaGBps_ > th.bwThresholdGBps &&
        rng_.chance(th.throttleProb)) {
        start += nsToTicks(th.pauseNs);
        ++stats_.thermalPauses;
    }

    // Scheduler occupancy caps the total request rate (a
    // backfilled request consumed a past idle slot instead).
    if (!backfilled)
        schedFreeAt_ = start + perReq;

    // Line-interleave across DDR channels (channel-local address
    // so one channel's stream covers all of its banks).
    const Addr line = addr / kCacheLineBytes;
    const std::size_t n = channels_.size();
    auto &chan = *channels_[line % n];
    const Addr local = (line / n) * kCacheLineBytes;
    const Tick dramDone = chan.access(local, is_write, start);

    // Fixed pipeline latency for flit parse, queue traversal and
    // response packing, plus any hiccup delay.
    Tick done =
        dramDone + nsToTicks(profile_.controllerNs) + hiccupDelay;

    ras::Status status = ras::Status::kOk;
    if (ras_) {
        auto &r = *ras_;
        if (r.media) {
            const ras::MediaOutcome mo = r.media->sample();
            done += mo.extraTicks;
            if (mo.corrected)
                ++r.stats.corrected;
            if (mo.poisoned) {
                ++r.stats.uncorrected;
                if (!is_write) {
                    // Reads return the (useless) data with poison;
                    // a poisoned write target is simply recorded.
                    ++r.stats.poisonedReturns;
                    status = ras::Status::kPoisoned;
                }
            }
            r.monitor.recordOutcome(mo.poisoned);
        }
        // A Degraded device runs its ECC pipeline in a paranoid
        // demand-scrub mode: every access pays the correction
        // latency on top of any sampled fault.
        if (r.monitor.state() == ras::DeviceHealth::kDegraded)
            done += nsToTicks(r.mediaParams.scrubExtraNs);
    }

    // Service contracts (DESIGN.md §10): a completion can never
    // precede its arrival, and the bandwidth-utilization EWMA is
    // clamped into [0, 1] by construction.
    if (sim::Invariants *inv = sim::currentInvariants()) {
        if (done < arrival)
            inv->record("cxl/completion-order", "CxlController",
                        "arrival=" + std::to_string(arrival) +
                            " done=" + std::to_string(done));
        if (util_ < 0.0 || util_ > 1.0)
            inv->record("cxl/utilization-bounds", "CxlController",
                        "util=" + std::to_string(util_));
    }

    return {done, status};
}

double
CxlController::dramRowHitRate() const
{
    std::uint64_t hits = 0, total = 0;
    for (const auto &c : channels_) {
        hits += c->stats().rowHits;
        total += c->stats().reads + c->stats().writes;
    }
    return total ? static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 0.0;
}

}  // namespace cxlsim::cxl
