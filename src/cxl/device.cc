#include "device.hh"

#include <algorithm>

namespace cxlsim::cxl {

namespace {

/** Switch stage parameters: generous bandwidth, real forwarding cost. */
link::LinkConfig
switchLinkConfig()
{
    link::LinkConfig cfg;
    cfg.gbpsPerDir = 64.0;
    cfg.propagationNs = 150.0;  // store-and-forward + arbitration
    return cfg;
}

}  // namespace

CxlDevice::CxlDevice(const DeviceProfile &profile, std::uint64_t seed,
                     unsigned switch_hops)
    : profile_(profile), ctrl_(profile, seed ^ 0xc3a5c85c97cb3127ULL)
{
    if (profile_.halfDuplexLink)
        halfDuplex_ =
            std::make_unique<link::HalfDuplexLink>(profile_.linkCfg);
    else
        duplex_ = std::make_unique<link::DuplexLink>(profile_.linkCfg);
    for (unsigned i = 0; i < switch_hops; ++i)
        switches_.push_back(
            std::make_unique<link::DuplexLink>(switchLinkConfig()));
}

link::SendResult
CxlDevice::sendLinkEx(unsigned bytes, link::Dir dir, Tick now)
{
    if (halfDuplex_) {
        // FPGA IP: only data payloads occupy the shared medium;
        // small request/completion flits ride a side channel and
        // pay propagation only. Direction switches between read
        // data and write data incur the turnaround penalty that
        // degrades CXL-C under mixed read/write traffic (Fig 5).
        if (bytes < kDataBytes)
            return {now + nsToTicks(
                              halfDuplex_->config().propagationNs),
                    false};
        return halfDuplex_->sendEx(bytes, dir, now);
    }
    return duplex_->sendEx(bytes, dir, now);
}

void
CxlDevice::enableRas(const ras::FaultPlan &plan, unsigned device,
                     std::uint64_t seed)
{
    ctrl_.enableRas(plan, device, seed);
    const std::uint64_t linkSeed = seed ^ 0x94d049bb133111ebULL;
    if (halfDuplex_)
        halfDuplex_->enableFaults(plan.link, linkSeed);
    else
        duplex_->enableFaults(plan.link, linkSeed);
}

void
CxlDevice::addRasTo(ras::RasStats *out) const
{
    if (halfDuplex_)
        halfDuplex_->addRasTo(out);
    else
        duplex_->addRasTo(out);
    ctrl_.addRasTo(out);
}

Tick
CxlDevice::throughSwitches(unsigned bytes, link::Dir dir, Tick now)
{
    if (dir == link::Dir::kToDevice) {
        for (auto &sw : switches_)
            now = sw->send(bytes, dir, now);
    } else {
        for (auto it = switches_.rbegin(); it != switches_.rend(); ++it)
            now = (*it)->send(bytes, dir, now);
    }
    return now;
}

ServiceOutcome
CxlDevice::readEx(Addr addr, Tick host_issue)
{
    Tick t = throughSwitches(kReadRequestBytes, link::Dir::kToDevice,
                             host_issue);
    const auto req =
        sendLinkEx(kReadRequestBytes, link::Dir::kToDevice, t);
    if (req.lost) {
        // Replay budget exhausted on the request flit: the
        // controller never sees it. The host may re-issue.
        ctrl_.noteLinkDown();
        return {req.at, ras::Status::kRetryable};
    }
    const ServiceOutcome so =
        ctrl_.serviceEx(addr, /*is_write=*/false, req.at);
    if (so.status == ras::Status::kTimeout)
        return so;  // device down: no data ever comes back
    const auto data =
        sendLinkEx(kDataBytes, link::Dir::kFromDevice, so.done);
    t = throughSwitches(kDataBytes, link::Dir::kFromDevice, data.at);
    if (data.lost) {
        ctrl_.noteLinkDown();
        return {t, ras::Status::kRetryable};
    }
    return {t, so.status};
}

ServiceOutcome
CxlDevice::writeEx(Addr addr, Tick host_issue)
{
    // Writes are posted: the command header reaches the controller
    // at wire speed and is queued while the data flits stream over
    // the link. Completion (NDR) requires both the data transfer
    // and the DRAM write to finish. Modelling the command path
    // independently keeps the controller's arrival order close to
    // issue order, as in real devices with per-request queue slots.
    Tick dataArrive = throughSwitches(kDataBytes,
                                      link::Dir::kToDevice,
                                      host_issue);
    const auto data =
        sendLinkEx(kDataBytes, link::Dir::kToDevice, dataArrive);
    if (data.lost) {
        ctrl_.noteLinkDown();
        return {data.at, ras::Status::kRetryable};
    }
    const Tick cmdArrive =
        host_issue +
        nsToTicks(profile_.linkCfg.propagationNs *
                  static_cast<double>(1 + switches_.size()));
    const ServiceOutcome so =
        ctrl_.serviceEx(addr, /*is_write=*/true, cmdArrive);
    if (so.status == ras::Status::kTimeout)
        return so;  // no completion: host timer expires

    Tick t = std::max(data.at, so.done);
    const auto cmpl =
        sendLinkEx(kCompletionBytes, link::Dir::kFromDevice, t);
    t = throughSwitches(kCompletionBytes, link::Dir::kFromDevice,
                        cmpl.at);
    if (cmpl.lost) {
        ctrl_.noteLinkDown();
        return {t, ras::Status::kRetryable};
    }
    // Writes never surface poison: a bad target line is simply
    // overwritten (and counted by the controller).
    return {t, ras::Status::kOk};
}

std::uint64_t
CxlDevice::linkBytes() const
{
    const link::LinkStats &s = halfDuplex_ ? halfDuplex_->stats()
                                           : duplex_->stats();
    return s.bytes[0] + s.bytes[1];
}

}  // namespace cxlsim::cxl
