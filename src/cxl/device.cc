#include "device.hh"

#include <algorithm>

namespace cxlsim::cxl {

namespace {

/** Switch stage parameters: generous bandwidth, real forwarding cost. */
link::LinkConfig
switchLinkConfig()
{
    link::LinkConfig cfg;
    cfg.gbpsPerDir = 64.0;
    cfg.propagationNs = 150.0;  // store-and-forward + arbitration
    return cfg;
}

}  // namespace

CxlDevice::CxlDevice(const DeviceProfile &profile, std::uint64_t seed,
                     unsigned switch_hops)
    : profile_(profile), ctrl_(profile, seed ^ 0xc3a5c85c97cb3127ULL)
{
    if (profile_.halfDuplexLink)
        halfDuplex_ =
            std::make_unique<link::HalfDuplexLink>(profile_.linkCfg);
    else
        duplex_ = std::make_unique<link::DuplexLink>(profile_.linkCfg);
    for (unsigned i = 0; i < switch_hops; ++i)
        switches_.push_back(
            std::make_unique<link::DuplexLink>(switchLinkConfig()));
}

Tick
CxlDevice::sendLink(unsigned bytes, link::Dir dir, Tick now)
{
    if (halfDuplex_) {
        // FPGA IP: only data payloads occupy the shared medium;
        // small request/completion flits ride a side channel and
        // pay propagation only. Direction switches between read
        // data and write data incur the turnaround penalty that
        // degrades CXL-C under mixed read/write traffic (Fig 5).
        if (bytes < kDataBytes)
            return now + nsToTicks(
                             halfDuplex_->config().propagationNs);
        return halfDuplex_->send(bytes, dir, now);
    }
    return duplex_->send(bytes, dir, now);
}

Tick
CxlDevice::throughSwitches(unsigned bytes, link::Dir dir, Tick now)
{
    if (dir == link::Dir::kToDevice) {
        for (auto &sw : switches_)
            now = sw->send(bytes, dir, now);
    } else {
        for (auto it = switches_.rbegin(); it != switches_.rend(); ++it)
            now = (*it)->send(bytes, dir, now);
    }
    return now;
}

Tick
CxlDevice::read(Addr addr, Tick host_issue)
{
    Tick t = throughSwitches(kReadRequestBytes, link::Dir::kToDevice,
                             host_issue);
    t = sendLink(kReadRequestBytes, link::Dir::kToDevice, t);
    t = ctrl_.service(addr, /*is_write=*/false, t);
    t = sendLink(kDataBytes, link::Dir::kFromDevice, t);
    t = throughSwitches(kDataBytes, link::Dir::kFromDevice, t);
    return t;
}

Tick
CxlDevice::write(Addr addr, Tick host_issue)
{
    // Writes are posted: the command header reaches the controller
    // at wire speed and is queued while the data flits stream over
    // the link. Completion (NDR) requires both the data transfer
    // and the DRAM write to finish. Modelling the command path
    // independently keeps the controller's arrival order close to
    // issue order, as in real devices with per-request queue slots.
    Tick dataArrive = throughSwitches(kDataBytes,
                                      link::Dir::kToDevice,
                                      host_issue);
    dataArrive = sendLink(kDataBytes, link::Dir::kToDevice,
                          dataArrive);
    const Tick cmdArrive =
        host_issue +
        nsToTicks(profile_.linkCfg.propagationNs *
                  static_cast<double>(1 + switches_.size()));
    const Tick ctrlDone =
        ctrl_.service(addr, /*is_write=*/true, cmdArrive);

    Tick t = std::max(dataArrive, ctrlDone);
    t = sendLink(kCompletionBytes, link::Dir::kFromDevice, t);
    t = throughSwitches(kCompletionBytes, link::Dir::kFromDevice, t);
    return t;
}

std::uint64_t
CxlDevice::linkBytes() const
{
    const link::LinkStats &s = halfDuplex_ ? halfDuplex_->stats()
                                           : duplex_->stats();
    return s.bytes[0] + s.bytes[1];
}

}  // namespace cxlsim::cxl
