/**
 * @file
 * Per-vendor CXL device profiles.
 *
 * The paper characterizes four real CXL memory expanders (Table 1):
 *
 *   CXL-A: ASIC, CXL 1.1 x8, 2 x DDR4, 214ns idle, 24 GB/s read,
 *          32 GB/s mixed peak; tails grow from ~30% utilization.
 *   CXL-B: ASIC, CXL 1.1 x8, 1 x DDR5, 271ns idle, 22 GB/s read,
 *          26 GB/s peak; large tails even at idle (p99.9-p50 up to
 *          ~160ns, p99.99 ~1us).
 *   CXL-C: FPGA, CXL 1.1 x8, 2 x DDR4, 394ns idle, 18 GB/s read,
 *          21 GB/s peak (read-only best: cannot exploit the duplex
 *          link); worst tails, spikes to ~3us.
 *   CXL-D: ASIC, CXL 1.1 x16, 2 x DDR5, 239ns idle, 52 GB/s read,
 *          59 GB/s peak; best stability, tails only near saturation.
 *
 * Each profile bundles the link, controller and DRAM parameters
 * that produce those behaviours in the model. The vendors are
 * anonymous in the paper; these are calibrated stand-ins.
 */

#ifndef CXLSIM_CXL_DEVICE_PROFILE_HH
#define CXLSIM_CXL_DEVICE_PROFILE_HH

#include <cstdint>
#include <string>

#include "dram/timing.hh"
#include "link/link.hh"

namespace cxlsim::cxl {

/**
 * Parameters of the controller's latency "hiccup" process — the
 * abstraction for scheduler immaturity, flow-control backpressure
 * accumulation, and thermal/power management pauses that the paper
 * identifies as candidate causes of CXL tail latency (§3.2,
 * "Reasoning"). A hiccup blocks the request scheduler for a
 * bounded-Pareto-distributed duration.
 */
struct HiccupParams
{
    /** @throw ConfigError on out-of-range values. */
    void validate() const;

    /** Per-request hiccup probability at idle. */
    double baseProb = 0.0;
    /** Additional probability at full utilization. */
    double loadProb = 0.0;
    /** Utilization exponent: >1 concentrates hiccups near saturation. */
    double loadExponent = 2.0;
    /** Utilization at which load-coupled hiccups begin. */
    double onsetUtil = 0.3;
    /** Pause duration bounds (ns) and Pareto shape. */
    double minNs = 100.0;
    double maxNs = 1000.0;
    double alpha = 1.5;
};

/** Thermal throttling: sustained high power forces service pauses. */
struct ThermalParams
{
    /** @throw ConfigError on out-of-range values. */
    void validate() const;

    /** Sustained bandwidth (GB/s) above which throttling may engage. */
    double bwThresholdGBps = 1e9;  // effectively disabled by default
    /** Probability per request of a throttle pause once engaged. */
    double throttleProb = 0.0;
    /** Throttle pause duration, ns. */
    double pauseNs = 0.0;
};

/** Complete description of one CXL memory expander. */
struct DeviceProfile
{
    std::string name;

    /** Link (Flex Bus) parameters. */
    link::LinkConfig linkCfg;
    /** FPGA devices cannot drive both directions concurrently. */
    bool halfDuplexLink = false;

    /** DRAM configuration behind the controller. */
    dram::DramTiming dramTiming;
    unsigned dramChannels = 1;
    /** Refresh hiding quality of this controller (see dram::Channel). */
    double refreshHiding = 0.9;

    /** Fixed controller processing latency (parse + queue + sched), ns. */
    double controllerNs = 60.0;
    /** Scheduler occupancy per request, ns — caps total request rate. */
    double schedulerPerReqNs = 2.0;
    /** Request queue capacity (steers backpressure onset). */
    unsigned queueCapacity = 64;

    HiccupParams hiccups;
    ThermalParams thermal;

    /**
     * Extra latency when the device is accessed from a remote
     * socket (Table 1 "Remote" column); varies per vendor: +161,
     * +202, +227, +94 ns for A-D.
     */
    double numaExtraNs = 160.0;

    /** Device capacity in bytes (CXL-C has only 16 GB). */
    std::uint64_t capacityBytes = 128ULL << 30;

    /** Peak total bandwidth implied by the scheduler rate, GB/s. */
    double
    schedPeakGBps() const
    {
        return 64.0 / schedulerPerReqNs;
    }

    /**
     * Conservative-PDES lookahead contributed by this device
     * (ticks): the minimum latency any request observes crossing
     * the link and the controller's fixed processing stage. A
     * host-side logical process that is ahead of a device-side one
     * by less than this can never receive a message below its local
     * clock, so pdes::Engine epochs (DESIGN.md §11) may drain
     * [now, now + pdesLookahead()) concurrently. Deliberately
     * excludes DRAM access time, queueing, hiccups and NUMA adders:
     * lookahead must lower-bound *every* path, including LLC-side
     * completions that skip them.
     */
    Tick
    pdesLookahead() const
    {
        return nsToTicks(linkCfg.minTransferNs() + controllerNs);
    }

    /**
     * Bounds-check every field (probabilities in [0,1], latencies
     * non-negative, channel/queue counts non-zero) so a bad value
     * fails loudly at construction instead of silently propagating
     * NaNs through the latency model.
     *
     * @throw ConfigError with the offending field named.
     */
    void validate() const;
};

/** The four calibrated device presets. */
DeviceProfile cxlA();
DeviceProfile cxlB();
DeviceProfile cxlC();
DeviceProfile cxlD();

/** Look up a preset by name ("CXL-A".."CXL-D"). */
DeviceProfile profileByName(const std::string &name);

}  // namespace cxlsim::cxl

#endif  // CXLSIM_CXL_DEVICE_PROFILE_HH
