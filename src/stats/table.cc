#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace cxlsim::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    SIM_ASSERT(cells.size() == headers_.size(), "table row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };
    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return out;
}

std::string
Table::csv() const
{
    std::string out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out += ',';
        }
        out += '\n';
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
    return out;
}

}  // namespace cxlsim::stats
