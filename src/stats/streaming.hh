/**
 * @file
 * Streaming scalar statistics (Welford) and bandwidth meters.
 */

#ifndef CXLSIM_STATS_STREAMING_HH
#define CXLSIM_STATS_STREAMING_HH

#include <cstdint>

#include "sim/types.hh"

namespace cxlsim::stats {

/** Count / mean / variance / min / max over a stream of doubles. */
class StreamingStats
{
  public:
    void add(double v);
    void merge(const StreamingStats &o);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Byte-throughput meter: bytes observed over a tick interval,
 * reported in GB/s. Used to measure achieved bandwidth for the
 * latency-bandwidth curves.
 */
class BandwidthMeter
{
  public:
    void addBytes(std::uint64_t bytes) { bytes_ += bytes; }
    void start(Tick t) { start_ = t; }
    void stop(Tick t) { stop_ = t; }

    std::uint64_t bytes() const { return bytes_; }

    /** Achieved throughput in GB/s over [start, stop]. */
    double gbps() const;

    void
    reset()
    {
        bytes_ = 0;
        start_ = stop_ = 0;
    }

  private:
    std::uint64_t bytes_ = 0;
    Tick start_ = 0;
    Tick stop_ = 0;
};

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_STREAMING_HH
