/**
 * @file
 * Minimal streaming JSON writer for machine-readable CLI output
 * (RAS reports, run summaries). No external dependency, emits
 * deterministic key order (whatever order the caller writes), and
 * escapes strings per RFC 8259.
 */

#ifndef CXLSIM_STATS_JSON_HH
#define CXLSIM_STATS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cxlsim::stats {

/** Append-only JSON document builder. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object key; must be followed by a value or container. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** Finished document (valid once all containers are closed). */
    const std::string &str() const { return out_; }

  private:
    void separator();
    void escaped(std::string_view s);

    std::string out_;
    /** One frame per open container: true = object, false = array. */
    std::vector<bool> stack_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElem_;
    /** A key was just written; next value is its payload. */
    bool pendingKey_ = false;
};

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_JSON_HH
