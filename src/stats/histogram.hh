/**
 * @file
 * Log-bucketed histogram for latency distributions.
 *
 * The characterization experiments (Figures 3, 4, 6, 7) need
 * per-request latency distributions with accurate high percentiles
 * (p99.9, p99.99, p99.999) over millions of samples. A log-spaced
 * histogram gives bounded memory and ~1% relative bucket error,
 * which is ample for nanosecond latency CDFs.
 */

#ifndef CXLSIM_STATS_HISTOGRAM_HH
#define CXLSIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace cxlsim::stats {

/**
 * Histogram over positive values with geometrically spaced buckets.
 *
 * Values are clamped into [minValue, maxValue]. Percentile queries
 * interpolate linearly within a bucket.
 */
class Histogram
{
  public:
    /**
     * @param min_value Lower bound of the tracked range (> 0).
     * @param max_value Upper bound of the tracked range.
     * @param buckets_per_decade Resolution; 64 gives <2% bucket width.
     */
    explicit Histogram(double min_value = 1.0, double max_value = 1e9,
                       unsigned buckets_per_decade = 64);

    /** Record one observation. */
    void record(double v);

    /** Record @p n identical observations. */
    void recordN(double v, std::uint64_t n);

    /** Merge another histogram with identical geometry. */
    void merge(const Histogram &other);

    /** Number of recorded observations. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean of recorded observations (exact, not bucketed). */
    double mean() const;

    double min() const { return count_ ? minSeen_ : 0.0; }
    double max() const { return count_ ? maxSeen_ : 0.0; }

    /**
     * Value at quantile @p q in [0, 1], e.g. 0.999 for p99.9.
     * Returns 0 when empty.
     */
    double percentile(double q) const;

    /** Shorthand for percentile(0.5). */
    double median() const { return percentile(0.5); }

    /**
     * Dump the distribution as (value, cumulative_fraction) pairs,
     * one point per non-empty bucket — the format the figure benches
     * print for CDF curves.
     */
    std::vector<std::pair<double, double>> cdfPoints() const;

    /** Remove all observations, keeping geometry. */
    void reset();

  private:
    unsigned bucketFor(double v) const;
    double bucketLow(unsigned i) const;
    double bucketHigh(unsigned i) const;

    double minValue_;
    double maxValue_;
    double logMin_;
    double invLogStep_;
    double logStep_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double minSeen_ = 0.0;
    double maxSeen_ = 0.0;
};

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_HISTOGRAM_HH
