#include "summary.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cxlsim::stats {

double
quantile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
fractionBelow(const std::vector<double> &samples, double threshold)
{
    if (samples.empty())
        return 0.0;
    const auto n = static_cast<double>(
        std::count_if(samples.begin(), samples.end(),
                      [&](double v) { return v <= threshold; }));
    return n / static_cast<double>(samples.size());
}

ViolinSummary
violinSummary(std::vector<double> samples, unsigned grid_points)
{
    ViolinSummary v{};
    if (samples.empty())
        return v;
    std::sort(samples.begin(), samples.end());
    const auto n = samples.size();
    auto at = [&](double q) {
        const double pos = q * static_cast<double>(n - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, n - 1);
        const double frac = pos - static_cast<double>(lo);
        return samples[lo] * (1.0 - frac) + samples[hi] * frac;
    };
    v.min = samples.front();
    v.max = samples.back();
    v.p25 = at(0.25);
    v.median = at(0.5);
    v.p75 = at(0.75);
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    v.mean = sum / static_cast<double>(n);

    // Silverman bandwidth for the KDE.
    double m2 = 0.0;
    for (double s : samples)
        m2 += (s - v.mean) * (s - v.mean);
    const double sd = std::sqrt(m2 / static_cast<double>(n));
    const double iqr = v.p75 - v.p25;
    double h = 0.9 * std::min(sd, iqr / 1.34) *
               std::pow(static_cast<double>(n), -0.2);
    if (h <= 0.0)
        h = std::max(1e-9, (v.max - v.min) / 16.0 + 1e-9);

    v.gridValues.resize(grid_points);
    v.density.resize(grid_points);
    const double span = std::max(v.max - v.min, 1e-12);
    for (unsigned i = 0; i < grid_points; ++i) {
        const double x =
            v.min + span * static_cast<double>(i) /
                        static_cast<double>(grid_points - 1);
        v.gridValues[i] = x;
        double d = 0.0;
        for (double s : samples) {
            const double z = (x - s) / h;
            d += std::exp(-0.5 * z * z);
        }
        v.density[i] = d / (static_cast<double>(n) * h *
                            std::sqrt(2.0 * M_PI));
    }
    return v;
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    SIM_ASSERT(x.size() == y.size(), "pearson: size mismatch");
    const auto n = x.size();
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
regressionSlope(const std::vector<double> &x, const std::vector<double> &y)
{
    SIM_ASSERT(x.size() == y.size(), "regressionSlope: size mismatch");
    const auto n = x.size();
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
    }
    return sxx > 0.0 ? sxy / sxx : 0.0;
}

std::vector<std::pair<double, double>>
empiricalCdf(std::vector<double> samples)
{
    std::vector<std::pair<double, double>> pts;
    if (samples.empty())
        return pts;
    std::sort(samples.begin(), samples.end());
    const auto n = static_cast<double>(samples.size());
    pts.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i)
        pts.emplace_back(samples[i], static_cast<double>(i + 1) / n);
    return pts;
}

}  // namespace cxlsim::stats
