/**
 * @file
 * Fixed-width text table and CSV emitters used by the benchmark
 * harnesses to print the rows/series the paper's tables and figures
 * report.
 */

#ifndef CXLSIM_STATS_TABLE_HH
#define CXLSIM_STATS_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace cxlsim::stats {

/** A simple column-aligned table that renders to stdout or a string. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render with padded columns and a header underline. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const { std::fputs(render().c_str(), stdout); }

    /** Render as CSV (no padding). */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_TABLE_HH
