#include "timeseries.hh"

#include <algorithm>

namespace cxlsim::stats {

double
TimeSeries::maxValue() const
{
    double m = 0.0;
    for (const auto &p : points_)
        m = std::max(m, p.value);
    return m;
}

double
TimeSeries::meanValue() const
{
    if (points_.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &p : points_)
        s += p.value;
    return s / static_cast<double>(points_.size());
}

TimeSeries
TimeSeries::downsampleMax(std::size_t max_points) const
{
    TimeSeries out;
    if (points_.empty() || max_points == 0)
        return out;
    if (points_.size() <= max_points)
        return *this;
    const std::size_t stride =
        (points_.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < points_.size(); i += stride) {
        const std::size_t end = std::min(i + stride, points_.size());
        TimePoint best = points_[i];
        for (std::size_t j = i + 1; j < end; ++j)
            if (points_[j].value > best.value)
                best = points_[j];
        out.add(best.when, best.value);
    }
    return out;
}

}  // namespace cxlsim::stats
