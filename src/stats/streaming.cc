#include "streaming.hh"

#include <algorithm>
#include <cmath>

namespace cxlsim::stats {

void
StreamingStats::add(double v)
{
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
}

void
StreamingStats::merge(const StreamingStats &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += o.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ += o.n_;
}

void
StreamingStats::reset()
{
    *this = StreamingStats{};
}

double
StreamingStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

double
BandwidthMeter::gbps() const
{
    if (stop_ <= start_)
        return 0.0;
    const double secs =
        static_cast<double>(stop_ - start_) /
        static_cast<double>(kTicksPerSec);
    return static_cast<double>(bytes_) / 1e9 / secs;
}

}  // namespace cxlsim::stats
