#include "rows.hh"

#include <cstdio>

namespace cxlsim::stats {

namespace {

/** Append "<decimal>\n". */
void
appendLen(std::string *out, std::size_t n)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu\n", n);
    out->append(buf);
}

/**
 * Parse "<decimal>\n" at @p pos; advance @p pos past the newline.
 * @return false on malformed input.
 */
bool
parseLen(std::string_view blob, std::size_t *pos, std::size_t *n)
{
    std::size_t v = 0;
    std::size_t i = *pos;
    if (i >= blob.size() || blob[i] < '0' || blob[i] > '9')
        return false;
    for (; i < blob.size() && blob[i] >= '0' && blob[i] <= '9'; ++i) {
        if (v > (SIZE_MAX - 9) / 10)
            return false;  // length overflow
        v = v * 10 + static_cast<std::size_t>(blob[i] - '0');
    }
    if (i >= blob.size() || blob[i] != '\n')
        return false;
    *pos = i + 1;
    *n = v;
    return true;
}

}  // namespace

std::string
encodeRows(const std::vector<std::string> &rows)
{
    std::string out;
    std::size_t total = 16;
    for (const auto &r : rows)
        total += r.size() + 16;
    out.reserve(total);
    appendLen(&out, rows.size());
    for (const auto &r : rows) {
        appendLen(&out, r.size());
        out.append(r);
    }
    return out;
}

bool
decodeRows(std::string_view blob, std::vector<std::string> *out)
{
    std::size_t pos = 0;
    std::size_t count = 0;
    if (!parseLen(blob, &pos, &count))
        return false;
    // A count an attacker-free cache could still corrupt into
    // something huge: each row needs at least its length line, so
    // bound by the remaining bytes before allocating.
    if (count > blob.size() - pos + 1)
        return false;
    std::vector<std::string> rows;
    rows.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::size_t len = 0;
        if (!parseLen(blob, &pos, &len))
            return false;
        if (len > blob.size() - pos)
            return false;
        rows.emplace_back(blob.substr(pos, len));
        pos += len;
    }
    if (pos != blob.size())
        return false;  // trailing garbage
    *out = std::move(rows);
    return true;
}

std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf, 16);
}

}  // namespace cxlsim::stats
