/**
 * @file
 * Serializable row blocks: the unit of exchange between the sweep
 * engine (src/sim/sweep.hh) and the run cache
 * (src/sim/run_cache.hh).
 *
 * A sweep point produces an ordered list of formatted row blocks
 * (one string per output slot). encodeRows() packs such a list
 * into a single self-delimiting byte string that can be hashed,
 * persisted and later decoded back without any loss — cached
 * re-emission must be byte-identical to a live run. The format is
 * length-prefixed (rows may contain any byte including '\n'), with
 * a leading count, so truncation or corruption is always detected
 * structurally before the caller ever sees partial rows.
 */

#ifndef CXLSIM_STATS_ROWS_HH
#define CXLSIM_STATS_ROWS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cxlsim::stats {

/** Pack @p rows into one self-delimiting byte string. */
std::string encodeRows(const std::vector<std::string> &rows);

/**
 * Decode a blob produced by encodeRows().
 *
 * @return false (leaving @p out untouched) on any structural
 *         mismatch — bad header, length overrun, trailing bytes.
 */
bool decodeRows(std::string_view blob, std::vector<std::string> *out);

/** 64-bit FNV-1a over @p bytes; seedable for chained hashing. */
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 14695981039346656037ull);

/** Fixed-width lowercase-hex rendering of @p v (16 chars). */
std::string hex64(std::uint64_t v);

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_ROWS_HH
