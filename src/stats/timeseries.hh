/**
 * @file
 * Tick-stamped sample series for the 1ms-sampling experiments
 * (Figure 7a/b latency/bandwidth over time, and the Spa
 * period-based analysis in §5.6).
 */

#ifndef CXLSIM_STATS_TIMESERIES_HH
#define CXLSIM_STATS_TIMESERIES_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace cxlsim::stats {

/** One (time, value) observation. */
struct TimePoint
{
    Tick when;
    double value;
};

/** An append-only series of tick-stamped scalar samples. */
class TimeSeries
{
  public:
    void add(Tick when, double value) { points_.push_back({when, value}); }

    const std::vector<TimePoint> &points() const { return points_; }
    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }

    /** Maximum value over the series (0 if empty). */
    double maxValue() const;

    /** Mean value over the series (0 if empty). */
    double meanValue() const;

    /**
     * Downsample to at most @p max_points evenly spaced points,
     * keeping the per-window maximum (spikes must survive —
     * they are the phenomenon in Figure 7a).
     */
    TimeSeries downsampleMax(std::size_t max_points) const;

  private:
    std::vector<TimePoint> points_;
};

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_TIMESERIES_HH
