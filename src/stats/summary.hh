/**
 * @file
 * Batch summaries over sample vectors: exact quantiles, CDF grids,
 * violin-plot summaries (Figure 9a) and Pearson correlation
 * (Figure 12a's y = x check).
 */

#ifndef CXLSIM_STATS_SUMMARY_HH
#define CXLSIM_STATS_SUMMARY_HH

#include <vector>

namespace cxlsim::stats {

/** Exact quantile of a sample vector (copies and sorts). */
double quantile(std::vector<double> samples, double q);

/**
 * Fraction of samples <= @p threshold — the "X% of workloads see
 * less than Y slowdown" statistic used throughout §4.
 */
double fractionBelow(const std::vector<double> &samples, double threshold);

/** Five-number + density summary for one violin in Figure 9a. */
struct ViolinSummary
{
    double min, p25, median, p75, max, mean;
    /** Kernel-density estimate sampled at `gridValues`. */
    std::vector<double> gridValues;
    std::vector<double> density;
};

/**
 * Build a violin summary with a Gaussian KDE over @p grid_points
 * evaluation points.
 */
ViolinSummary violinSummary(std::vector<double> samples,
                            unsigned grid_points = 32);

/** Pearson correlation coefficient of two equal-length vectors. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Least-squares slope of y on x (through the data, with intercept). */
double regressionSlope(const std::vector<double> &x,
                       const std::vector<double> &y);

/**
 * CDF of a sample vector evaluated as (value, fraction<=value)
 * points at every sample (sorted) — exact empirical CDF.
 */
std::vector<std::pair<double, double>>
empiricalCdf(std::vector<double> samples);

}  // namespace cxlsim::stats

#endif  // CXLSIM_STATS_SUMMARY_HH
