#include "json.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace cxlsim::stats {

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;  // value follows its key, no comma
    }
    if (!stack_.empty()) {
        if (hasElem_.back())
            out_ += ',';
        hasElem_.back() = true;
    }
}

void
JsonWriter::escaped(std::string_view s)
{
    out_ += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out_ += "\\\"";
            break;
          case '\\':
            out_ += "\\\\";
            break;
          case '\n':
            out_ += "\\n";
            break;
          case '\t':
            out_ += "\\t";
            break;
          case '\r':
            out_ += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out_ += buf;
            } else {
                out_ += c;
            }
        }
    }
    out_ += '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out_ += '{';
    stack_.push_back(true);
    hasElem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    stack_.pop_back();
    hasElem_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out_ += '[';
    stack_.push_back(false);
    hasElem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    stack_.pop_back();
    hasElem_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    separator();
    escaped(k);
    out_ += ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separator();
    escaped(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out_ += v ? "true" : "false";
    return *this;
}

}  // namespace cxlsim::stats
