#include "histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cxlsim::stats {

Histogram::Histogram(double min_value, double max_value,
                     unsigned buckets_per_decade)
    : minValue_(min_value), maxValue_(max_value)
{
    SIM_ASSERT(min_value > 0.0 && max_value > min_value,
               "invalid histogram range");
    logMin_ = std::log10(min_value);
    logStep_ = 1.0 / static_cast<double>(buckets_per_decade);
    invLogStep_ = static_cast<double>(buckets_per_decade);
    const double decades = std::log10(max_value) - logMin_;
    const auto n = static_cast<unsigned>(
        std::ceil(decades * buckets_per_decade)) + 1;
    buckets_.assign(n, 0);
}

unsigned
Histogram::bucketFor(double v) const
{
    v = std::clamp(v, minValue_, maxValue_);
    const auto i = static_cast<long>((std::log10(v) - logMin_) *
                                     invLogStep_);
    const long last = static_cast<long>(buckets_.size()) - 1;
    return static_cast<unsigned>(std::clamp(i, 0L, last));
}

double
Histogram::bucketLow(unsigned i) const
{
    return std::pow(10.0, logMin_ + i * logStep_);
}

double
Histogram::bucketHigh(unsigned i) const
{
    return std::pow(10.0, logMin_ + (i + 1) * logStep_);
}

void
Histogram::record(double v)
{
    recordN(v, 1);
}

void
Histogram::recordN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    buckets_[bucketFor(v)] += n;
    if (count_ == 0) {
        minSeen_ = maxSeen_ = v;
    } else {
        minSeen_ = std::min(minSeen_, v);
        maxSeen_ = std::max(maxSeen_, v);
    }
    count_ += n;
    sum_ += v * static_cast<double>(n);
}

void
Histogram::merge(const Histogram &other)
{
    SIM_ASSERT(buckets_.size() == other.buckets_.size(),
               "histogram geometry mismatch");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_) {
        if (count_ == 0) {
            minSeen_ = other.minSeen_;
            maxSeen_ = other.maxSeen_;
        } else {
            minSeen_ = std::min(minSeen_, other.minSeen_);
            maxSeen_ = std::max(maxSeen_, other.maxSeen_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t b = buckets_[i];
        if (b == 0)
            continue;
        if (static_cast<double>(seen + b) >= target) {
            const double within =
                b ? (target - static_cast<double>(seen)) /
                        static_cast<double>(b)
                  : 0.0;
            const double lo = bucketLow(i);
            const double hi = bucketHigh(i);
            const double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
            return std::clamp(v, minSeen_, maxSeen_);
        }
        seen += b;
    }
    return maxSeen_;
}

std::vector<std::pair<double, double>>
Histogram::cdfPoints() const
{
    std::vector<std::pair<double, double>> pts;
    if (count_ == 0)
        return pts;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        cum += buckets_[i];
        pts.emplace_back(bucketHigh(i),
                         static_cast<double>(cum) /
                             static_cast<double>(count_));
    }
    return pts;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    minSeen_ = maxSeen_ = 0.0;
}

}  // namespace cxlsim::stats
