#include "link.hh"

namespace cxlsim::link {

SendResult
DuplexLink::sendEx(unsigned bytes, Dir dir, Tick now)
{
    const auto d = static_cast<unsigned>(dir);
    const Tick start = std::max(now, freeAt_[d]);
    const Tick ser = serializationTicks(bytes, cfg_.gbpsPerDir);
    freeAt_[d] = start + ser;
    ++stats_.transfers[d];
    stats_.bytes[d] += bytes;

    bool lost = false;
    if (faults_) {
        // Replays re-occupy the serializer: subsequent flits in
        // this direction queue behind the retry traffic.
        freeAt_[d] += faults_->flitPenalty(&lost);
    }
    return {freeAt_[d] + nsToTicks(cfg_.propagationNs), lost};
}

void
DuplexLink::enableFaults(const ras::LinkFaultParams &p,
                         std::uint64_t seed)
{
    if (p.enabled())
        faults_ = std::make_unique<ras::LinkFaultProcess>(p, seed);
}

void
DuplexLink::addRasTo(ras::RasStats *out) const
{
    if (faults_)
        faults_->addTo(out);
}

SendResult
HalfDuplexLink::sendEx(unsigned bytes, Dir dir, Tick now)
{
    const auto d = static_cast<unsigned>(dir);
    Tick start = std::max(now, freeAt_);
    const bool from = dir == Dir::kFromDevice;
    if (from != lastDirFrom_) {
        start += nsToTicks(cfg_.turnaroundNs);
        lastDirFrom_ = from;
    }
    const Tick ser = serializationTicks(bytes, cfg_.gbpsPerDir);
    freeAt_ = start + ser;
    ++stats_.transfers[d];
    stats_.bytes[d] += bytes;

    bool lost = false;
    if (faults_)
        freeAt_ += faults_->flitPenalty(&lost);
    return {freeAt_ + nsToTicks(cfg_.propagationNs), lost};
}

void
HalfDuplexLink::enableFaults(const ras::LinkFaultParams &p,
                             std::uint64_t seed)
{
    if (p.enabled())
        faults_ = std::make_unique<ras::LinkFaultProcess>(p, seed);
}

void
HalfDuplexLink::addRasTo(ras::RasStats *out) const
{
    if (faults_)
        faults_->addTo(out);
}

}  // namespace cxlsim::link
