#include "link.hh"

namespace cxlsim::link {

Tick
DuplexLink::send(unsigned bytes, Dir dir, Tick now)
{
    const auto d = static_cast<unsigned>(dir);
    const Tick start = std::max(now, freeAt_[d]);
    const Tick ser = serializationTicks(bytes, cfg_.gbpsPerDir);
    freeAt_[d] = start + ser;
    ++stats_.transfers[d];
    stats_.bytes[d] += bytes;
    return freeAt_[d] + nsToTicks(cfg_.propagationNs);
}

Tick
HalfDuplexLink::send(unsigned bytes, Dir dir, Tick now)
{
    const auto d = static_cast<unsigned>(dir);
    Tick start = std::max(now, freeAt_);
    const bool from = dir == Dir::kFromDevice;
    if (from != lastDirFrom_) {
        start += nsToTicks(cfg_.turnaroundNs);
        lastDirFrom_ = from;
    }
    const Tick ser = serializationTicks(bytes, cfg_.gbpsPerDir);
    freeAt_ = start + ser;
    ++stats_.transfers[d];
    stats_.bytes[d] += bytes;
    return freeAt_ + nsToTicks(cfg_.propagationNs);
}

}  // namespace cxlsim::link
