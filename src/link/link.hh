/**
 * @file
 * Point-to-point interconnect models.
 *
 * Three link flavours cover the paper's topologies:
 *  - DuplexLink: two independent directions with separate
 *    serialization capacity — models CXL/PCIe Flex Bus links and
 *    UPI cross-socket links, which sustain simultaneous read and
 *    write traffic (§2, "CXL operates in full duplex").
 *  - HalfDuplexLink: a single shared medium with a turnaround
 *    penalty when the transfer direction flips — models the
 *    FPGA-based CXL-C device, whose unoptimized CXL IP cannot
 *    drive both directions concurrently (§3.2, Finding #1e).
 *
 * A link transfer is charged serialization (bytes at the effective
 * rate) plus fixed propagation (PHY + transaction/link layer
 * processing, single-digit to tens of ns).
 *
 * Fault injection (optional, off by default): a seeded per-flit CRC
 * error process triggers CXL LLR-style replay — each replay round
 * re-occupies the serializer for a configurable latency; when the
 * replay budget is exhausted the flit is lost and sendEx() reports
 * the transfer failed, which the device layer escalates to a
 * link-down health event.
 */

#ifndef CXLSIM_LINK_LINK_HH
#define CXLSIM_LINK_LINK_HH

#include <algorithm>
#include <cstdint>
#include <memory>

#include "ras/ras.hh"
#include "sim/types.hh"

namespace cxlsim::link {

/** Transfer direction relative to the host. */
enum class Dir : std::uint8_t { kToDevice = 0, kFromDevice = 1 };

/** Occupancy/throughput counters per direction. */
struct LinkStats
{
    std::uint64_t transfers[2] = {0, 0};
    std::uint64_t bytes[2] = {0, 0};
};

/** Common link configuration. */
struct LinkConfig
{
    /** Effective per-direction data rate in GB/s (after protocol
     *  framing overheads such as 68B flits carrying 64B payloads). */
    double gbpsPerDir = 32.0;
    /** One-way propagation + protocol processing latency, ns. */
    double propagationNs = 25.0;
    /** Direction turnaround penalty, ns (half-duplex only). */
    double turnaroundNs = 20.0;

    /**
     * Lower bound on the one-way latency of a @p bytes transfer,
     * ns: serialization at line rate plus propagation, with every
     * optional penalty (turnaround, queueing, replays) at its
     * best case of zero. This is the link's contribution to a
     * conservative-PDES lookahead (DESIGN.md §11): no message can
     * cross the link faster, so events on the far side within this
     * window are safe to execute concurrently.
     */
    double
    minTransferNs(unsigned bytes = 64) const
    {
        return static_cast<double>(bytes) / gbpsPerDir +
               propagationNs;
    }
};

/** Arrival tick plus transport outcome of one transfer. */
struct SendResult
{
    /** Tick the flit (or its loss) is known at the far end. */
    Tick at;
    /** True when LLR replays were exhausted and the flit was lost. */
    bool lost;
};

/** Full-duplex link: independent serialization per direction. */
class DuplexLink
{
  public:
    explicit DuplexLink(const LinkConfig &cfg) : cfg_(cfg) {}

    /**
     * Transfer @p bytes in direction @p dir starting no earlier
     * than @p now; returns arrival tick at the far end.
     */
    Tick send(unsigned bytes, Dir dir, Tick now)
    {
        return sendEx(bytes, dir, now).at;
    }

    /** As send(), but also report transport failure (CRC/LLR). */
    SendResult sendEx(unsigned bytes, Dir dir, Tick now);

    /** Arm the CRC/replay fault process with a dedicated stream. */
    void enableFaults(const ras::LinkFaultParams &p,
                      std::uint64_t seed);

    /** Tick the direction's serializer frees. */
    Tick freeAt(Dir dir) const { return freeAt_[unsigned(dir)]; }

    const LinkStats &stats() const { return stats_; }
    const LinkConfig &config() const { return cfg_; }

    /** Accumulate link-layer fault counters into @p out. */
    void addRasTo(ras::RasStats *out) const;

  private:
    LinkConfig cfg_;
    Tick freeAt_[2] = {0, 0};
    LinkStats stats_;
    /** Null when fault injection is disabled (the default). */
    std::unique_ptr<ras::LinkFaultProcess> faults_;
};

/** Half-duplex link: both directions share one medium. */
class HalfDuplexLink
{
  public:
    explicit HalfDuplexLink(const LinkConfig &cfg) : cfg_(cfg) {}

    Tick send(unsigned bytes, Dir dir, Tick now)
    {
        return sendEx(bytes, dir, now).at;
    }

    SendResult sendEx(unsigned bytes, Dir dir, Tick now);

    void enableFaults(const ras::LinkFaultParams &p,
                      std::uint64_t seed);

    Tick freeAt() const { return freeAt_; }
    const LinkStats &stats() const { return stats_; }
    const LinkConfig &config() const { return cfg_; }

    void addRasTo(ras::RasStats *out) const;

  private:
    LinkConfig cfg_;
    Tick freeAt_ = 0;
    bool lastDirFrom_ = false;
    LinkStats stats_;
    std::unique_ptr<ras::LinkFaultProcess> faults_;
};

/** Serialization ticks for @p bytes at @p gbps. */
inline Tick
serializationTicks(unsigned bytes, double gbps)
{
    // bytes / (GB/s) = ns when GB == 1e9 bytes.
    return nsToTicks(static_cast<double>(bytes) / gbps);
}

}  // namespace cxlsim::link

#endif  // CXLSIM_LINK_LINK_HH
