#include "suite.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cxlsim::workloads {

namespace {

constexpr std::uint64_t MB = 1ULL << 20;
constexpr std::uint64_t GB = 1ULL << 30;

/** Deterministic per-name jitter in [1-amp, 1+amp]. */
double
jitterFor(const std::string &name, std::uint64_t salt, double amp)
{
    std::uint64_t h = 1469598103934665603ULL ^ salt;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    Rng r(h);
    return 1.0 + amp * (2.0 * r.uniform() - 1.0);
}

/** Base profile for a family archetype. */
WorkloadProfile
base(const std::string &name, const std::string &family)
{
    WorkloadProfile p;
    p.name = name;
    p.family = family;
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    p.seed = h;
    return p;
}

/** Compute-bound archetype: little memory traffic. */
WorkloadProfile
computeBound(const std::string &name, const std::string &family)
{
    WorkloadProfile p = base(name, family);
    p.threads = 1;
    p.uopsPerBlock = 32.0 * jitterFor(name, 1, 0.3);
    p.loadsPerBlock = 0.5 * jitterFor(name, 2, 0.3);
    p.storesPerBlock = 0.03;
    p.seqFrac = 0.02;
    p.strideFrac = 0.01;
    p.hotFrac = 0.9685 - 0.0015 * jitterFor(name, 21, 1.0);
    p.dependentFrac = 0.1;
    p.coldBurst = 4;
    p.workingSetBytes =
        static_cast<std::uint64_t>(96.0 * jitterFor(name, 3, 0.5)) * MB;
    p.exec.frontendStallFrac = 0.08;
    p.exec.onePortFrac = 0.15;
    p.exec.twoPortFrac = 0.2;
    return p;
}

/** Moderate mixed memory behaviour. */
WorkloadProfile
mixed(const std::string &name, const std::string &family)
{
    WorkloadProfile p = base(name, family);
    p.threads = 2;
    p.uopsPerBlock = 18.0 * jitterFor(name, 4, 0.3);
    p.loadsPerBlock = 0.7 * jitterFor(name, 5, 0.3);
    p.storesPerBlock = 0.08 * jitterFor(name, 6, 0.4);
    p.seqFrac = 0.06;
    p.strideFrac = 0.03;
    p.hotFrac = 0.9085 - 0.002 * jitterFor(name, 22, 1.0);
    p.dependentFrac = 0.18 * jitterFor(name, 7, 0.4);
    p.coldBurst = 4;
    p.workingSetBytes = static_cast<std::uint64_t>(
                            700.0 * jitterFor(name, 8, 0.6)) * MB;
    return p;
}

/** Latency-sensitive, pointer-heavy archetype. */
WorkloadProfile
latencyBound(const std::string &name, const std::string &family)
{
    WorkloadProfile p = base(name, family);
    p.threads = 1;
    p.uopsPerBlock = 12.0 * jitterFor(name, 9, 0.25);
    p.loadsPerBlock = 0.8 * jitterFor(name, 10, 0.25);
    p.storesPerBlock = 0.06;
    p.seqFrac = 0.015;
    p.strideFrac = 0.005;
    p.hotFrac = 0.966 - 0.004 * jitterFor(name, 23, 1.0);
    p.dependentFrac = 0.45 * jitterFor(name, 11, 0.3);
    p.coldBurst = 2;
    p.workingSetBytes = static_cast<std::uint64_t>(
                            2200.0 * jitterFor(name, 12, 0.5)) * MB;
    return p;
}

/** Bandwidth-bound streaming archetype (HPC). */
WorkloadProfile
bandwidthBound(const std::string &name, const std::string &family)
{
    WorkloadProfile p = base(name, family);
    p.threads = 8;
    p.uopsPerBlock = 16.0 * jitterFor(name, 13, 0.2);
    p.loadsPerBlock = 0.30 * jitterFor(name, 14, 0.15);
    p.storesPerBlock = 0.05 * jitterFor(name, 15, 0.3);
    p.seqFrac = 0.80;
    p.strideFrac = 0.08;
    p.hotFrac = 0.08;
    p.dependentFrac = 0.03;
    p.coldBurst = 8;
    p.workingSetBytes = 3 * GB;
    p.exec.frontendStallFrac = 0.02;
    p.blocksPerCore = 40000;
    return p;
}

/** Graph-processing archetype: random, high MLP, large sets. */
WorkloadProfile
graph(const std::string &name, const std::string &graph_name)
{
    WorkloadProfile p = base(name, "GAPBS");
    p.threads = 8;
    p.uopsPerBlock = 10.0 * jitterFor(name, 16, 0.2);
    p.loadsPerBlock = 0.7 * jitterFor(name, 17, 0.25);
    p.storesPerBlock = 0.06;
    p.seqFrac = 0.10;
    p.strideFrac = 0.02;
    p.hotFrac = 0.874;
    p.dependentFrac = 0.10;
    p.coldBurst = 8;  // frontier gathers overlap
    p.blocksPerCore = 40000;
    std::uint64_t ws = 2 * GB;
    if (graph_name == "twitter" || graph_name == "kron")
        ws = 5 * GB;
    else if (graph_name == "web")
        ws = 3 * GB;
    else if (graph_name == "road")
        ws = 600 * MB;
    else if (graph_name == "urand")
        ws = 4 * GB;
    p.workingSetBytes = ws;
    p.zipfSkew = (graph_name == "twitter" || graph_name == "kron")
                     ? 0.8
                     : 0.3;
    return p;
}

/** YCSB request-mix archetype on an in-memory store. */
WorkloadProfile
ycsb(const std::string &store, char mix)
{
    WorkloadProfile p =
        base(store + "/ycsb-" + std::string(1, mix), "YCSB");
    const bool voltdb = store == "voltdb";
    p.threads = 8;
    p.uopsPerBlock = voltdb ? 34.0 : 24.0;  // request processing
    p.loadsPerBlock = 1.0;
    p.seqFrac = 0.03;
    p.strideFrac = 0.01;
    p.hotFrac = 0.954;      // indices / hot keys are cache-resident
    p.dependentFrac = 0.55;  // index/hash walks: latency-critical
    p.coldBurst = 2;
    p.workingSetBytes = 8 * GB;
    p.zipfSkew = 0.45;
    p.exec.frontendStallFrac = 0.12;  // typical cloud frontend misses
    double writeFrac;
    switch (mix) {
      case 'a':
        writeFrac = 0.5;
        break;
      case 'b':
        writeFrac = 0.05;
        break;
      case 'c':
        writeFrac = 0.0;
        break;
      case 'd':
        writeFrac = 0.05;
        p.zipfSkew = 0.6;  // latest distribution
        break;
      case 'e':
        writeFrac = 0.05;
        p.seqFrac = 0.3;  // scans
        p.hotFrac = 0.6;
        p.dependentFrac = 0.3;
        break;
      default:  // 'f' read-modify-write
        writeFrac = 0.5;
        break;
    }
    p.storesPerBlock = p.loadsPerBlock * writeFrac *
                       (voltdb ? 1.3 : 1.0);
    p.storeHotFrac = 0.88;  // in-place value updates
    return p;
}

void
addSpec(std::vector<WorkloadProfile> *out)
{
    auto add = [&](WorkloadProfile p) { out->push_back(std::move(p)); };

    // --- Bandwidth-bound quartet the paper calls out (Fig 8b):
    // need > 24 GB/s, saturating CXL-{A,B,C}.
    for (const char *n :
         {"603.bwaves_s", "619.lbm_s", "649.fotonik3d_s",
          "654.roms_s"}) {
        WorkloadProfile p = bandwidthBound(n, "SPEC");
        p.threads = 10;
        p.loadsPerBlock = 0.20;
        add(p);
    }
    // Rate versions: lighter but still streaming.
    for (const char *n :
         {"503.bwaves_r", "519.lbm_r", "549.fotonik3d_r",
          "554.roms_r"}) {
        WorkloadProfile p = bandwidthBound(n, "SPEC");
        p.threads = 6;
        p.loadsPerBlock = 0.16;
        add(p);
    }
    // 519/619 lbm: store-buffer-bound (RFO-heavy, §5.5).
    {
        WorkloadProfile &lbm = (*out)[out->size() - 3];
        SIM_ASSERT(lbm.name == "519.lbm_r", "suite order");
        lbm.storesPerBlock = 0.22;
        lbm.loadsPerBlock = 0.07;
        lbm.seqFrac = 0.35;
        lbm.hotFrac = 0.55;
        lbm.storeHotFrac = 0.05;
    }
    {
        WorkloadProfile &lbm = (*out)[out->size() - 7];
        SIM_ASSERT(lbm.name == "619.lbm_s", "suite order");
        lbm.storesPerBlock = 0.26;
        lbm.loadsPerBlock = 0.08;
        lbm.seqFrac = 0.35;
        lbm.hotFrac = 0.55;
        lbm.storeHotFrac = 0.05;
    }

    // --- 605.mcf / 505.mcf: LLC-miss dominated demand reads.
    for (const char *n : {"605.mcf_s", "505.mcf_r"}) {
        WorkloadProfile p = latencyBound(n, "SPEC");
        p.threads = 1;
        p.loadsPerBlock = 0.9;
        p.seqFrac = 0.03;
        p.strideFrac = 0.01;
        p.hotFrac = 0.955;
        p.dependentFrac = 0.35;
        p.coldBurst = 2;
        p.workingSetBytes = 4 * GB;
        p.zipfSkew = 0.8;  // two hot 2GB arrays -> skewed reuse
        p.blocksPerCore = 120000;
        // Bursty phases (Fig 16b).
        p.phases = {{0.2, 1.6, 1.3, 1.0}, {0.15, 0.5, 0.6, 1.0},
                    {0.25, 1.8, 1.4, 1.0}, {0.2, 0.6, 0.7, 1.0},
                    {0.2, 1.5, 1.2, 1.0}};
        add(p);
    }

    // --- 520.omnetpp: <1 GB/s, tail-latency sensitive (Fig 8c/d).
    {
        WorkloadProfile p = latencyBound("520.omnetpp_r", "SPEC");
        p.threads = 1;
        p.uopsPerBlock = 22.0;
        p.loadsPerBlock = 0.8;
        p.seqFrac = 0.02;
        p.strideFrac = 0.0;
        p.hotFrac = 0.976;
        p.dependentFrac = 0.85;  // discrete-event heap walking
        p.coldBurst = 1;
        p.workingSetBytes = 1200 * MB;
        p.blocksPerCore = 150000;
        add(p);
    }

    // --- 602.gcc: heavy first two-thirds, light tail (Fig 16a).
    {
        WorkloadProfile p = mixed("602.gcc_s", "SPEC");
        p.threads = 1;
        p.loadsPerBlock = 0.8;
        p.hotFrac = 0.90;
        p.dependentFrac = 0.35;
        p.workingSetBytes = 1500 * MB;
        p.blocksPerCore = 150000;
        p.phases = {{0.66, 1.5, 1.2, 1.2}, {0.34, 0.35, 0.5, 0.6}};
        add(p);
    }

    // --- 631.deepsjeng: moderate, fluctuating (Fig 16c).
    {
        WorkloadProfile p = mixed("631.deepsjeng_s", "SPEC");
        p.threads = 1;
        p.loadsPerBlock = 0.7;
        p.hotFrac = 0.925;
        p.dependentFrac = 0.3;
        p.workingSetBytes = 900 * MB;
        p.blocksPerCore = 150000;
        p.phases = {{0.25, 1.2, 1.0, 1.0}, {0.25, 0.6, 0.8, 1.0},
                    {0.25, 1.3, 1.1, 1.0}, {0.25, 0.7, 0.9, 1.0}};
        add(p);
    }

    // --- 508.namd: compute-dominant, rare bandwidth spikes (Fig 7a).
    {
        WorkloadProfile p = computeBound("508.namd_r", "SPEC");
        p.loadsPerBlock = 0.4;
        p.workingSetBytes = 700 * MB;
        p.blocksPerCore = 120000;
        p.phases = {{0.46, 1.0, 1.0, 1.0}, {0.04, 10.0, 0.3, 1.0},
                    {0.46, 1.0, 1.0, 1.0}, {0.04, 10.0, 0.3, 1.0}};
        // Spikes are streaming (force-field table sweeps).
        p.seqFrac = 0.30;
        p.hotFrac = 0.66;
        add(p);
    }

    // --- Prefetch-coverage cast of Fig 12b (602/603 etc. covered
    // above): 607.cactuBSSN stride-friendly.
    {
        WorkloadProfile p = mixed("607.cactuBSSN_s", "SPEC");
        p.threads = 4;
        p.seqFrac = 0.40;
        p.strideFrac = 0.30;
        p.hotFrac = 0.25;
        p.loadsPerBlock = 0.35;
        p.workingSetBytes = 2 * GB;
        add(p);
    }

    // --- Remaining SPEC CPU 2017 (archetype-derived).
    for (const char *n :
         {"500.perlbench_r", "502.gcc_r", "523.xalancbmk_r",
          "531.deepsjeng_r", "541.leela_r", "557.xz_r",
          "600.perlbench_s", "623.xalancbmk_s", "641.leela_s",
          "657.xz_s"}) {
        add(mixed(n, "SPEC"));
    }
    for (const char *n :
         {"508.povray_like_r", "511.povray_r", "525.x264_r",
          "538.imagick_r", "548.exchange2_r", "625.x264_s",
          "638.imagick_s", "648.exchange2_s", "644.nab_s",
          "544.nab_r", "621.wrf_s", "527.cam4_r"}) {
        add(computeBound(n, "SPEC"));
    }
    {
        WorkloadProfile p = latencyBound("510.parest_r", "SPEC");
        add(p);
    }
    {
        WorkloadProfile p = mixed("526.blender_r", "SPEC");
        add(p);
    }
    {
        WorkloadProfile p = bandwidthBound("628.pop2_s", "SPEC");
        p.threads = 6;
        p.loadsPerBlock = 0.25;
        add(p);
    }
    {
        WorkloadProfile p = bandwidthBound("607.roms_like_r", "SPEC");
        p.threads = 4;
        p.loadsPerBlock = 0.22;
        add(p);
    }
}

void
addGapbs(std::vector<WorkloadProfile> *out)
{
    const char *algos[] = {"bc", "bfs", "cc", "pr", "sssp", "tc"};
    const char *graphs[] = {"web", "twitter", "urand", "kron", "road"};
    for (const char *a : algos) {
        for (const char *g : graphs) {
            WorkloadProfile p =
                graph(std::string(a) + "-" + g, g);
            if (std::string(a) == "pr") {
                p.seqFrac = 0.22;  // rank arrays stream
                p.strideFrac = 0.02;
                p.hotFrac = 0.72;
                p.loadsPerBlock = 0.32;
            } else if (std::string(a) == "tc") {
                p.uopsPerBlock = 22.0;  // counting-heavy
                p.loadsPerBlock = 0.35;
                p.hotFrac = 0.80;
            } else if (std::string(a) == "sssp") {
                p.dependentFrac = 0.3;  // priority queue
            } else if (std::string(a) == "bfs") {
                p.loadsPerBlock = 0.8;
            }
            out->push_back(std::move(p));
        }
    }
}

void
addPbbs(std::vector<WorkloadProfile> *out)
{
    const char *names[] = {
        "pbbs-sort", "pbbs-intsort", "pbbs-dedup", "pbbs-histogram",
        "pbbs-wordcount", "pbbs-suffixarray", "pbbs-bfs", "pbbs-mis",
        "pbbs-matching", "pbbs-spanner", "pbbs-hull", "pbbs-delaunay",
        "pbbs-raycast", "pbbs-nn", "pbbs-nbody", "pbbs-mst"};
    unsigned i = 0;
    for (const char *n : names) {
        WorkloadProfile p = (i % 3 == 0)
                                ? bandwidthBound(n, "PBBS")
                                : (i % 3 == 1 ? mixed(n, "PBBS")
                                              : latencyBound(n, "PBBS"));
        p.family = "PBBS";
        p.threads = 8;
        if (i % 3 == 0) {
            p.loadsPerBlock *= 0.75;  // not as extreme as HPC
            p.threads = 8;
        }
        out->push_back(std::move(p));
        ++i;
    }
}

void
addParsec(std::vector<WorkloadProfile> *out)
{
    struct Entry
    {
        const char *name;
        int kind;  // 0 compute, 1 mixed, 2 latency, 3 bandwidth
    };
    const Entry entries[] = {
        {"parsec-blackscholes", 0}, {"parsec-bodytrack", 1},
        {"parsec-canneal", 2},      {"parsec-dedup", 1},
        {"parsec-facesim", 3},      {"parsec-ferret", 1},
        {"parsec-fluidanimate", 3}, {"parsec-freqmine", 1},
        {"parsec-raytrace", 0},     {"parsec-streamcluster", 3},
        {"parsec-swaptions", 0},    {"parsec-vips", 1},
        {"parsec-x264", 0}};
    for (const auto &e : entries) {
        WorkloadProfile p;
        switch (e.kind) {
          case 0:
            p = computeBound(e.name, "PARSEC");
            break;
          case 1:
            p = mixed(e.name, "PARSEC");
            break;
          case 2:
            p = latencyBound(e.name, "PARSEC");
            break;
          default:
            p = bandwidthBound(e.name, "PARSEC");
            p.threads = 8;
            p.loadsPerBlock *= 0.8;
            break;
        }
        p.family = "PARSEC";
        out->push_back(std::move(p));
    }
}

void
addCloudAndPhoronix(std::vector<WorkloadProfile> *out)
{
    // CloudSuite: service workloads, frontend-heavy, latency-bound.
    const char *cloud[] = {
        "cloud-data-analytics", "cloud-data-caching",
        "cloud-data-serving",   "cloud-graph-analytics",
        "cloud-inmem-analytics", "cloud-media-streaming",
        "cloud-web-search",     "cloud-web-serving"};
    unsigned i = 0;
    for (const char *n : cloud) {
        WorkloadProfile p = (i % 2 == 0) ? latencyBound(n, "Cloud")
                                         : mixed(n, "Cloud");
        p.family = "Cloud";
        p.threads = 8;
        p.hotFrac = std::min(0.965, p.hotFrac + 0.02);
        p.exec.frontendStallFrac = 0.18;  // >30% frontend-bound mix
        p.zipfSkew = 0.55;
        out->push_back(std::move(p));
        ++i;
    }

    // Phoronix: a broad mostly-light population.
    const char *phoronix[] = {
        "pts-compress-7zip", "pts-openssl",      "pts-sqlite",
        "pts-nginx",         "pts-build-kernel", "pts-ffmpeg",
        "pts-x265",          "pts-blender",      "pts-gimp",
        "pts-git",           "pts-pybench",      "pts-phpbench",
        "pts-redis-bench",   "pts-ramspeed",     "pts-stream",
        "pts-cachebench",    "pts-crafty",       "pts-gzip",
        "pts-john-the-ripper", "pts-apache"};
    i = 0;
    for (const char *n : phoronix) {
        WorkloadProfile p;
        if (std::string(n) == "pts-stream" ||
            std::string(n) == "pts-ramspeed") {
            p = bandwidthBound(n, "Phoronix");
            p.threads = 8;
        } else if (i % 4 == 3) {
            p = mixed(n, "Phoronix");
        } else {
            p = computeBound(n, "Phoronix");
        }
        p.family = "Phoronix";
        out->push_back(std::move(p));
        ++i;
    }
}

void
addDatabasesAndAnalytics(std::vector<WorkloadProfile> *out)
{
    for (char m : {'a', 'b', 'c', 'd', 'e', 'f'}) {
        out->push_back(ycsb("redis", m));
        out->push_back(ycsb("voltdb", m));
    }
    // Additional caching/database points.
    for (const char *n :
         {"memcached-read", "memcached-mixed", "memtier-heavy",
          "rocksdb-readrandom"}) {
        WorkloadProfile p = ycsb("redis", 'b');
        p.name = n;
        p.family = "Cloud";
        p.seed = base(n, "Cloud").seed;  // per-name RNG stream
        p.workingSetBytes = static_cast<std::uint64_t>(
            6.0 * jitterFor(n, 40, 0.4) * static_cast<double>(GB));
        p.dependentFrac = 0.5 * jitterFor(n, 41, 0.2);
        out->push_back(std::move(p));
    }

    // Spark / HiBench analytics.
    const char *spark[] = {"spark-wordcount", "spark-terasort",
                           "spark-kmeans",    "spark-pagerank",
                           "spark-bayes",     "spark-join",
                           "spark-scan",      "spark-aggregate",
                           "spark-sort",      "spark-svm"};
    unsigned i = 0;
    for (const char *n : spark) {
        WorkloadProfile p = (i % 2 == 0) ? mixed(n, "Spark")
                                         : bandwidthBound(n, "Spark");
        p.family = "Spark";
        p.threads = 8;
        if (i % 2 == 1)
            p.loadsPerBlock *= 0.7;
        p.workingSetBytes = 4 * GB;
        out->push_back(std::move(p));
        ++i;
    }
}

void
addMl(std::vector<WorkloadProfile> *out)
{
    // Transformer inference: streaming weight reads, high bandwidth.
    for (const char *n : {"gpt2-small", "gpt2-medium", "gpt2-xl"}) {
        WorkloadProfile p = bandwidthBound(n, "ML");
        p.threads = 8;
        p.loadsPerBlock = 0.22;
        p.storesPerBlock = 0.02;
        p.seqFrac = 0.85;
        p.workingSetBytes =
            std::string(n) == "gpt2-xl" ? 6 * GB : 2 * GB;
        p.uopsPerBlock = 14.0;  // some compute per weight
        out->push_back(std::move(p));
    }
    for (const char *n : {"llama-7b-prefill", "llama-7b-decode"}) {
        WorkloadProfile p = bandwidthBound(n, "ML");
        p.threads = 8;
        p.workingSetBytes = 13 * GB;
        p.seqFrac = 0.88;
        p.strideFrac = 0.04;
        p.hotFrac = 0.06;
        if (std::string(n) == "llama-7b-decode") {
            p.loadsPerBlock = 0.30;  // memory-bound token generation
            p.uopsPerBlock = 8.0;
        } else {
            p.loadsPerBlock = 0.16;
            p.uopsPerBlock = 18.0;  // compute-dense GEMM
        }
        out->push_back(std::move(p));
    }
    // DLRM: random embedding-table gathers (DRAM-slowdown-dominated).
    for (const char *n : {"dlrm-inference", "dlrm-terabyte"}) {
        WorkloadProfile p = latencyBound(n, "ML");
        p.threads = 8;
        p.loadsPerBlock = 0.6;
        p.seqFrac = 0.10;
        p.strideFrac = 0.0;
        p.hotFrac = 0.88;
        p.dependentFrac = 0.10;  // gathers are independent
        p.coldBurst = 8;
        p.workingSetBytes = 12 * GB;
        p.zipfSkew = 0.9;
        p.blocksPerCore = 40000;
        out->push_back(std::move(p));
    }
    for (const char *n :
         {"bert-large", "resnet50-infer", "mlperf-rnnt",
          "mlperf-3dunet", "vgg16-infer"}) {
        WorkloadProfile p = mixed(n, "ML");
        p.threads = 8;
        p.seqFrac = 0.35;
        p.hotFrac = 0.615;
        p.loadsPerBlock = 0.4;
        p.workingSetBytes = 2 * GB;
        out->push_back(std::move(p));
    }
}

void
addMicrobench(std::vector<WorkloadProfile> *out, std::size_t target)
{
    // Parameter grid filling the suite to 265 workloads, biased
    // toward light-to-moderate points like the long Phoronix tail.
    const char *patterns[] = {"seq", "rnd", "chase", "mix", "store"};
    const std::uint64_t sets[] = {64 * MB, 256 * MB, 1 * GB, 4 * GB};
    const double intensities[] = {0.25, 0.7, 1.6};
    std::size_t i = 0;
    while (out->size() < target) {
        const char *pat = patterns[i % 5];
        const std::uint64_t ws = sets[(i / 5) % 4];
        const unsigned level = (i / 20) % 3;
        const double inten = intensities[level];
        std::string name = "ubench-" + std::string(pat) + "-" +
                           std::to_string(ws / MB) + "m-i" +
                           std::to_string(i);
        WorkloadProfile p = base(name, "ubench");
        p.threads = (i % 3 == 2) ? 4 : 1;
        p.uopsPerBlock = 16.0;
        p.loadsPerBlock = 0.5;
        p.storesPerBlock = 0.02;
        p.workingSetBytes = ws;
        p.coldBurst = 4;
        // Most points are light-to-moderate (the long Phoronix-like
        // tail of the suite); "level" scales DRAM pressure.
        const double hotByLevel[3] = {0.985, 0.965, 0.93};
        if (std::string(pat) == "seq") {
            const double seqLoads[3] = {0.03, 0.08, 0.2};
            p.loadsPerBlock = seqLoads[level] / 0.9;
            p.seqFrac = 0.85;
            p.strideFrac = 0.05;
            p.hotFrac = 0.10;
            p.dependentFrac = 0.0;
        } else if (std::string(pat) == "rnd") {
            p.seqFrac = 0.02;
            p.strideFrac = 0.0;
            p.hotFrac = hotByLevel[level];
            p.dependentFrac = 0.05;
        } else if (std::string(pat) == "chase") {
            p.seqFrac = 0.0;
            p.strideFrac = 0.0;
            const double chaseHot[3] = {0.99, 0.975, 0.95};
            p.hotFrac = chaseHot[level];
            p.dependentFrac = 0.9;
            p.coldBurst = 1;
            p.loadsPerBlock = std::min(inten, 0.6);
        } else if (std::string(pat) == "mix") {
            p.seqFrac = 0.12;
            p.strideFrac = 0.03;
            p.hotFrac = hotByLevel[level] - 0.14;
            p.dependentFrac = 0.2;
        } else {  // store
            p.seqFrac = 0.10;
            p.strideFrac = 0.02;
            p.hotFrac = 0.86;
            p.dependentFrac = 0.05;
            const double stores[3] = {0.015, 0.04, 0.08};
            p.storesPerBlock = stores[level];
            p.loadsPerBlock = 0.3;
        }
        out->push_back(std::move(p));
        ++i;
    }
}

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> all;
    all.reserve(265);
    addSpec(&all);
    addGapbs(&all);
    addPbbs(&all);
    addParsec(&all);
    addCloudAndPhoronix(&all);
    addDatabasesAndAnalytics(&all);
    addMl(&all);
    addMicrobench(&all, 265);
    SIM_ASSERT(all.size() == 265, "suite must contain 265 workloads");
    return all;
}

}  // namespace

const std::vector<WorkloadProfile> &
suite()
{
    static const std::vector<WorkloadProfile> s = buildSuite();
    return s;
}

std::vector<WorkloadProfile>
familyWorkloads(const std::string &family)
{
    std::vector<WorkloadProfile> out;
    for (const auto &w : suite())
        if (w.family == family)
            out.push_back(w);
    return out;
}

bool
hasWorkload(const std::string &name)
{
    for (const auto &w : suite())
        if (w.name == name)
            return true;
    return false;
}

const WorkloadProfile &
byName(const std::string &name)
{
    for (const auto &w : suite())
        if (w.name == name)
            return w;
    throw ConfigError("unknown workload: " + name);
}

std::vector<std::string>
familyNames()
{
    std::vector<std::string> out;
    for (const auto &w : suite())
        if (std::find(out.begin(), out.end(), w.family) == out.end())
            out.push_back(w.family);
    return out;
}

std::vector<WorkloadProfile>
cxlCSubset()
{
    // The paper evaluates the 60 workloads whose datasets fit
    // CXL-C's 16GB; take the first 60 fitting ones in suite order
    // (a diverse cross-family mix, like the paper's).
    std::vector<WorkloadProfile> out;
    for (const auto &w : suite()) {
        if (w.workingSetBytes <= (14ULL << 30))
            out.push_back(w);
        if (out.size() == 60)
            break;
    }
    return out;
}

}  // namespace cxlsim::workloads
