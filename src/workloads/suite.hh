/**
 * @file
 * The 265-workload characterization suite.
 *
 * Mirrors the paper's workload population (§3.1): SPEC CPU 2017,
 * GAPBS and PBBS graph/parallel benchmarks, PARSEC, CloudSuite,
 * Phoronix, Redis and VoltDB under YCSB A-F, Spark/HiBench
 * analytics, ML inference (GPT-2, Llama, DLRM, MLPerf), plus a
 * parameter-grid microbenchmark family. Workloads the paper
 * discusses individually (603.bwaves, 605.mcf, 520.omnetpp,
 * 519.lbm, 602.gcc, 508.namd, YCSB-C on Redis, ...) have
 * hand-tuned profiles reproducing their published behaviour;
 * the rest are drawn deterministically from family templates.
 */

#ifndef CXLSIM_WORKLOADS_SUITE_HH
#define CXLSIM_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "workloads/profile.hh"

namespace cxlsim::workloads {

/** All 265 workloads (memoized; stable order). */
const std::vector<WorkloadProfile> &suite();

/** Workloads of one family ("SPEC", "GAPBS", "YCSB", ...). */
std::vector<WorkloadProfile> familyWorkloads(const std::string &family);

/** Find a workload by exact name; fatal if absent. */
const WorkloadProfile &byName(const std::string &name);

/** True if a workload with this name exists. */
bool hasWorkload(const std::string &name);

/** The family names present in the suite, in suite order. */
std::vector<std::string> familyNames();

/**
 * The subset evaluated on CXL-C (its 16GB capacity restricts the
 * paper to 60 workloads): the 60 with the smallest working sets.
 */
std::vector<WorkloadProfile> cxlCSubset();

}  // namespace cxlsim::workloads

#endif  // CXLSIM_WORKLOADS_SUITE_HH
