/**
 * @file
 * Workload descriptions.
 *
 * The paper evaluates 265 real workloads (SPEC CPU 2017, GAPBS,
 * PBBS, PARSEC, CloudSuite, Phoronix, Redis/VoltDB under YCSB,
 * Spark, GPT-2/Llama/MLPerf). Without those binaries, each
 * workload is described by the memory-behaviour parameters that
 * determine its response to CXL: instruction mix, memory
 * intensity, access-pattern composition (sequential / strided /
 * random), pointer-chase dependence, working-set size, store
 * intensity, thread count, and phase structure. The suite in
 * suite.hh instantiates 265 of these with hand-tuned profiles for
 * the workloads the paper discusses individually.
 */

#ifndef CXLSIM_WORKLOADS_PROFILE_HH
#define CXLSIM_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.hh"

namespace cxlsim::workloads {

/** One execution phase (for §5.6 period-based analysis). */
struct Phase
{
    /** Fraction of the run spent in this phase. */
    double weight = 1.0;
    /** Multiplier on memory intensity (loads per block). */
    double intensity = 1.0;
    /** Multiplier on the dependent-load fraction. */
    double dependence = 1.0;
    /** Multiplier on store intensity. */
    double stores = 1.0;
};

/** Complete description of one workload. */
struct WorkloadProfile
{
    std::string name;
    std::string family;

    unsigned threads = 1;
    /** Blocks emitted per core (sets run length). */
    std::uint64_t blocksPerCore = 60000;

    /** Non-memory uops per block (mean). */
    double uopsPerBlock = 16.0;
    /** Mean demand loads / stores per block. */
    double loadsPerBlock = 1.0;
    double storesPerBlock = 0.15;

    /**
     * Of loads that leave the core (post-L1): pattern mix.
     * seq/stride loads stream through the working set (hardware-
     * prefetchable, cold); hotFrac hit a small cache-resident hot
     * region (L2/LLC hits); the remainder are cold random accesses
     * over the full working set (DRAM misses).
     */
    double seqFrac = 0.3;
    double strideFrac = 0.1;
    double hotFrac = 0.45;
    /** Of cold random loads: fraction that are pointer-chase
     *  dependent (no memory-level parallelism). */
    double dependentFrac = 0.25;
    /** Fraction of stores hitting the cache-resident hot region
     *  (in-place updates); the rest stream or scatter cold. */
    double storeHotFrac = 0.7;
    /**
     * Cold (non-dependent) misses arrive in clusters of this size
     * (spatially grouped fields, SIMD gathers) — this is what
     * gives real workloads their memory-level parallelism.
     */
    unsigned coldBurst = 4;

    /** Bytes touched; > LLC makes the workload memory-bound. */
    std::uint64_t workingSetBytes = 512ULL << 20;
    /** Zipf skew of cold random accesses (0 = uniform). Skewed
     *  workloads have hot objects worth pinning locally (§5.7). */
    double zipfSkew = 0.0;
    /** Hot-region bytes per core (defaults to min(3MB, ws/8)). */
    std::uint64_t hotBytes = 0;

    /** Backend-independent execution character. */
    cpu::CoreExecParams exec;

    /** Phase structure; empty = single uniform phase. */
    std::vector<Phase> phases;

    std::uint64_t seed = 12345;

    /** Rough instructions per core (uops + memory ops). */
    std::uint64_t
    instructionsPerCore() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(blocksPerCore) *
            (uopsPerBlock + loadsPerBlock + storesPerBlock));
    }
};

}  // namespace cxlsim::workloads

#endif  // CXLSIM_WORKLOADS_PROFILE_HH
