#include "trace_kernel.hh"

#include <sstream>

#include "sim/logging.hh"

namespace cxlsim::workloads {

std::vector<TraceOp>
parseTrace(std::istream &in)
{
    std::vector<TraceOp> ops;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kind;
        ls >> kind;
        TraceOp op{};
        if (kind == "L" || kind == "S") {
            std::string hex;
            ls >> hex;
            if (hex.empty())
                throw ConfigError(
                    "trace line " + std::to_string(lineno) +
                    ": missing address");
            op.addr = static_cast<Addr>(
                std::stoull(hex, nullptr, 16));
            op.kind = kind == "L" ? TraceOp::Kind::kLoad
                                  : TraceOp::Kind::kStore;
            std::string flag;
            if (ls >> flag)
                op.dependent = flag == "d";
        } else if (kind == "C") {
            op.kind = TraceOp::Kind::kCompute;
            if (!(ls >> op.uops))
                throw ConfigError(
                    "trace line " + std::to_string(lineno) +
                    ": missing uop count");
        } else {
            throw ConfigError(
                "trace line " + std::to_string(lineno) +
                ": unknown record '" + kind + "'");
        }
        ops.push_back(op);
    }
    return ops;
}

TraceKernel::TraceKernel(std::vector<TraceOp> ops,
                         unsigned iterations)
    : ops_(std::move(ops)), iterations_(std::max(1u, iterations))
{
}

bool
TraceKernel::next(cpu::Block *b)
{
    if (pos_ >= ops_.size()) {
        if (++iter_ >= iterations_)
            return false;
        pos_ = 0;
    }
    b->nOps = 0;
    b->uops = 1;  // block bookkeeping uop

    // Pack ops until the next compute record or the block fills.
    while (pos_ < ops_.size() && b->nOps < cpu::Block::kMaxOps) {
        const TraceOp &op = ops_[pos_];
        if (op.kind == TraceOp::Kind::kCompute) {
            b->uops += op.uops;
            ++pos_;
            break;
        }
        cpu::MemOp m;
        m.addr = op.addr;
        m.isStore = op.kind == TraceOp::Kind::kStore;
        m.dependent = op.dependent;
        m.streamId = nextStream_;
        b->addOp(m);
        ++pos_;
    }
    return true;
}

}  // namespace cxlsim::workloads
