/**
 * @file
 * TraceKernel: replay a recorded memory trace as a workload.
 *
 * Lets users run Melody/Spa on their own applications: capture a
 * trace (e.g. with a PIN/DynamoRIO tool) as text lines
 *
 *     L <hex-addr> [d]     demand load ('d' marks a dependent load)
 *     S <hex-addr>         store
 *     C <uops>             compute block of N non-memory uops
 *     # comment
 *
 * and replay it against any Platform. The same trace replayed on
 * Local and CXL backends yields a Spa breakdown for real code.
 */

#ifndef CXLSIM_WORKLOADS_TRACE_KERNEL_HH
#define CXLSIM_WORKLOADS_TRACE_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "cpu/kernel.hh"

namespace cxlsim::workloads {

/** One parsed trace record. */
struct TraceOp
{
    enum class Kind : std::uint8_t { kLoad, kStore, kCompute };
    Kind kind;
    Addr addr = 0;
    bool dependent = false;
    unsigned uops = 0;
};

/** Parse a trace stream; throws ConfigError on malformed lines. */
std::vector<TraceOp> parseTrace(std::istream &in);

/** Kernel replaying a parsed trace (optionally several times). */
class TraceKernel : public cpu::Kernel
{
  public:
    /**
     * @param ops        Parsed trace.
     * @param iterations Number of times to replay the trace.
     */
    explicit TraceKernel(std::vector<TraceOp> ops,
                         unsigned iterations = 1);

    bool next(cpu::Block *b) override;

    /** Lines touched by the trace (for preloading: none — traces
     *  measure cold behaviour unless the trace warms itself). */
    std::size_t size() const { return ops_.size(); }

  private:
    std::vector<TraceOp> ops_;
    unsigned iterations_;
    std::size_t pos_ = 0;
    unsigned iter_ = 0;
    std::uint16_t nextStream_ = 1;
};

}  // namespace cxlsim::workloads

#endif  // CXLSIM_WORKLOADS_TRACE_KERNEL_HH
