/**
 * @file
 * SyntheticKernel: turns a WorkloadProfile into a per-core
 * instruction-block stream.
 *
 * Address streams: a sequential cursor and a strided cursor walk
 * the core's partition of the working set (training the hardware
 * prefetchers, like array sweeps in real code); random accesses
 * (optionally Zipf-skewed, optionally pointer-chase dependent)
 * span the full working set (defeating the prefetchers, like hash
 * tables and graph frontiers). Stores walk a dedicated region plus
 * a random component.
 */

#ifndef CXLSIM_WORKLOADS_SYNTHETIC_KERNEL_HH
#define CXLSIM_WORKLOADS_SYNTHETIC_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/kernel.hh"
#include "sim/rng.hh"
#include "workloads/profile.hh"

namespace cxlsim::workloads {

/** Kernel generating one core's share of a synthetic workload. */
class SyntheticKernel : public cpu::Kernel
{
  public:
    /**
     * @param profile Workload description.
     * @param core_id This core's index in [0, threads).
     */
    SyntheticKernel(const WorkloadProfile &profile, unsigned core_id);

    bool next(cpu::Block *b) override;

    /** The hot region — and, if it fits the budget, the whole
     *  partition — is cache-resident at steady state. */
    void forEachPreloadLine(const std::function<void(Addr)> &cb,
                            std::uint64_t budget_bytes)
        const override;

  private:
    const Phase &currentPhase() const;
    Addr randomLine();
    Addr hotLine();
    Addr nextSeq();
    Addr nextStride();
    Addr nextStoreAddr();

    WorkloadProfile prof_;
    unsigned coreId_;
    Rng rng_;

    std::uint64_t blocksEmitted_ = 0;
    /** Phase boundaries in emitted-block units. */
    std::vector<std::uint64_t> phaseEnds_;
    std::size_t phaseIdx_ = 0;

    /** Partition of the working set owned by this core. */
    Addr partBase_;
    std::uint64_t partBytes_;
    std::uint64_t wsLines_;

    Addr seqBase_ = 0;
    Addr seqCursor_;
    Addr strideCursor_;
    Addr storeCursor_;
    Addr hotBase_ = 0;
    std::uint64_t hotLines_ = 1;

    /** Fractional-op accumulators. */
    double loadAcc_ = 0.0;
    double storeAcc_ = 0.0;
};

/** Build one kernel per thread of @p profile. */
std::vector<std::unique_ptr<cpu::Kernel>>
makeKernels(const WorkloadProfile &profile);

}  // namespace cxlsim::workloads

#endif  // CXLSIM_WORKLOADS_SYNTHETIC_KERNEL_HH
