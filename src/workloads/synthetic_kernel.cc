#include "synthetic_kernel.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cxlsim::workloads {

namespace {
/** Stream ids: distinct training contexts for the L1 stride PF. */
constexpr std::uint16_t kSeqStream = 1;
constexpr std::uint16_t kStrideStream = 2;
constexpr std::uint16_t kRandomStreamBase = 8;
constexpr Addr kStrideBytes = 4 * kCacheLineBytes;
}  // namespace

SyntheticKernel::SyntheticKernel(const WorkloadProfile &profile,
                                 unsigned core_id)
    : prof_(profile), coreId_(core_id),
      rng_(profile.seed * 1000003ULL + core_id)
{
    SIM_ASSERT(prof_.workingSetBytes >= (1u << 16),
               "working set too small");
    const unsigned threads = std::max(1u, prof_.threads);
    partBytes_ = prof_.workingSetBytes / threads;
    partBase_ = static_cast<Addr>(core_id) * partBytes_;
    wsLines_ = prof_.workingSetBytes / kCacheLineBytes;

    std::uint64_t hotBytes = prof_.hotBytes
                                 ? prof_.hotBytes
                                 : std::min<std::uint64_t>(
                                       3ULL << 19, partBytes_ / 8);
    hotBytes = std::max<std::uint64_t>(hotBytes, 64 * 1024);
    hotBase_ = partBase_;
    hotLines_ = hotBytes / kCacheLineBytes;

    // Streams start beyond the hot region so they measure memory
    // behaviour rather than walking pre-warmed lines.
    seqBase_ = partBase_ + hotLines_ * kCacheLineBytes;
    if (seqBase_ >= partBase_ + partBytes_)
        seqBase_ = partBase_;
    seqCursor_ = seqBase_;
    strideCursor_ = partBase_ + partBytes_ / 2;
    storeCursor_ = partBase_ + partBytes_ / 4;

    if (prof_.phases.empty())
        prof_.phases.push_back(Phase{});
    double totalW = 0.0;
    for (const auto &p : prof_.phases)
        totalW += p.weight;
    std::uint64_t acc = 0;
    for (const auto &p : prof_.phases) {
        acc += static_cast<std::uint64_t>(
            static_cast<double>(prof_.blocksPerCore) * p.weight /
            totalW);
        phaseEnds_.push_back(acc);
    }
    phaseEnds_.back() = prof_.blocksPerCore;
}

const Phase &
SyntheticKernel::currentPhase() const
{
    return prof_.phases[phaseIdx_];
}

Addr
SyntheticKernel::randomLine()
{
    std::uint64_t line;
    if (prof_.zipfSkew > 0.0)
        line = rng_.zipf(wsLines_, prof_.zipfSkew);
    else
        line = rng_.below(wsLines_);
    return line * kCacheLineBytes;
}

Addr
SyntheticKernel::hotLine()
{
    return hotBase_ +
           rng_.below(hotLines_) * kCacheLineBytes;
}

Addr
SyntheticKernel::nextSeq()
{
    const Addr a = seqCursor_;
    seqCursor_ += kCacheLineBytes;
    if (seqCursor_ >= partBase_ + partBytes_)
        seqCursor_ = seqBase_;
    return a;
}

Addr
SyntheticKernel::nextStride()
{
    const Addr a = strideCursor_;
    strideCursor_ += kStrideBytes;
    if (strideCursor_ >= partBase_ + partBytes_)
        strideCursor_ = partBase_ + partBytes_ / 2;
    return a;
}

Addr
SyntheticKernel::nextStoreAddr()
{
    // Most stores update resident data in place; the rest stream
    // through the partition (70%) or scatter randomly (30%).
    if (rng_.chance(prof_.storeHotFrac))
        return hotLine();
    if (rng_.chance(0.3))
        return partBase_ + (rng_.below(partBytes_ / kCacheLineBytes)) *
                               kCacheLineBytes;
    const Addr a = storeCursor_;
    storeCursor_ += kCacheLineBytes;
    if (storeCursor_ >= partBase_ + partBytes_)
        storeCursor_ = partBase_;
    return a;
}

void
SyntheticKernel::forEachPreloadLine(
    const std::function<void(Addr)> &cb,
    std::uint64_t budget_bytes) const
{
    if (partBytes_ <= budget_bytes) {
        // The whole partition is LLC-resident at steady state.
        for (Addr a = partBase_; a < partBase_ + partBytes_;
             a += kCacheLineBytes)
            cb(a);
        return;
    }
    for (std::uint64_t l = 0; l < hotLines_; ++l)
        cb(hotBase_ + l * kCacheLineBytes);
}

bool
SyntheticKernel::next(cpu::Block *b)
{
    if (blocksEmitted_ >= prof_.blocksPerCore)
        return false;
    while (blocksEmitted_ >= phaseEnds_[phaseIdx_] &&
           phaseIdx_ + 1 < prof_.phases.size())
        ++phaseIdx_;
    const Phase &ph = currentPhase();

    b->nOps = 0;
    const double jitter = 0.75 + 0.5 * rng_.uniform();
    b->uops = std::max(
        1u, static_cast<unsigned>(prof_.uopsPerBlock * jitter + 0.5));

    loadAcc_ += prof_.loadsPerBlock * ph.intensity;
    storeAcc_ += prof_.storesPerBlock * ph.stores;

    // The accumulators can be negative after a burst overdraft;
    // casting a negative double to unsigned is UB, so clamp first.
    auto nLoads = loadAcc_ > 0.0
                      ? static_cast<unsigned>(loadAcc_)
                      : 0u;
    auto nStores = storeAcc_ > 0.0
                       ? static_cast<unsigned>(storeAcc_)
                       : 0u;
    // Leave room in the block: spill the remainder to later blocks.
    nLoads = std::min(nLoads, cpu::Block::kMaxOps - 2);
    nStores = std::min(nStores, cpu::Block::kMaxOps - nLoads);
    loadAcc_ -= nLoads;
    storeAcc_ -= nStores;

    int loadBudget = static_cast<int>(nLoads);
    while (loadBudget > 0 &&
           b->nOps + nStores < cpu::Block::kMaxOps) {
        cpu::MemOp op;
        op.isStore = false;
        const double u = rng_.uniform();
        if (u < prof_.seqFrac) {
            op.addr = nextSeq();
            op.streamId = kSeqStream;
        } else if (u < prof_.seqFrac + prof_.strideFrac) {
            op.addr = nextStride();
            op.streamId = kStrideStream;
        } else if (u < prof_.seqFrac + prof_.strideFrac +
                           prof_.hotFrac) {
            op.addr = hotLine();
            op.streamId = static_cast<std::uint16_t>(
                kRandomStreamBase + rng_.below(8));
        } else if (rng_.chance(prof_.dependentFrac * ph.dependence)) {
            // Pointer chase: a single dependent cold miss.
            op.addr = randomLine();
            op.streamId = static_cast<std::uint16_t>(
                kRandomStreamBase + rng_.below(8));
            op.dependent = true;
        } else {
            // Independent cold misses cluster (coldBurst): fetches
            // of an object's adjacent fields overlap in the LFB —
            // the memory-level parallelism real workloads exhibit.
            const unsigned space =
                cpu::Block::kMaxOps - b->nOps - nStores;
            const unsigned burst = std::min<unsigned>(
                std::max(1u, prof_.coldBurst), space);
            for (unsigned k = 0; k < burst; ++k) {
                cpu::MemOp m;
                m.isStore = false;
                m.addr = randomLine();
                m.streamId = static_cast<std::uint16_t>(
                    kRandomStreamBase + rng_.below(8));
                b->addOp(m);
            }
            // Borrow any overdraft from future blocks' budgets.
            loadBudget -= static_cast<int>(burst);
            if (loadBudget < 0)
                loadAcc_ += loadBudget;
            continue;
        }
        b->addOp(op);
        --loadBudget;
    }
    for (unsigned i = 0; i < nStores; ++i) {
        cpu::MemOp op;
        op.isStore = true;
        op.addr = nextStoreAddr();
        b->addOp(op);
    }

    ++blocksEmitted_;
    return true;
}

std::vector<std::unique_ptr<cpu::Kernel>>
makeKernels(const WorkloadProfile &profile)
{
    std::vector<std::unique_ptr<cpu::Kernel>> out;
    const unsigned threads = std::max(1u, profile.threads);
    out.reserve(threads);
    for (unsigned c = 0; c < threads; ++c)
        out.push_back(
            std::make_unique<SyntheticKernel>(profile, c));
    return out;
}

}  // namespace cxlsim::workloads
