#include "ras.hh"

#include "sim/logging.hh"
#include "stats/json.hh"

namespace cxlsim::ras {

namespace {

void
checkProb(double p, const char *what)
{
    if (!(p >= 0.0 && p <= 1.0))
        throw ConfigError(std::string(what) +
                          " must be a probability in [0, 1], got " +
                          std::to_string(p));
}

void
checkNonNegative(double v, const char *what)
{
    if (!(v >= 0.0))
        throw ConfigError(std::string(what) +
                          " must be non-negative, got " +
                          std::to_string(v));
}

}  // namespace

bool
RasStats::any() const
{
    return crcErrors || linkReplays || linkDownEvents || corrected ||
           uncorrected || poisonedReturns || patrolScrubs ||
           refusedRequests || hostRetries || hostTimeouts ||
           failovers || degradedEntries || offlineEntries;
}

RasStats &
RasStats::operator+=(const RasStats &o)
{
    crcErrors += o.crcErrors;
    linkReplays += o.linkReplays;
    linkDownEvents += o.linkDownEvents;
    corrected += o.corrected;
    uncorrected += o.uncorrected;
    poisonedReturns += o.poisonedReturns;
    patrolScrubs += o.patrolScrubs;
    refusedRequests += o.refusedRequests;
    hostRetries += o.hostRetries;
    hostTimeouts += o.hostTimeouts;
    failovers += o.failovers;
    failoverExtraNs += o.failoverExtraNs;
    degradedEntries += o.degradedEntries;
    offlineEntries += o.offlineEntries;
    return *this;
}

void
RasStats::writeJson(stats::JsonWriter *w) const
{
    w->beginObject();
    w->field("crc_errors", crcErrors);
    w->field("link_replays", linkReplays);
    w->field("link_down_events", linkDownEvents);
    w->field("corrected", corrected);
    w->field("uncorrected", uncorrected);
    w->field("poisoned_returns", poisonedReturns);
    w->field("patrol_scrubs", patrolScrubs);
    w->field("refused_requests", refusedRequests);
    w->field("host_retries", hostRetries);
    w->field("host_timeouts", hostTimeouts);
    w->field("failovers", failovers);
    w->field("failover_extra_ns", failoverExtraNs);
    w->field("degraded_entries", degradedEntries);
    w->field("offline_entries", offlineEntries);
    w->endObject();
}

void
LinkFaultParams::validate() const
{
    checkProb(crcErrorProb, "link crc error probability");
    checkNonNegative(replayNs, "link replay latency");
    if (maxReplays == 0)
        throw ConfigError("link replay budget must be >= 1");
}

void
MediaFaultParams::validate() const
{
    checkProb(correctableProb, "correctable error probability");
    checkProb(uncorrectableProb, "uncorrectable error probability");
    checkNonNegative(scrubExtraNs, "ECC correction latency");
    checkNonNegative(patrolIntervalUs, "patrol scrub interval");
    checkNonNegative(patrolNs, "patrol scrub occupancy");
}

void
HealthParams::validate() const
{
    checkProb(ewmaAlpha, "health EWMA alpha");
    checkProb(degradeThreshold, "degrade threshold");
    checkProb(timeoutThreshold, "timeout threshold");
    if (degradeThreshold > timeoutThreshold)
        throw ConfigError(
            "degrade threshold must not exceed timeout threshold");
    if (!(recoveryFraction > 0.0 && recoveryFraction <= 1.0))
        throw ConfigError("health recovery fraction must be in (0, 1]");
}

void
HostRetryParams::validate() const
{
    checkNonNegative(timeoutNs, "host completion timeout");
    checkNonNegative(backoffNs, "host retry backoff");
    if (!(backoffMult >= 1.0))
        throw ConfigError("host backoff multiplier must be >= 1");
}

LinkFaultProcess::LinkFaultProcess(const LinkFaultParams &p,
                                   std::uint64_t seed)
    : params_(p), rng_(seed)
{
    params_.validate();
}

Tick
LinkFaultProcess::flitPenalty(bool *lost)
{
    *lost = false;
    if (params_.crcErrorProb <= 0.0)
        return 0;
    if (!rng_.chance(params_.crcErrorProb))
        return 0;

    // The flit failed CRC: the link-layer retry buffer replays it
    // until it gets through or the replay budget is exhausted.
    ++crcErrors_;
    Tick extra = 0;
    for (unsigned attempt = 0; attempt < params_.maxReplays;
         ++attempt) {
        ++replays_;
        extra += nsToTicks(params_.replayNs);
        if (!rng_.chance(params_.crcErrorProb))
            return extra;  // replay succeeded
        ++crcErrors_;
    }
    ++exhausted_;
    *lost = true;
    return extra;
}

void
LinkFaultProcess::addTo(RasStats *out) const
{
    out->crcErrors += crcErrors_;
    out->linkReplays += replays_;
    out->linkDownEvents += exhausted_;
}

MediaFaultProcess::MediaFaultProcess(const MediaFaultParams &p,
                                     std::uint64_t seed)
    : params_(p), rng_(seed)
{
    params_.validate();
}

MediaOutcome
MediaFaultProcess::sample()
{
    MediaOutcome o;
    if (params_.uncorrectableProb > 0.0 &&
        rng_.chance(params_.uncorrectableProb)) {
        // Uncorrectable media error: the device returns the data
        // with poison; no extra latency (the controller does not
        // stall — detection rides the normal ECC pipeline).
        o.poisoned = true;
        return o;
    }
    if (params_.correctableProb > 0.0 &&
        rng_.chance(params_.correctableProb)) {
        o.corrected = true;
        o.extraTicks = nsToTicks(params_.scrubExtraNs);
    }
    return o;
}

HealthMonitor::HealthMonitor(const HealthParams &p) : params_(p)
{
    params_.validate();
}

void
HealthMonitor::transition(DeviceHealth next)
{
    if (next == state_)
        return;
    if (next == DeviceHealth::kDegraded)
        ++degradedEntries_;
    if (isDown(next))
        ++offlineEntries_;
    state_ = next;
}

void
HealthMonitor::recordOutcome(bool error)
{
    if (forced_)
        return;  // pinned by a scheduled fault until recover()
    const double a = params_.ewmaAlpha;
    errEwma_ = a * (error ? 1.0 : 0.0) + (1.0 - a) * errEwma_;

    switch (state_) {
      case DeviceHealth::kHealthy:
        if (errEwma_ > params_.degradeThreshold)
            transition(DeviceHealth::kDegraded);
        break;
      case DeviceHealth::kDegraded:
        if (errEwma_ > params_.timeoutThreshold)
            transition(DeviceHealth::kTimedOut);
        else if (errEwma_ < params_.degradeThreshold *
                                params_.recoveryFraction)
            transition(DeviceHealth::kHealthy);
        break;
      case DeviceHealth::kTimedOut:
        if (errEwma_ < params_.timeoutThreshold *
                           params_.recoveryFraction)
            transition(DeviceHealth::kDegraded);
        break;
      case DeviceHealth::kOffline:
        break;  // only recover() leaves Offline
    }
}

void
HealthMonitor::noteLinkDown()
{
    if (forced_)
        return;
    // Replay exhaustion is a far stronger signal than one bad
    // request: weight it as a burst of errors.
    for (int i = 0; i < 8; ++i)
        recordOutcome(true);
    if (state_ == DeviceHealth::kHealthy)
        transition(DeviceHealth::kDegraded);
}

void
HealthMonitor::force(DeviceHealth h)
{
    forced_ = true;
    transition(h);
}

void
HealthMonitor::recover()
{
    forced_ = false;
    errEwma_ = 0.0;
    transition(DeviceHealth::kHealthy);
}

}  // namespace cxlsim::ras
