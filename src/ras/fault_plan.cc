#include "fault_plan.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace cxlsim::ras {

namespace {

/** Parse a double with full-token consumption. */
double
parseDouble(const std::string &tok, const std::string &val)
{
    char *end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (val.empty() || end != val.c_str() + val.size())
        throw ConfigError("fault plan: malformed number '" + val +
                          "' in token '" + tok + "'");
    return v;
}

unsigned
parseUnsigned(const std::string &tok, const std::string &val)
{
    const double v = parseDouble(tok, val);
    if (v < 0.0 || v != static_cast<double>(
                            static_cast<unsigned long long>(v)))
        throw ConfigError("fault plan: expected a non-negative "
                          "integer in token '" +
                          tok + "'");
    return static_cast<unsigned>(v);
}

/** Parse "500ns" / "20us" / "2ms" / bare ns into ticks. */
Tick
parseDuration(const std::string &tok, std::string val)
{
    double mult = kTicksPerNs;  // bare numbers are ns
    if (val.size() > 2 && val.compare(val.size() - 2, 2, "ns") == 0) {
        val.resize(val.size() - 2);
    } else if (val.size() > 2 &&
               val.compare(val.size() - 2, 2, "us") == 0) {
        mult = kTicksPerUs;
        val.resize(val.size() - 2);
    } else if (val.size() > 2 &&
               val.compare(val.size() - 2, 2, "ms") == 0) {
        mult = kTicksPerMs;
        val.resize(val.size() - 2);
    }
    const double v = parseDouble(tok, val);
    if (v < 0.0)
        throw ConfigError("fault plan: negative duration in '" + tok +
                          "'");
    return static_cast<Tick>(v * static_cast<double>(mult) + 0.5);
}

/** Parse "offline@2ms:dev1"-style scheduled-event tokens. */
ScheduledFault
parseEvent(const std::string &tok, FaultEventKind kind,
           std::string rest)
{
    ScheduledFault ev;
    ev.kind = kind;
    const auto colon = rest.find(':');
    if (colon != std::string::npos) {
        std::string dev = rest.substr(colon + 1);
        rest.resize(colon);
        if (dev.rfind("dev", 0) != 0)
            throw ConfigError(
                "fault plan: expected ':devN' suffix in '" + tok +
                "'");
        ev.device = parseUnsigned(tok, dev.substr(3));
    }
    ev.at = parseDuration(tok, rest);
    return ev;
}

}  // namespace

std::vector<ScheduledFault>
FaultPlan::eventsFor(unsigned device) const
{
    std::vector<ScheduledFault> out;
    for (const auto &e : events)
        if (e.device == device)
            out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const ScheduledFault &a, const ScheduledFault &b) {
                  return a.at < b.at;
              });
    return out;
}

void
FaultPlan::validate() const
{
    link.validate();
    media.validate();
    health.validate();
    hostRetry.validate();
}

FaultPlan
parseFaultPlan(const std::string &spec)
{
    // Specs arrive verbatim from the CLI/environment: bound every
    // dimension up front so hostile or accidental megabyte inputs
    // fail fast as ConfigError instead of exhausting memory.
    if (spec.size() > kFaultPlanMaxSpecBytes)
        throw ConfigError(
            "fault plan: spec is " + std::to_string(spec.size()) +
            " bytes, limit is " +
            std::to_string(kFaultPlanMaxSpecBytes));

    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok.size() > kFaultPlanMaxTokenBytes)
            throw ConfigError(
                "fault plan: token is " +
                std::to_string(tok.size()) + " bytes, limit is " +
                std::to_string(kFaultPlanMaxTokenBytes) + ": '" +
                tok.substr(0, 32) + "...'");

        const auto at = tok.find('@');
        const auto eq = tok.find('=');
        if (at != std::string::npos && (eq == std::string::npos ||
                                        at < eq)) {
            if (plan.events.size() >= kFaultPlanMaxEvents)
                throw ConfigError(
                    "fault plan: more than " +
                    std::to_string(kFaultPlanMaxEvents) +
                    " scheduled events");
            const std::string kind = tok.substr(0, at);
            const std::string rest = tok.substr(at + 1);
            if (kind == "offline")
                plan.events.push_back(parseEvent(
                    tok, FaultEventKind::kOffline, rest));
            else if (kind == "degrade")
                plan.events.push_back(parseEvent(
                    tok, FaultEventKind::kDegrade, rest));
            else if (kind == "recover")
                plan.events.push_back(parseEvent(
                    tok, FaultEventKind::kRecover, rest));
            else
                throw ConfigError(
                    "fault plan: unknown event kind in '" + tok +
                    "'");
            continue;
        }

        if (eq == std::string::npos) {
            if (tok == "failover") {
                plan.failover = true;
                continue;
            }
            throw ConfigError("fault plan: unknown token '" + tok +
                              "'");
        }
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "crc")
            plan.link.crcErrorProb = parseDouble(tok, val);
        else if (key == "replay")
            plan.link.replayNs = parseDouble(tok, val);
        else if (key == "maxreplay")
            plan.link.maxReplays = parseUnsigned(tok, val);
        else if (key == "ce")
            plan.media.correctableProb = parseDouble(tok, val);
        else if (key == "ue")
            plan.media.uncorrectableProb = parseDouble(tok, val);
        else if (key == "ecclat")
            plan.media.scrubExtraNs = parseDouble(tok, val);
        else if (key == "scrub")
            plan.media.patrolIntervalUs =
                ticksToNs(parseDuration(tok, val)) / 1000.0;
        else if (key == "timeout")
            plan.hostRetry.timeoutNs =
                ticksToNs(parseDuration(tok, val));
        else if (key == "budget")
            plan.hostRetry.maxRetries = parseUnsigned(tok, val);
        else if (key == "backoff")
            plan.hostRetry.backoffNs =
                ticksToNs(parseDuration(tok, val));
        else
            throw ConfigError("fault plan: unknown key '" + key +
                              "' in token '" + tok + "'");
    }
    plan.validate();
    return plan;
}

}  // namespace cxlsim::ras
