/**
 * @file
 * FaultPlan: the user-facing description of a fault-injection
 * experiment — stochastic per-device rates (link CRC, media ECC)
 * plus deterministic scheduled events ("device 1 goes offline at
 * t=2ms") and the host's recovery policy.
 *
 * A plan is parsed from a compact comma-separated spec, e.g.
 *
 *   crc=2e-4,ce=1e-4,ue=1e-6,scrub=100us,offline@2ms:dev1,failover
 *
 * Tokens:
 *   crc=<p>          per-flit CRC error probability
 *   replay=<ns>      LLR replay round-trip per retry
 *   maxreplay=<n>    replay budget before link-down
 *   ce=<p>           correctable media error probability
 *   ue=<p>           uncorrectable (poison) probability
 *   ecclat=<ns>      correction latency per CE
 *   scrub=<dur>      patrol-scrub interval (ns/us/ms suffix)
 *   timeout=<ns>     host completion timer
 *   budget=<n>       host re-issue budget
 *   backoff=<ns>     first host backoff (doubles per retry)
 *   offline@<t>[:devN]   schedule device N offline at time t
 *   degrade@<t>[:devN]   schedule forced degradation
 *   recover@<t>[:devN]   schedule recovery
 *   failover         route timed-out requests to a fallback backend
 */

#ifndef CXLSIM_RAS_FAULT_PLAN_HH
#define CXLSIM_RAS_FAULT_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ras/ras.hh"
#include "sim/types.hh"

namespace cxlsim::ras {

/** Kind of a deterministic scheduled fault event. */
enum class FaultEventKind : std::uint8_t {
    kOffline,  ///< device stops responding
    kDegrade,  ///< device forced into Degraded
    kRecover,  ///< device returns to Healthy
};

/** One scheduled event in device-local simulated time. */
struct ScheduledFault
{
    Tick at = 0;
    FaultEventKind kind = FaultEventKind::kOffline;
    /** Target device index (interleaved setups; 0 = first/only). */
    unsigned device = 0;
};

/** Complete fault-injection configuration for one experiment. */
struct FaultPlan
{
    LinkFaultParams link;
    MediaFaultParams media;
    HealthParams health;
    HostRetryParams hostRetry;
    /** Scheduled events, any order; filtered per device. */
    std::vector<ScheduledFault> events;
    /** Wrap the backend so timed-out requests fail over to a
     *  fallback (local DRAM) instead of surfacing Timeout. */
    bool failover = false;

    /** True when the plan perturbs the simulation at all. */
    bool
    enabled() const
    {
        return link.enabled() || media.enabled() || !events.empty();
    }

    /** Events targeting @p device, sorted by time. */
    std::vector<ScheduledFault> eventsFor(unsigned device) const;

    /** @throw ConfigError on any out-of-range parameter. */
    void validate() const;
};

/** Hard input limits for parseFaultPlan — specs come straight
 *  from the CLI/environment, so oversized input must fail as a
 *  ConfigError, never as memory exhaustion or an abort. */
inline constexpr std::size_t kFaultPlanMaxSpecBytes = 4096;
inline constexpr std::size_t kFaultPlanMaxTokenBytes = 128;
inline constexpr std::size_t kFaultPlanMaxEvents = 128;

/**
 * Parse a fault-plan spec string (see file comment for grammar).
 * @throw ConfigError on unknown tokens, malformed values, or any
 *        exceeded input limit (spec/token length, event count).
 */
[[nodiscard]] FaultPlan parseFaultPlan(const std::string &spec);

}  // namespace cxlsim::ras

#endif  // CXLSIM_RAS_FAULT_PLAN_HH
