/**
 * @file
 * RAS (reliability / availability / serviceability) primitives for
 * the CXL memory path.
 *
 * Real CXL-at-scale deployments see hard error events the clean-path
 * model cannot express: CRC-failed flits replayed by the link layer
 * (CXL LLR), correctable media errors absorbed by on-the-fly ECC,
 * uncorrectable errors returned to the host as *poison*, and devices
 * that stop responding altogether. This module provides the shared
 * vocabulary — completion statuses, per-device fault counters, the
 * seeded fault processes, and the device-health state machine — that
 * the link, device and host layers compose into an end-to-end fault
 * and recovery model.
 *
 * Determinism contract: every fault process draws from a dedicated
 * Rng stream derived from the owner's seed, so (a) a zero-rate
 * configuration is bit-identical to a build with RAS disabled, and
 * (b) any fixed FaultPlan yields identical results regardless of
 * how many parallelFor workers schedule the runs.
 */

#ifndef CXLSIM_RAS_RAS_HH
#define CXLSIM_RAS_RAS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlsim::stats {
class JsonWriter;
}

namespace cxlsim::ras {

/** Completion status of one memory request, as seen by the host. */
enum class Status : std::uint8_t {
    kOk = 0,     ///< data returned, no error
    kRetryable,  ///< transient transport failure; re-issue may succeed
    kPoisoned,   ///< data returned carrying poison (uncorrectable)
    kTimeout,    ///< no completion within the host's timer
};

constexpr std::string_view
statusName(Status s)
{
    switch (s) {
      case Status::kOk:
        return "ok";
      case Status::kRetryable:
        return "retryable";
      case Status::kPoisoned:
        return "poisoned";
      case Status::kTimeout:
        return "timeout";
    }
    return "?";
}

/** Health state of one CXL device, coarsest to the host's view. */
enum class DeviceHealth : std::uint8_t {
    kHealthy = 0,
    kDegraded,  ///< elevated error rate; served with extra scrubbing
    kTimedOut,  ///< unresponsive (error EWMA tripped); requests time out
    kOffline,   ///< administratively removed (scheduled fault)
};

constexpr std::string_view
healthName(DeviceHealth h)
{
    switch (h) {
      case DeviceHealth::kHealthy:
        return "healthy";
      case DeviceHealth::kDegraded:
        return "degraded";
      case DeviceHealth::kTimedOut:
        return "timedout";
      case DeviceHealth::kOffline:
        return "offline";
    }
    return "?";
}

/** True when the device cannot serve requests at all. */
constexpr bool
isDown(DeviceHealth h)
{
    return h == DeviceHealth::kTimedOut || h == DeviceHealth::kOffline;
}

/**
 * Per-device RAS event counters. One instance per fault-capable
 * node (device, backend, failover router); aggregated for reports.
 */
struct RasStats
{
    // Link layer.
    std::uint64_t crcErrors = 0;      ///< flits that failed CRC
    std::uint64_t linkReplays = 0;    ///< LLR replay rounds
    std::uint64_t linkDownEvents = 0; ///< replay budget exhausted

    // Media layer.
    std::uint64_t corrected = 0;       ///< correctable ECC events
    std::uint64_t uncorrected = 0;     ///< uncorrectable media errors
    std::uint64_t poisonedReturns = 0; ///< responses carrying poison
    std::uint64_t patrolScrubs = 0;    ///< background scrub passes
    std::uint64_t refusedRequests = 0; ///< arrivals while down

    // Host-side recovery.
    std::uint64_t hostRetries = 0;  ///< re-issues after backoff
    std::uint64_t hostTimeouts = 0; ///< retry budget exhausted
    std::uint64_t failovers = 0;    ///< requests re-routed to fallback
    /** Extra latency suffered on failed-over requests, ns. */
    double failoverExtraNs = 0.0;

    // Health transitions.
    std::uint64_t degradedEntries = 0;
    std::uint64_t offlineEntries = 0;

    /** Total injected fault events (for quick non-zero checks). */
    std::uint64_t
    injected() const
    {
        return crcErrors + corrected + uncorrected;
    }

    bool any() const;
    RasStats &operator+=(const RasStats &o);

    /** Emit this counter set as a JSON object (keys are stable). */
    void writeJson(stats::JsonWriter *w) const;
};

/** One named node's stats in a backend tree report. */
struct RasReportEntry
{
    std::string name;
    RasStats stats;
};

/** Link-layer (flit CRC / LLR replay) fault parameters. */
struct LinkFaultParams
{
    /** Per-flit CRC failure probability. */
    double crcErrorProb = 0.0;
    /** Replay round-trip added per retry (LLR ack timeout + resend), ns. */
    double replayNs = 80.0;
    /** Replay attempts before the link is declared down. */
    unsigned maxReplays = 8;

    bool enabled() const { return crcErrorProb > 0.0; }
    /** @throw ConfigError on out-of-range values. */
    void validate() const;
};

/** Media (DRAM-behind-controller) fault parameters. */
struct MediaFaultParams
{
    /** Per-access correctable ECC error probability. */
    double correctableProb = 0.0;
    /** Per-access uncorrectable (poison-returning) probability. */
    double uncorrectableProb = 0.0;
    /** Extra on-the-fly correction latency per correctable hit, ns. */
    double scrubExtraNs = 40.0;
    /** Patrol-scrub cadence, us (0 disables background scrub). */
    double patrolIntervalUs = 0.0;
    /** Scheduler occupancy of one patrol-scrub pass, ns. */
    double patrolNs = 120.0;

    bool
    enabled() const
    {
        return correctableProb > 0.0 || uncorrectableProb > 0.0 ||
               patrolIntervalUs > 0.0;
    }
    void validate() const;
};

/** Error-rate EWMA thresholds for the health state machine. */
struct HealthParams
{
    /** EWMA smoothing factor per observed request. */
    double ewmaAlpha = 0.02;
    /** Error EWMA above which the device enters Degraded. */
    double degradeThreshold = 0.05;
    /** Error EWMA above which the device stops responding. */
    double timeoutThreshold = 0.25;
    /** Hysteresis: recover one level below threshold * this. */
    double recoveryFraction = 0.5;

    void validate() const;
};

/** Host-side completion-timeout and re-issue policy. */
struct HostRetryParams
{
    /** Completion timer before a request is declared lost, ns. */
    double timeoutNs = 2000.0;
    /** Re-issue budget per request. */
    unsigned maxRetries = 4;
    /** First backoff before re-issue, ns; doubles per attempt. */
    double backoffNs = 250.0;
    /** Backoff growth factor. */
    double backoffMult = 2.0;

    void validate() const;
};

/**
 * Link-layer fault process: one seeded CRC/replay stream per link
 * direction pair. flitPenalty() is drawn once per flit transfer and
 * returns the extra serialization the replays cost; when the replay
 * budget is exhausted the flit is lost and the caller must escalate
 * (link-down event).
 */
class LinkFaultProcess
{
  public:
    LinkFaultProcess(const LinkFaultParams &p, std::uint64_t seed);

    /**
     * Sample the fault process for one flit.
     *
     * @param[out] lost Set true when replays were exhausted and the
     *                  flit never got through.
     * @return Extra link occupancy ticks spent on replays.
     */
    Tick flitPenalty(bool *lost);

    const LinkFaultParams &params() const { return params_; }

    /** Accumulate this process's counters into @p out. */
    void addTo(RasStats *out) const;

  private:
    LinkFaultParams params_;
    Rng rng_;
    std::uint64_t crcErrors_ = 0;
    std::uint64_t replays_ = 0;
    std::uint64_t exhausted_ = 0;
};

/** Outcome of the media fault process for one access. */
struct MediaOutcome
{
    /** Extra service latency (correction / scrub), ticks. */
    Tick extraTicks = 0;
    /** Response carries poison (uncorrectable error). */
    bool poisoned = false;
    /** A correctable error was absorbed. */
    bool corrected = false;
};

/** Per-access media error sampler with its own stream. */
class MediaFaultProcess
{
  public:
    MediaFaultProcess(const MediaFaultParams &p, std::uint64_t seed);

    MediaOutcome sample();

    const MediaFaultParams &params() const { return params_; }

  private:
    MediaFaultParams params_;
    Rng rng_;
};

/**
 * Device-health state machine, driven by an error-rate EWMA:
 *
 *   Healthy -> Degraded -> TimedOut     (error EWMA crossings)
 *        \________________ Offline      (scheduled/administrative)
 *
 * Scheduled (forced) states pin the machine until an explicit
 * recover event; EWMA-driven states recover with hysteresis once
 * the error rate decays below recoveryFraction * threshold.
 */
class HealthMonitor
{
  public:
    explicit HealthMonitor(const HealthParams &p);

    DeviceHealth state() const { return state_; }
    double errorRate() const { return errEwma_; }

    /** Observe one request outcome (error = UE or link-down). */
    void recordOutcome(bool error);

    /** Link-layer replay exhaustion: a strong error signal. */
    void noteLinkDown();

    /** Scheduled fault: pin the state until recover(). */
    void force(DeviceHealth h);

    /** Scheduled recovery: unpin and reset the error EWMA. */
    void recover();

    std::uint64_t degradedEntries() const { return degradedEntries_; }
    std::uint64_t offlineEntries() const { return offlineEntries_; }

  private:
    void transition(DeviceHealth next);

    HealthParams params_;
    DeviceHealth state_ = DeviceHealth::kHealthy;
    bool forced_ = false;
    double errEwma_ = 0.0;
    std::uint64_t degradedEntries_ = 0;
    std::uint64_t offlineEntries_ = 0;
};

}  // namespace cxlsim::ras

#endif  // CXLSIM_RAS_RAS_HH
