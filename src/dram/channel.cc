#include "channel.hh"

#include <algorithm>

namespace cxlsim::dram {

Channel::Channel(const ChannelConfig &cfg)
    : cfg_(cfg), banks_(cfg.timing.banks), rng_(cfg.seed),
      nextRefresh_(cfg.timing.banks)
{
    // Stagger per-bank refresh windows across the refresh interval
    // so they do not all fire at once.
    const Tick refi = nsToTicks(cfg_.timing.tREFI);
    for (unsigned b = 0; b < banks_.size(); ++b)
        nextRefresh_[b] = refi * (b + 1) / banks_.size();
}

Tick
Channel::applyRefresh(unsigned bank, Tick start)
{
    const Tick refi = nsToTicks(cfg_.timing.tREFI);
    const Tick rfc = nsToTicks(cfg_.timing.tRFC);
    // Catch the refresh schedule up to 'start'. Hidden refreshes
    // were absorbed into idle gaps; visible ones block the bank.
    while (nextRefresh_[bank] + rfc <= start)
        nextRefresh_[bank] += refi;
    if (nextRefresh_[bank] <= start) {
        // A refresh window covers 'start'.
        if (!rng_.chance(cfg_.refreshHiding)) {
            banks_[bank].block(nextRefresh_[bank] + rfc);
            banks_[bank].close();
            ++stats_.refreshStalls;
        }
        nextRefresh_[bank] += refi;
    }
    return start;
}

Tick
Channel::access(Addr addr, bool is_write, Tick now)
{
    // Row-contiguous mapping with a hashed bank index: consecutive
    // lines share a row (streams get row hits), while rows scatter
    // pseudo-randomly over banks so independent streams do not
    // convoy on one bank even when their regions are bank-aligned
    // (real controllers hash bank bits for the same reason).
    const std::uint64_t rowGlobal = addr / cfg_.timing.rowBytes;
    const unsigned bank = static_cast<unsigned>(
        ((rowGlobal * 0x9e3779b97f4a7c15ULL) >> 32) % banks_.size());
    const std::uint64_t row = rowGlobal;

    applyRefresh(bank, now);

    RowResult rr;
    const Tick colReady =
        banks_[bank].access(row, now, cfg_.timing, &rr);
    switch (rr) {
      case RowResult::kHit:
        ++stats_.rowHits;
        break;
      case RowResult::kMiss:
        ++stats_.rowMisses;
        break;
      case RowResult::kCold:
        ++stats_.rowCold;
        break;
    }

    // Serialize the 64B burst on the shared data bus.
    Tick busStart = std::max(colReady, busFreeAt_);
    if (is_write != lastWasWrite_) {
        busStart += nsToTicks(cfg_.timing.turnaround);
        ++stats_.turnarounds;
        lastWasWrite_ = is_write;
    }
    const Tick done = busStart + nsToTicks(cfg_.timing.burst);
    busFreeAt_ = done;

    if (is_write) {
        ++stats_.writes;
        // Consecutive writes to an open row pipeline at the burst
        // rate; write recovery (tWR) only gates a subsequent
        // precharge, which the row-miss path already prices in.
    } else {
        ++stats_.reads;
    }
    return done;
}

}  // namespace cxlsim::dram
