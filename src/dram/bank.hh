/**
 * @file
 * Open-page DRAM bank model.
 *
 * Each bank tracks its open row and the tick at which it next
 * becomes available. An access classifies as a row hit (CAS only),
 * row miss/conflict (precharge + activate + CAS) or cold activate
 * (activate + CAS), producing the per-request latency variation
 * that underlies local/NUMA's small tail (§3.2, "chip-level
 * factors such as row buffer misses").
 */

#ifndef CXLSIM_DRAM_BANK_HH
#define CXLSIM_DRAM_BANK_HH

#include <cstdint>

#include "dram/timing.hh"
#include "sim/types.hh"

namespace cxlsim::dram {

/** Outcome classification of a bank access. */
enum class RowResult : std::uint8_t { kHit, kMiss, kCold };

/** One DRAM bank with an open-row register. */
class Bank
{
  public:
    /**
     * Reserve the bank for an access to @p row starting no earlier
     * than @p earliest and return when the requested line's data
     * transfer may begin on the bus.
     *
     * @param row      Row index being accessed.
     * @param earliest Earliest start tick (arrival / scheduler time).
     * @param t        Channel timing parameters.
     * @param result   Out: row hit/miss/cold classification.
     * @return Tick at which column data is available for the bus.
     */
    Tick access(std::uint64_t row, Tick earliest, const DramTiming &t,
                RowResult *result);

    /** True if some row is open. */
    bool open() const { return open_; }

    /** Currently open row; only meaningful if open(). */
    std::uint64_t openRow() const { return row_; }

    /** Tick at which the bank is next free. */
    Tick freeAt() const { return freeAt_; }

    /** Force the bank busy through @p until (refresh). */
    void block(Tick until);

    /** Close the open row (e.g. after refresh). */
    void
    close()
    {
        open_ = false;
    }

  private:
    bool open_ = false;
    std::uint64_t row_ = 0;
    Tick freeAt_ = 0;
};

}  // namespace cxlsim::dram

#endif  // CXLSIM_DRAM_BANK_HH
