#include "timing.hh"

namespace cxlsim::dram {

DramTiming
ddr4_2933()
{
    DramTiming t;
    t.name = "DDR4-2933";
    t.tCL = 14.4;        // 21 cycles @ 1466 MHz
    t.tRCD = 14.4;
    t.tRP = 14.4;
    t.tWR = 15.0;
    t.tRFC = 350.0;      // 8Gb die
    t.tREFI = 7800.0;
    t.burst = 64.0 / 23.46;  // 2.73 ns per 64B line
    t.turnaround = 2.5;  // effective: iMC write-batching amortizes switches
    t.banks = 16;
    t.rowBytes = 8192;
    return t;
}

DramTiming
ddr5_4800()
{
    DramTiming t;
    t.name = "DDR5-4800";
    t.tCL = 16.7;        // 40 cycles @ 2400 MHz
    t.tRCD = 16.7;
    t.tRP = 16.7;
    t.tWR = 30.0;
    t.tRFC = 295.0;      // 16Gb die
    t.tREFI = 3900.0;
    t.burst = 64.0 / 38.4;   // 1.67 ns per 64B line
    t.turnaround = 2.0;  // effective: iMC write-batching amortizes switches
    t.banks = 32;
    t.rowBytes = 8192;
    return t;
}

}  // namespace cxlsim::dram
