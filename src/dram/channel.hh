/**
 * @file
 * DRAM channel model: banks + shared data bus + refresh.
 *
 * The channel serializes 64B transfers on its data bus, charges
 * read/write turnaround when the transfer direction flips, and
 * injects refresh blocking. Refresh visibility is configurable:
 * mature integrated memory controllers hide almost all refreshes by
 * scheduling them into idle gaps, while the paper finds CXL memory
 * controllers to be less effective at this — one ingredient of
 * CXL's larger tail latencies (Finding #1).
 */

#ifndef CXLSIM_DRAM_CHANNEL_HH
#define CXLSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "dram/bank.hh"
#include "dram/timing.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlsim::dram {

/** Aggregate counters for one channel. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowCold = 0;
    std::uint64_t refreshStalls = 0;
    std::uint64_t turnarounds = 0;

    double
    rowHitRate() const
    {
        const auto n = reads + writes;
        return n ? static_cast<double>(rowHits) /
                       static_cast<double>(n)
                 : 0.0;
    }
};

/** Configuration beyond raw DDR timing. */
struct ChannelConfig
{
    DramTiming timing;
    /**
     * Fraction of refreshes the controller hides in idle gaps.
     * ~0.97 for a tuned iMC; lower for third-party CXL MCs.
     */
    double refreshHiding = 0.97;
    /** RNG seed for address-independent chip effects. */
    std::uint64_t seed = 1;
};

/**
 * One DDR channel. Accesses are processed in call order (FCFS at
 * the channel; per-bank timing provides service-time variation).
 */
class Channel
{
  public:
    explicit Channel(const ChannelConfig &cfg);

    /**
     * Perform a 64B access.
     *
     * @param addr     Line-aligned physical address (within device).
     * @param is_write True for a write (DRAM write burst).
     * @param now      Arrival tick at the channel scheduler.
     * @return Completion tick: data on bus (read) or write retired.
     */
    Tick access(Addr addr, bool is_write, Tick now);

    const ChannelStats &stats() const { return stats_; }
    const DramTiming &timing() const { return cfg_.timing; }

    /** Tick at which the data bus frees; used for utilization. */
    Tick busFreeAt() const { return busFreeAt_; }

    void resetStats() { stats_ = ChannelStats{}; }

  private:
    /** Apply refresh blocking that overlaps [start, ...). */
    Tick applyRefresh(unsigned bank, Tick start);

    ChannelConfig cfg_;
    std::vector<Bank> banks_;
    Rng rng_;
    Tick busFreeAt_ = 0;
    bool lastWasWrite_ = false;
    /** Next scheduled refresh window start, per bank (staggered). */
    std::vector<Tick> nextRefresh_;
    ChannelStats stats_;
};

}  // namespace cxlsim::dram

#endif  // CXLSIM_DRAM_CHANNEL_HH
