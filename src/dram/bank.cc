#include "bank.hh"

#include <algorithm>

namespace cxlsim::dram {

Tick
Bank::access(std::uint64_t row, Tick earliest, const DramTiming &t,
             RowResult *result)
{
    const Tick start = std::max(earliest, freeAt_);
    // Latency is what the requester waits for; occupancy is how
    // long the bank blocks further commands. Column accesses to an
    // open row pipeline at the burst rate, so a row hit occupies
    // the bank far shorter than its tCL latency.
    double lat_ns;
    double occ_ns;
    RowResult r;
    if (open_ && row_ == row) {
        r = RowResult::kHit;
        lat_ns = t.tCL;
        occ_ns = t.burst;
    } else if (open_) {
        r = RowResult::kMiss;
        lat_ns = t.tRP + t.tRCD + t.tCL;
        occ_ns = t.tRP + t.tRCD + t.burst;
    } else {
        r = RowResult::kCold;
        lat_ns = t.tRCD + t.tCL;
        occ_ns = t.tRCD + t.burst;
    }
    open_ = true;
    row_ = row;
    const Tick dataReady = start + nsToTicks(lat_ns);
    freeAt_ = start + nsToTicks(occ_ns);
    if (result)
        *result = r;
    return dataReady;
}

void
Bank::block(Tick until)
{
    freeAt_ = std::max(freeAt_, until);
}

}  // namespace cxlsim::dram
