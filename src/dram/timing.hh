/**
 * @file
 * DDR timing parameter sets.
 *
 * The values are nominal JEDEC-style numbers for the DIMM
 * generations in the paper's testbed (Table 1): DDR4-2933 on the
 * SKX machines and on CXL-A/CXL-C, DDR5-4800 on SPR/EMR and on
 * CXL-B/CXL-D. Only the parameters that shape request latency,
 * bandwidth and refresh-induced tails are modelled.
 */

#ifndef CXLSIM_DRAM_TIMING_HH
#define CXLSIM_DRAM_TIMING_HH

#include <string>

#include "sim/types.hh"

namespace cxlsim::dram {

/** Timing and geometry for one DRAM channel. */
struct DramTiming
{
    std::string name;

    /** CAS latency (read command to first data), ns. */
    double tCL;
    /** Row-to-column delay, ns. */
    double tRCD;
    /** Row precharge, ns. */
    double tRP;
    /** Write recovery (adds to write turnaround), ns. */
    double tWR;
    /** Refresh cycle time (bank blocked), ns. */
    double tRFC;
    /** Average refresh interval, ns. */
    double tREFI;
    /** Data-bus occupancy to transfer one 64B line, ns. */
    double burst;
    /** Bus turnaround penalty when switching read<->write, ns. */
    double turnaround;

    /** Banks per channel (bank groups x banks collapsed). */
    unsigned banks;
    /** Row (page) size in bytes. */
    unsigned rowBytes;

    /** Peak channel data rate in GB/s implied by the burst time. */
    double
    peakGBps() const
    {
        return 64.0 / burst;  // bytes per ns == GB/s
    }
};

/** DDR4-2933, 64-bit channel: 23.5 GB/s peak. */
DramTiming ddr4_2933();

/** DDR5-4800, 64-bit channel: 38.4 GB/s peak. */
DramTiming ddr5_4800();

}  // namespace cxlsim::dram

#endif  // CXLSIM_DRAM_TIMING_HH
