/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator's time base is the Tick, defined as one picosecond.
 * All component latencies are expressed in ticks internally; helpers
 * convert from ns/us and from CPU cycles at a given frequency.
 */

#ifndef CXLSIM_SIM_TYPES_HH
#define CXLSIM_SIM_TYPES_HH

#include <cstdint>

namespace cxlsim {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** CPU cycle count. */
using Cycle = std::uint64_t;

/** Byte address in a simulated physical address space. */
using Addr = std::uint64_t;

/** Ticks per common time units. */
constexpr Tick kTicksPerNs = 1000;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert a duration in (possibly fractional) nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert ticks to nanoseconds (fractional). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return nsToTicks(us * 1000.0);
}

/** Size of one cache line in bytes; fixed across the simulator. */
constexpr unsigned kCacheLineBytes = 64;

/** Strip the within-line offset from an address. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kCacheLineBytes - 1);
}

/**
 * Ticks consumed by one CPU cycle at the given core frequency.
 *
 * @param ghz Core frequency in GHz.
 */
constexpr double
ticksPerCycle(double ghz)
{
    return 1000.0 / ghz;  // ps per cycle
}

}  // namespace cxlsim

#endif  // CXLSIM_SIM_TYPES_HH
