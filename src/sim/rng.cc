#include "rng.hh"

#include <cmath>

namespace cxlsim {

namespace {

/** SplitMix64 step, used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n <= 1)
        return 0;
    // Multiply-shift bounded generation (Lemire); slight bias is
    // irrelevant for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * n) >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(1.0 - u);
}

double
Rng::boundedPareto(double lo, double hi, double alpha)
{
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(x, -1.0 / alpha);
}

double
Rng::normal(double mean, double stddev)
{
    // Irwin-Hall approximation: 12 uniforms have variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += uniform();
    return mean + (acc - 6.0) * stddev;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    if (s <= 0.0)
        return below(n);
    // Inverse-CDF approximation for Zipf via the continuous bounded
    // Pareto; adequate for workload skew modelling.
    const double u = uniform();
    const double nmax = static_cast<double>(n);
    double r;
    if (s == 1.0) {
        r = std::pow(nmax, u);
    } else {
        const double e = 1.0 - s;
        r = std::pow(u * (std::pow(nmax, e) - 1.0) + 1.0, 1.0 / e);
    }
    auto idx = static_cast<std::uint64_t>(r - 1.0);
    return idx >= n ? n - 1 : idx;
}

Rng
Rng::fork(std::uint64_t salt)
{
    return Rng(next() ^ (salt * 0x2545f4914f6cdd1dULL));
}

}  // namespace cxlsim
