#include "partition.hh"

#include <chrono>
#include <thread>

#include "sim/invariants.hh"
#include "sim/logging.hh"
#include "stats/json.hh"

namespace cxlsim::pdes {

namespace {

/** The intra-run thread budget. Relaxed atomics suffice: the knob
 *  is set once at CLI/bench startup, and every value produces
 *  bit-identical simulation output, so a racy read could only pick
 *  between equally-correct engines. */
std::atomic<unsigned> g_simThreads{1};

std::uint64_t
hostNowNs()
{
    // Host-side diagnostics only (wait-time counters); simulated
    // time never derives from this.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr Tick kFrontierDone = ~Tick{0};
constexpr int kSpinBudget = 256;

}  // namespace

unsigned
simThreads()
{
    return g_simThreads.load(std::memory_order_relaxed);
}

void
setSimThreads(unsigned n)
{
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    g_simThreads.store(n, std::memory_order_relaxed);
}

// -----------------------------------------------------------------
// FrontierGate
// -----------------------------------------------------------------

FrontierGate::FrontierGate(unsigned partitions, unsigned tokens)
    : slots_(partitions),
      tokenCap_(tokens >= partitions ? -1 : static_cast<int>(tokens)),
      tokens_(tokenCap_ < 0 ? 0 : std::max(1, tokenCap_))
{
    SIM_ASSERT(partitions > 0, "FrontierGate needs a partition");
}

bool
FrontierGate::grantCondition(unsigned p, Tick key) const
{
    // Serial block order is lexicographic (blockStart, coreIdx):
    // lower-indexed partitions must be strictly past this key,
    // higher-indexed ones at-or-past it. Acquire pairs with the
    // release publish in beginBlock()/finish(), so shared-state
    // writes made under an earlier grant are visible here.
    for (unsigned j = 0; j < slots_.size(); ++j) {
        if (j == p)
            continue;
        const Tick f =
            slots_[j].frontier.load(std::memory_order_acquire);
        if (j < p ? f <= key : f < key)
            return false;
    }
    return true;
}

void
FrontierGate::beginBlock(unsigned p, Tick key)
{
    Slot &s = slots_[p];
    if (sim::Invariants *inv = sim::currentInvariants())
        if (key < s.frontier.load(std::memory_order_relaxed) &&
            s.frontier.load(std::memory_order_relaxed) !=
                kFrontierDone)
            inv->record("pdes/epoch-monotonic",
                        "partition " + std::to_string(p),
                        "key=" + std::to_string(key) + " frontier=" +
                            std::to_string(s.frontier.load(
                                std::memory_order_relaxed)));
    s.granted = false;
    ++s.stats.blocks;
    // Release: everything this partition wrote under its previous
    // grant happens-before any observer of the new frontier.
    s.frontier.store(key, std::memory_order_release);
    wake();
    if (tokenCap_ >= 0)
        acquireToken(p);
}

void
FrontierGate::endBlock(unsigned p)
{
    (void)p;
    if (tokenCap_ >= 0)
        releaseToken();
}

void
FrontierGate::finish(unsigned p)
{
    slots_[p].granted = false;
    slots_[p].frontier.store(kFrontierDone,
                             std::memory_order_release);
    wake();
}

void
FrontierGate::enterShared(unsigned p)
{
    Slot &s = slots_[p];
    ++s.stats.sharedGrants;
    if (s.granted)
        return;
    const Tick key = s.frontier.load(std::memory_order_relaxed);
    if (grantCondition(p, key)) {
        s.granted = true;
        return;
    }

    ++s.stats.sharedWaits;
    const std::uint64_t t0 = hostNowNs();
    // While waiting this partition cannot execute, so hand its
    // token back — the globally minimal partition must always be
    // able to run, or the gate would deadlock under a token cap.
    if (tokenCap_ >= 0)
        releaseToken();
    for (int spin = 0; !grantCondition(p, key); ++spin) {
        if (spin < kSpinBudget) {
            std::this_thread::yield();
            continue;
        }
        park([&] { return grantCondition(p, key); });
        break;
    }
    // The condition is monotonic (frontiers only grow), so the
    // grant survives the token re-acquisition below.
    if (tokenCap_ >= 0)
        acquireToken(p);
    s.stats.waitNs += hostNowNs() - t0;
    s.granted = true;
}

bool
FrontierGate::tryAcquireToken()
{
    int v = tokens_.load(std::memory_order_relaxed);
    while (v > 0) {
        if (tokens_.compare_exchange_weak(
                v, v - 1, std::memory_order_acquire,
                std::memory_order_relaxed))
            return true;
    }
    return false;
}

void
FrontierGate::acquireToken(unsigned p)
{
    for (int spin = 0; !tryAcquireToken(); ++spin) {
        if (spin < kSpinBudget) {
            std::this_thread::yield();
            continue;
        }
        const std::uint64_t t0 = hostNowNs();
        park([&] { return tryAcquireToken(); });
        slots_[p].stats.waitNs += hostNowNs() - t0;
        return;
    }
}

void
FrontierGate::releaseToken()
{
    tokens_.fetch_add(1, std::memory_order_release);
    wake();
}

template <typename Pred>
void
FrontierGate::park(Pred pred)
{
    std::unique_lock<std::mutex> lk(mu_);
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    // Timed wait: wake()'s sleeper check is deliberately unfenced
    // (publishes are the hot path), so a notify can theoretically
    // be missed in the registration window; the 1ms re-check bounds
    // that race to a stall instead of a hang.
    while (!pred())
        cv_.wait_for(lk, std::chrono::milliseconds(1), pred);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

void
FrontierGate::wake()
{
    if (sleepers_.load(std::memory_order_relaxed) == 0)
        return;
    // The lock pairs with park()'s wait to close the race between
    // a sleeper's predicate check and its actual wait.
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_all();
}

// -----------------------------------------------------------------
// StatsRegistry
// -----------------------------------------------------------------

StatsRegistry &
StatsRegistry::instance()
{
    // Process-wide diagnostics accumulator: owns no simulation
    // state and never feeds figure output.
    // lint:allow(det-static-local)
    static StatsRegistry reg;
    return reg;
}

void
StatsRegistry::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    byName_.clear();
}

void
StatsRegistry::add(const std::string &name, const Entry &e)
{
    std::lock_guard<std::mutex> lk(mu_);
    Entry &acc = byName_[name];
    acc.runs += e.runs;
    acc.eventsDrained += e.eventsDrained;
    acc.sharedGrants += e.sharedGrants;
    acc.sharedWaits += e.sharedWaits;
    acc.waitNs += e.waitNs;
    acc.messagesSent += e.messagesSent;
    acc.messagesReceived += e.messagesReceived;
    acc.epochs += e.epochs;
}

void
StatsRegistry::addGate(const FrontierGate &gate)
{
    for (unsigned p = 0; p < gate.partitions(); ++p) {
        const FrontierGate::Stats &s = gate.stats(p);
        Entry e;
        e.runs = 1;
        e.eventsDrained = s.blocks;
        e.sharedGrants = s.sharedGrants;
        e.sharedWaits = s.sharedWaits;
        e.waitNs = s.waitNs;
        add("core" + std::to_string(p), e);
    }
}

bool
StatsRegistry::empty() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return byName_.empty();
}

std::string
StatsRegistry::json() const
{
    std::lock_guard<std::mutex> lk(mu_);
    stats::JsonWriter w;
    w.beginObject().key("pdes").beginObject();
    w.field("simThreads", simThreads());
    w.key("partitions").beginArray();
    for (const auto &kv : byName_) {
        const Entry &e = kv.second;
        w.beginObject()
            .field("partition", kv.first)
            .field("runs", e.runs)
            .field("eventsDrained", e.eventsDrained)
            .field("sharedGrants", e.sharedGrants)
            .field("sharedWaits", e.sharedWaits)
            .field("barrierWaitNs", e.waitNs)
            .field("messagesSent", e.messagesSent)
            .field("messagesReceived", e.messagesReceived)
            .field("epochs", e.epochs)
            .endObject();
    }
    w.endArray().endObject().endObject();
    return w.str();
}

}  // namespace cxlsim::pdes
