/**
 * @file
 * Sweep execution journal: an append-only JSONL record of every
 * point's lifecycle, written by the supervised sweep runner
 * (src/sim/supervisor.hh) and consumed by `melody sweep --resume`.
 *
 * The run cache (src/sim/run_cache.hh) only ever records
 * *successful* completions, and the plain engine only stores them
 * after the whole sweep finishes — a sweep killed mid-run leaves
 * nothing behind. The journal is stronger on both axes: each
 * point's queued → started → finished/failed transitions are
 * appended (and flushed) the moment they happen, each `finished`
 * record carries the point's full output slots, and each `failed`
 * record carries the attempt count and structured exit cause. A
 * `--resume` run therefore skips every journaled-complete point
 * even if the previous process died between two points — or inside
 * one.
 *
 * One JSON object per line:
 *
 *   {"event":"sweep","name":...,"salt":...,"resumed":false}
 *   {"event":"queued","hash":"<16-hex>","point":N,"key":...}
 *   {"event":"started","hash":...,"attempt":N}
 *   {"event":"finished","hash":...,"attempt":N,"slots_hex":"..."}
 *   {"event":"failed","hash":...,"attempt":N,"cause":...,
 *    "final":true|false}
 *
 * `hash` is the same salted fnv1a64 addressing the run cache uses,
 * so a salt bump orphans journal entries exactly like cache
 * entries (load() refuses a journal whose header salt differs).
 * `slots_hex` is the stats::encodeRows framing of the point's
 * slots, hex-encoded: structurally self-validating on decode and
 * trivially parseable without a full JSON parser. Appends are one
 * buffered write + flush per line, so a crash can tear at most the
 * final line — load() ignores a trailing partial line.
 */

#ifndef CXLSIM_SIM_JOURNAL_HH
#define CXLSIM_SIM_JOURNAL_HH

#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace cxlsim::sweep {

/** Writer/loader for one sweep journal file. */
class Journal
{
  public:
    /** A journal that writes nowhere (journaling disabled). */
    Journal() = default;

    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open @p path for appending; truncates first unless
     * @p keep. Write failures disable the journal with a warning
     * rather than failing the sweep (mirrors RunCache).
     */
    void open(const std::string &path, bool keep);

    bool active() const { return f_ != nullptr; }

    /** Header record naming the sweep and its cache salt. */
    void begin(const std::string &name, const std::string &salt,
               bool resumed);

    void queued(const std::string &hash, std::size_t point,
                const std::string &key);
    void started(const std::string &hash, unsigned attempt);
    void finished(const std::string &hash, unsigned attempt,
                  const std::vector<std::string> &slots);
    void failed(const std::string &hash, unsigned attempt,
                const std::string &cause, bool final);

    /**
     * Load the completions journaled in @p path: fills @p done
     * with hash -> decoded slots for every `finished` record
     * (last one wins). Returns false with a message in @p err when
     * the file is unreadable, has no header, or was written under
     * a different @p salt. Torn or foreign lines are skipped.
     */
    static bool load(
        const std::string &path, const std::string &salt,
        std::map<std::string, std::vector<std::string>> *done,
        std::string *err);

  private:
    void append(const std::string &line);

    std::FILE *f_ = nullptr;
    std::string path_;
    bool warned_ = false;
};

}  // namespace cxlsim::sweep

#endif  // CXLSIM_SIM_JOURNAL_HH
