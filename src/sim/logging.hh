/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal()
 * for user-configuration errors, warn() for recoverable oddities.
 */

#ifndef CXLSIM_SIM_LOGGING_HH
#define CXLSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace cxlsim {

/**
 * Invalid user-supplied configuration (bad CLI flag, out-of-range
 * profile parameter, malformed fault-plan spec). Thrown instead of
 * aborting so front ends can print a usage message and exit
 * cleanly; SIM_PANIC remains reserved for internal invariants.
 */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Abort: an internal simulator invariant was violated (a bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with error: the user supplied an invalid configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr and continue. */
void warnImpl(const char *file, int line, const std::string &msg);

}  // namespace cxlsim

#define SIM_PANIC(msg) ::cxlsim::panicImpl(__FILE__, __LINE__, (msg))
#define SIM_FATAL(msg) ::cxlsim::fatalImpl(__FILE__, __LINE__, (msg))
#define SIM_WARN(msg) ::cxlsim::warnImpl(__FILE__, __LINE__, (msg))

/** Assert a simulator invariant; always on (not tied to NDEBUG). */
#define SIM_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond))                                                       \
            SIM_PANIC(std::string("assertion failed: ") + #cond + ": " +  \
                      (msg));                                              \
    } while (0)

#endif  // CXLSIM_SIM_LOGGING_HH
