/**
 * @file
 * Small-buffer-optimized move-only callable, `void()` signature.
 *
 * The event queue schedules millions of short-lived lambdas;
 * std::function heap-allocates for any capture beyond two words,
 * which dominates scheduling cost. InlineFunction stores callables
 * up to kInlineFunctionStorage bytes in place — no allocation, no
 * indirection beyond one function pointer — and transparently
 * falls back to the heap for oversized callables so call sites
 * never have to care.
 *
 * Move-only by design: the queue moves handlers while sifting its
 * heap, and captures (e.g. unique_ptrs) need not be copyable.
 */

#ifndef CXLSIM_SIM_INLINE_FUNCTION_HH
#define CXLSIM_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cxlsim {

/** Bytes of in-place capture storage (three pointers + padding). */
constexpr std::size_t kInlineFunctionStorage = 48;

class InlineFunction
{
  public:
    InlineFunction() noexcept = default;

    template <typename F,
              std::enable_if_t<!std::is_same_v<std::decay_t<F>,
                                               InlineFunction>,
                               int> = 0>
    InlineFunction(F &&f)  // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_))
                Fn(std::forward<F>(f));
            invoke_ = &inlineInvoke<Fn>;
            manage_ = &inlineManage<Fn>;
        } else {
            using P = Fn *;
            ::new (static_cast<void *>(buf_))
                P(new Fn(std::forward<F>(f)));
            invoke_ = &heapInvoke<Fn>;
            manage_ = &heapManage<Fn>;
        }
    }

    InlineFunction(InlineFunction &&o) noexcept
        : invoke_(o.invoke_), manage_(o.manage_)
    {
        if (manage_)
            manage_(buf_, o.buf_);
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
    }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            invoke_ = o.invoke_;
            manage_ = o.manage_;
            if (manage_)
                manage_(buf_, o.buf_);
            o.invoke_ = nullptr;
            o.manage_ = nullptr;
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    void operator()() { invoke_(buf_); }

    explicit operator bool() const noexcept
    {
        return invoke_ != nullptr;
    }

  private:
    /**
     * @p src non-null: move-construct dst's payload from src and
     * destroy src's. @p src null: destroy dst's payload.
     */
    using Manage = void (*)(void *dst, void *src) noexcept;

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineFunctionStorage &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static void
    inlineInvoke(void *p)
    {
        (*std::launder(reinterpret_cast<Fn *>(p)))();
    }

    template <typename Fn>
    static void
    inlineManage(void *dst, void *src) noexcept
    {
        if (src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        } else {
            std::launder(reinterpret_cast<Fn *>(dst))->~Fn();
        }
    }

    template <typename Fn>
    static void
    heapInvoke(void *p)
    {
        (**std::launder(reinterpret_cast<Fn **>(p)))();
    }

    template <typename Fn>
    static void
    heapManage(void *dst, void *src) noexcept
    {
        if (src)
            *static_cast<Fn **>(dst) =
                *std::launder(reinterpret_cast<Fn **>(src));
        else
            delete *std::launder(reinterpret_cast<Fn **>(dst));
    }

    void
    reset() noexcept
    {
        if (manage_)
            manage_(buf_, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char
        buf_[kInlineFunctionStorage];
    void (*invoke_)(void *) = nullptr;
    Manage manage_ = nullptr;
};

static_assert(sizeof(InlineFunction) ==
                  kInlineFunctionStorage + 2 * sizeof(void *),
              "InlineFunction layout: inline buffer plus two "
              "dispatch pointers, nothing else");

}  // namespace cxlsim

#endif  // CXLSIM_SIM_INLINE_FUNCTION_HH
