#include "supervisor.hh"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/partition.hh"
#include "sim/sweep.hh"
#include "stats/rows.hh"

namespace cxlsim::sweep {

namespace {

using Clock = std::chrono::steady_clock;

/** Row separator inside the worker payload's invariant rows; never
 *  occurs in catalog names or formatted values. */
constexpr char kUnitSep = '\x1f';

/** One in-flight worker subprocess. */
struct ChildProc
{
    pid_t pid = -1;
    int fd = -1;  // read end of the result pipe
    std::size_t taskPos = 0;
    unsigned attempt = 1;
    bool hasDeadline = false;
    Clock::time_point deadline;
    bool timedOut = false;
    std::string buf;  // payload accumulated so far
};

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      default: return "signal " + std::to_string(sig);
    }
}

void
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        // Parent gone or pipe error: nothing useful left to do —
        // the torn payload classifies as protocol-error upstream.
        return;
    }
}

/**
 * Worker body: compute one point, stream the encoded result over
 * the pipe, and _exit without running atexit handlers or flushing
 * inherited stdio buffers (the parent flushed before fork, so a
 * normal exit here would duplicate its buffered bytes).
 *
 * Payload: encodeRows of ["ok", slot0.., then one
 * "iv<US>invariant<US>where<US>values" row per recorded invariant
 * violation], or ["ex:<what>"] when the closure threw.
 */
[[noreturn]] void
runWorker(const SupervisorTask &task, bool checkInvariants, int wfd)
{
    // Gang/pool worker threads do not survive fork(): any inherited
    // pool bookkeeping would point at threads that no longer exist.
    // Forcing the serial engine sidesteps them entirely — PDES
    // output is bit-identical at every thread count, so isolated
    // points lose only parallelism, never determinism.
    pdes::setSimThreads(1);
    std::vector<std::string> rows;
    sim::Invariants inv;
    try {
        std::vector<Emit> slots(task.nSlots);
        {
            sim::InvariantScope scope(checkInvariants ? &inv
                                                      : nullptr);
            (*task.fn)(slots.data());
        }
        rows.reserve(1 + task.nSlots + inv.violations().size());
        rows.push_back("ok");
        for (auto &s : slots)
            rows.push_back(s.take());
        for (const auto &v : inv.violations()) {
            std::string row = "iv";
            row += kUnitSep;
            row += v.invariant;
            row += kUnitSep;
            row += v.where;
            row += kUnitSep;
            row += v.values;
            rows.push_back(std::move(row));
        }
        if (inv.dropped()) {
            std::string row = "iv";
            row += kUnitSep;
            row += "invariants/dropped";
            row += kUnitSep;
            row += "Invariants";
            row += kUnitSep;
            row += "dropped=" + std::to_string(inv.dropped());
            rows.push_back(std::move(row));
        }
    } catch (const std::exception &e) {
        rows.assign(1, std::string("ex:") + e.what());
    } catch (...) {
        rows.assign(1, "ex:unknown exception");
    }
    writeAll(wfd, stats::encodeRows(rows));
    ::close(wfd);
    ::_exit(0);
}

/** Parsed outcome of one finished worker. */
struct WorkerResult
{
    bool ok = false;
    std::string cause;  // when !ok
    std::vector<std::string> slots;
    std::vector<sim::InvariantViolation> violations;
};

bool
parsePayload(const std::string &buf, std::size_t nSlots,
             WorkerResult *r)
{
    std::vector<std::string> rows;
    if (!stats::decodeRows(buf, &rows) || rows.empty())
        return false;
    if (rows[0] == "ok") {
        if (rows.size() < 1 + nSlots)
            return false;
        r->ok = true;
        r->slots.assign(
            std::make_move_iterator(rows.begin() + 1),
            std::make_move_iterator(rows.begin() + 1 +
                                    static_cast<std::ptrdiff_t>(
                                        nSlots)));
        for (std::size_t i = 1 + nSlots; i < rows.size(); ++i) {
            const std::string &row = rows[i];
            if (row.size() < 3 || row[0] != 'i' || row[1] != 'v' ||
                row[2] != kUnitSep)
                continue;  // unknown trailer row: skip
            const std::size_t a = row.find(kUnitSep, 3);
            const std::size_t b =
                a == std::string::npos
                    ? std::string::npos
                    : row.find(kUnitSep, a + 1);
            if (b == std::string::npos)
                continue;
            r->violations.push_back(
                {row.substr(3, a - 3),
                 row.substr(a + 1, b - a - 1), row.substr(b + 1)});
        }
        return true;
    }
    if (rows.size() == 1 && rows[0].rfind("ex:", 0) == 0) {
        r->ok = false;
        r->cause = "exception: " + rows[0].substr(3);
        return true;
    }
    return false;
}

/**
 * Turn a reaped child's wait status + payload into a result. A
 * clean exit with a well-formed payload wins even when the
 * watchdog fired (kill/exit race); otherwise the timeout flag
 * takes precedence over the raw SIGKILL it caused.
 */
WorkerResult
classify(int status, const ChildProc &c, std::size_t nSlots)
{
    WorkerResult r;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
        parsePayload(c.buf, nSlots, &r))
        return r;
    r.ok = false;
    r.slots.clear();
    r.violations.clear();
    if (c.timedOut)
        r.cause = "watchdog-timeout";
    else if (WIFSIGNALED(status))
        r.cause = signalName(WTERMSIG(status));
    else if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
        r.cause =
            "exit-code " + std::to_string(WEXITSTATUS(status));
    else
        r.cause = "protocol-error";
    return r;
}

}  // namespace

SupervisorReport
runSupervised(const std::vector<SupervisorTask> &tasks,
              const SupervisorConfig &cfg,
              const SupervisorCallbacks &cb)
{
    SupervisorReport report;
    if (tasks.empty())
        return report;

    unsigned jobs = cfg.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(std::min<std::size_t>(
        jobs, tasks.size()));
    const unsigned maxAttempts = std::max(1u, cfg.maxAttempts);

    // (taskPos, attempt) work queue; retries re-enter at the back.
    std::deque<std::pair<std::size_t, unsigned>> queue;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        queue.emplace_back(i, 1u);

    std::vector<ChildProc> inflight;
    inflight.reserve(jobs);

    auto handleFailure = [&](std::size_t pos, unsigned attempt,
                             const std::string &cause) {
        const bool final = attempt >= maxAttempts;
        if (cb.onFailure)
            cb.onFailure(tasks[pos].index, attempt, cause, final);
        if (final) {
            report.failures.push_back(
                {tasks[pos].index, attempt, cause});
        } else {
            ++report.retries;
            queue.emplace_back(pos, attempt + 1);
        }
    };

    auto spawn = [&](std::size_t pos, unsigned attempt) {
        const SupervisorTask &task = tasks[pos];
        if (cb.onStart)
            cb.onStart(task.index, attempt);
        int fds[2];
        if (::pipe(fds) != 0) {
            handleFailure(pos, attempt, "pipe-failed");
            return;
        }
        // The child inherits the parent's stdio buffers; flush so
        // its _exit cannot strand (or a crash dump duplicate) them.
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            handleFailure(pos, attempt, "fork-failed");
            return;
        }
        if (pid == 0) {
            ::close(fds[0]);
            // Drop inherited read ends of sibling pipes.
            for (const ChildProc &c : inflight)
                ::close(c.fd);
            runWorker(task, cfg.checkInvariants, fds[1]);
        }
        ::close(fds[1]);
        ChildProc c;
        c.pid = pid;
        c.fd = fds[0];
        c.taskPos = pos;
        c.attempt = attempt;
        if (cfg.timeoutMs > 0) {
            c.hasDeadline = true;
            c.deadline = Clock::now() +
                         std::chrono::milliseconds(cfg.timeoutMs);
        }
        inflight.push_back(std::move(c));
        ++report.launched;
    };

    while (!queue.empty() || !inflight.empty()) {
        while (inflight.size() < jobs && !queue.empty()) {
            const auto [pos, attempt] = queue.front();
            queue.pop_front();
            spawn(pos, attempt);
        }
        if (inflight.empty())
            continue;  // every spawn failed outright; drain queue

        std::vector<pollfd> pfds;
        pfds.reserve(inflight.size());
        for (const ChildProc &c : inflight)
            pfds.push_back({c.fd, POLLIN, 0});

        int timeout = -1;
        if (cfg.timeoutMs > 0) {
            const Clock::time_point now = Clock::now();
            Clock::time_point next = Clock::time_point::max();
            for (const ChildProc &c : inflight)
                if (c.hasDeadline && !c.timedOut)
                    next = std::min(next, c.deadline);
            if (next != Clock::time_point::max()) {
                const auto ms =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(next - now)
                        .count();
                timeout = ms <= 0 ? 0
                                  : static_cast<int>(std::min<
                                        long long>(ms + 1,
                                                   60'000));
            }
        }

        const int rc = ::poll(pfds.data(), pfds.size(), timeout);
        if (rc < 0 && errno != EINTR)
            SIM_PANIC("supervisor: poll() failed");

        // Fire expired watchdogs (SIGKILL; the pipe EOF that
        // follows reaps and classifies the child).
        if (cfg.timeoutMs > 0) {
            const Clock::time_point now = Clock::now();
            for (ChildProc &c : inflight) {
                if (c.hasDeadline && !c.timedOut &&
                    now >= c.deadline) {
                    c.timedOut = true;
                    ::kill(c.pid, SIGKILL);
                }
            }
        }

        // Drain readable pipes; EOF means the worker is done.
        for (std::size_t i = 0; i < pfds.size();) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
                ++i;
                continue;
            }
            ChildProc &c = inflight[i];
            char buf[1 << 16];
            const ssize_t n = ::read(c.fd, buf, sizeof(buf));
            if (n > 0) {
                c.buf.append(buf, static_cast<std::size_t>(n));
                ++i;
                continue;
            }
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN) {
                    ++i;
                    continue;
                }
            }
            // EOF (or hard read error): reap and classify.
            ::close(c.fd);
            int status = 0;
            pid_t w;
            do {
                w = ::waitpid(c.pid, &status, 0);
            } while (w < 0 && errno == EINTR);
            WorkerResult result =
                classify(status, c, tasks[c.taskPos].nSlots);
            const std::size_t pos = c.taskPos;
            const unsigned attempt = c.attempt;
            inflight.erase(inflight.begin() +
                           static_cast<std::ptrdiff_t>(i));
            pfds.erase(pfds.begin() +
                       static_cast<std::ptrdiff_t>(i));
            if (result.ok) {
                if (cb.onSuccess)
                    cb.onSuccess(tasks[pos].index, attempt,
                                 std::move(result.slots),
                                 std::move(result.violations));
            } else {
                handleFailure(pos, attempt, result.cause);
            }
        }
    }

    std::sort(report.failures.begin(), report.failures.end(),
              [](const SupervisedFailure &a,
                 const SupervisedFailure &b) {
                  return a.index < b.index;
              });
    return report;
}

}  // namespace cxlsim::sweep
