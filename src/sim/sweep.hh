/**
 * @file
 * Deterministic parallel sweep engine for the figure suite.
 *
 * Every figure/table bench is hundreds of independent simulation
 * runs whose formatted rows are printed in a fixed narrative
 * order. Instead of a serial `for (setup) for (config)` nest with
 * printf interleaved, a bench *declares* its output as a sequence
 * of items on a Sweep:
 *
 *   - text  — literal bytes emitted verbatim (headers, captions);
 *   - point — one independent simulation closure producing one or
 *             more output slots (formatted row blocks);
 *   - gather — a serial transform over already-computed point
 *             slots (table assembly, suite-wide statistics),
 *             evaluated in declaration order at render time.
 *
 * run() executes all points over the persistent parallelFor worker
 * pool, buffering each point's slots out-of-band, then walks the
 * item sequence and streams it to stdout — so the bytes are
 * identical to the serial program for any --jobs value. Points are
 * also the unit of caching: each one's slots are persisted in a
 * content-addressed RunCache keyed by (salt, scope, point key), so
 * re-running a figure recomputes only points whose keys changed.
 *
 * Contract for point closures: capture everything by value (the
 * declaring frame is gone by run()-time; share heavyweight state
 * via shared_ptr), construct platforms/backends inside the
 * closure, touch nothing but the Emit slots handed in (or
 * internally synchronized state such as SlowdownStudy's memo), and
 * derive all randomness from fixed seeds. The point key must name
 * every input the slots depend on — label, config, seed — since
 * equal keys are assumed to yield equal bytes.
 *
 * Gathers that need full-precision values from a point (not just
 * its printed rows) read them from a hidden slot the point fills
 * with hexfloats (Emit::hexDoubles / parseHexDoubles): exact
 * round-trip, so cached and live runs stay bit-identical.
 */

#ifndef CXLSIM_SIM_SWEEP_HH
#define CXLSIM_SIM_SWEEP_HH

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/invariants.hh"

namespace cxlsim::sweep {

class RunCache;

/**
 * Cache-invalidation salt: names the current simulator behaviour
 * version. Bump it in any PR that intentionally changes simulation
 * results or row formatting, which orphans all prior cache entries
 * at once (DESIGN.md §9's invalidation policy).
 */
inline constexpr const char *kSweepSalt = "melody-sweep-v1";

/** Append-only output buffer handed to point/gather closures. */
class Emit
{
  public:
    /** printf-style formatted append. */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(__printf__, 2, 3)))
#endif
    // The member is *named* printf so migrated benches keep their
    // familiar idiom; it appends to a string, streams stay closed.
    // lint:allow(err-stray-stream)
    void printf(const char *fmt, ...)
    {
        std::va_list ap;
        va_start(ap, fmt);
        vappend(fmt, ap);
        va_end(ap);
    }

    /** Append raw bytes. */
    void text(std::string_view s) { buf_.append(s); }

    /**
     * Append doubles as space-separated hexfloats + '\n': exact
     * round-trip for hidden slots feeding gathers.
     */
    void hexDoubles(const std::vector<double> &vs);

    const std::string &str() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    friend class Sweep;  // textf() routes through vappend

    void vappend(const char *fmt, std::va_list ap);

    std::string buf_;
};

/** Decode an Emit::hexDoubles slot (whitespace-separated floats). */
std::vector<double> parseHexDoubles(std::string_view s);

/** Execution knobs, normally taken from the environment/CLI. */
struct Options
{
    /** Worker threads for the point fan-out; 0 = hardware. */
    unsigned jobs = 0;
    /** Use the persistent run cache. */
    bool cache = true;
    /** Cache directory. */
    std::string cacheDir = "results/.runcache";
    /** Cache salt; empty means kSweepSalt. */
    std::string salt;
    /**
     * Crash-isolated execution: fork one supervised worker
     * subprocess per point (src/sim/supervisor.hh) instead of
     * running points on the in-process thread pool. Byte-identical
     * stdout on fault-free runs; on faults, surviving points still
     * render and failures are reported in Report::failures.
     */
    bool isolate = false;
    /**
     * Skip points already journaled complete (implies isolate;
     * requires journalPath). See src/sim/journal.hh.
     */
    bool resume = false;
    /** Attempts per point under isolation, >= 1 (1 = no retry). */
    unsigned maxAttempts = 2;
    /** Per-attempt wall-clock watchdog in ms; 0 disables it. */
    unsigned timeoutMs = 0;
    /** Journal path for isolated runs; empty disables journaling. */
    std::string journalPath;
    /**
     * Install the runtime invariant checker (sim::Invariants)
     * around every point. Default-on in Debug builds.
     */
    bool checkInvariants = sim::invariantsDefaultOn();
};

/**
 * Options with MELODY_SWEEP_JOBS / MELODY_SWEEP_CACHE (0|1) /
 * MELODY_SWEEP_CACHE_DIR / MELODY_SWEEP_ISOLATE (0|1) /
 * MELODY_SWEEP_CHECK_INVARIANTS (0|1) applied over the defaults —
 * how the standalone bench binaries pick up configuration without
 * flags.
 */
Options optionsFromEnv();

/** Declared output sequence + point set of one bench (or suite). */
class Sweep
{
  public:
    /** Closure of a point: fills its declared slots. */
    using PointFn = std::function<void(Emit *slots)>;
    /** Serial render-time transform over point-slot strings. */
    using GatherFn = std::function<void(
        const std::vector<std::string> &inputs, Emit &out)>;

    /** Reference to one output slot of a declared point. */
    struct SlotRef
    {
        std::size_t point;
        std::size_t slot;
    };

    struct Report
    {
        /** A point that exhausted its isolated attempt budget. */
        struct PointFailure
        {
            std::size_t point = 0;
            std::string key;
            unsigned attempts = 0;
            /** Structured cause ("SIGSEGV", "watchdog-timeout",
             *  "exit-code N", "exception: ...", ...). */
            std::string cause;
        };

        /** One invariant violation attributed to a point. */
        struct InvariantDiag
        {
            std::string pointKey;
            std::string invariant;
            std::string where;
            std::string values;
        };

        std::size_t points = 0;
        std::size_t cacheHits = 0;
        std::size_t cacheStores = 0;
        std::size_t corruptEntries = 0;
        /** Points skipped via the journal (resume mode). */
        std::size_t resumedPoints = 0;
        /** Isolated attempts beyond each point's first. */
        std::uint64_t retries = 0;
        /** Points that failed permanently, by point index. */
        std::vector<PointFailure> failures;
        /** Invariant violations, grouped by point in index order. */
        std::vector<InvariantDiag> invariantDiags;

        /** No failed points and no invariant violations. */
        bool
        clean() const
        {
            return failures.empty() && invariantDiags.empty();
        }
    };

    explicit Sweep(std::string name, Options opts = Options());
    ~Sweep();

    Sweep(const Sweep &) = delete;
    Sweep &operator=(const Sweep &) = delete;

    /**
     * Set the cache-key scope for subsequently declared points.
     * The suite runner sets this to each figure's binary name so
     * CLI and standalone runs share cache entries; standalone
     * figure mains get it from figureMain(). Defaults to the
     * sweep name.
     */
    void scope(std::string scope);

    /** Literal bytes at this position. */
    void text(std::string s);

    /** printf-style literal. */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(__printf__, 2, 3)))
#endif
    void textf(const char *fmt, ...);

    /**
     * Declare a point with @p slots output slots; place none.
     * @p key must be unique within the current scope, single-line,
     * and must encode every input the output depends on.
     */
    std::size_t point(std::string key, std::size_t slots,
                      PointFn fn);

    /** Common case: one slot, placed right here. */
    void point(std::string key, std::function<void(Emit &)> fn);

    /** Emit slot @p slot of point @p id at this position. */
    void place(std::size_t id, std::size_t slot = 0);

    /** Declaration-order transform over @p inputs, emitted here. */
    void gather(std::vector<SlotRef> inputs, GatherFn fn);

    /** Slot refs for all slots of @p id, in order. */
    std::vector<SlotRef> slotsOf(std::size_t id) const;

    /**
     * Execute all points (cache-aware, parallel) and stream the
     * item sequence to @p out.
     */
    Report run(std::FILE *out = stdout);

    /** run() into a string — tests and byte-compare harnesses. */
    std::string renderToString(Report *report = nullptr);

  private:
    struct Item;
    struct Point;
    struct Gather;

    void compute(Report *report);
    void computeInProcess(const std::vector<std::size_t> &pending,
                          Report *report);
    void computeIsolated(
        const std::vector<std::size_t> &pending,
        const std::string &salt,
        const std::function<std::string(const std::string &)>
            &hashOf,
        Report *report);
    void render(std::FILE *out, std::string *str);

    std::string name_;
    std::string scope_;
    Options opts_;
    std::unique_ptr<RunCache> cache_;
    std::vector<Item> items_;
    std::vector<Point> points_;
    std::vector<Gather> gathers_;
    bool ran_ = false;
};

}  // namespace cxlsim::sweep

#endif  // CXLSIM_SIM_SWEEP_HH
