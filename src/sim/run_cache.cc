#include "run_cache.hh"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "sim/logging.hh"
#include "stats/rows.hh"

namespace cxlsim::sweep {

namespace {

constexpr const char *kMagic = "melody-runcache 1\n";

/** Read a whole file; false if unreadable. */
bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string data;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok)
        return false;
    *out = std::move(data);
    return true;
}

/** Consume one '\n'-terminated line from @p data at @p pos. */
bool
takeLine(const std::string &data, std::size_t *pos,
         std::string *line)
{
    const std::size_t nl = data.find('\n', *pos);
    if (nl == std::string::npos)
        return false;
    line->assign(data, *pos, nl - *pos);
    *pos = nl + 1;
    return true;
}

}  // namespace

RunCache::RunCache(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt))
{
}

std::string
RunCache::pathFor(const std::string &key) const
{
    // Salt first so a salt bump re-addresses (not just
    // re-validates) every entry: stale generations never collide
    // with fresh ones, and pruning is a plain directory wipe.
    std::uint64_t h = stats::fnv1a64(salt_);
    h = stats::fnv1a64(key, h);
    return dir_ + "/" + stats::hex64(h) + ".rcache";
}

bool
RunCache::lookup(const std::string &key, std::size_t expectRows,
                 std::vector<std::string> *rows)
{
    std::string data;
    if (!readFile(pathFor(key), &data)) {
        ++stats_.misses;
        return false;
    }

    // Header: magic line, salt line, key line, "<paylen> <hash>".
    std::size_t pos = 0;
    std::string line;
    bool ok = data.compare(0, std::string(kMagic).size(), kMagic) ==
              0;
    if (ok) {
        pos = std::string(kMagic).size();
        ok = takeLine(data, &pos, &line) && line == salt_;
    }
    if (ok)
        ok = takeLine(data, &pos, &line) && line == key;
    std::string payload;
    if (ok && takeLine(data, &pos, &line)) {
        char hashHex[17];
        unsigned long long paylen = 0;
        ok = std::sscanf(line.c_str(), "%llu %16s", &paylen,
                         hashHex) == 2 &&
             data.size() - pos == paylen;
        if (ok) {
            payload = data.substr(pos);
            ok = stats::hex64(stats::fnv1a64(payload)) == hashHex;
        }
    } else {
        ok = false;
    }

    std::vector<std::string> decoded;
    if (ok)
        ok = stats::decodeRows(payload, &decoded) &&
             decoded.size() == expectRows;
    if (!ok) {
        // Present but unusable: corrupted write, salt/key
        // collision, or format drift. Recompute and overwrite.
        ++stats_.corrupt;
        ++stats_.misses;
        return false;
    }
    *rows = std::move(decoded);
    ++stats_.hits;
    return true;
}

RunCache::DirStats
RunCache::scanDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    DirStats ds;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return ds;  // missing/unreadable directory: empty cache
    const std::string magic = kMagic;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string path = entry.path().string();
        if (entry.path().extension() != ".rcache") {
            ++ds.foreign;
            continue;
        }
        // Only the header is needed: magic line then salt line.
        std::string head;
        bool ok = false;
        if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
            char buf[512];
            const std::size_t n =
                std::fread(buf, 1, sizeof(buf), f);
            head.assign(buf, n);
            ok = !std::ferror(f);
            std::fclose(f);
        }
        std::string saltLine;
        std::size_t pos = magic.size();
        if (ok)
            ok = head.compare(0, magic.size(), magic) == 0 &&
                 takeLine(head, &pos, &saltLine);
        if (!ok) {
            ++ds.foreign;
            continue;
        }
        ++ds.entries;
        ds.bytes += entry.file_size(ec);
        ++ds.perSalt[saltLine];
    }
    return ds;
}

std::uint64_t
RunCache::clearDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::uint64_t removed = 0;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return 0;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        const auto ext = entry.path().extension();
        if (ext != ".rcache" && ext != ".tmp")
            continue;
        if (fs::remove(entry.path(), ec) && !ec)
            ++removed;
    }
    return removed;
}

void
RunCache::store(const std::string &key,
                const std::vector<std::string> &rows)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);

    const std::string payload = stats::encodeRows(rows);
    std::string data = kMagic;
    data += salt_ + "\n";
    data += key + "\n";
    char hdr[64];
    std::snprintf(hdr, sizeof(hdr), "%llu %s\n",
                  static_cast<unsigned long long>(payload.size()),
                  stats::hex64(stats::fnv1a64(payload)).c_str());
    data += hdr;
    data += payload;

    const std::string path = pathFor(key);
    const std::string tmp = path + ".tmp";
    bool ok = false;
    if (std::FILE *f = std::fopen(tmp.c_str(), "wb")) {
        ok = std::fwrite(data.data(), 1, data.size(), f) ==
             data.size();
        ok = (std::fclose(f) == 0) && ok;
    }
    if (ok) {
        fs::rename(tmp, path, ec);
        ok = !ec;
    }
    if (!ok) {
        fs::remove(tmp, ec);
        ++stats_.storeFailures;
        if (!warnedStoreFailure_) {
            warnedStoreFailure_ = true;
            SIM_WARN("run cache: cannot write under '" + dir_ +
                     "'; caching disabled for this run");
        }
        return;
    }
    ++stats_.stores;
}

}  // namespace cxlsim::sweep
