/**
 * @file
 * Minimal parallel-for over independent simulation runs.
 *
 * Simulations are deterministic and fully self-contained (each run
 * owns its platform, backend and cores), so suite-wide sweeps are
 * embarrassingly parallel. Results must be written by index into
 * pre-sized storage so output order stays deterministic regardless
 * of scheduling.
 */

#ifndef CXLSIM_SIM_PARALLEL_HH
#define CXLSIM_SIM_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace cxlsim {

/**
 * Run @p fn(i) for i in [0, n) on up to @p threads workers.
 * @p fn must only touch per-index state (or internally
 * synchronized state).
 */
inline void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            unsigned threads = 0)
{
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    threads = std::max(1u, std::min<unsigned>(
                               threads, static_cast<unsigned>(n)));
    if (threads == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (auto &th : pool)
        th.join();
}

}  // namespace cxlsim

#endif  // CXLSIM_SIM_PARALLEL_HH
