/**
 * @file
 * Parallel-for over independent simulation runs, backed by a
 * lazily-initialized persistent worker pool.
 *
 * Simulations are deterministic and fully self-contained (each run
 * owns its platform, backend and cores), so suite-wide sweeps are
 * embarrassingly parallel. Results must be written by index into
 * pre-sized storage so output order stays deterministic regardless
 * of scheduling.
 *
 * Earlier versions spawned and joined a fresh std::thread set on
 * every call; suite sweeps call parallelFor() hundreds of times, so
 * thread creation dominated small batches. The pool parks workers
 * on a condition variable between jobs and hands out index chunks
 * via an atomic cursor; workers are spawned on first use and grown
 * on demand when a caller requests more concurrency.
 */

#ifndef CXLSIM_SIM_PARALLEL_HH
#define CXLSIM_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace cxlsim {

/**
 * Run @p fn(i) for i in [0, n) on up to @p threads workers.
 * @p fn must only touch per-index state (or internally
 * synchronized state). Each index is claimed exactly once; nested
 * calls from inside @p fn degrade to serial execution.
 *
 * @param threads 0 = hardware concurrency.
 * @param grain   Indices claimed per atomic cursor bump. The
 *                default of 1 suits millisecond-scale simulation
 *                runs; raise it for very cheap bodies.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 unsigned threads = 0, std::size_t grain = 1);

/**
 * Run @p fn(0) .. @p fn(n-1) with every body on its OWN thread,
 * all guaranteed to execute concurrently (the caller runs body 0).
 *
 * This is the scheduling substrate for conservative intra-run
 * parallelism (sim/partition.hh): gang bodies may block mid-body
 * waiting on each other's progress, which parallelFor cannot host —
 * its pool neither guarantees concurrent execution of all bodies
 * nor survives a body that parks forever waiting on an unscheduled
 * peer. Gang workers are dedicated, pooled across calls, and grown
 * on demand, so concurrent gangs (e.g. sweep jobs each running a
 * multi-threaded simulation) never share or starve.
 *
 * Unlike parallelFor there is no nesting fallback: a gang inside a
 * parallelFor body or another gang still gets real threads.
 */
void runGang(std::size_t n,
             const std::function<void(std::size_t)> &fn);

}  // namespace cxlsim

#endif  // CXLSIM_SIM_PARALLEL_HH
