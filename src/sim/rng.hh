/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulator (bank conflicts, hiccup
 * processes, workload address streams) draws from explicitly seeded
 * Rng instances so that every experiment is bit-reproducible. The
 * engine is xoshiro256** seeded via SplitMix64.
 */

#ifndef CXLSIM_SIM_RNG_HH
#define CXLSIM_SIM_RNG_HH

#include <cstdint>

namespace cxlsim {

/**
 * A small, fast, deterministic random number generator
 * (xoshiro256**), with the distribution helpers the simulator needs.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed; distinct seeds give independent
     * streams for practical purposes. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, n) for n >= 1. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /**
     * Bounded Pareto sample: heavy-tailed values in [lo, hi] with
     * shape alpha. Used to model CXL controller hiccup durations,
     * which produce the paper's microsecond-level tail latencies.
     */
    double boundedPareto(double lo, double hi, double alpha);

    /** Approximately normal value (sum of uniforms) with mean/stddev. */
    double normal(double mean, double stddev);

    /** Zipf-distributed rank in [0, n) with skew s (s = 0 -> uniform). */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Fork an independent stream derived from this one and a salt. */
    Rng fork(std::uint64_t salt);

  private:
    std::uint64_t s_[4];
};

}  // namespace cxlsim

#endif  // CXLSIM_SIM_RNG_HH
