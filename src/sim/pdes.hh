/**
 * @file
 * Conservative barrier-synchronous PDES engine (DESIGN.md §11).
 *
 * The simulator's event-structured layers (device/controller/link
 * topologies, and the cluster-scale pooling scenarios the ROADMAP
 * targets) partition naturally into logical processes, each owning
 * a partition-local EventQueue. The Engine advances them in epochs:
 *
 *   1. epoch window = [global next event, next + lookahead];
 *   2. every partition drains its local events inside the window —
 *      partitions are independent within an epoch, so this step
 *      runs on up to sim-threads workers;
 *   3. barrier: cross-partition messages, buffered during the
 *      epoch in per-(src,dst) mailboxes, are delivered in fixed
 *      (dst-major, src-minor) order; the global clock advances.
 *
 * Lookahead is the minimum cross-partition latency (extracted from
 * the link/device profile, e.g. DeviceProfile::pdesLookahead()): a
 * handler executing at local time t may only send an event at
 * `t + lookahead` or later, which guarantees no message lands
 * inside the epoch being drained — the classical conservative-
 * synchronization correctness condition (Chandy/Misra/Bryant).
 *
 * Determinism: a partition's intra-epoch execution is sequential on
 * one worker; each mailbox row is written only by its owning
 * partition; the barrier drains mailboxes on one thread in a fixed
 * order, so EventQueue insertion sequence numbers — the tie-breaker
 * for same-tick events — are identical for every thread count,
 * including 1. Runs are bit-identical regardless of sim-threads.
 *
 * Invariants (recorded via sim::Invariants, names stable):
 *   pdes/epoch-monotonic       epoch end never decreases
 *   pdes/lookahead-horizon     send below now + lookahead (clamped)
 *   pdes/mailbox-conservation  every sent message delivered
 */

#ifndef CXLSIM_SIM_PDES_HH
#define CXLSIM_SIM_PDES_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/partition.hh"
#include "sim/types.hh"

namespace cxlsim::pdes {

class Engine;

/**
 * One logical process: a named, partition-local EventQueue.
 * Handlers run on whichever worker drains the partition's epoch;
 * they may freely touch their own partition's state and schedule
 * local events at any tick >= now, but must reach OTHER partitions
 * exclusively through Engine::send() (enforced by the
 * det-pdes-shared-mutation lint rule).
 */
class Partition
{
  public:
    const std::string &name() const { return name_; }
    std::uint32_t id() const { return id_; }

    /** Partition-local clock. */
    Tick now() const { return q_.now(); }

    /** Schedule a local event (same-partition, no lookahead). */
    void schedule(Tick when, EventQueue::Handler fn)
    {
        q_.schedule(when, std::move(fn));
    }

    void scheduleAfter(Tick delta, EventQueue::Handler fn)
    {
        q_.scheduleAfter(delta, std::move(fn));
    }

    /** Events executed over the partition's lifetime. */
    std::uint64_t executed() const { return q_.executed(); }

    bool empty() const { return q_.empty(); }

  private:
    friend class Engine;

    Partition(std::uint32_t id, std::string name)
        : id_(id), name_(std::move(name))
    {
    }

    std::uint32_t id_;
    std::string name_;
    EventQueue q_;
};

/**
 * Barrier-synchronous conservative scheduler over Partitions.
 * Not reentrant: one run() at a time per Engine instance.
 */
class Engine
{
  public:
    /**
     * @param lookahead Minimum cross-partition event latency in
     *                  ticks. Larger lookahead = fewer barriers;
     *                  0 degenerates to one global-min event per
     *                  epoch (correct, but serial in practice).
     */
    explicit Engine(Tick lookahead);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Create a partition; pointers remain valid for the Engine's
     *  lifetime. Call before run(). */
    Partition *addPartition(std::string name);

    /**
     * Send a cross-partition event: @p fn executes in @p to at
     * tick @p when, which must be >= from.now() + lookahead().
     * Earlier targets record pdes/lookahead-horizon and clamp.
     * Only @p from's handler thread may call this (mailbox rows
     * are single-writer), mirroring hardware: messages ride links
     * whose latency is at least the lookahead.
     */
    void send(Partition &from, Partition &to, Tick when,
              EventQueue::Handler fn);

    /**
     * Run epochs until every queue and mailbox drains.
     * @param threads intra-run workers; 0 = pdes::simThreads().
     *                Output is bit-identical for every value.
     */
    void run(unsigned threads = 0);

    /** Global epoch clock (end of the last completed epoch). */
    Tick now() const { return now_; }

    Tick lookahead() const { return lookahead_; }
    std::uint64_t epochs() const { return epochs_; }

    std::size_t partitionCount() const { return parts_.size(); }
    Partition &partition(std::size_t i) { return *parts_[i]; }

    /** Per-partition utilization counters (index = partition id). */
    const StatsRegistry::Entry &stats(std::size_t i) const
    {
        return stats_[i];
    }

    /** Accumulate this engine's counters into the global registry
     *  (one entry per partition name). */
    void publishStats() const;

  private:
    struct Message
    {
        Tick when;
        EventQueue::Handler fn;
    };

    /** Drain one partition's window; called once per epoch per
     *  partition, possibly on a worker thread. */
    void drainEpoch(std::size_t i, Tick epoch_end);

    std::vector<Message> &mailbox(std::uint32_t src,
                                  std::uint32_t dst)
    {
        return mailboxes_[static_cast<std::size_t>(src) *
                              parts_.size() +
                          dst];
    }

    const Tick lookahead_;
    Tick now_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
    std::vector<Partition *> parts_;
    /** Row-per-source mailbox matrix; row src is written only by
     *  the worker draining partition src during an epoch and read
     *  only at the barrier. */
    std::vector<std::vector<Message>> mailboxes_;
    std::vector<StatsRegistry::Entry> stats_;
    /** Scratch: per-partition drain wall time for the current
     *  epoch (imbalance accounting). */
    std::vector<std::uint64_t> drainNs_;
};

}  // namespace cxlsim::pdes

#endif  // CXLSIM_SIM_PDES_HH
