#include "sweep.hh"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <utility>

#include "sim/journal.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/run_cache.hh"
#include "sim/supervisor.hh"
#include "stats/rows.hh"

namespace cxlsim::sweep {

// -----------------------------------------------------------------
// Emit
// -----------------------------------------------------------------

void
Emit::vappend(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    char small[512];
    const int n = std::vsnprintf(small, sizeof(small), fmt, ap);
    SIM_ASSERT(n >= 0, "vsnprintf failed in sweep::Emit");
    if (static_cast<std::size_t>(n) < sizeof(small)) {
        buf_.append(small, static_cast<std::size_t>(n));
    } else {
        const std::size_t old = buf_.size();
        buf_.resize(old + static_cast<std::size_t>(n) + 1);
        std::vsnprintf(&buf_[old], static_cast<std::size_t>(n) + 1,
                       fmt, ap2);
        buf_.resize(old + static_cast<std::size_t>(n));
    }
    va_end(ap2);
}

void
Emit::hexDoubles(const std::vector<double> &vs)
{
    for (std::size_t i = 0; i < vs.size(); ++i)
        this->printf("%s%a", i ? " " : "", vs[i]);
    text("\n");
}

std::vector<double>
parseHexDoubles(std::string_view s)
{
    std::vector<double> out;
    const char *p = s.data();
    const char *end = p + s.size();
    while (p < end) {
        char *next = nullptr;
        // The slot is NUL-free and strtod stops at whitespace, so
        // a bounded copy is unnecessary; s comes from Emit and is
        // '\n'-terminated by hexDoubles.
        const double v = std::strtod(p, &next);
        if (next == p)
            break;
        out.push_back(v);
        p = next;
    }
    return out;
}

// -----------------------------------------------------------------
// Options
// -----------------------------------------------------------------

Options
optionsFromEnv()
{
    Options o;
    if (const char *jobs = std::getenv("MELODY_SWEEP_JOBS")) {
        char *endp = nullptr;
        const unsigned long v = std::strtoul(jobs, &endp, 10);
        if (endp == jobs || *endp != '\0')
            throw ConfigError(
                "MELODY_SWEEP_JOBS must be a non-negative "
                "integer, got '" +
                std::string(jobs) + "'");
        o.jobs = static_cast<unsigned>(v);
    }
    if (const char *cache = std::getenv("MELODY_SWEEP_CACHE"))
        o.cache = !(std::strcmp(cache, "0") == 0 ||
                    std::strcmp(cache, "off") == 0);
    if (const char *dir = std::getenv("MELODY_SWEEP_CACHE_DIR"))
        o.cacheDir = dir;
    if (const char *iso = std::getenv("MELODY_SWEEP_ISOLATE"))
        o.isolate = !(std::strcmp(iso, "0") == 0 ||
                      std::strcmp(iso, "off") == 0);
    if (const char *inv =
            std::getenv("MELODY_SWEEP_CHECK_INVARIANTS"))
        o.checkInvariants = !(std::strcmp(inv, "0") == 0 ||
                              std::strcmp(inv, "off") == 0);
    return o;
}

// -----------------------------------------------------------------
// Sweep
// -----------------------------------------------------------------

struct Sweep::Item
{
    enum class Kind { kText, kSlot, kGather };
    Kind kind;
    std::string text;     // kText
    SlotRef slot{0, 0};   // kSlot
    std::size_t gather = 0;  // kGather
};

struct Sweep::Point
{
    std::string key;  // scoped, as fed to the cache
    std::size_t nSlots;
    PointFn fn;
    std::vector<std::string> slots;
    bool fromCache = false;
    // Isolated-mode permanent failure (attempt budget exhausted):
    // the point renders a deterministic placeholder instead.
    bool failed = false;
    unsigned attempts = 0;
    std::string cause;
};

struct Sweep::Gather
{
    std::vector<SlotRef> inputs;
    GatherFn fn;
};

Sweep::Sweep(std::string name, Options opts)
    : name_(std::move(name)), scope_(name_), opts_(std::move(opts))
{
    if (opts_.cache)
        cache_ = std::make_unique<RunCache>(
            opts_.cacheDir,
            opts_.salt.empty() ? kSweepSalt : opts_.salt);
}

Sweep::~Sweep() = default;

void
Sweep::scope(std::string scope)
{
    scope_ = std::move(scope);
}

void
Sweep::text(std::string s)
{
    Item it;
    it.kind = Item::Kind::kText;
    it.text = std::move(s);
    items_.push_back(std::move(it));
}

void
Sweep::textf(const char *fmt, ...)
{
    Emit e;
    std::va_list ap;
    va_start(ap, fmt);
    e.vappend(fmt, ap);
    va_end(ap);
    text(e.take());
}

std::size_t
Sweep::point(std::string key, std::size_t slots, PointFn fn)
{
    SIM_ASSERT(slots > 0, "sweep point needs at least one slot");
    SIM_ASSERT(key.find('\n') == std::string::npos,
               "sweep point key must be single-line: " + key);
    Point p;
    p.key = scope_ + "|" + key;
    p.nSlots = slots;
    p.fn = std::move(fn);
    points_.push_back(std::move(p));
    return points_.size() - 1;
}

void
Sweep::point(std::string key, std::function<void(Emit &)> fn)
{
    const std::size_t id =
        point(std::move(key), 1,
              [fn = std::move(fn)](Emit *slots) { fn(slots[0]); });
    place(id, 0);
}

void
Sweep::place(std::size_t id, std::size_t slot)
{
    SIM_ASSERT(id < points_.size(), "place(): unknown point");
    SIM_ASSERT(slot < points_[id].nSlots,
               "place(): slot out of range for point " +
                   points_[id].key);
    Item it;
    it.kind = Item::Kind::kSlot;
    it.slot = {id, slot};
    items_.push_back(std::move(it));
}

void
Sweep::gather(std::vector<SlotRef> inputs, GatherFn fn)
{
    for (const auto &in : inputs) {
        SIM_ASSERT(in.point < points_.size(),
                   "gather(): unknown point");
        SIM_ASSERT(in.slot < points_[in.point].nSlots,
                   "gather(): slot out of range");
    }
    gathers_.push_back(Gather{std::move(inputs), std::move(fn)});
    Item it;
    it.kind = Item::Kind::kGather;
    it.gather = gathers_.size() - 1;
    items_.push_back(std::move(it));
}

std::vector<Sweep::SlotRef>
Sweep::slotsOf(std::size_t id) const
{
    SIM_ASSERT(id < points_.size(), "slotsOf(): unknown point");
    std::vector<SlotRef> out;
    out.reserve(points_[id].nSlots);
    for (std::size_t s = 0; s < points_[id].nSlots; ++s)
        out.push_back({id, s});
    return out;
}

void
Sweep::compute(Report *report)
{
    SIM_ASSERT(!ran_, "Sweep::run() called twice");
    ran_ = true;
    report->points = points_.size();

    const std::string salt =
        opts_.salt.empty() ? kSweepSalt : opts_.salt;
    // Journal records are addressed exactly like run-cache entries,
    // so a salt bump orphans both at once.
    const auto hashOf = [&](const std::string &key) {
        return stats::hex64(
            stats::fnv1a64(key, stats::fnv1a64(salt)));
    };
    const bool isolate = opts_.isolate || opts_.resume;

    // Phase 0: load journaled completions (resume mode). A salt or
    // format mismatch is a user-facing configuration error.
    std::map<std::string, std::vector<std::string>> journaled;
    if (opts_.resume) {
        if (opts_.journalPath.empty())
            throw ConfigError(
                "sweep resume requires a journal path");
        std::string err;
        if (!Journal::load(opts_.journalPath, salt, &journaled,
                           &err))
            throw ConfigError(err);
    }

    // Phase 1: satisfy points from the journal, then the cache,
    // serially (cheap file reads); survivors go to the simulator.
    std::vector<std::size_t> pending;
    pending.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        Point &p = points_[i];
        if (opts_.resume) {
            const auto it = journaled.find(hashOf(p.key));
            if (it != journaled.end() &&
                it->second.size() == p.nSlots) {
                p.slots = it->second;
                p.fromCache = true;
                ++report->resumedPoints;
                continue;
            }
        }
        if (cache_ && cache_->lookup(p.key, p.nSlots, &p.slots)) {
            p.fromCache = true;
            continue;
        }
        pending.push_back(i);
    }

    // Phase 2: compute the misses — supervised subprocesses under
    // isolation, otherwise the in-process worker pool.
    if (isolate)
        computeIsolated(pending, salt, hashOf, report);
    else
        computeInProcess(pending, report);

    // Phase 3: persist fresh results (isolated successes were
    // stored the moment each worker reported back, so a later
    // crash cannot lose them).
    if (cache_) {
        if (!isolate)
            for (const std::size_t idx : pending)
                cache_->store(points_[idx].key,
                              points_[idx].slots);
        report->cacheHits = cache_->stats().hits;
        report->cacheStores = cache_->stats().stores;
        report->corruptEntries = cache_->stats().corrupt;
    }
}

void
Sweep::computeInProcess(const std::vector<std::size_t> &pending,
                        Report *report)
{
    // Fan out over the worker pool. Each closure writes only into
    // its own pre-sized slot storage, so scheduling order cannot
    // affect the rendered bytes. A throwing closure is captured and
    // re-thrown from the lowest point index so the failure is
    // deterministic too.
    std::vector<std::exception_ptr> errors(pending.size());
    std::vector<sim::Invariants> invs(
        opts_.checkInvariants ? pending.size() : 0);
    parallelFor(
        pending.size(),
        [&](std::size_t i) {
            Point &p = points_[pending[i]];
            std::vector<Emit> slots(p.nSlots);
            try {
                sim::InvariantScope scope(
                    opts_.checkInvariants ? &invs[i] : nullptr);
                p.fn(slots.data());
            } catch (...) {
                errors[i] = std::current_exception();
                return;
            }
            p.slots.reserve(p.nSlots);
            for (auto &s : slots)
                p.slots.push_back(s.take());
        },
        opts_.jobs);
    for (const auto &err : errors)
        if (err)
            std::rethrow_exception(err);
    for (std::size_t i = 0; i < invs.size(); ++i)
        for (const auto &v : invs[i].violations())
            report->invariantDiags.push_back(
                {points_[pending[i]].key, v.invariant, v.where,
                 v.values});
}

void
Sweep::computeIsolated(
    const std::vector<std::size_t> &pending,
    const std::string &salt,
    const std::function<std::string(const std::string &)> &hashOf,
    Report *report)
{
    Journal journal;
    if (!opts_.journalPath.empty()) {
        journal.open(opts_.journalPath, opts_.resume);
        journal.begin(name_, salt, opts_.resume);
    }
    for (const std::size_t idx : pending)
        journal.queued(hashOf(points_[idx].key), idx,
                       points_[idx].key);

    std::vector<SupervisorTask> tasks;
    tasks.reserve(pending.size());
    for (const std::size_t idx : pending)
        tasks.push_back({idx, points_[idx].key,
                         points_[idx].nSlots, &points_[idx].fn});

    SupervisorConfig cfg;
    cfg.jobs = opts_.jobs;
    cfg.maxAttempts = opts_.maxAttempts;
    cfg.timeoutMs = opts_.timeoutMs;
    cfg.checkInvariants = opts_.checkInvariants;

    // Workers complete in nondeterministic order; buffer the
    // per-point diagnostics and flatten by point index so the
    // report is stable.
    std::map<std::size_t, std::vector<sim::InvariantViolation>>
        diags;

    SupervisorCallbacks cb;
    cb.onStart = [&](std::size_t idx, unsigned attempt) {
        journal.started(hashOf(points_[idx].key), attempt);
    };
    cb.onSuccess = [&](std::size_t idx, unsigned attempt,
                       std::vector<std::string> slots,
                       std::vector<sim::InvariantViolation>
                           violations) {
        Point &p = points_[idx];
        p.slots = std::move(slots);
        if (cache_)
            cache_->store(p.key, p.slots);
        journal.finished(hashOf(p.key), attempt, p.slots);
        if (!violations.empty())
            diags[idx] = std::move(violations);
    };
    cb.onFailure = [&](std::size_t idx, unsigned attempt,
                       const std::string &cause, bool final) {
        journal.failed(hashOf(points_[idx].key), attempt, cause,
                       final);
        if (final) {
            Point &p = points_[idx];
            p.failed = true;
            p.attempts = attempt;
            p.cause = cause;
        }
    };

    const SupervisorReport srep = runSupervised(tasks, cfg, cb);
    report->retries = srep.retries;
    for (const auto &f : srep.failures)
        report->failures.push_back({f.index,
                                    points_[f.index].key,
                                    f.attempts, f.cause});
    for (const auto &[idx, vs] : diags)
        for (const auto &v : vs)
            report->invariantDiags.push_back(
                {points_[idx].key, v.invariant, v.where,
                 v.values});
}

void
Sweep::render(std::FILE *out, std::string *str)
{
    auto put = [&](const std::string &s) {
        if (str)
            str->append(s);
        else if (!s.empty())
            std::fwrite(s.data(), 1, s.size(), out);
    };
    // Deterministic degraded rendering: a permanently failed point
    // (isolated mode only) renders a placeholder per placed slot,
    // and a gather depending on one is skipped rather than fed
    // partial inputs.
    const auto placeholder = [](const Point &p) {
        return "[melody] point failed: " + p.key + " (" + p.cause +
               ", " + std::to_string(p.attempts) + " attempt(s))\n";
    };
    for (const Item &it : items_) {
        switch (it.kind) {
          case Item::Kind::kText:
            put(it.text);
            break;
          case Item::Kind::kSlot: {
            const Point &p = points_[it.slot.point];
            put(p.failed ? placeholder(p)
                         : p.slots[it.slot.slot]);
            break;
          }
          case Item::Kind::kGather: {
            const Gather &g = gathers_[it.gather];
            const Point *failedDep = nullptr;
            for (const auto &in : g.inputs)
                if (points_[in.point].failed) {
                    failedDep = &points_[in.point];
                    break;
                }
            if (failedDep) {
                put("[melody] gather skipped: depends on failed "
                    "point: " +
                    failedDep->key + "\n");
                break;
            }
            std::vector<std::string> inputs;
            inputs.reserve(g.inputs.size());
            for (const auto &in : g.inputs)
                inputs.push_back(
                    points_[in.point].slots[in.slot]);
            Emit e;
            g.fn(inputs, e);
            put(e.str());
            break;
          }
        }
    }
    if (!str)
        std::fflush(out);
}

Sweep::Report
Sweep::run(std::FILE *out)
{
    Report report;
    compute(&report);
    render(out, nullptr);
    return report;
}

std::string
Sweep::renderToString(Report *report)
{
    Report local;
    compute(&local);
    std::string s;
    render(nullptr, &s);
    if (report)
        *report = local;
    return s;
}

}  // namespace cxlsim::sweep
