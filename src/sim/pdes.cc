#include "pdes.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sim/invariants.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace cxlsim::pdes {

namespace {

std::uint64_t
hostNowNs()
{
    // Imbalance diagnostics only; simulated time never reads this.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

Engine::Engine(Tick lookahead) : lookahead_(lookahead) {}

Engine::~Engine()
{
    for (Partition *p : parts_)
        delete p;
}

Partition *
Engine::addPartition(std::string name)
{
    SIM_ASSERT(epochs_ == 0 && now_ == 0,
               "partitions must be added before run()");
    auto *p = new Partition(static_cast<std::uint32_t>(parts_.size()),
                            std::move(name));
    parts_.push_back(p);
    mailboxes_.clear();
    mailboxes_.resize(parts_.size() * parts_.size());
    stats_.resize(parts_.size());
    drainNs_.resize(parts_.size());
    return p;
}

void
Engine::send(Partition &from, Partition &to, Tick when,
             EventQueue::Handler fn)
{
    const Tick horizon = from.now() + lookahead_;
    if (when < horizon) {
        // A message below the lookahead horizon could land inside
        // an epoch another thread is draining; clamp to the horizon
        // (unconditionally — behavior must not depend on whether a
        // collector is installed) and report.
        if (sim::Invariants *inv = sim::currentInvariants())
            inv->record("pdes/lookahead-horizon",
                        from.name() + "->" + to.name(),
                        "when=" + std::to_string(when) +
                            " horizon=" + std::to_string(horizon));
        when = horizon;
    }
    mailbox(from.id(), to.id()).push_back({when, std::move(fn)});
    ++stats_[from.id()].messagesSent;
}

void
Engine::drainEpoch(std::size_t i, Tick epoch_end)
{
    const std::uint64_t t0 = hostNowNs();
    Partition &p = *parts_[i];
    const std::uint64_t before = p.q_.executed();
    p.q_.runUntil(epoch_end);
    const std::uint64_t ran = p.q_.executed() - before;
    stats_[i].eventsDrained += ran;
    if (ran)
        ++stats_[i].epochs;
    drainNs_[i] = hostNowNs() - t0;
}

void
Engine::run(unsigned threads)
{
    if (threads == 0)
        threads = simThreads();
    threads = std::max(
        1u, std::min<unsigned>(
                threads, static_cast<unsigned>(parts_.size())));
    sim::Invariants *inv = sim::currentInvariants();

    for (;;) {
        // Barrier half A: deliver cross-partition messages buffered
        // during the previous epoch (or queued before run()) in
        // fixed (dst, src) order on this thread. Per-destination
        // insertion sequence — the same-tick tie-breaker — is
        // therefore schedule-invariant.
        for (std::size_t dst = 0; dst < parts_.size(); ++dst) {
            EventQueue &q = parts_[dst]->q_;
            for (std::size_t src = 0; src < parts_.size(); ++src) {
                std::vector<Message> &box =
                    mailbox(static_cast<std::uint32_t>(src),
                            static_cast<std::uint32_t>(dst));
                for (Message &m : box) {
                    q.schedule(m.when, std::move(m.fn));
                    ++stats_[dst].messagesReceived;
                }
                box.clear();
            }
        }

        // Global next event time across all partitions.
        bool any = false;
        Tick next = 0;
        for (Partition *p : parts_) {
            if (p->q_.empty())
                continue;
            if (!any || p->q_.nextTick() < next)
                next = p->q_.nextTick();
            any = true;
        }
        if (!any)
            break;

        // Saturating epoch window; every event at `next` runs this
        // epoch, so progress is guaranteed even with lookahead 0.
        Tick epochEnd = next + lookahead_;
        if (epochEnd < next)
            epochEnd = ~Tick{0};
        if (inv && epochEnd < now_)
            inv->record("pdes/epoch-monotonic", "Engine",
                        "epochEnd=" + std::to_string(epochEnd) +
                            " now=" + std::to_string(now_));

        // Drain partitions independently (the parallel section).
        // The collector is re-installed on each worker so handler
        // invariant hooks behave identically at any thread count.
        if (threads == 1) {
            for (std::size_t i = 0; i < parts_.size(); ++i)
                drainEpoch(i, epochEnd);
        } else {
            parallelFor(
                parts_.size(),
                [&](std::size_t i) {
                    sim::InvariantScope scope(inv);
                    drainEpoch(i, epochEnd);
                },
                threads);
        }

        // Barrier half B: imbalance accounting — a partition
        // "waited at the barrier"
        // for the slowest drain of this epoch.
        std::uint64_t slowest = 0;
        for (std::size_t i = 0; i < parts_.size(); ++i)
            slowest = std::max(slowest, drainNs_[i]);
        for (std::size_t i = 0; i < parts_.size(); ++i)
            stats_[i].waitNs += slowest - drainNs_[i];

        now_ = epochEnd;
        ++epochs_;
    }

    // Conservation: every message sent through a mailbox must have
    // been delivered by a barrier (mailboxes drain every epoch).
    std::uint64_t sent = 0, received = 0;
    for (const StatsRegistry::Entry &e : stats_) {
        sent += e.messagesSent;
        received += e.messagesReceived;
    }
    if (inv && sent != received)
        inv->record("pdes/mailbox-conservation", "Engine",
                    "sent=" + std::to_string(sent) + " received=" +
                        std::to_string(received));
}

void
Engine::publishStats() const
{
    StatsRegistry &reg = StatsRegistry::instance();
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        StatsRegistry::Entry e = stats_[i];
        e.runs = 1;
        reg.add(parts_[i]->name(), e);
    }
}

}  // namespace cxlsim::pdes
