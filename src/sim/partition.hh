/**
 * @file
 * Conservative partition scheduling for intra-run parallelism
 * (DESIGN.md §11).
 *
 * Two pieces live here:
 *
 *  - The process-wide `--sim-threads` knob. Intra-run parallelism
 *    is output-invariant by construction (any thread count,
 *    including 1, produces bit-identical results), so a global
 *    setting cannot change what a simulation computes — only how
 *    fast. It is distinct from sweep `--jobs`, which parallelizes
 *    ACROSS independent points; the two compose (jobs × sim-threads
 *    is the total worker budget).
 *
 *  - FrontierGate: the conservative scheduler that parallelizes one
 *    MultiCore run. Each core is a logical process advancing its own
 *    clock; cores interact ONLY through the shared LLC + memory
 *    backend. The serial engine executes blocks in lexicographic
 *    (blockStart, coreIdx) order, so that order *is* the output
 *    contract. Each core publishes its current block key as an
 *    atomic frontier before stepping; before its first shared-state
 *    touch in a block, a core waits until every lower-indexed core
 *    has published a strictly later key and every higher-indexed
 *    core an equal-or-later key. That grants shared access in
 *    exactly the serial order — at most one core holds a grant at
 *    any instant (two simultaneous grants would each require the
 *    other's frontier to be strictly ahead) — while private-state
 *    work (L1/L2 hits, core math) overlaps freely across threads.
 *
 *    Deadlock-freedom: frontiers are nondecreasing per core and the
 *    core holding the globally minimal (key, idx) always satisfies
 *    its wait condition. The grant condition is monotonic (other
 *    frontiers only grow), so a passed check can never be
 *    invalidated.
 *
 *    A token budget caps how many cores *execute* concurrently when
 *    sim-threads is below the core count. A core waiting for its
 *    grant releases its token first, so the globally minimal core
 *    can always acquire one — the budget throttles CPU use, never
 *    ordering.
 *
 * Per-partition utilization counters (blocks drained, shared-section
 * grants, wait time) feed the StatsRegistry behind
 * `melody sweep --pdes-stats` so partitioning changes stay
 * measurable.
 */

#ifndef CXLSIM_SIM_PARTITION_HH
#define CXLSIM_SIM_PARTITION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cxlsim::pdes {

/**
 * Intra-run thread budget for one simulation (cores per MultiCore
 * run, partitions per pdes::Engine::run). 1 = serial (default).
 */
unsigned simThreads();

/** Set the budget; 0 selects hardware concurrency. */
void setSimThreads(unsigned n);

/** Conservative (blockStart, coreIdx)-ordered scheduler. */
class FrontierGate
{
  public:
    /** Per-partition utilization/imbalance counters. */
    struct Stats
    {
        /** Blocks (events) drained by this partition. */
        std::uint64_t blocks = 0;
        /** enterShared() calls (shared-section grants). */
        std::uint64_t sharedGrants = 0;
        /** Grants that had to wait for another partition. */
        std::uint64_t sharedWaits = 0;
        /** Host nanoseconds spent waiting (grant + token). */
        std::uint64_t waitNs = 0;
    };

    /**
     * @param partitions Number of logical processes (cores).
     * @param tokens     Concurrent-execution budget; values >=
     *                   @p partitions disable throttling.
     */
    FrontierGate(unsigned partitions, unsigned tokens);

    /**
     * Announce partition @p p's next block starting at @p key.
     * Clears any shared-access grant and (when throttled) acquires
     * an execution token. Keys must be nondecreasing per partition.
     */
    void beginBlock(unsigned p, Tick key);

    /** Block finished: release the execution token. */
    void endBlock(unsigned p);

    /** Partition @p p is done; its frontier becomes +infinity. */
    void finish(unsigned p);

    /**
     * Wait until partition @p p's current block is the earliest
     * unfinished block in serial (key, idx) order, then grant it
     * shared-state access for the remainder of the block. No-op if
     * the grant is already held.
     */
    void enterShared(unsigned p);

    const Stats &stats(unsigned p) const { return slots_[p].stats; }
    unsigned partitions() const
    {
        return static_cast<unsigned>(slots_.size());
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<Tick> frontier{0};
        /** Shared-access grant for the current block; only the
         *  owning partition's thread reads/writes it. */
        bool granted = false;
        Stats stats;
    };

    bool grantCondition(unsigned p, Tick key) const;
    bool tryAcquireToken();
    void acquireToken(unsigned p);
    void releaseToken();
    /** Park until @p pred (notified by publishes/releases). */
    template <typename Pred> void park(Pred pred);
    void wake();

    std::vector<Slot> slots_;
    /** Execution-token budget; < 0 means throttling disabled. */
    const int tokenCap_;
    std::atomic<int> tokens_;
    std::atomic<unsigned> sleepers_{0};
    std::mutex mu_;
    std::condition_variable cv_;
};

/**
 * Process-wide accumulator for PDES utilization counters, keyed by
 * partition name (ordered map: JSON output is deterministic).
 * Cleared and dumped by `melody sweep --pdes-stats`; wait times are
 * host measurements and never feed simulation output.
 */
class StatsRegistry
{
  public:
    static StatsRegistry &instance();

    struct Entry
    {
        std::uint64_t runs = 0;
        std::uint64_t eventsDrained = 0;
        std::uint64_t sharedGrants = 0;
        std::uint64_t sharedWaits = 0;
        std::uint64_t waitNs = 0;
        std::uint64_t messagesSent = 0;
        std::uint64_t messagesReceived = 0;
        std::uint64_t epochs = 0;
    };

    void clear();
    /** Accumulate one partition's counters under @p name. */
    void add(const std::string &name, const Entry &e);
    /** Accumulate every partition of a finished gate run. */
    void addGate(const FrontierGate &gate);

    bool empty() const;

    /**
     * rasReport-style JSON: {"pdes": {"partitions": [{"partition":
     * ..., "runs": ..., "eventsDrained": ..., ...}, ...]}}.
     */
    std::string json() const;

  private:
    StatsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, Entry> byName_;
};

}  // namespace cxlsim::pdes

#endif  // CXLSIM_SIM_PARTITION_HH
