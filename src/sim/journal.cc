#include "journal.hh"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <string_view>
#include <system_error>
#include <utility>

#include "sim/logging.hh"
#include "stats/json.hh"
#include "stats/rows.hh"

namespace cxlsim::sweep {

namespace {

constexpr const char *kHexDigits = "0123456789abcdef";

/** Hex-encode arbitrary bytes (keeps journal values escape-free). */
std::string
hexEncode(const std::string &bytes)
{
    std::string out;
    out.reserve(bytes.size() * 2);
    for (unsigned char c : bytes) {
        out += kHexDigits[c >> 4];
        out += kHexDigits[c & 0xf];
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
hexDecode(std::string_view hex, std::string *out)
{
    if (hex.size() % 2 != 0)
        return false;
    out->clear();
    out->reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out->push_back(static_cast<char>((hi << 4) | lo));
    }
    return true;
}

/**
 * Extract the string value of @p key from one JSONL line written
 * by this file's writer: finds `"key":"` and unescapes up to the
 * closing quote (exactly the escapes stats::JsonWriter emits).
 * Returns false when the key is absent or the value is torn.
 */
bool
extractString(const std::string &line, const std::string &key,
              std::string *out)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    out->clear();
    for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
        char c = line[i];
        if (c == '"')
            return true;
        if (c != '\\') {
            out->push_back(c);
            continue;
        }
        if (++i >= line.size())
            return false;
        switch (line[i]) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (i + 4 >= line.size())
                return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
                const int n = hexNibble(static_cast<char>(
                    std::tolower(line[i + 1 + k])));
                if (n < 0)
                    return false;
                v = (v << 4) | static_cast<unsigned>(n);
            }
            // The writer only emits \u for control bytes.
            out->push_back(static_cast<char>(v & 0xff));
            i += 4;
            break;
          }
          default:
            return false;
        }
    }
    return false;  // unterminated (torn final line)
}

}  // namespace

Journal::~Journal()
{
    if (f_)
        std::fclose(f_);
}

void
Journal::open(const std::string &path, bool keep)
{
    path_ = path;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    f_ = std::fopen(path.c_str(), keep ? "ab" : "wb");
    if (!f_)
        SIM_WARN("sweep journal: cannot open '" + path +
                 "'; journaling disabled for this run");
}

void
Journal::append(const std::string &line)
{
    if (!f_)
        return;
    // One buffered write + flush per record: a crash can tear at
    // most the final line, which load() skips.
    const bool ok =
        std::fwrite(line.data(), 1, line.size(), f_) ==
            line.size() &&
        std::fputc('\n', f_) != EOF && std::fflush(f_) == 0;
    if (!ok) {
        std::fclose(f_);
        f_ = nullptr;
        if (!warned_) {
            warned_ = true;
            SIM_WARN("sweep journal: write to '" + path_ +
                     "' failed; journaling disabled for this run");
        }
    }
}

void
Journal::begin(const std::string &name, const std::string &salt,
               bool resumed)
{
    stats::JsonWriter j;
    j.beginObject();
    j.field("event", "sweep");
    j.field("v", 1);
    j.field("name", name);
    j.field("salt", salt);
    j.field("resumed", resumed);
    j.endObject();
    append(j.str());
}

void
Journal::queued(const std::string &hash, std::size_t point,
                const std::string &key)
{
    stats::JsonWriter j;
    j.beginObject();
    j.field("event", "queued");
    j.field("hash", hash);
    j.field("point", static_cast<std::uint64_t>(point));
    j.field("key", key);
    j.endObject();
    append(j.str());
}

void
Journal::started(const std::string &hash, unsigned attempt)
{
    stats::JsonWriter j;
    j.beginObject();
    j.field("event", "started");
    j.field("hash", hash);
    j.field("attempt", attempt);
    j.endObject();
    append(j.str());
}

void
Journal::finished(const std::string &hash, unsigned attempt,
                  const std::vector<std::string> &slots)
{
    stats::JsonWriter j;
    j.beginObject();
    j.field("event", "finished");
    j.field("hash", hash);
    j.field("attempt", attempt);
    j.field("slots_hex", hexEncode(stats::encodeRows(slots)));
    j.endObject();
    append(j.str());
}

void
Journal::failed(const std::string &hash, unsigned attempt,
                const std::string &cause, bool final)
{
    stats::JsonWriter j;
    j.beginObject();
    j.field("event", "failed");
    j.field("hash", hash);
    j.field("attempt", attempt);
    j.field("cause", cause);
    j.field("final", final);
    j.endObject();
    append(j.str());
}

bool
Journal::load(const std::string &path, const std::string &salt,
              std::map<std::string, std::vector<std::string>> *done,
              std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        *err = "cannot read journal '" + path + "'";
        return false;
    }
    std::string data;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    const bool readOk = !std::ferror(f);
    std::fclose(f);
    if (!readOk) {
        *err = "error reading journal '" + path + "'";
        return false;
    }

    bool sawHeader = false;
    std::size_t pos = 0;
    while (pos < data.size()) {
        std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break;  // trailing torn line: ignore
        const std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;

        std::string event;
        if (!extractString(line, "event", &event))
            continue;  // foreign or garbled line
        if (event == "sweep") {
            std::string jsalt;
            if (!extractString(line, "salt", &jsalt)) {
                *err = "journal '" + path + "' has a malformed "
                       "header";
                return false;
            }
            if (jsalt != salt) {
                *err = "journal '" + path +
                       "' was written under salt '" + jsalt +
                       "' (current salt '" + salt +
                       "'); delete it and rerun without --resume";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (event != "finished")
            continue;
        std::string hash, slotsHex, blob;
        std::vector<std::string> slots;
        if (!extractString(line, "hash", &hash) ||
            !extractString(line, "slots_hex", &slotsHex) ||
            !hexDecode(slotsHex, &blob) ||
            !stats::decodeRows(blob, &slots))
            continue;  // torn record: the point just recomputes
        (*done)[hash] = std::move(slots);
    }
    if (!sawHeader) {
        *err = "journal '" + path + "' has no sweep header "
               "(not a melody sweep journal?)";
        return false;
    }
    return true;
}

}  // namespace cxlsim::sweep
