/**
 * @file
 * Content-addressed run cache for deterministic sweep points.
 *
 * Every simulation run in this codebase is a pure function of its
 * configuration (platform profile, workload/config struct, seed)
 * plus the simulator code itself. The sweep engine therefore keys
 * each point's formatted output rows by
 *
 *     fnv1a64(salt | sweep-scope | point key)
 *
 * and persists them under one file per point
 * (`<dir>/<hash>.rcache`). Re-running a figure after an unrelated
 * edit skips unchanged points entirely; outputs re-emitted from
 * the cache are byte-identical to a live run because the payload
 * *is* the emitted bytes (stats::encodeRows framing).
 *
 * The salt is the invalidation knob: it names the simulator
 * behaviour version (see sweep::kSweepSalt) and must be bumped in
 * any PR that intentionally changes simulation results, which
 * orphans every prior entry at once. Entries are verified on read
 * (magic, salt, full key echo, payload checksum, structural
 * decode); any mismatch — including a hash collision or a
 * truncated write — counts as corrupt and falls back to
 * recomputation, never to wrong output. Writes go through a
 * temp-file + rename so a crashed run cannot leave a torn entry
 * behind.
 */

#ifndef CXLSIM_SIM_RUN_CACHE_HH
#define CXLSIM_SIM_RUN_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cxlsim::sweep {

/** One directory of cached sweep-point results. */
class RunCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        /** Entries present but failing verification (recomputed). */
        std::uint64_t corrupt = 0;
        /** Failed writes (unwritable dir etc.; never fatal). */
        std::uint64_t storeFailures = 0;
    };

    /**
     * @param dir  Cache directory; created lazily on first store.
     * @param salt Invalidation salt mixed into every key.
     */
    RunCache(std::string dir, std::string salt);

    /**
     * Look up @p key; on hit, fill @p rows (exactly
     * @p expectRows of them) and return true. Structurally
     * invalid or mismatching entries count as corrupt misses.
     */
    bool lookup(const std::string &key, std::size_t expectRows,
                std::vector<std::string> *rows);

    /** Persist @p rows under @p key (best effort, atomic). */
    void store(const std::string &key,
               const std::vector<std::string> &rows);

    const Stats &stats() const { return stats_; }
    const std::string &dir() const { return dir_; }

    /** Summary of one cache directory (`melody cache stats`). */
    struct DirStats
    {
        /** Well-formed entries (magic + salt header parse). */
        std::uint64_t entries = 0;
        /** Their total size in bytes. */
        std::uint64_t bytes = 0;
        /** Other files in the directory (torn temps, foreign). */
        std::uint64_t foreign = 0;
        /** Entry count per salt — stale generations show up as
         *  extra keys here (ordered map: deterministic listing). */
        std::map<std::string, std::uint64_t> perSalt;
    };

    /**
     * Inspect @p dir without touching any entry. A missing
     * directory yields all-zero stats (not an error).
     */
    static DirStats scanDir(const std::string &dir);

    /**
     * Delete every cache entry (and stray `.tmp`) under @p dir,
     * leaving the directory itself and foreign files alone.
     * @return number of files removed.
     */
    static std::uint64_t clearDir(const std::string &dir);

  private:
    std::string pathFor(const std::string &key) const;

    std::string dir_;
    std::string salt_;
    Stats stats_;
    bool warnedStoreFailure_ = false;
};

}  // namespace cxlsim::sweep

#endif  // CXLSIM_SIM_RUN_CACHE_HH
