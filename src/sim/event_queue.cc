#include "event_queue.hh"

#include <string>

#include "invariants.hh"
#include "logging.hh"

namespace cxlsim {

void
EventQueue::siftUp(std::size_t i)
{
    const Key k = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(k, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = k;
}

void
EventQueue::siftDown(std::size_t i)
{
    const Key k = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], k))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = k;
}

void
EventQueue::schedule(Tick when, Handler fn)
{
    if (when < now_) {
        // With a collector installed, report the violation as a
        // structured diagnostic and clamp so the run can finish
        // (degraded-but-attributable beats an abort mid-sweep);
        // without one, keep the hard contract.
        if (sim::Invariants *inv = sim::currentInvariants()) {
            inv->record("eventq/schedule-past", "EventQueue",
                        "when=" + std::to_string(when) +
                            " now=" + std::to_string(now_));
            when = now_;
        } else {
            SIM_ASSERT(when >= now_, "scheduling into the past");
        }
    }
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(fn));
    }
    heap_.push_back(Key{when, nextSeq_++, slot});
    siftUp(heap_.size() - 1);
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    const Key top = heap_.front();
    if (top.when >= now_) {
        now_ = top.when;
    } else {
        // Heap order broken (time would run backwards): report
        // under a collector and hold now_ instead of regressing.
        if (sim::Invariants *inv = sim::currentInvariants())
            inv->record("eventq/monotonic-time", "EventQueue",
                        "next=" + std::to_string(top.when) +
                            " now=" + std::to_string(now_));
    }
    if (heap_.size() > 1) {
        heap_.front() = heap_.back();
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    Handler fn = std::move(slots_[top.slot]);
    freeSlots_.push_back(top.slot);
    ++executed_;
    fn();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.front().when <= limit)
        step();
    if (now_ < limit)
        now_ = limit;
}

}  // namespace cxlsim
