#include "event_queue.hh"

#include "logging.hh"

namespace cxlsim {

void
EventQueue::schedule(Tick when, Handler fn)
{
    SIM_ASSERT(when >= now_, "scheduling into the past");
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; the handler is mutable so we can
    // move it out before popping.
    const Entry &top = heap_.top();
    now_ = top.when;
    Handler fn = std::move(top.fn);
    heap_.pop();
    ++executed_;
    fn();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        step();
    if (now_ < limit)
        now_ = limit;
}

}  // namespace cxlsim
