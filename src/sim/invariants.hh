/**
 * @file
 * Runtime invariant layer for the simulator (DESIGN.md §10).
 *
 * Validation-heavy simulators treat self-checking as a first-class
 * feature: a counter-nesting violation (paper Figure 10 requires
 * P1 ⊇ P3 ⊇ P4 ⊇ P5) or a non-monotonic event queue silently
 * corrupts every figure built on top of it. The hooks sprinkled
 * through src/cpu, src/cxl and the event kernel validate those
 * contracts at runtime and report violations as *structured
 * diagnostics* (invariant name, component, offending values)
 * instead of raw aborts, so a sweep can finish, attribute the
 * violation to a point, and still render the surviving figures.
 *
 * Checking is scoped, not global: a hook only fires when an
 * Invariants collector is installed on the current thread via
 * InvariantScope (the sweep engine installs one around each point
 * when Options::checkInvariants is set — default-on in Debug
 * builds, opt-in via `--check-invariants` in Release). When no
 * collector is installed a hook costs one thread-local load and a
 * branch, so the Release hot path is unaffected.
 *
 * Invariant catalog (names are stable, tests match on them):
 *   counters/nesting        P1 >= P3 >= P4 >= P5 >= 0 (per core)
 *   counters/pf-subset      L1PF/L2PF L3 hit+miss <= issued
 *   counters/l3-subset      pf+demand L3 misses <= LLC miss count
 *   counters/conservation   backend reads/writes == hierarchy
 *                           demand+prefetch+RFO / writeback counts
 *   eventq/monotonic-time   executed event tick >= now()
 *   eventq/schedule-past    schedule() target tick >= now()
 *   cxl/completion-order    serviceEx completion >= arrival
 *   cxl/utilization-bounds  controller utilization in [0, 1]
 *   queue/pf-occupancy      prefetch in-flight queues <= budget
 *   pdes/epoch-monotonic    epoch ends / partition frontiers never
 *                           decrease (sim/pdes, sim/partition)
 *   pdes/lookahead-horizon  cross-partition send targeted below
 *                           now + lookahead (clamped)
 *   pdes/mailbox-conservation  every mailbox message sent was
 *                           delivered by an epoch barrier
 *
 * record() is thread-safe: intra-run parallelism (`--sim-threads`)
 * installs one collector on every gang thread.
 */

#ifndef CXLSIM_SIM_INVARIANTS_HH
#define CXLSIM_SIM_INVARIANTS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cxlsim::sim {

/** One recorded invariant violation. */
struct InvariantViolation
{
    /** Catalog name, e.g. "counters/nesting". */
    std::string invariant;
    /** Component instance, e.g. "core 3" or "EventQueue". */
    std::string where;
    /** Formatted offending values, e.g. "p1=10.0 p3=11.2". */
    std::string values;
};

/**
 * Collector for one checked region (typically one sweep point).
 * Recording never aborts; the owner decides how to surface the
 * violations (the sweep report, a CLI diagnostic, a test assert).
 */
class Invariants
{
  public:
    /** Record a violation (bounded; see dropped()). */
    void record(std::string invariant, std::string where,
                std::string values);

    bool failed() const { return !violations_.empty() || dropped_; }

    const std::vector<InvariantViolation> &
    violations() const
    {
        return violations_;
    }

    /** Violations beyond the recording cap (first 64 are kept). */
    std::uint64_t dropped() const { return dropped_; }

    /** Recording cap; further record() calls only bump dropped(). */
    static constexpr std::size_t kMaxRecorded = 64;

  private:
    std::vector<InvariantViolation> violations_;
    std::uint64_t dropped_ = 0;
};

/**
 * The collector installed on the current thread, or nullptr.
 * Hook idiom (format values only on failure):
 *
 *   if (sim::Invariants *inv = sim::currentInvariants())
 *       if (!(a >= b))
 *           inv->record("counters/nesting", "core 0", ...);
 */
Invariants *currentInvariants();

/** RAII installation of @p inv on the current thread (nestable —
 *  the previous collector is restored on destruction). */
class InvariantScope
{
  public:
    explicit InvariantScope(Invariants *inv);
    ~InvariantScope();

    InvariantScope(const InvariantScope &) = delete;
    InvariantScope &operator=(const InvariantScope &) = delete;

  private:
    Invariants *prev_;
};

/** Invariant checking default: on in Debug builds, off in Release
 *  (opt in via `--check-invariants` / Options::checkInvariants). */
constexpr bool
invariantsDefaultOn()
{
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

/**
 * Tolerant float comparison for the derived-counter invariants:
 * the P1..P5 accumulators sum the same stall segments in slightly
 * different subsets, so exact >= can fail by one ulp-scale rounding
 * step on legitimate runs.
 */
inline bool
approxGe(double a, double b)
{
    const double mag = (a < 0 ? -a : a) + (b < 0 ? -b : b);
    return a >= b - (1e-9 * mag + 1e-9);
}

}  // namespace cxlsim::sim

#endif  // CXLSIM_SIM_INVARIANTS_HH
