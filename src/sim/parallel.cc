#include "parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace cxlsim {

namespace {

/** Set while a thread is executing pool work or a parallelFor
 *  body; nested parallelFor calls then run serially instead of
 *  deadlocking on the single shared pool. */
thread_local bool t_inParallel = false;

/**
 * The process-wide worker pool. One job runs at a time (outer
 * calls serialize on jobMu_); workers park on cv_ between jobs.
 *
 * Job protocol: the publishing thread writes the job fields and
 * bumps gen_ under mu_, wakes everyone, then participates itself.
 * Workers claim at most `slots_` participation slots per job so a
 * caller-requested thread cap is honored even when the pool has
 * more workers. Chunks are claimed from the atomic cursor; the
 * caller returns only once every chunk has been fully executed, so
 * the std::function reference stays valid for exactly the time any
 * worker can dereference it.
 */
class WorkerPool
{
  public:
    static WorkerPool &
    instance()
    {
        // The pool is the one sanctioned process-wide singleton: it
        // owns no simulation state (chunks are claimed through an
        // atomic cursor, results land in caller-owned memory), so
        // determinism is unaffected by which worker runs a chunk.
        // lint:allow(det-static-local)
        static WorkerPool pool;
        return pool;
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &fn,
        unsigned participants, std::size_t grain)
    {
        std::lock_guard<std::mutex> job(jobMu_);
        ensureWorkers(participants - 1);
        const std::size_t totalChunks = (n + grain - 1) / grain;
        {
            std::lock_guard<std::mutex> lk(mu_);
            fn_ = &fn;
            n_ = n;
            grain_ = grain;
            totalChunks_ = totalChunks;
            next_.store(0, std::memory_order_relaxed);
            doneChunks_.store(0, std::memory_order_relaxed);
            slots_ = static_cast<int>(participants) - 1;
            ++gen_;
        }
        cv_.notify_all();

        t_inParallel = true;
        workOn(fn, n, grain, totalChunks);
        t_inParallel = false;

        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [&] {
            return doneChunks_.load(std::memory_order_acquire) ==
                   totalChunks_;
        });
        fn_ = nullptr;
    }

  private:
    WorkerPool() = default;

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    void
    ensureWorkers(unsigned target)
    {
        // jobMu_ is held: workers_ only grows from here.
        while (workers_.size() < target)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workOn(const std::function<void(std::size_t)> &fn, std::size_t n,
           std::size_t grain, std::size_t total_chunks)
    {
        for (std::size_t start =
                 next_.fetch_add(grain, std::memory_order_relaxed);
             start < n;
             start = next_.fetch_add(grain,
                                     std::memory_order_relaxed)) {
            const std::size_t end = std::min(n, start + grain);
            for (std::size_t i = start; i < end; ++i)
                fn(i);
            if (doneChunks_.fetch_add(1, std::memory_order_release) +
                    1 ==
                total_chunks) {
                std::lock_guard<std::mutex> lk(mu_);
                doneCv_.notify_all();
            }
        }
    }

    void
    workerLoop()
    {
        t_inParallel = true;
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)> *fn;
            std::size_t n, grain, totalChunks;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_.wait(lk,
                         [&] { return stop_ || gen_ != seen; });
                if (stop_)
                    return;
                seen = gen_;
                if (slots_ <= 0)
                    continue;  // job already fully staffed
                --slots_;
                fn = fn_;
                n = n_;
                grain = grain_;
                totalChunks = totalChunks_;
            }
            if (fn)
                workOn(*fn, n, grain, totalChunks);
        }
    }

    /** Serializes whole jobs (one parallelFor at a time). */
    std::mutex jobMu_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    bool stop_ = false;

    // Current-job state; scalars guarded by mu_.
    std::uint64_t gen_ = 0;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t n_ = 0;
    std::size_t grain_ = 1;
    std::size_t totalChunks_ = 0;
    int slots_ = 0;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> doneChunks_{0};
};

/**
 * Dedicated-thread pool for mutually-blocking task gangs
 * (runGang). Every gang member needs a real thread for the gang's
 * lifetime — members may park mid-body waiting on a peer — so
 * workers are never shared between simultaneously-running gangs;
 * finished workers return to a free list for the next gang.
 */
class GangPool
{
  public:
    static GangPool &
    instance()
    {
        // Same sanctioned singleton shape as WorkerPool: the pool
        // owns no simulation state, only threads.
        // lint:allow(det-static-local)
        static GangPool pool;
        return pool;
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        struct Job
        {
            const std::function<void(std::size_t)> *fn;
            std::size_t remaining;
        } job{&fn, n - 1};

        std::vector<Worker *> members;
        members.reserve(n - 1);
        {
            std::lock_guard<std::mutex> lk(mu_);
            for (std::size_t i = 1; i < n; ++i) {
                Worker *w;
                if (!free_.empty()) {
                    w = free_.back();
                    free_.pop_back();
                } else {
                    w = new Worker;
                    all_.push_back(w);
                    w->thread = std::thread(
                        [this, w] { workerLoop(w); });
                }
                members.push_back(w);
            }
        }
        for (std::size_t i = 1; i < n; ++i) {
            Worker *w = members[i - 1];
            std::lock_guard<std::mutex> lk(w->mu);
            w->fn = &fn;
            w->index = i;
            w->done = &job.remaining;
            w->cv.notify_one();
        }

        fn(0);

        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [&] { return job.remaining == 0; });
    }

  private:
    struct Worker
    {
        std::thread thread;
        std::mutex mu;
        std::condition_variable cv;
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t index = 0;
        std::size_t *done = nullptr;
        bool stop = false;
    };

    GangPool() = default;

    ~GangPool()
    {
        for (Worker *w : all_) {
            {
                std::lock_guard<std::mutex> lk(w->mu);
                w->stop = true;
            }
            w->cv.notify_one();
        }
        for (Worker *w : all_) {
            w->thread.join();
            delete w;
        }
    }

    void
    workerLoop(Worker *w)
    {
        for (;;) {
            const std::function<void(std::size_t)> *fn;
            std::size_t index;
            std::size_t *done;
            {
                std::unique_lock<std::mutex> lk(w->mu);
                w->cv.wait(lk, [&] { return w->stop || w->fn; });
                if (w->stop)
                    return;
                fn = w->fn;
                index = w->index;
                done = w->done;
                w->fn = nullptr;
            }
            (*fn)(index);
            {
                std::lock_guard<std::mutex> lk(mu_);
                free_.push_back(w);
                if (--*done == 0)
                    doneCv_.notify_all();
            }
        }
    }

    std::mutex mu_;
    std::condition_variable doneCv_;
    std::vector<Worker *> free_;
    std::vector<Worker *> all_;
};

}  // namespace

void
runGang(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }
    GangPool::instance().run(n, fn);
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            unsigned threads, std::size_t grain)
{
    if (n == 0)
        return;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    threads = std::max(
        1u, std::min<unsigned>(threads, static_cast<unsigned>(n)));
    if (grain == 0)
        grain = 1;
    if (threads == 1 || t_inParallel) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    WorkerPool::instance().run(n, fn, threads, grain);
}

}  // namespace cxlsim
