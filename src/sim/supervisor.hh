/**
 * @file
 * Crash-isolated execution of sweep points (DESIGN.md §10).
 *
 * The plain sweep engine runs every point in-process on the
 * parallelFor pool: one segfault, abort, or hang anywhere in a
 * multi-hundred-point figure suite kills the whole run with
 * nothing to show. runSupervised() instead forks one worker
 * subprocess per point (up to `jobs` in flight at once) and keeps
 * the supervisor itself single-threaded and allocation-light:
 *
 *  - each worker computes exactly one point, streams its encoded
 *    slots back over a pipe, and _exit()s — it never touches the
 *    parent's stdio buffers or the worker pool;
 *  - the supervisor enforces a per-point wall-clock watchdog
 *    (SIGKILL on expiry) and converts SIGSEGV/SIGABRT/any signal,
 *    nonzero exits, torn payloads, watchdog timeouts and
 *    in-worker exceptions into *structured per-point failures*;
 *  - every failure is retried up to a bounded attempt budget;
 *    points that exhaust it are reported, not fatal — surviving
 *    points render normally and the caller renders deterministic
 *    placeholders for the dead ones.
 *
 * Fault-free supervised runs produce byte-identical output to the
 * in-process engine for any job count: workers fill the same
 * per-point slot storage, and ordering is restored at render time
 * exactly as for the thread pool (tests/test_supervisor.cc holds
 * this for real figures).
 *
 * The watchdog uses std::chrono::steady_clock — a monotonic
 * duration source, not wall-calendar time — and none of it ever
 * influences simulated results: timing only decides *whether* a
 * worker is declared hung, and a hung worker yields a
 * deterministic placeholder, never data.
 */

#ifndef CXLSIM_SIM_SUPERVISOR_HH
#define CXLSIM_SIM_SUPERVISOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/invariants.hh"

namespace cxlsim::sweep {

class Emit;

/** One point handed to the supervisor. */
struct SupervisorTask
{
    /** Caller's identifier (point index), echoed in callbacks. */
    std::size_t index = 0;
    /** Scoped point key (diagnostics only). */
    std::string key;
    /** Number of output slots the closure fills. */
    std::size_t nSlots = 1;
    /** The point closure; runs in the forked worker. */
    const std::function<void(Emit *)> *fn = nullptr;
};

/** Supervision knobs. */
struct SupervisorConfig
{
    /** Max concurrent workers; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Attempts per point before it is declared failed (>= 1). */
    unsigned maxAttempts = 2;
    /** Per-attempt wall-clock watchdog in ms; 0 disables it. */
    unsigned timeoutMs = 0;
    /** Run each worker under an Invariants collector and ship
     *  violations back with the result. */
    bool checkInvariants = false;
};

/** A point that exhausted its attempt budget. */
struct SupervisedFailure
{
    std::size_t index = 0;
    unsigned attempts = 0;
    /** Structured exit cause: "SIGSEGV", "SIGABRT", "signal N",
     *  "exit-code N", "watchdog-timeout", "exception: ...",
     *  "protocol-error". */
    std::string cause;
};

/** Aggregate outcome of one supervised run. */
struct SupervisorReport
{
    /** Worker processes forked (successes + every retry). */
    std::uint64_t launched = 0;
    /** Attempts beyond each point's first. */
    std::uint64_t retries = 0;
    /** Exhausted points, sorted by task index. */
    std::vector<SupervisedFailure> failures;
};

/** Lifecycle callbacks (all optional; invoked on the supervisor
 *  thread, in completion order). */
struct SupervisorCallbacks
{
    std::function<void(std::size_t index, unsigned attempt)> onStart;
    /** Slots arrive decoded; violations only when checkInvariants. */
    std::function<void(std::size_t index, unsigned attempt,
                       std::vector<std::string> slots,
                       std::vector<sim::InvariantViolation>
                           violations)>
        onSuccess;
    /** @p final is true when the attempt budget is exhausted. */
    std::function<void(std::size_t index, unsigned attempt,
                       const std::string &cause, bool final)>
        onFailure;
};

/**
 * Run @p tasks under supervision (see file comment). Blocks until
 * every task has succeeded or exhausted its attempts.
 */
SupervisorReport runSupervised(const std::vector<SupervisorTask> &tasks,
                               const SupervisorConfig &cfg,
                               const SupervisorCallbacks &cb);

}  // namespace cxlsim::sweep

#endif  // CXLSIM_SIM_SUPERVISOR_HH
