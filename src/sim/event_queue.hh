/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue instance drives one simulated system. Events
 * are arbitrary callables scheduled at absolute ticks; ties are
 * broken deterministically by insertion order so runs are exactly
 * reproducible.
 *
 * Handlers are stored in an allocation-free InlineFunction (48-byte
 * in-place capture buffer) kept in a free-listed slot array; the
 * heap itself orders 24-byte (tick, seq, slot) keys with hole-based
 * sifting. Scheduling a typical capturing lambda touches no
 * allocator, and sifting never moves a handler.
 */

#ifndef CXLSIM_SIM_EVENT_QUEUE_HH
#define CXLSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "inline_function.hh"
#include "types.hh"

namespace cxlsim {

/**
 * A min-heap event queue over (tick, sequence) with callable payloads.
 *
 * Components schedule lambdas; the owner advances time with run(),
 * runUntil(), or step(). There is no global queue: each simulated
 * platform owns its own EventQueue so independent experiments never
 * interfere.
 */
class EventQueue
{
  public:
    using Handler = InlineFunction;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void schedule(Tick when, Handler fn);

    /** Schedule @p fn @p delta ticks from now. */
    void scheduleAfter(Tick delta, Handler fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the next pending event; only valid if !empty(). */
    Tick nextTick() const { return heap_.front().when; }

    /**
     * Execute the single next event, advancing now() to its tick.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run all events with tick <= @p limit, then set now() to
     * @p limit if it is beyond the last executed event.
     */
    void runUntil(Tick limit);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;  ///< Index of the handler in slots_.
    };

    /** Strict (tick, seq) order; seq is unique, so total. */
    static bool
    before(const Key &a, const Key &b)
    {
        return a.when < b.when || (a.when == b.when && a.seq < b.seq);
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<Key> heap_;
    std::vector<Handler> slots_;
    std::vector<std::uint32_t> freeSlots_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace cxlsim

#endif  // CXLSIM_SIM_EVENT_QUEUE_HH
