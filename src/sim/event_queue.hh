/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue instance drives one simulated system. Events
 * are arbitrary callables scheduled at absolute ticks; ties are
 * broken deterministically by insertion order so runs are exactly
 * reproducible.
 */

#ifndef CXLSIM_SIM_EVENT_QUEUE_HH
#define CXLSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types.hh"

namespace cxlsim {

/**
 * A min-heap event queue over (tick, sequence) with callable payloads.
 *
 * Components schedule lambdas; the owner advances time with run(),
 * runUntil(), or step(). There is no global queue: each simulated
 * platform owns its own EventQueue so independent experiments never
 * interfere.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void schedule(Tick when, Handler fn);

    /** Schedule @p fn @p delta ticks from now. */
    void scheduleAfter(Tick delta, Handler fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the next pending event; only valid if !empty(). */
    Tick nextTick() const { return heap_.top().when; }

    /**
     * Execute the single next event, advancing now() to its tick.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run all events with tick <= @p limit, then set now() to
     * @p limit if it is beyond the last executed event.
     */
    void runUntil(Tick limit);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        // Handler lives outside the comparison key.
        mutable Handler fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace cxlsim

#endif  // CXLSIM_SIM_EVENT_QUEUE_HH
