#include "invariants.hh"

#include <utility>

namespace cxlsim::sim {

namespace {

/** Per-thread collector; points run on parallelFor workers, so the
 *  installation must be thread-scoped, not global. */
thread_local Invariants *tlsInvariants = nullptr;

}  // namespace

void
Invariants::record(std::string invariant, std::string where,
                   std::string values)
{
    if (violations_.size() >= kMaxRecorded) {
        ++dropped_;
        return;
    }
    violations_.push_back({std::move(invariant), std::move(where),
                           std::move(values)});
}

Invariants *
currentInvariants()
{
    return tlsInvariants;
}

InvariantScope::InvariantScope(Invariants *inv) : prev_(tlsInvariants)
{
    tlsInvariants = inv;
}

InvariantScope::~InvariantScope()
{
    tlsInvariants = prev_;
}

}  // namespace cxlsim::sim
