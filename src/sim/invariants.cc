#include "invariants.hh"

#include <mutex>
#include <utility>

namespace cxlsim::sim {

namespace {

/** Per-thread collector; points run on parallelFor workers, so the
 *  installation must be thread-scoped, not global. */
thread_local Invariants *tlsInvariants = nullptr;

std::mutex &
recordMutex()
{
    // Intra-run parallelism (sim/partition.hh) installs ONE
    // collector on every gang thread, so recording must be
    // serialized. A single process-wide mutex is fine: record()
    // only runs on actual violations (cold path), and readers
    // (failed()/violations()) run after the gang has joined.
    // lint:allow(det-static-local)
    static std::mutex mu;
    return mu;
}

}  // namespace

void
Invariants::record(std::string invariant, std::string where,
                   std::string values)
{
    std::lock_guard<std::mutex> lk(recordMutex());
    if (violations_.size() >= kMaxRecorded) {
        ++dropped_;
        return;
    }
    violations_.push_back({std::move(invariant), std::move(where),
                           std::move(values)});
}

Invariants *
currentInvariants()
{
    return tlsInvariants;
}

InvariantScope::InvariantScope(Invariants *inv) : prev_(tlsInvariants)
{
    tlsInvariants = inv;
}

InvariantScope::~InvariantScope()
{
    tlsInvariants = prev_;
}

}  // namespace cxlsim::sim
