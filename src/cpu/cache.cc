#include "cache.hh"

#include "sim/logging.hh"

namespace cxlsim::cpu {

Cache::Cache(std::uint64_t size_bytes, unsigned ways)
    : sets_(size_bytes / (kCacheLineBytes * ways)), ways_(ways)
{
    SIM_ASSERT(sets_ >= 1, "cache too small");
    lines_.resize(sets_ * ways_);
}

Cache::Line *
Cache::find(Addr line_addr)
{
    const std::uint64_t set = (line_addr / kCacheLineBytes) % sets_;
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == line_addr)
            return &base[w];
    return nullptr;
}

const Cache::Line *
Cache::find(Addr line_addr) const
{
    return const_cast<Cache *>(this)->find(line_addr);
}

LookupResult
Cache::lookup(Addr line_addr, Tick now, Tick *ready_at, StallTag *home)
{
    Line *l = find(line_addr);
    if (!l) {
        ++misses_;
        return LookupResult::kMiss;
    }
    l->lruStamp = ++stamp_;
    if (l->readyAt > now) {
        ++pendingHits_;
        if (ready_at)
            *ready_at = l->readyAt;
        if (home)
            *home = l->home;
        return LookupResult::kPending;
    }
    ++hits_;
    return LookupResult::kHit;
}

bool
Cache::contains(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

Eviction
Cache::insert(Addr line_addr, Tick ready_at, StallTag home, bool dirty)
{
    Eviction ev;
    if (Line *existing = find(line_addr)) {
        // Refill of a present line: refresh fill state.
        existing->readyAt = ready_at;
        existing->home = home;
        existing->dirty = existing->dirty || dirty;
        existing->lruStamp = ++stamp_;
        return ev;
    }

    const std::uint64_t set = (line_addr / kCacheLineBytes) % sets_;
    Line *base = &lines_[set * ways_];
    Line *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &cand = base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        // Plain LRU victim selection (pending fills are treated
        // like any other line: a squashed in-flight prefetch).
        if (!victim || cand.lruStamp < victim->lruStamp)
            victim = &cand;
    }

    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.lineAddr = victim->tag;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->readyAt = ready_at;
    victim->home = home;
    victim->dirty = dirty;
    victim->lruStamp = ++stamp_;
    return ev;
}

void
Cache::markDirty(Addr line_addr)
{
    if (Line *l = find(line_addr))
        l->dirty = true;
}

void
Cache::invalidate(Addr line_addr)
{
    if (Line *l = find(line_addr))
        l->valid = false;
}

}  // namespace cxlsim::cpu
