#include "cache.hh"

#include "sim/logging.hh"

namespace cxlsim::cpu {

Cache::Cache(std::uint64_t size_bytes, unsigned ways)
    : sets_(size_bytes / (kCacheLineBytes * ways)), ways_(ways)
{
    SIM_ASSERT(sets_ >= 1, "cache too small");
    SIM_ASSERT(ways_ >= 1 && ways_ <= 255, "ways out of range");
    const std::size_t n = sets_ * ways_;
    // calloc: lazily-zeroed pages make constructing a 100s-of-MB
    // LLC O(1) instead of an eager multi-ms memset per run.
    tags_.reset(static_cast<Addr *>(std::calloc(n, sizeof(Addr))));
    meta_.reset(static_cast<Meta *>(std::malloc(n * sizeof(Meta))));
    mru_.reset(static_cast<std::uint8_t *>(std::calloc(sets_, 1)));
    SIM_ASSERT(tags_ && meta_ && mru_, "cache allocation failed");
}

int
Cache::findWay(std::size_t set, Addr line_addr) const
{
    const Addr key = tagWord(line_addr);
    const Addr *t = &tags_[set * ways_];
    const unsigned m = mru_[set];
    if (t[m] == key)
        return static_cast<int>(m);
    for (unsigned w = 0; w < ways_; ++w)
        if (t[w] == key)
            return static_cast<int>(w);
    return -1;
}

LookupResult
Cache::lookup(Addr line_addr, Tick now, Tick *ready_at, StallTag *home)
{
    const std::size_t set = setIndex(line_addr);
    const int w = findWay(set, line_addr);
    if (w < 0) {
        ++misses_;
        return LookupResult::kMiss;
    }
    mru_[set] = static_cast<std::uint8_t>(w);
    Meta &m = meta_[set * ways_ + static_cast<unsigned>(w)];
    m.lruStamp = ++stamp_;
    if (m.readyAt > now) {
        ++pendingHits_;
        if (ready_at)
            *ready_at = m.readyAt;
        if (home)
            *home = m.home;
        return LookupResult::kPending;
    }
    ++hits_;
    return LookupResult::kHit;
}

bool
Cache::contains(Addr line_addr) const
{
    return findWay(setIndex(line_addr), line_addr) >= 0;
}

Eviction
Cache::insert(Addr line_addr, Tick ready_at, StallTag home, bool dirty)
{
    Eviction ev;
    const std::size_t set = setIndex(line_addr);
    Addr *t = &tags_[set * ways_];
    Meta *mb = &meta_[set * ways_];

    if (const int w = findWay(set, line_addr); w >= 0) {
        // Refill of a present line: refresh fill state.
        Meta &m = mb[w];
        m.readyAt = ready_at;
        m.home = home;
        m.dirty = m.dirty || dirty;
        m.lruStamp = ++stamp_;
        mru_[set] = static_cast<std::uint8_t>(w);
        return ev;
    }

    int victim = -1;
    for (unsigned w = 0; w < ways_; ++w) {
        if (t[w] == 0) {
            victim = static_cast<int>(w);
            break;
        }
        // Plain LRU victim selection (pending fills are treated
        // like any other line: a squashed in-flight prefetch).
        if (victim < 0 || mb[w].lruStamp < mb[victim].lruStamp)
            victim = static_cast<int>(w);
    }

    if (t[victim] != 0) {
        ev.valid = true;
        ev.dirty = mb[victim].dirty;
        ev.lineAddr = t[victim] & ~static_cast<Addr>(1);
    }
    t[victim] = tagWord(line_addr);
    mb[victim].readyAt = ready_at;
    mb[victim].home = home;
    mb[victim].dirty = dirty;
    mb[victim].lruStamp = ++stamp_;
    mru_[set] = static_cast<std::uint8_t>(victim);
    return ev;
}

void
Cache::markDirty(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    if (const int w = findWay(set, line_addr); w >= 0)
        meta_[set * ways_ + static_cast<unsigned>(w)].dirty = true;
}

void
Cache::invalidate(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    if (const int w = findWay(set, line_addr); w >= 0)
        tags_[set * ways_ + static_cast<unsigned>(w)] = 0;
}

}  // namespace cxlsim::cpu
