#include "hierarchy.hh"

#include <algorithm>
#include <string>

#include "sim/invariants.hh"

namespace cxlsim::cpu {

MemoryHierarchy::PerCore::PerCore(const CpuProfile &p, unsigned i)
    : l1(p.l1.sizeBytes, p.l1.ways), l2(p.l2.sizeBytes, p.l2.ways),
      l1pf(p.l1pf), l2pf(p.l2pf), idx(i)
{
    scratch.reserve(64);
}

MemoryHierarchy::MemoryHierarchy(const CpuProfile &profile,
                                 unsigned cores,
                                 mem::MemoryBackend *backend,
                                 bool prefetchers_on)
    : profile_(profile),
      tickPerCycle_(ticksPerCycle(profile.freqGhz)),
      prefetchersOn_(prefetchers_on), backend_(backend),
      l3_(profile.l3.sizeBytes, profile.l3.ways)
{
    for (unsigned c = 0; c < cores; ++c)
        percore_.push_back(std::make_unique<PerCore>(profile, c));
}

void
MemoryHierarchy::purge(std::priority_queue<Tick, std::vector<Tick>,
                                           std::greater<>> *q,
                       Tick now)
{
    while (!q->empty() && q->top() <= now)
        q->pop();
}

void
MemoryHierarchy::handleEviction(PerCore *pc, unsigned from_level,
                                const Eviction &ev, Tick now)
{
    if (!ev.valid || !ev.dirty)
        return;
    // Dirty merges into the LLC and LLC-victim writebacks touch
    // shared state; L1->L2 merges stay core-private. The cascade
    // recurses with from_level+1, so an L2-hit path that victimizes
    // into the LLC is gated exactly when it needs to be.
    if (from_level >= 2)
        syncShared(pc->idx);
    if (from_level == 3) {
        // LLC victim: write back to memory (fire and forget — the
        // write occupies backend bandwidth but nothing waits on it).
        backend_->access(ev.lineAddr, mem::ReqType::kWriteback, now);
        ++pc->pf.writebacks;
        return;
    }
    // L1/L2 victim: merge the dirty data into the next level.
    Cache &next = from_level == 1 ? pc->l2 : l3_;
    if (next.contains(ev.lineAddr)) {
        next.markDirty(ev.lineAddr);
        return;
    }
    const Eviction cascade =
        next.insert(ev.lineAddr, now,
                    from_level == 1 ? StallTag::kL2 : StallTag::kL3,
                    /*dirty=*/true);
    handleEviction(pc, from_level + 1, cascade, now);
}

void
MemoryHierarchy::preload(unsigned core, Addr addr)
{
    const Addr line = lineAlign(addr);
    // Resident, clean, ready: evictions during preload are clean
    // and need no writeback.
    percore_[core]->l2.insert(line, 0, StallTag::kL2, false);
    l3_.insert(line, 0, StallTag::kL3, false);
}

LoadOutcome
MemoryHierarchy::demandLoad(unsigned core, Addr addr,
                            unsigned stream_id, Tick now)
{
    PerCore &pc = *percore_[core];
    const Addr line = lineAlign(addr);
    LoadOutcome out{now, StallTag::kL1, true};

    Tick ready = 0;
    StallTag home = StallTag::kDram;
    const LookupResult r1 = pc.l1.lookup(line, now, &ready, &home);
    if (r1 == LookupResult::kHit) {
        // Ready L1 hit: no stall.
        if (prefetchersOn_)
            runL1Prefetcher(pc, stream_id, line, now);
        return out;
    }
    if (r1 == LookupResult::kPending) {
        // Delayed L1 hit: wait for the in-flight fill.
        out = {ready, home, false};
        if (prefetchersOn_)
            runL1Prefetcher(pc, stream_id, line, now);
        return out;
    }

    // L1 miss: the L1 stride prefetcher reacts first (it sits
    // closest to the core); when the throttled L2 streamer has
    // fallen behind, the L1 prefetcher is what picks the stream
    // back up — the L2PF -> L1PF coverage transfer of Figure 12.
    if (prefetchersOn_)
        runL1Prefetcher(pc, stream_id, line, now);

    // Walk L2.
    const LookupResult r2 = pc.l2.lookup(line, now, &ready, &home);
    if (r2 == LookupResult::kHit) {
        const Tick at = now + cyclesToTicks(profile_.l2.latencyCycles);
        handleEviction(&pc, 1, pc.l1.insert(line, at, StallTag::kL2, false),
                       now);
        out = {at, StallTag::kL2, false};
    } else if (r2 == LookupResult::kPending) {
        // Hit on a pending fill (e.g. in-flight L2 streamer line):
        // the wait is charged to the level the prefetch homes at.
        const Tick at = ready + cyclesToTicks(profile_.l2.latencyCycles);
        handleEviction(&pc, 1, pc.l1.insert(line, at, home, false), now);
        out = {at, home, false};
    } else {
        // L2 miss: walk the LLC (first shared touch on this path).
        syncShared(core);
        const LookupResult r3 = l3_.lookup(line, now, &ready, &home);
        if (r3 == LookupResult::kHit) {
            const Tick at =
                now + cyclesToTicks(profile_.l3.latencyCycles);
            handleEviction(&pc, 2, pc.l2.insert(line, at, StallTag::kL3,
                                           false), now);
            handleEviction(&pc, 1, pc.l1.insert(line, at, StallTag::kL3,
                                           false), now);
            out = {at, StallTag::kL3, false};
        } else if (r3 == LookupResult::kPending) {
            const Tick at =
                ready + cyclesToTicks(profile_.l3.latencyCycles);
            handleEviction(&pc, 2, pc.l2.insert(line, at, home, false),
                           now);
            handleEviction(&pc, 1, pc.l1.insert(line, at, home, false),
                           now);
            out = {at, home, false};
        } else {
            // True miss: fetch from the memory backend.
            const mem::AccessResult r = backend_->accessEx(
                line, mem::ReqType::kDemandLoad, now);
            ++pc.pf.demandL3Miss;
            if (r.status == ras::Status::kPoisoned) {
                // The core consumed poisoned data: a machine check.
                // The (poisoned) line still installs — real hosts
                // cache it and re-signal on each consumption.
                ++pc.pf.machineChecks;
            }
            if (r.status == ras::Status::kTimeout) {
                // No data ever arrived: nothing to install. The
                // core un-stalls when the host gives up so the
                // simulation makes forward progress.
                ++pc.pf.demandTimeouts;
                out = {r.done, StallTag::kDram, false};
            } else {
                handleEviction(&pc, 3,
                               l3_.insert(line, r.done,
                                          StallTag::kDram, false),
                               now);
                handleEviction(&pc, 2,
                               pc.l2.insert(line, r.done,
                                            StallTag::kDram, false),
                               now);
                handleEviction(&pc, 1,
                               pc.l1.insert(line, r.done,
                                            StallTag::kDram, false),
                               now);
                out = {r.done, StallTag::kDram, false};
            }
        }
        // The L2 streamer trains on L2-side demand traffic.
        if (prefetchersOn_)
            runL2Prefetcher(pc, line, now);
    }
    return out;
}

Tick
MemoryHierarchy::storeRfo(unsigned core, Addr addr, Tick now)
{
    PerCore &pc = *percore_[core];
    const Addr line = lineAlign(addr);

    Tick ready = 0;
    StallTag home = StallTag::kDram;
    const LookupResult r1 = pc.l1.lookup(line, now, &ready, &home);
    if (r1 == LookupResult::kHit) {
        pc.l1.markDirty(line);
        return now + cyclesToTicks(1.0);
    }
    if (r1 == LookupResult::kPending) {
        pc.l1.markDirty(line);
        return ready;
    }

    const LookupResult r2 = pc.l2.lookup(line, now, &ready, &home);
    if (r2 == LookupResult::kHit) {
        const Tick at = now + cyclesToTicks(profile_.l2.latencyCycles);
        handleEviction(&pc, 1, pc.l1.insert(line, at, StallTag::kL2, true),
                       now);
        return at;
    }
    if (r2 == LookupResult::kPending) {
        handleEviction(&pc, 1, pc.l1.insert(line, ready, home, true), now);
        return ready;
    }

    syncShared(core);
    const LookupResult r3 = l3_.lookup(line, now, &ready, &home);
    if (r3 == LookupResult::kHit) {
        const Tick at = now + cyclesToTicks(profile_.l3.latencyCycles);
        handleEviction(&pc, 1, pc.l1.insert(line, at, StallTag::kL3, true),
                       now);
        return at;
    }
    if (r3 == LookupResult::kPending) {
        handleEviction(&pc, 1, pc.l1.insert(line, ready, home, true), now);
        return ready;
    }

    // The L2 streamer trains on RFO streams too (store streams are
    // prefetchable on real Intel cores).
    if (prefetchersOn_)
        runL2Prefetcher(pc, line, now);

    // RFO fetches ownership + data from memory.
    const Tick done = backend_->access(line, mem::ReqType::kRfo, now);
    ++pc.pf.rfoFetches;
    handleEviction(&pc, 3, l3_.insert(line, done, StallTag::kDram, false),
                   now);
    handleEviction(&pc, 1, pc.l1.insert(line, done, StallTag::kDram, true),
                   now);
    return done;
}

void
MemoryHierarchy::runL1Prefetcher(PerCore &pc, unsigned stream_id,
                                 Addr line, Tick now)
{
    pc.l1pf.observe(stream_id, line, &pc.scratch);
    if (pc.scratch.empty())
        return;
    purge(&pc.l1pfInflight, now);
    // Copy: nested prefetcher calls reuse the scratch buffer.
    const std::vector<Addr> cands = pc.scratch;
    for (Addr target : cands) {
        if (pc.l1pfInflight.size() >= profile_.l1pf.budget)
            break;
        if (pc.l1.contains(target))
            continue;
        ++pc.pf.l1pfIssued;

        Tick ready = 0;
        StallTag home = StallTag::kDram;
        LookupResult r2 = pc.l2.lookup(target, now, &ready, &home);
        if (r2 == LookupResult::kMiss) {
            // The L1 prefetch arrives at L2 like any other L2
            // access and trains the streamer; the streamer may
            // cover this very line (and far beyond it).
            runL2Prefetcher(pc, target, now);
            r2 = pc.l2.lookup(target, now, &ready, &home);
        }
        // The attribution home of the resulting L1 line: when the
        // L1 prefetch merely rides an in-flight deeper fill, a
        // demand load catching it is stalled by THAT level (the
        // LLC-homed streamer fill on SPR/EMR -> sL3); only lines
        // the L1 prefetcher itself fetches from memory are
        // L1-homed ("delayed L1 hits", Finding #4).
        Tick at;
        StallTag l1home = StallTag::kL1;
        if (r2 == LookupResult::kHit) {
            at = now + cyclesToTicks(profile_.l2.latencyCycles);
            l1home = StallTag::kL2;
        } else if (r2 == LookupResult::kPending) {
            at = ready;
            l1home = home;
        } else {
            syncShared(pc.idx);
            const LookupResult r3 = l3_.lookup(target, now, &ready,
                                               &home);
            if (r3 == LookupResult::kHit) {
                at = now + cyclesToTicks(profile_.l3.latencyCycles);
                ++pc.pf.l1pfL3Hit;
                l1home = StallTag::kL3;
            } else if (r3 == LookupResult::kPending) {
                at = ready;
                l1home = home;
            } else {
                // L1 prefetch falls through to memory — the
                // "L1PF-L3-miss" population of Figure 12. The fill
                // also lands in L2 (via the superqueue), so the
                // streamer won't re-fetch the same line.
                const mem::AccessResult r = backend_->accessEx(
                    target, mem::ReqType::kL1Prefetch, now);
                ++pc.pf.l1pfL3Miss;
                if (r.status != ras::Status::kOk) {
                    // Speculative fill came back poisoned or not
                    // at all: drop it. No poison ever installs on
                    // a prefetch path, so machine checks can only
                    // come from demand consumption.
                    ++pc.pf.prefetchDrops;
                    continue;
                }
                at = r.done;
                handleEviction(&pc, 2,
                               pc.l2.insert(target, at,
                                            StallTag::kL1, false),
                               now);
            }
        }
        handleEviction(&pc, 1,
                       pc.l1.insert(target, at, l1home, false),
                       now);
        pc.l1pfInflight.push(at);
    }
    if (sim::Invariants *inv = sim::currentInvariants())
        if (pc.l1pfInflight.size() > profile_.l1pf.budget)
            inv->record(
                "queue/pf-occupancy", "l1pfInflight",
                "size=" + std::to_string(pc.l1pfInflight.size()) +
                    " budget=" +
                    std::to_string(profile_.l1pf.budget));
}

void
MemoryHierarchy::runL2Prefetcher(PerCore &pc, Addr line, Tick now)
{
    purge(&pc.l2pfInflight, now);
    // Feedback throttling: when fills come back late (CXL-class
    // latencies), the streamer runs a shallower in-flight depth.
    constexpr double kRefLatNs = 230.0;
    const double scale = std::max(
        0.6,
        std::min(1.0, kRefLatNs / std::max(50.0, pc.l2pfLatEwmaNs)));
    const auto effBudget = std::max(
        2u, static_cast<unsigned>(profile_.l2pf.budget * scale));
    const unsigned budget =
        effBudget > static_cast<unsigned>(pc.l2pfInflight.size())
            ? effBudget -
                  static_cast<unsigned>(pc.l2pfInflight.size())
            : 0;
    pc.l2pf.observe(line, budget, &pc.scratch);
    if (pc.scratch.empty())
        return;
    const std::vector<Addr> cands = pc.scratch;
    // Every candidate walks the LLC, so the whole loop is a shared
    // section.
    syncShared(pc.idx);
    for (Addr target : cands) {
        if (pc.l2.contains(target))
            continue;
        Tick ready = 0;
        StallTag home = StallTag::kDram;
        const LookupResult r3 = l3_.lookup(target, now, &ready, &home);
        ++pc.pf.l2pfIssued;
        if (r3 == LookupResult::kHit) {
            ++pc.pf.l2pfL3Hit;
            if (!profile_.l2pfFillsL3) {
                const Tick at =
                    now + cyclesToTicks(profile_.l3.latencyCycles);
                handleEviction(&pc, 2, pc.l2.insert(target, at,
                                               StallTag::kL2, false),
                               now);
            }
            continue;
        }
        if (r3 == LookupResult::kPending)
            continue;  // already in flight
        // Fetch from memory — the "L2PF-L3-miss" population.
        const mem::AccessResult r =
            backend_->accessEx(target, mem::ReqType::kL2Prefetch, now);
        ++pc.pf.l2pfL3Miss;
        if (r.status != ras::Status::kOk) {
            ++pc.pf.prefetchDrops;
            continue;  // dropped: never install speculative poison
        }
        const Tick at = r.done;
        pc.l2pfLatEwmaNs = 0.05 * ticksToNs(at - now) +
                           0.95 * pc.l2pfLatEwmaNs;
        if (profile_.l2pfFillsL3) {
            handleEviction(&pc, 3, l3_.insert(target, at, StallTag::kL3,
                                         false), now);
        } else {
            handleEviction(&pc, 2, pc.l2.insert(target, at, StallTag::kL2,
                                           false), now);
        }
        pc.l2pfInflight.push(at);
    }
    // The feedback throttle never shrinks the depth below 2, so
    // occupancy is bounded by the larger of that floor and the
    // configured budget.
    if (sim::Invariants *inv = sim::currentInvariants())
        if (pc.l2pfInflight.size() >
            std::max(2u, profile_.l2pf.budget))
            inv->record(
                "queue/pf-occupancy", "l2pfInflight",
                "size=" + std::to_string(pc.l2pfInflight.size()) +
                    " budget=" +
                    std::to_string(profile_.l2pf.budget));
}

}  // namespace cxlsim::cpu
