#include "core.hh"

#include <algorithm>

namespace cxlsim::cpu {

Core::Core(const CpuProfile &profile, const CoreExecParams &exec,
           MemoryHierarchy *hierarchy, unsigned core_id,
           Kernel *kernel)
    : profile_(profile), exec_(exec), hier_(hierarchy),
      coreId_(core_id), kernel_(kernel),
      tpc_(ticksPerCycle(profile.freqGhz))
{
}

void
Core::enableSampling(Tick interval, std::vector<CounterSample> *out)
{
    sampleInterval_ = interval;
    nextSample_ = interval;
    samples_ = out;
}

CounterSet
Core::counters() const
{
    CounterSet c = cnt_;
    const PfStats &pf = hier_->pfStats(coreId_);
    c.l1pfIssued = pf.l1pfIssued;
    c.l1pfL3Miss = pf.l1pfL3Miss;
    c.l1pfL3Hit = pf.l1pfL3Hit;
    c.l2pfIssued = pf.l2pfIssued;
    c.l2pfL3Miss = pf.l2pfL3Miss;
    c.l2pfL3Hit = pf.l2pfL3Hit;
    c.demandL3Miss = pf.demandL3Miss;
    c.machineChecks = pf.machineChecks;
    c.demandTimeouts = pf.demandTimeouts;
    c.prefetchDrops = pf.prefetchDrops;
    return c;
}

void
Core::maybeSample()
{
    if (!samples_)
        return;
    while (static_cast<Tick>(tickNow_) >= nextSample_) {
        samples_->push_back({nextSample_, counters()});
        nextSample_ += sampleInterval_;
    }
}

void
Core::purgeLoads()
{
    while (!loads_.empty() && loads_.front().completion <= tickNow_)
        loads_.pop_front();
    // Completion times are not monotonic in issue order (an L2 hit
    // finishes before an older DRAM miss); drop any interior
    // completed entries as well.
    if (!loads_.empty()) {
        auto it = std::remove_if(loads_.begin(), loads_.end(),
                                 [&](const OutstandingLoad &l) {
                                     return l.completion <= tickNow_;
                                 });
        loads_.erase(it, loads_.end());
    }
}

void
Core::purgeStores()
{
    while (!storeBuf_.empty() && storeBuf_.front() <= tickNow_)
        storeBuf_.pop_front();
}

void
Core::stallOnLoads(double target)
{
    // Charge the stall piecewise: within the window, each segment
    // is attributed to the deepest load *still outstanding* during
    // that segment (Intel counters stop counting a level once its
    // last outstanding miss at that level completes — a 16-cycle
    // L2 hit must not taint a 300ns DRAM wait, or vice versa).
    while (tickNow_ < target) {
        purgeLoads();
        purgeStores();
        if (loads_.empty()) {
            const double dt = cyclesOf(target - tickNow_);
            cnt_.cycles += dt;
            cnt_.p6 += dt;
            tickNow_ = target;
            break;
        }
        double boundary = target;
        StallTag deepest = StallTag::kL1;
        for (const auto &l : loads_) {
            if (l.tag > deepest)
                deepest = l.tag;
            if (l.completion < boundary)
                boundary = l.completion;
        }
        const double dtCycles = cyclesOf(boundary - tickNow_);
        cnt_.cycles += dtCycles;
        cnt_.p1 += dtCycles;
        if (deepest >= StallTag::kL2)
            cnt_.p3 += dtCycles;
        if (deepest >= StallTag::kL3)
            cnt_.p4 += dtCycles;
        if (deepest >= StallTag::kDram)
            cnt_.p5 += dtCycles;
        cnt_.p6 += dtCycles;
        // A long-latency wait keeps the scoreboard busy slightly
        // longer for serializing operations (small, per §5.4).
        cnt_.p9 += dtCycles * exec_.serializeFrac * 0.1;
        tickNow_ = boundary;
    }
    purgeLoads();
    purgeStores();
    maybeSample();
}

void
Core::stallOnStore(double target)
{
    if (target <= tickNow_)
        return;
    // Intel semantics: BOUND_ON_STORES requires no outstanding
    // loads; otherwise the cycles attribute to the load side.
    while (!loads_.empty() && tickNow_ < target) {
        double earliest = loads_.front().completion;
        for (const auto &l : loads_)
            earliest = std::min(earliest, l.completion);
        stallOnLoads(std::min(target, earliest));
    }
    if (tickNow_ >= target)
        return;
    const double dtCycles = cyclesOf(target - tickNow_);
    cnt_.cycles += dtCycles;
    cnt_.p2 += dtCycles;
    cnt_.p6 += dtCycles;
    tickNow_ = target;
    purgeLoads();
    purgeStores();
    maybeSample();
}

void
Core::execute(const Block &b)
{
    const double execCycles =
        static_cast<double>(b.uops) /
        static_cast<double>(profile_.issueWidth);
    const double fe = exec_.frontendStallFrac;
    const double feCycles =
        fe < 1.0 ? execCycles * fe / (1.0 - fe) : 0.0;

    cnt_.p6 += feCycles;  // no retire during frontend stalls
    cnt_.p7 += execCycles * exec_.onePortFrac;
    cnt_.p8 += execCycles * exec_.twoPortFrac;
    cnt_.p9 += execCycles * exec_.serializeFrac;
    cnt_.instructions += b.uops;
    cnt_.cycles += execCycles + feCycles;

    tickNow_ += (execCycles + feCycles) * tpc_;
    uopIdx_ += b.uops;
    purgeLoads();
    purgeStores();
    maybeSample();
}

void
Core::doLoad(const MemOp &op)
{
    const auto outcome = hier_->demandLoad(
        coreId_, op.addr, op.streamId, static_cast<Tick>(tickNow_));
    cnt_.instructions += 1;
    ++uopIdx_;
    if (outcome.immediate)
        return;

    loads_.push_back({static_cast<double>(outcome.readyAt), uopIdx_,
                      outcome.tag});

    if (op.dependent) {
        // The next address needs this data: serialize.
        stallOnLoads(static_cast<double>(outcome.readyAt));
        return;
    }

    // MLP limit: the LFB bounds outstanding L1 misses.
    while (loads_.size() >= profile_.lfbEntries) {
        double earliest = loads_.front().completion;
        for (const auto &l : loads_)
            earliest = std::min(earliest, l.completion);
        stallOnLoads(earliest);
    }
    // ROB limit: cannot run further ahead of the oldest miss.
    while (!loads_.empty() &&
           uopIdx_ - loads_.front().uopIdx >= profile_.robSize) {
        stallOnLoads(loads_.front().completion);
    }
}

void
Core::doStore(const MemOp &op)
{
    cnt_.instructions += 1;
    ++uopIdx_;
    purgeStores();
    if (storeBuf_.size() >= profile_.storeBufferEntries)
        stallOnStore(storeBuf_.front());
    const Tick done =
        hier_->storeRfo(coreId_, op.addr, static_cast<Tick>(tickNow_));
    storeBuf_.push_back(static_cast<double>(done));
}

bool
Core::step()
{
    if (done_)
        return false;
    Block b;
    if (!kernel_->next(&b)) {
        // Drain: retire all outstanding loads and stores.
        while (!loads_.empty()) {
            double earliest = loads_.front().completion;
            for (const auto &l : loads_)
                earliest = std::min(earliest, l.completion);
            stallOnLoads(earliest);
        }
        if (!storeBuf_.empty())
            stallOnStore(storeBuf_.back());
        done_ = true;
        return false;
    }

    execute(b);
    for (unsigned i = 0; i < b.nOps; ++i) {
        if (b.ops[i].isStore)
            doStore(b.ops[i]);
        else
            doLoad(b.ops[i]);
    }
    return true;
}

}  // namespace cxlsim::cpu
