/**
 * @file
 * The instruction-stream interface between workloads and the core
 * model.
 *
 * A Kernel emits Blocks: a handful of non-memory uops plus up to
 * kMaxOps memory operations. Loads may be flagged `dependent`
 * (their result feeds the next address — pointer chasing), which
 * prevents memory-level parallelism and makes the workload
 * latency-sensitive. streamId stands in for the load instruction's
 * IP, which the L1 stride prefetcher trains on.
 */

#ifndef CXLSIM_CPU_KERNEL_HH
#define CXLSIM_CPU_KERNEL_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace cxlsim::cpu {

/** One memory operation within a block. */
struct MemOp
{
    Addr addr = 0;
    std::uint16_t streamId = 0;
    bool isStore = false;
    bool dependent = false;
};

/** A short run of instructions between memory operations. */
struct Block
{
    static constexpr unsigned kMaxOps = 8;

    /** Non-memory uops executed in this block. */
    unsigned uops = 0;
    unsigned nOps = 0;
    MemOp ops[kMaxOps];

    void
    addOp(const MemOp &op)
    {
        if (nOps < kMaxOps)
            ops[nOps++] = op;
    }
};

/** A workload's per-core instruction stream. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /**
     * Produce the next block.
     * @return false when the stream is exhausted.
     */
    virtual bool next(Block *b) = 0;

    /**
     * Enumerate cache lines that are resident at steady state.
     * The runner pre-warms the hierarchy with them so short
     * simulations measure steady-state behaviour instead of
     * cold-start misses. @p budget_bytes is roughly this core's
     * share of the LLC: a kernel whose working set fits should
     * enumerate all of it (it would be LLC-resident in steady
     * state); larger working sets enumerate only their hot set.
     */
    virtual void
    forEachPreloadLine(const std::function<void(Addr)> &,
                       std::uint64_t budget_bytes) const
    {
        (void)budget_bytes;
    }
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_KERNEL_HH
