/**
 * @file
 * CPU microarchitecture profiles for the testbed processors
 * (Table 1): Skylake-SP (SKX), Sapphire Rapids (SPR), Emerald
 * Rapids (EMR / EMR').
 *
 * The parameters that matter for CXL tolerance are captured: core
 * frequency, issue width, ROB size (how far the window can run
 * ahead of a miss), line-fill-buffer entries (demand/L1PF MLP),
 * L2 prefetch MSHR budget (L2 streamer in-flight limit — the
 * mechanism behind Finding #4's coverage loss), store buffer
 * entries, cache geometry, and where the L2 streamer installs its
 * prefetches (SKX fills L2; SPR/EMR bias toward LLC, which moves
 * the cache slowdown from sL2 to sL3 as the paper observes in
 * §5.4).
 */

#ifndef CXLSIM_CPU_PROFILE_HH
#define CXLSIM_CPU_PROFILE_HH

#include <cstdint>
#include <string>

namespace cxlsim::cpu {

/** Geometry and access latency of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes;
    unsigned ways;
    /** Load-to-use latency in core cycles. */
    double latencyCycles;
};

/** Hardware prefetcher knobs. */
struct PrefetcherConfig
{
    bool enabled = true;
    /** Lines ahead of the observed stream to fetch. */
    unsigned distance = 4;
    /** Max in-flight prefetches (MSHR budget). */
    unsigned budget = 8;
    /** Demand accesses with a fixed stride needed to train. */
    unsigned trainThreshold = 2;
};

/** One processor model. */
struct CpuProfile
{
    std::string name;
    double freqGhz = 2.1;
    unsigned issueWidth = 4;
    unsigned robSize = 512;
    /** L1 fill buffers: max outstanding demand+L1PF misses. */
    unsigned lfbEntries = 16;
    unsigned storeBufferEntries = 112;

    CacheGeometry l1;
    CacheGeometry l2;
    CacheGeometry l3;

    PrefetcherConfig l1pf;  ///< IP-stride prefetcher at L1.
    PrefetcherConfig l2pf;  ///< Streamer at L2.

    /** SPR/EMR streamer installs into LLC; SKX into L2. */
    bool l2pfFillsL3 = true;

    double
    cycleNs() const
    {
        return 1.0 / freqGhz;
    }
};

/** Skylake-SP (SKX2S / SKX8S cores). */
CpuProfile skx();
/** Sapphire Rapids (SPR2S). */
CpuProfile spr();
/** Emerald Rapids (EMR2S). */
CpuProfile emr();
/** Emerald Rapids with the large 260MB LLC (EMR2S'). */
CpuProfile emrPrime();

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_PROFILE_HH
