#include "multicore.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "sim/invariants.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/partition.hh"

namespace cxlsim::cpu {

MultiCore::MultiCore(const CpuProfile &profile,
                     const CoreExecParams &exec,
                     mem::MemoryBackend *backend,
                     std::vector<std::unique_ptr<Kernel>> kernels,
                     bool prefetchers_on)
    : kernels_(std::move(kernels)), backend_(backend)
{
    SIM_ASSERT(!kernels_.empty(), "need at least one kernel");
    hier_ = std::make_unique<MemoryHierarchy>(
        profile, static_cast<unsigned>(kernels_.size()), backend,
        prefetchers_on);
    const std::uint64_t preloadBudget = static_cast<std::uint64_t>(
        0.7 * static_cast<double>(profile.l3.sizeBytes) /
        static_cast<double>(kernels_.size()));
    for (unsigned c = 0; c < kernels_.size(); ++c) {
        kernels_[c]->forEachPreloadLine(
            [&](Addr a) { hier_->preload(c, a); }, preloadBudget);
        cores_.push_back(std::make_unique<Core>(
            profile, exec, hier_.get(), c, kernels_[c].get()));
    }
}

void
MultiCore::enableSampling(Tick interval)
{
    cores_[0]->enableSampling(interval, &samples_);
}

namespace {

/** Scheduler key: earliest (core time, core index) runs next. */
struct CoreKey
{
    Tick now;
    std::uint32_t idx;
};

bool
earlier(const CoreKey &a, const CoreKey &b)
{
    return a.now < b.now || (a.now == b.now && a.idx < b.idx);
}

}  // namespace

RunResult
MultiCore::run()
{
    backend_->resetStats();

    // Engine choice never changes output: the parallel engine
    // reproduces the serial block order at all shared state (see
    // runParallel), so this is purely a speed decision.
    const unsigned simThreads = pdes::simThreads();
    if (simThreads > 1 && cores_.size() > 1)
        runParallel(simThreads);
    else
        runSerial();

    RunResult r;
    for (auto &c : cores_) {
        r.wallTicks = std::max(r.wallTicks, c->now());
        r.counters += c->counters();
    }
    checkInvariants();
    // Normalize counters to a per-core view so Spa's cycle
    // denominators match wall time for symmetric threads.
    r.counters.scale(1.0 / static_cast<double>(cores_.size()));
    r.samples = std::move(samples_);
    r.backendStats = backend_->stats();
    backend_->rasReport(&r.ras);
    return r;
}

void
MultiCore::runSerial()
{
    // Advance the earliest core until all kernels finish. Ties
    // break toward the lowest core index, matching the original
    // linear scan, so request interleaving at the shared backend —
    // and therefore every counter — is bit-identical.
    if (cores_.size() == 1) {
        while (cores_[0]->step()) {
        }
    } else {
        // Indexed min-heap over core-local times. A core's key is
        // only stale while the core is being stepped, so pops are
        // always exact; the fast path keeps re-stepping the popped
        // core while it remains earlier than the heap's root,
        // skipping the push/pop pair entirely.
        const auto later = [](const CoreKey &a, const CoreKey &b) {
            return earlier(b, a);
        };
        std::vector<CoreKey> heap;
        heap.reserve(cores_.size());
        for (std::uint32_t i = 0; i < cores_.size(); ++i)
            heap.push_back({cores_[i]->now(), i});
        std::make_heap(heap.begin(), heap.end(), later);

        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), later);
            const std::uint32_t idx = heap.back().idx;
            heap.pop_back();
            Core *c = cores_[idx].get();
            for (;;) {
                if (!c->step())
                    break;  // kernel exhausted; drop from heap
                const CoreKey k{c->now(), idx};
                if (heap.empty() || earlier(k, heap.front()))
                    continue;  // still earliest: step again
                heap.push_back(k);
                std::push_heap(heap.begin(), heap.end(), later);
                break;
            }
        }
    }
}

void
MultiCore::runParallel(unsigned tokens)
{
    // One logical process per core. The serial engine's block order
    // is lexicographic (blockStart, coreIdx); the gate reproduces
    // that exact total order at every shared-state access (LLC +
    // backend), so counters, samples and RAS streams are
    // bit-identical to runSerial(). Private work — L1/L2 hits,
    // core-side execution — overlaps freely, which is where the
    // speedup comes from.
    pdes::FrontierGate gate(static_cast<unsigned>(cores_.size()),
                            tokens);
    hier_->setGate(&gate);
    // Re-install this thread's collector on every gang thread so
    // invariant hooks fire identically at any thread count.
    sim::Invariants *inv = sim::currentInvariants();
    runGang(cores_.size(), [&](std::size_t i) {
        sim::InvariantScope scope(inv);
        Core *c = cores_[i].get();
        const unsigned p = static_cast<unsigned>(i);
        for (;;) {
            // Publish the block key BEFORE stepping: peers must
            // see where this core is before it can touch shared
            // state at that time.
            gate.beginBlock(p, c->now());
            const bool more = c->step();
            gate.endBlock(p);
            if (!more)
                break;
        }
        gate.finish(p);
    });
    hier_->setGate(nullptr);
    pdes::StatsRegistry::instance().addGate(gate);
}

void
MultiCore::checkInvariants() const
{
    sim::Invariants *inv = sim::currentInvariants();
    if (!inv)
        return;

    // End-of-run accounting contracts (DESIGN.md §10); each check
    // was derived from the accounting rules in core.cc /
    // hierarchy.cc and holds on every fault-free run.
    std::uint64_t l3Misses = 0;   // demand + prefetch LLC misses
    std::uint64_t reads = 0;      // expected backend read count
    std::uint64_t writes = 0;     // expected backend write count
    for (unsigned c = 0; c < cores_.size(); ++c) {
        const CounterSet cs = cores_[c]->counters();
        const std::string where = "core " + std::to_string(c);

        // P1 >= P3 >= P4 >= P5 >= 0: the same stall interval is
        // added to each accumulator whose level it is at-or-below,
        // so the chain nests (up to float summation noise).
        if (!(sim::approxGe(cs.p1, cs.p3) &&
              sim::approxGe(cs.p3, cs.p4) &&
              sim::approxGe(cs.p4, cs.p5) &&
              sim::approxGe(cs.p5, 0.0)))
            inv->record("counters/nesting", where,
                        "p1=" + std::to_string(cs.p1) +
                            " p3=" + std::to_string(cs.p3) +
                            " p4=" + std::to_string(cs.p4) +
                            " p5=" + std::to_string(cs.p5));

        // Every prefetch LLC outcome stems from one issued
        // prefetch (exact integer counts).
        const PfStats &pf = hier_->pfStats(c);
        if (pf.l1pfL3Hit + pf.l1pfL3Miss > pf.l1pfIssued ||
            pf.l2pfL3Hit + pf.l2pfL3Miss > pf.l2pfIssued)
            inv->record(
                "counters/pf-subset", where,
                "l1pf=" + std::to_string(pf.l1pfL3Hit) + "+" +
                    std::to_string(pf.l1pfL3Miss) + "/" +
                    std::to_string(pf.l1pfIssued) +
                    " l2pf=" + std::to_string(pf.l2pfL3Hit) +
                    "+" + std::to_string(pf.l2pfL3Miss) + "/" +
                    std::to_string(pf.l2pfIssued));

        l3Misses += pf.demandL3Miss + pf.l1pfL3Miss +
                    pf.l2pfL3Miss;
        reads += pf.demandL3Miss + pf.l1pfL3Miss +
                 pf.l2pfL3Miss + pf.rfoFetches;
        writes += pf.writebacks;
    }

    // Demand/prefetch LLC-miss populations are counted on true LLC
    // lookup misses, so the shared LLC's own miss counter bounds
    // their sum (it additionally counts RFO misses).
    if (l3Misses > hier_->l3().misses())
        inv->record("counters/l3-subset", "llc",
                    "counted=" + std::to_string(l3Misses) +
                        " llcMisses=" +
                        std::to_string(hier_->l3().misses()));

    // Request conservation at the backend: every read it served
    // was a demand L3 miss, a prefetch L3 miss, or an RFO fetch;
    // every write was an LLC writeback.
    const mem::BackendStats bs = backend_->stats();
    if (bs.reads != reads || bs.writes != writes)
        inv->record("counters/conservation", "backend",
                    "reads=" + std::to_string(bs.reads) + "/" +
                        std::to_string(reads) +
                        " writes=" + std::to_string(bs.writes) +
                        "/" + std::to_string(writes));
}

}  // namespace cxlsim::cpu
