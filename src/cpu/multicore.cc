#include "multicore.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace cxlsim::cpu {

MultiCore::MultiCore(const CpuProfile &profile,
                     const CoreExecParams &exec,
                     mem::MemoryBackend *backend,
                     std::vector<std::unique_ptr<Kernel>> kernels,
                     bool prefetchers_on)
    : kernels_(std::move(kernels)), backend_(backend)
{
    SIM_ASSERT(!kernels_.empty(), "need at least one kernel");
    hier_ = std::make_unique<MemoryHierarchy>(
        profile, static_cast<unsigned>(kernels_.size()), backend,
        prefetchers_on);
    const std::uint64_t preloadBudget = static_cast<std::uint64_t>(
        0.7 * static_cast<double>(profile.l3.sizeBytes) /
        static_cast<double>(kernels_.size()));
    for (unsigned c = 0; c < kernels_.size(); ++c) {
        kernels_[c]->forEachPreloadLine(
            [&](Addr a) { hier_->preload(c, a); }, preloadBudget);
        cores_.push_back(std::make_unique<Core>(
            profile, exec, hier_.get(), c, kernels_[c].get()));
    }
}

void
MultiCore::enableSampling(Tick interval)
{
    cores_[0]->enableSampling(interval, &samples_);
}

namespace {

/** Scheduler key: earliest (core time, core index) runs next. */
struct CoreKey
{
    Tick now;
    std::uint32_t idx;
};

bool
earlier(const CoreKey &a, const CoreKey &b)
{
    return a.now < b.now || (a.now == b.now && a.idx < b.idx);
}

}  // namespace

RunResult
MultiCore::run()
{
    backend_->resetStats();

    // Advance the earliest core until all kernels finish. Ties
    // break toward the lowest core index, matching the original
    // linear scan, so request interleaving at the shared backend —
    // and therefore every counter — is bit-identical.
    if (cores_.size() == 1) {
        while (cores_[0]->step()) {
        }
    } else {
        // Indexed min-heap over core-local times. A core's key is
        // only stale while the core is being stepped, so pops are
        // always exact; the fast path keeps re-stepping the popped
        // core while it remains earlier than the heap's root,
        // skipping the push/pop pair entirely.
        const auto later = [](const CoreKey &a, const CoreKey &b) {
            return earlier(b, a);
        };
        std::vector<CoreKey> heap;
        heap.reserve(cores_.size());
        for (std::uint32_t i = 0; i < cores_.size(); ++i)
            heap.push_back({cores_[i]->now(), i});
        std::make_heap(heap.begin(), heap.end(), later);

        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), later);
            const std::uint32_t idx = heap.back().idx;
            heap.pop_back();
            Core *c = cores_[idx].get();
            for (;;) {
                if (!c->step())
                    break;  // kernel exhausted; drop from heap
                const CoreKey k{c->now(), idx};
                if (heap.empty() || earlier(k, heap.front()))
                    continue;  // still earliest: step again
                heap.push_back(k);
                std::push_heap(heap.begin(), heap.end(), later);
                break;
            }
        }
    }

    RunResult r;
    for (auto &c : cores_) {
        r.wallTicks = std::max(r.wallTicks, c->now());
        r.counters += c->counters();
    }
    // Normalize counters to a per-core view so Spa's cycle
    // denominators match wall time for symmetric threads.
    r.counters.scale(1.0 / static_cast<double>(cores_.size()));
    r.samples = std::move(samples_);
    r.backendStats = backend_->stats();
    backend_->rasReport(&r.ras);
    return r;
}

}  // namespace cxlsim::cpu
