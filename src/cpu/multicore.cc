#include "multicore.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlsim::cpu {

MultiCore::MultiCore(const CpuProfile &profile,
                     const CoreExecParams &exec,
                     mem::MemoryBackend *backend,
                     std::vector<std::unique_ptr<Kernel>> kernels,
                     bool prefetchers_on)
    : kernels_(std::move(kernels)), backend_(backend)
{
    SIM_ASSERT(!kernels_.empty(), "need at least one kernel");
    hier_ = std::make_unique<MemoryHierarchy>(
        profile, static_cast<unsigned>(kernels_.size()), backend,
        prefetchers_on);
    const std::uint64_t preloadBudget = static_cast<std::uint64_t>(
        0.7 * static_cast<double>(profile.l3.sizeBytes) /
        static_cast<double>(kernels_.size()));
    for (unsigned c = 0; c < kernels_.size(); ++c) {
        kernels_[c]->forEachPreloadLine(
            [&](Addr a) { hier_->preload(c, a); }, preloadBudget);
        cores_.push_back(std::make_unique<Core>(
            profile, exec, hier_.get(), c, kernels_[c].get()));
    }
}

void
MultiCore::enableSampling(Tick interval)
{
    cores_[0]->enableSampling(interval, &samples_);
}

RunResult
MultiCore::run()
{
    backend_->resetStats();

    // Advance the earliest core until all kernels finish.
    std::size_t live = cores_.size();
    while (live > 0) {
        Core *earliest = nullptr;
        for (auto &c : cores_) {
            if (c->done())
                continue;
            if (!earliest || c->now() < earliest->now())
                earliest = c.get();
        }
        if (!earliest)
            break;
        if (!earliest->step())
            --live;
    }

    RunResult r;
    for (auto &c : cores_) {
        r.wallTicks = std::max(r.wallTicks, c->now());
        r.counters += c->counters();
    }
    // Normalize counters to a per-core view so Spa's cycle
    // denominators match wall time for symmetric threads.
    const double n = static_cast<double>(cores_.size());
    r.counters.cycles /= n;
    r.counters.instructions /= n;
    r.counters.p1 /= n;
    r.counters.p2 /= n;
    r.counters.p3 /= n;
    r.counters.p4 /= n;
    r.counters.p5 /= n;
    r.counters.p6 /= n;
    r.counters.p7 /= n;
    r.counters.p8 /= n;
    r.counters.p9 /= n;
    r.samples = std::move(samples_);
    r.backendStats = backend_->stats();
    return r;
}

}  // namespace cxlsim::cpu
