/**
 * @file
 * Event-driven out-of-order core backend model.
 *
 * The core consumes a Kernel's block stream and accounts time the
 * way the Spa counter set sees it:
 *
 *  - Non-memory uops retire at the issue width; frontend stalls
 *    are a workload property (their delta across memory backends
 *    is ~0, matching §5.3's observation).
 *  - Demand loads that miss enter an outstanding-load window
 *    bounded by the LFB entry count (MLP limit) and the ROB size
 *    (how far the window can run past the oldest incomplete load).
 *    `dependent` loads serialize (pointer chasing).
 *  - When the core stalls on loads, cycles are charged to P1 and
 *    to P3/P4/P5 per Intel nesting semantics using the deepest
 *    outstanding load's StallTag; waiting on a pending prefetched
 *    line charges the level the prefetch homes at — which is how
 *    CXL's prefetcher-timeliness loss shows up as "cache
 *    slowdown" (Finding #4).
 *  - Stores drain through a finite store buffer via RFOs; a full
 *    buffer with no loads outstanding charges P2.
 */

#ifndef CXLSIM_CPU_CORE_HH
#define CXLSIM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cpu/counters.hh"
#include "cpu/hierarchy.hh"
#include "cpu/kernel.hh"
#include "cpu/profile.hh"
#include "sim/types.hh"

namespace cxlsim::cpu {

/** Workload-level execution character (backend-independent). */
struct CoreExecParams
{
    /** Fraction of total non-stalled time lost to frontend stalls. */
    double frontendStallFrac = 0.05;
    /** Fraction of exec cycles with exactly 1 / 2 ports busy. */
    double onePortFrac = 0.10;
    double twoPortFrac = 0.15;
    /** Fraction of exec cycles serialized (scoreboard). */
    double serializeFrac = 0.01;
};

/** A periodic counter snapshot (for §5.6 period analysis). */
struct CounterSample
{
    Tick when;
    CounterSet counters;
};

/** One simulated core executing one Kernel. */
class Core
{
  public:
    /**
     * @param profile   Microarchitecture parameters.
     * @param exec      Workload execution character.
     * @param hierarchy Shared memory hierarchy (not owned).
     * @param core_id   Index within the hierarchy.
     * @param kernel    Instruction stream (not owned).
     */
    Core(const CpuProfile &profile, const CoreExecParams &exec,
         MemoryHierarchy *hierarchy, unsigned core_id,
         Kernel *kernel);

    /**
     * Process one block.
     * @return false when the kernel is exhausted (the core also
     *         drains outstanding work on the last call).
     */
    bool step();

    /** True once the kernel is exhausted and the core drained. */
    bool done() const { return done_; }

    /** Current core-local time. */
    Tick now() const { return static_cast<Tick>(tickNow_); }

    /** Counters including prefetch statistics. */
    CounterSet counters() const;

    /**
     * Enable periodic counter sampling every @p interval ticks
     * (the paper samples every 1ms); samples append to @p out.
     */
    void enableSampling(Tick interval, std::vector<CounterSample> *out);

  private:
    struct OutstandingLoad
    {
        double completion;  // tick
        std::uint64_t uopIdx;
        StallTag tag;
    };

    void execute(const Block &b);
    void doLoad(const MemOp &op);
    void doStore(const MemOp &op);

    /** Advance to @p target ticks, charging a load stall. */
    void stallOnLoads(double target);
    /** Advance to @p target ticks, charging a store stall. */
    void stallOnStore(double target);

    void purgeLoads();
    void purgeStores();
    double cyclesOf(double ticks) const { return ticks / tpc_; }
    void maybeSample();

    CpuProfile profile_;
    CoreExecParams exec_;
    MemoryHierarchy *hier_;
    unsigned coreId_;
    Kernel *kernel_;

    double tpc_;        ///< ticks per cycle
    double tickNow_ = 0.0;
    std::uint64_t uopIdx_ = 0;
    bool done_ = false;

    std::deque<OutstandingLoad> loads_;
    std::deque<double> storeBuf_;

    CounterSet cnt_;

    Tick sampleInterval_ = 0;
    Tick nextSample_ = 0;
    std::vector<CounterSample> *samples_ = nullptr;
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_CORE_HH
