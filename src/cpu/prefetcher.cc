#include "prefetcher.hh"

namespace cxlsim::cpu {

namespace {
constexpr unsigned kStrideTableSize = 64;
}

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &cfg)
    : cfg_(cfg), table_(kStrideTableSize)
{
}

void
StridePrefetcher::observe(unsigned stream_id, Addr line_addr,
                          std::vector<Addr> *out)
{
    out->clear();
    if (!cfg_.enabled)
        return;
    Entry &e = table_[stream_id % kStrideTableSize];
    const auto line = static_cast<std::int64_t>(
        line_addr / kCacheLineBytes);
    if (!e.valid) {
        e.valid = true;
        e.lastLine = line_addr;
        e.strideLines = 0;
        e.confidence = 0;
        return;
    }
    const std::int64_t stride =
        line - static_cast<std::int64_t>(e.lastLine / kCacheLineBytes);
    if (stride != 0 && stride == e.strideLines) {
        if (e.confidence < cfg_.trainThreshold)
            ++e.confidence;
    } else {
        e.strideLines = stride;
        e.confidence = (stride != 0) ? 1 : 0;
    }
    e.lastLine = line_addr;
    if (e.confidence < cfg_.trainThreshold || e.strideLines == 0)
        return;

    ++triggers_;
    for (unsigned d = 1; d <= cfg_.distance; ++d) {
        const std::int64_t target = line + e.strideLines * d;
        if (target < 0)
            break;
        out->push_back(static_cast<Addr>(target) * kCacheLineBytes);
    }
}

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &cfg)
    : cfg_(cfg), streams_(kStreams)
{
}

void
StreamPrefetcher::observe(Addr line_addr, unsigned inflight_budget,
                          std::vector<Addr> *out)
{
    out->clear();
    if (!cfg_.enabled || inflight_budget == 0)
        return;
    const Addr page = line_addr / kPageBytes;
    const Addr line = line_addr / kCacheLineBytes;

    // Find or allocate the page's stream (LRU replacement).
    Stream *s = nullptr;
    Stream *lru = &streams_[0];
    for (auto &cand : streams_) {
        if (cand.valid && cand.page == page) {
            s = &cand;
            break;
        }
        if (cand.lruStamp < lru->lruStamp)
            lru = &cand;
    }
    if (!s) {
        s = lru;
        s->valid = true;
        s->page = page;
        s->lastLine = line;
        s->head = line + 1;
        s->confidence = 0;
        s->lruStamp = ++stamp_;
        return;
    }
    s->lruStamp = ++stamp_;

    // Train only on strictly sequential progress: sparse forward
    // jumps within a page (e.g. Zipf-hot revisits) are not streams
    // and must not trigger useless page blasts.
    if (line == s->lastLine + 1) {
        if (s->confidence < cfg_.trainThreshold)
            ++s->confidence;
    } else if (line != s->lastLine) {
        s->confidence = line > s->lastLine ? 1 : 0;
        s->head = line + 1;
    }
    s->lastLine = line;
    if (s->confidence < cfg_.trainThreshold)
        return;

    // Nominate from the frontier up to distance ahead of the
    // demand, bounded by the page, the in-flight budget, and a
    // per-trigger ramp (real streamers increase degree gradually;
    // without the cap, one Zipf-hot page revisit would blast a
    // whole page of useless prefetches).
    constexpr unsigned kMaxPerTrigger = 4;
    const Addr pageEnd = (page + 1) * (kPageBytes / kCacheLineBytes);
    const Addr limit = std::min<Addr>(line + cfg_.distance + 1, pageEnd);
    Addr from = std::max(s->head, line + 1);
    unsigned budget = std::min(inflight_budget, kMaxPerTrigger);
    while (from < limit && budget > 0) {
        out->push_back(from * kCacheLineBytes);
        ++from;
        --budget;
    }
    s->head = from;
}

}  // namespace cxlsim::cpu
