/**
 * @file
 * The performance-counter set Spa relies on (paper Table 2), with
 * Intel nesting semantics (paper Figure 10):
 *
 *   P1 BOUND_ON_LOADS   cycles stalled with >=1 outstanding demand load
 *   P2 BOUND_ON_STORES  cycles stalled with the store buffer full
 *   P3 STALLS_L1D_MISS  subset of P1: an L1-miss demand load outstanding
 *   P4 STALLS_L2_MISS   subset of P3: an L2-miss demand load outstanding
 *   P5 STALLS_L3_MISS   subset of P4: an L3-miss demand load outstanding
 *   P6 RETIRED.STALLS   cycles retiring no uops (all stalls)
 *   P7 1_PORTS_UTIL     cycles executing exactly 1 uop
 *   P8 2_PORTS_UTIL     cycles executing exactly 2 uops
 *   P9 STALLS.SCOREBD   cycles stalled on serializing operations
 *
 * plus the derived prefetcher counters used in §5.4 (L1PF/L2PF
 * requests that hit or miss the LLC).
 *
 * The stall components of Figure 10 are *derived*, exactly as in
 * the paper: sStore = P2, sL1 = P1-P3, sL2 = P3-P4, sL3 = P4-P5,
 * sDRAM = P5, sCore = P7+P8+P9.
 */

#ifndef CXLSIM_CPU_COUNTERS_HH
#define CXLSIM_CPU_COUNTERS_HH

#include <cstdint>

namespace cxlsim::cpu {

/** Attribution level of a memory-subsystem stall. */
enum class StallTag : std::uint8_t { kL1 = 0, kL2, kL3, kDram };

/** One capture of the Spa counter set (units: cycles / events). */
struct CounterSet
{
    double cycles = 0.0;
    double instructions = 0.0;

    double p1 = 0.0;  ///< BOUND_ON_LOADS
    double p2 = 0.0;  ///< BOUND_ON_STORES
    double p3 = 0.0;  ///< STALLS_L1D_MISS
    double p4 = 0.0;  ///< STALLS_L2_MISS
    double p5 = 0.0;  ///< STALLS_L3_MISS
    double p6 = 0.0;  ///< RETIRED.STALLS
    double p7 = 0.0;  ///< 1_PORTS_UTIL
    double p8 = 0.0;  ///< 2_PORTS_UTIL
    double p9 = 0.0;  ///< STALLS.SCOREBD

    std::uint64_t l1pfL3Miss = 0;
    std::uint64_t l1pfL3Hit = 0;
    std::uint64_t l2pfL3Miss = 0;
    std::uint64_t l2pfL3Hit = 0;
    std::uint64_t demandL3Miss = 0;
    std::uint64_t l2pfIssued = 0;
    std::uint64_t l1pfIssued = 0;

    /** RAS events the core observed (poison consumption surfaces
     *  as a machine-check exception; see src/ras/). Population
     *  totals like the prefetch counts — never scaled. */
    std::uint64_t machineChecks = 0;
    std::uint64_t demandTimeouts = 0;
    std::uint64_t prefetchDrops = 0;

    /** Derived stall components (Figure 10). */
    double sStore() const { return p2; }
    double sL1() const { return p1 - p3; }
    double sL2() const { return p3 - p4; }
    double sL3() const { return p4 - p5; }
    double sDram() const { return p5; }
    double sCore() const { return p7 + p8 + p9; }
    double sMemory() const { return p1 + p2; }
    double sBackend() const { return sMemory() + sCore(); }

    CounterSet &operator+=(const CounterSet &o);
    CounterSet operator-(const CounterSet &o) const;

    /**
     * Multiply the cycle/event accumulators (cycles, instructions,
     * P1-P9) by @p f — e.g. 1/N to normalize an N-core sum to a
     * per-core view. The integral prefetch line counts are left
     * untouched: they are population totals, not per-core rates.
     */
    CounterSet &scale(double f);
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_COUNTERS_HH
