#include "profile.hh"

namespace cxlsim::cpu {

CpuProfile
skx()
{
    CpuProfile p;
    p.name = "SKX";
    p.freqGhz = 2.2;
    p.issueWidth = 4;
    p.robSize = 224;
    p.lfbEntries = 12;
    p.storeBufferEntries = 56;
    p.l1 = {32 * 1024, 8, 4.0};
    p.l2 = {1024 * 1024, 16, 14.0};
    p.l3 = {13800ULL * 1024, 11, 44.0};
    p.l1pf = {true, 6, 16, 2};
    p.l2pf = {true, 18, 20, 3};
    p.l2pfFillsL3 = false;  // streamer fills L2 -> sL2 slowdown
    return p;
}

CpuProfile
spr()
{
    CpuProfile p;
    p.name = "SPR";
    p.freqGhz = 2.1;
    p.issueWidth = 6;
    p.robSize = 512;
    p.lfbEntries = 16;
    p.storeBufferEntries = 112;
    p.l1 = {48 * 1024, 12, 5.0};
    p.l2 = {2048 * 1024, 16, 16.0};
    p.l3 = {60ULL * 1024 * 1024, 15, 50.0};
    p.l1pf = {true, 8, 24, 2};  // offcore L1PF uses the superqueue
    p.l2pf = {true, 24, 28, 3};
    p.l2pfFillsL3 = true;  // LLC-biased streamer -> sL3 slowdown
    return p;
}

CpuProfile
emr()
{
    CpuProfile p = spr();
    p.name = "EMR";
    p.l3 = {160ULL * 1024 * 1024, 16, 52.0};
    return p;
}

CpuProfile
emrPrime()
{
    CpuProfile p = spr();
    p.name = "EMR'";
    p.freqGhz = 2.3;
    p.l3 = {260ULL * 1024 * 1024, 16, 55.0};
    return p;
}

}  // namespace cxlsim::cpu
