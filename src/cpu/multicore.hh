/**
 * @file
 * Multi-core co-simulation: N cores over one shared hierarchy.
 *
 * Cores are advanced earliest-time-first so their memory requests
 * reach the shared backend in (nearly) global time order — a
 * conservative co-simulation that captures bandwidth contention,
 * shared-LLC effects, and device queueing across threads.
 */

#ifndef CXLSIM_CPU_MULTICORE_HH
#define CXLSIM_CPU_MULTICORE_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "cpu/hierarchy.hh"
#include "cpu/kernel.hh"
#include "cpu/profile.hh"
#include "mem/backend.hh"

namespace cxlsim::cpu {

/** Result of running a workload on N cores. */
struct RunResult
{
    /** Wall-clock ticks (max over cores). */
    Tick wallTicks = 0;
    /** Per-core-averaged counter set. */
    CounterSet counters;
    /** Core 0's periodic samples, if sampling was enabled. */
    std::vector<CounterSample> samples;
    /** Backend traffic totals. */
    mem::BackendStats backendStats;
    /** Per-node RAS counters (empty when no faults are armed). */
    std::vector<ras::RasReportEntry> ras;

    /** Sum of all per-node RAS counters. */
    ras::RasStats
    rasTotal() const
    {
        ras::RasStats total;
        for (const auto &e : ras)
            total += e.stats;
        return total;
    }

    /** Wall time in seconds. */
    double
    seconds() const
    {
        return static_cast<double>(wallTicks) /
               static_cast<double>(kTicksPerSec);
    }

    /** Average achieved backend bandwidth, GB/s. */
    double
    backendGBps() const
    {
        const double s = seconds();
        return s > 0.0 ? backendStats.totalGB() / s : 0.0;
    }
};

/** Runs one workload's kernels on a shared MemoryHierarchy. */
class MultiCore
{
  public:
    /**
     * @param profile        CPU microarchitecture.
     * @param exec           Workload execution character.
     * @param backend        Memory backend (not owned).
     * @param kernels        One kernel per core (owned).
     * @param prefetchers_on HW prefetcher master switch.
     */
    MultiCore(const CpuProfile &profile, const CoreExecParams &exec,
              mem::MemoryBackend *backend,
              std::vector<std::unique_ptr<Kernel>> kernels,
              bool prefetchers_on = true);

    /** Enable 1ms-style sampling on core 0. */
    void enableSampling(Tick interval);

    /** Run every core to completion and report. Bit-identical for
     *  every pdes::simThreads() value, including 1. */
    RunResult run();

    MemoryHierarchy &hierarchy() { return *hier_; }

  private:
    /** Serial engine: indexed min-heap, (now, idx) order. */
    void runSerial();

    /**
     * Conservative parallel engine (DESIGN.md §11): one gang
     * thread per core, each publishing its block key to a
     * FrontierGate; shared LLC/backend touches wait for the
     * serial-order grant, so the interleaving at the shared state
     * — and therefore every counter — matches runSerial() exactly.
     * @param tokens concurrent-execution budget (sim-threads).
     */
    void runParallel(unsigned tokens);

    /** End-of-run counter-accounting checks (sim::Invariants). */
    void checkInvariants() const;

    std::vector<std::unique_ptr<Kernel>> kernels_;
    std::unique_ptr<MemoryHierarchy> hier_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<CounterSample> samples_;
    mem::MemoryBackend *backend_;
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_MULTICORE_HH
