/**
 * @file
 * Set-associative cache with pending-line (fill-in-progress)
 * semantics.
 *
 * A line is inserted the moment its fill request is issued, with a
 * readyTick in the future; until then the line is "pending" and a
 * hit on it is a *delayed hit* that must wait for arrival. Each
 * pending line carries a home StallTag — the level a demand load
 * waiting on it is charged to. This is the substrate for the
 * paper's prefetch-timeliness findings (§5.4): a demand load that
 * catches a pending L2-streamer line stalls on "L2" (or LLC on
 * SPR/EMR) even though the data is actually in flight from CXL.
 */

#ifndef CXLSIM_CPU_CACHE_HH
#define CXLSIM_CPU_CACHE_HH

#include <cstdint>
#include <vector>

#include "cpu/counters.hh"
#include "sim/types.hh"

namespace cxlsim::cpu {

/** Result of a cache lookup. */
enum class LookupResult : std::uint8_t {
    kHit,       ///< Present and ready.
    kPending,   ///< Present but still filling; see readyAt.
    kMiss,      ///< Not present.
};

/** A victim evicted by insert(); valid==false when none. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
};

/**
 * One cache level. Addresses are line-aligned; LRU replacement.
 * Pending lines are never chosen as victims while filling unless
 * the whole set is pending (then the oldest fill is dropped —
 * models a squashed prefetch).
 */
class Cache
{
  public:
    /**
     * @param size_bytes Capacity.
     * @param ways       Associativity.
     */
    Cache(std::uint64_t size_bytes, unsigned ways);

    /**
     * Look up @p line_addr at time @p now. Updates LRU on hit.
     *
     * @param ready_at Out: arrival tick when kPending.
     * @param home     Out: stall attribution tag when kPending.
     */
    LookupResult lookup(Addr line_addr, Tick now, Tick *ready_at,
                        StallTag *home);

    /** True if the line is present (ready or pending). */
    bool contains(Addr line_addr) const;

    /**
     * Insert a line filling at @p ready_at with attribution
     * @p home; returns the eviction, if any.
     *
     * @param dirty Install in modified state (RFO fills).
     */
    Eviction insert(Addr line_addr, Tick ready_at, StallTag home,
                    bool dirty);

    /** Mark a present line dirty (store commit); no-op on miss. */
    void markDirty(Addr line_addr);

    /** Invalidate a line if present (used by tests). */
    void invalidate(Addr line_addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t pendingHits() const { return pendingHits_; }

    std::uint64_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    struct Line
    {
        Addr tag = 0;
        Tick readyAt = 0;
        std::uint64_t lruStamp = 0;
        StallTag home = StallTag::kDram;
        bool valid = false;
        bool dirty = false;
    };

    Line *find(Addr line_addr);
    const Line *find(Addr line_addr) const;

    std::uint64_t sets_;
    unsigned ways_;
    std::vector<Line> lines_;
    std::uint64_t stamp_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t pendingHits_ = 0;
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_CACHE_HH
