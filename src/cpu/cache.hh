/**
 * @file
 * Set-associative cache with pending-line (fill-in-progress)
 * semantics.
 *
 * A line is inserted the moment its fill request is issued, with a
 * readyTick in the future; until then the line is "pending" and a
 * hit on it is a *delayed hit* that must wait for arrival. Each
 * pending line carries a home StallTag — the level a demand load
 * waiting on it is charged to. This is the substrate for the
 * paper's prefetch-timeliness findings (§5.4): a demand load that
 * catches a pending L2-streamer line stalls on "L2" (or LLC on
 * SPR/EMR) even though the data is actually in flight from CXL.
 *
 * Storage layout is split for the host machine's benefit: the probe
 * path scans a compact one-word-per-way tag array (tag | valid bit
 * packed into a single 8-byte word, so a 16-way set is two host
 * cachelines instead of ten), with an MRU-way first probe; the cold
 * per-line metadata (readyAt, LRU stamp, home, dirty) lives in a
 * parallel array that is only touched after a tag match. The tag
 * array is calloc'd so multi-hundred-MB LLCs cost no up-front
 * zeroing — the OS hands out lazily-zeroed pages and first-touch
 * cost is spread across the run.
 */

#ifndef CXLSIM_CPU_CACHE_HH
#define CXLSIM_CPU_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <type_traits>

#include "cpu/counters.hh"
#include "sim/types.hh"

namespace cxlsim::cpu {

/** Result of a cache lookup. */
enum class LookupResult : std::uint8_t {
    kHit,       ///< Present and ready.
    kPending,   ///< Present but still filling; see readyAt.
    kMiss,      ///< Not present.
};

/** A victim evicted by insert(); valid==false when none. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
};

/**
 * One cache level. Addresses are line-aligned; LRU replacement.
 * Pending lines are never chosen as victims while filling unless
 * the whole set is pending (then the oldest fill is dropped —
 * models a squashed prefetch).
 */
class Cache
{
  public:
    /**
     * @param size_bytes Capacity.
     * @param ways       Associativity.
     */
    Cache(std::uint64_t size_bytes, unsigned ways);

    /**
     * Look up @p line_addr at time @p now. Updates LRU on hit.
     *
     * @param ready_at Out: arrival tick when kPending.
     * @param home     Out: stall attribution tag when kPending.
     */
    LookupResult lookup(Addr line_addr, Tick now, Tick *ready_at,
                        StallTag *home);

    /** True if the line is present (ready or pending). */
    bool contains(Addr line_addr) const;

    /**
     * Insert a line filling at @p ready_at with attribution
     * @p home; returns the eviction, if any.
     *
     * @param dirty Install in modified state (RFO fills).
     */
    Eviction insert(Addr line_addr, Tick ready_at, StallTag home,
                    bool dirty);

    /** Mark a present line dirty (store commit); no-op on miss. */
    void markDirty(Addr line_addr);

    /** Invalidate a line if present (used by tests). */
    void invalidate(Addr line_addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t pendingHits() const { return pendingHits_; }

    std::uint64_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    /**
     * Cold per-line state; read only after a tag match, so the
     * backing array is deliberately left uninitialized (trivial
     * type, written by insert() before any read).
     */
    struct Meta
    {
        Tick readyAt;
        std::uint64_t lruStamp;
        StallTag home;
        bool dirty;
    };
    static_assert(std::is_trivial_v<Meta>,
                  "Meta must be trivial: its array is never "
                  "value-initialized");

    // Line addresses have the low log2(kCacheLineBytes) bits clear,
    // so bit 0 doubles as the valid flag and 0 means "empty way".
    static_assert(kCacheLineBytes >= 2, "need a spare low bit");

    static Addr tagWord(Addr line_addr) { return line_addr | 1; }

    std::size_t setIndex(Addr line_addr) const
    {
        return (line_addr / kCacheLineBytes) % sets_;
    }

    /** Way holding @p line_addr in @p set, or -1. MRU-first probe. */
    int findWay(std::size_t set, Addr line_addr) const;

    struct FreeDeleter
    {
        void operator()(void *p) const { std::free(p); }
    };

    std::uint64_t sets_;
    unsigned ways_;
    /** sets_*ways_ probe words: tagWord(addr) or 0 when invalid. */
    std::unique_ptr<Addr[], FreeDeleter> tags_;
    /** sets_*ways_ cold entries, parallel to tags_. */
    std::unique_ptr<Meta[], FreeDeleter> meta_;
    /** Per-set most-recently-hit way (probe hint only). */
    std::unique_ptr<std::uint8_t[], FreeDeleter> mru_;
    std::uint64_t stamp_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t pendingHits_ = 0;
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_CACHE_HH
