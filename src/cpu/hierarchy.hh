/**
 * @file
 * MemoryHierarchy: per-core L1/L2, shared LLC, hardware
 * prefetchers, and the memory backend (local DRAM / NUMA / CXL).
 *
 * This implements the request-processing flow of paper Figure 2a:
 * demand loads walk L1 -> L2 -> LLC -> backend; the L1 stride
 * prefetcher trains on demand loads and the L2 streamer on L1
 * misses; stores issue RFOs. Every fill installs a *pending* line
 * whose home StallTag determines where a demand load waiting on it
 * is charged — the substrate for Spa's slowdown breakdown.
 */

#ifndef CXLSIM_CPU_HIERARCHY_HH
#define CXLSIM_CPU_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "cpu/cache.hh"
#include "cpu/prefetcher.hh"
#include "cpu/profile.hh"
#include "mem/backend.hh"
#include "sim/partition.hh"
#include "sim/types.hh"

namespace cxlsim::cpu {

/** Prefetcher event counts, per core (feeds Figure 12). */
struct PfStats
{
    std::uint64_t l1pfIssued = 0;
    std::uint64_t l1pfL3Miss = 0;
    std::uint64_t l1pfL3Hit = 0;
    std::uint64_t l2pfIssued = 0;
    std::uint64_t l2pfL3Miss = 0;
    std::uint64_t l2pfL3Hit = 0;
    std::uint64_t demandL3Miss = 0;
    /** Poisoned demand loads (consumed poison -> machine check). */
    std::uint64_t machineChecks = 0;
    /** Demand loads whose backend access timed out unrecovered. */
    std::uint64_t demandTimeouts = 0;
    /** Prefetch fills dropped because they came back not-Ok
     *  (poison/timeout is never installed speculatively). */
    std::uint64_t prefetchDrops = 0;
    /** Store RFOs that fell through to the memory backend. */
    std::uint64_t rfoFetches = 0;
    /** Dirty LLC victims written back to the memory backend. */
    std::uint64_t writebacks = 0;
};

/** Outcome of a demand load. */
struct LoadOutcome
{
    /** Tick at which the data is usable by the core. */
    Tick readyAt;
    /** Attribution level if the core must wait. */
    StallTag tag;
    /** True when served without any wait (ready L1 hit). */
    bool immediate;
};

/** The full cache/memory subsystem for one simulated socket. */
class MemoryHierarchy
{
  public:
    /**
     * @param profile  CPU microarchitecture.
     * @param cores    Number of cores sharing the LLC.
     * @param backend  Memory behind the LLC (not owned).
     * @param prefetchers_on Master enable for HW prefetchers
     *                 (the paper's prefetcher-off experiments).
     */
    MemoryHierarchy(const CpuProfile &profile, unsigned cores,
                    mem::MemoryBackend *backend,
                    bool prefetchers_on = true);

    /** Demand load; trains prefetchers and may issue fills. */
    LoadOutcome demandLoad(unsigned core, Addr addr,
                           unsigned stream_id, Tick now);

    /**
     * Install a line as resident (ready at tick 0) in the core's
     * L2 and the shared LLC — cache pre-warming for steady-state
     * measurements.
     */
    void preload(unsigned core, Addr addr);

    /**
     * Read-for-ownership for a store; returns the tick at which
     * the store-buffer entry can drain.
     */
    Tick storeRfo(unsigned core, Addr addr, Tick now);

    const PfStats &pfStats(unsigned core) const
    {
        return percore_[core]->pf;
    }

    const Cache &l1(unsigned core) const { return percore_[core]->l1; }
    const Cache &l2(unsigned core) const { return percore_[core]->l2; }
    const Cache &l3() const { return l3_; }

    mem::MemoryBackend &backend() { return *backend_; }

    /** Ticks for one core cycle (derived from the CPU profile). */
    double tickPerCycle() const { return tickPerCycle_; }

    /**
     * Attach/detach the conservative scheduler for a parallel run
     * (MultiCore installs it around a gang; null = serial). With a
     * gate attached, every touch of cross-core shared state (the
     * LLC and the memory backend) first waits for the caller's
     * serial-order grant; per-core state (L1/L2, prefetchers,
     * PfStats) needs no gate.
     */
    void setGate(pdes::FrontierGate *gate) { gate_ = gate; }

  private:
    struct PerCore
    {
        PerCore(const CpuProfile &p, unsigned idx);

        Cache l1;
        Cache l2;
        StridePrefetcher l1pf;
        StreamPrefetcher l2pf;
        std::priority_queue<Tick, std::vector<Tick>,
                            std::greater<>> l1pfInflight;
        std::priority_queue<Tick, std::vector<Tick>,
                            std::greater<>> l2pfInflight;
        /** EWMA of L2PF fill latency (ns): the streamer throttles
         *  its depth when its prefetches come back late, as real
         *  feedback-directed prefetchers do — the mechanism behind
         *  the paper's L2PF->L1PF coverage transfer (Fig 12). */
        double l2pfLatEwmaNs = 100.0;
        PfStats pf;
        std::vector<Addr> scratch;
        /** Core index (partition id for the gate). */
        unsigned idx;
    };

    Tick cyclesToTicks(double cycles) const
    {
        return static_cast<Tick>(cycles * tickPerCycle_ + 0.5);
    }

    /** Handle a (possibly dirty) eviction from level @p from. */
    void handleEviction(PerCore *pc, unsigned from_level,
                        const Eviction &ev, Tick now);

    /** Before any l3_/backend_ touch: under a parallel run, wait
     *  for core @p core's serial-order shared-access grant. */
    void
    syncShared(unsigned core)
    {
        if (gate_)
            gate_->enterShared(core);
    }

    void runL1Prefetcher(PerCore &pc, unsigned stream_id,
                         Addr line, Tick now);
    void runL2Prefetcher(PerCore &pc, Addr line, Tick now);

    static void purge(std::priority_queue<Tick, std::vector<Tick>,
                                          std::greater<>> *q,
                      Tick now);

    CpuProfile profile_;
    double tickPerCycle_;
    bool prefetchersOn_;
    mem::MemoryBackend *backend_;
    Cache l3_;
    std::vector<std::unique_ptr<PerCore>> percore_;
    /** Conservative scheduler for parallel runs (null = serial). */
    pdes::FrontierGate *gate_ = nullptr;
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_HIERARCHY_HH
