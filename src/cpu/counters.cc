#include "counters.hh"

namespace cxlsim::cpu {

CounterSet &
CounterSet::operator+=(const CounterSet &o)
{
    cycles += o.cycles;
    instructions += o.instructions;
    p1 += o.p1;
    p2 += o.p2;
    p3 += o.p3;
    p4 += o.p4;
    p5 += o.p5;
    p6 += o.p6;
    p7 += o.p7;
    p8 += o.p8;
    p9 += o.p9;
    l1pfL3Miss += o.l1pfL3Miss;
    l1pfL3Hit += o.l1pfL3Hit;
    l2pfL3Miss += o.l2pfL3Miss;
    l2pfL3Hit += o.l2pfL3Hit;
    demandL3Miss += o.demandL3Miss;
    l2pfIssued += o.l2pfIssued;
    l1pfIssued += o.l1pfIssued;
    machineChecks += o.machineChecks;
    demandTimeouts += o.demandTimeouts;
    prefetchDrops += o.prefetchDrops;
    return *this;
}

CounterSet &
CounterSet::scale(double f)
{
    cycles *= f;
    instructions *= f;
    p1 *= f;
    p2 *= f;
    p3 *= f;
    p4 *= f;
    p5 *= f;
    p6 *= f;
    p7 *= f;
    p8 *= f;
    p9 *= f;
    return *this;
}

CounterSet
CounterSet::operator-(const CounterSet &o) const
{
    CounterSet r = *this;
    r.cycles -= o.cycles;
    r.instructions -= o.instructions;
    r.p1 -= o.p1;
    r.p2 -= o.p2;
    r.p3 -= o.p3;
    r.p4 -= o.p4;
    r.p5 -= o.p5;
    r.p6 -= o.p6;
    r.p7 -= o.p7;
    r.p8 -= o.p8;
    r.p9 -= o.p9;
    r.l1pfL3Miss -= o.l1pfL3Miss;
    r.l1pfL3Hit -= o.l1pfL3Hit;
    r.l2pfL3Miss -= o.l2pfL3Miss;
    r.l2pfL3Hit -= o.l2pfL3Hit;
    r.demandL3Miss -= o.demandL3Miss;
    r.l2pfIssued -= o.l2pfIssued;
    r.l1pfIssued -= o.l1pfIssued;
    r.machineChecks -= o.machineChecks;
    r.demandTimeouts -= o.demandTimeouts;
    r.prefetchDrops -= o.prefetchDrops;
    return r;
}

}  // namespace cxlsim::cpu
