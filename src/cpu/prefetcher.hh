/**
 * @file
 * Hardware prefetcher models (paper Figure 2a, "L1PF"/"L2PF").
 *
 * - StridePrefetcher: the L1 IP-stride prefetcher. Trains on the
 *   demand-load stream per instruction context (streamId) and
 *   fetches a short distance ahead.
 * - StreamPrefetcher: the L2 streamer. Trains on L1 misses within
 *   a 4KB page and runs a further distance ahead, limited by an
 *   in-flight budget. Under CXL's longer latency the budget pins
 *   the stream head closer to the demand stream, cutting coverage
 *   — the mechanism behind Finding #4.
 *
 * Prefetchers only *nominate* lines; the MemoryHierarchy filters
 * against cache contents and MSHR budgets and issues requests.
 */

#ifndef CXLSIM_CPU_PREFETCHER_HH
#define CXLSIM_CPU_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "cpu/profile.hh"
#include "sim/types.hh"

namespace cxlsim::cpu {

/** L1 IP-stride prefetcher. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &cfg);

    /**
     * Observe a demand load and append nominated prefetch line
     * addresses to @p out (cleared first).
     *
     * @param stream_id Instruction-context id (stands in for the IP).
     * @param line_addr Line-aligned demand address.
     */
    void observe(unsigned stream_id, Addr line_addr,
                 std::vector<Addr> *out);

    std::uint64_t trainedTriggers() const { return triggers_; }

  private:
    struct Entry
    {
        Addr lastLine = 0;
        std::int64_t strideLines = 0;
        unsigned confidence = 0;
        bool valid = false;
    };

    PrefetcherConfig cfg_;
    std::vector<Entry> table_;
    std::uint64_t triggers_ = 0;
};

/** L2 streamer prefetcher. */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherConfig &cfg);

    /**
     * Observe an L1-miss access and append nominated line
     * addresses to @p out (cleared first). @p inflight_budget is
     * the remaining MSHR budget — the streamer never nominates
     * more than that.
     */
    void observe(Addr line_addr, unsigned inflight_budget,
                 std::vector<Addr> *out);

  private:
    struct Stream
    {
        Addr page = 0;
        Addr lastLine = 0;
        /** Furthest line nominated so far (exclusive frontier). */
        Addr head = 0;
        unsigned confidence = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    static constexpr unsigned kStreams = 32;
    static constexpr Addr kPageBytes = 4096;

    PrefetcherConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t stamp_ = 0;
};

}  // namespace cxlsim::cpu

#endif  // CXLSIM_CPU_PREFETCHER_HH
